"""C1 — single-core vs controller memory bandwidth (§5.1).

The paper's numbers: "the best rate that a single thread can achieve
on a read workload is 75-85% of the controller's bandwidth and has
remained constant for a long time", and controllers are
"oversubscribed w.r.t. the number of cores": no single core saturates
a controller, but a moderate number of memory-bound cores saturates
all of them and per-core bandwidth collapses.

Sweeps the number of concurrently reading cores on a 2-controller
socket and reports per-core and aggregate bandwidth.
"""

from common import report

from repro.hardware import GIB, CPUSocket
from repro.sim import Simulator, Trace

CONTROLLERS = 2
CONTROLLER_GIB = 20.0
FRACTION = 0.8
READ_BYTES = 64 << 20


def run_cores(n_cores: int) -> dict:
    sim = Simulator()
    trace = Trace()
    socket = CPUSocket(sim, trace, "s", cores=max(n_cores, 1),
                       controllers=CONTROLLERS,
                       controller_bandwidth=CONTROLLER_GIB * GIB,
                       single_stream_fraction=FRACTION)
    finish = {}

    def stream(i):
        yield from socket.memory_read(READ_BYTES, stream_id=i,
                                      through_caches=False)
        finish[i] = sim.now

    for i in range(n_cores):
        sim.process(stream(i))
    sim.run()
    per_core = [READ_BYTES / t for t in finish.values()]
    aggregate = n_cores * READ_BYTES / max(finish.values())
    return {
        "cores": n_cores,
        "per_core_gib": sum(per_core) / len(per_core) / GIB,
        "aggregate_gib": aggregate / GIB,
        "fraction_of_one_controller":
            (sum(per_core) / len(per_core)) / (CONTROLLER_GIB * GIB),
        "fraction_of_socket":
            aggregate / (CONTROLLERS * CONTROLLER_GIB * GIB),
    }


def run_c1() -> list[dict]:
    return [run_cores(n) for n in (1, 2, 4, 8, 16, 32)]


def test_c1_memory_bandwidth(benchmark):
    rows = benchmark.pedantic(run_c1, rounds=1, iterations=1)
    report(
        "C1", "Single-core bandwidth ceiling and controller "
        "oversubscription",
        "one core sustains 75-85% of one controller; aggregate "
        "saturates at the socket's controller bandwidth; per-core "
        "bandwidth collapses as cores >> controllers",
        rows)
    one = rows[0]
    # The 75-85% claim.
    assert 0.75 <= one["fraction_of_one_controller"] <= 0.85
    # Aggregate approaches but never exceeds socket bandwidth.
    for r in rows:
        assert r["fraction_of_socket"] <= 1.01
    many = rows[-1]
    assert many["fraction_of_socket"] > 0.9
    # Collapse: with 32 cores on 2 controllers, each core gets a
    # small fraction of what it gets alone.
    assert many["per_core_gib"] < one["per_core_gib"] / 8


if __name__ == "__main__":
    report("C1", "Memory bandwidth", "75-85% single core", run_c1())
