"""F1 — the conventional von Neumann data path (Figure 1, §2.1).

The paper: database engines are still designed for the
disk → memory → caches → registers path, so *every* byte of a table
crosses the entire path before the CPU can decide it is not needed.
For a selective query the movement amplification is 1/selectivity:
the engine moves the whole table to return a sliver of it.

This bench runs a selection on the Volcano engine over the Figure 1
node (local NVMe storage) at decreasing selectivities and reports
bytes per path segment versus the bytes actually returned.
"""

from common import fmt_bytes, report

from repro import (
    Catalog,
    Query,
    VolcanoEngine,
    build_fabric,
    col,
    conventional_spec,
    make_uniform_table,
)

ROWS = 200_000
DISTINCT = 10_000
CHUNK = 16_384


def run_selectivity(selectivity: float) -> dict:
    fabric = build_fabric(conventional_spec())
    catalog = Catalog()
    table = make_uniform_table(ROWS, columns=4, distinct=DISTINCT,
                               chunk_rows=CHUNK)
    catalog.register("t", table)
    cutoff = int(DISTINCT * selectivity)
    query = Query.scan("t").filter(col("k0") < cutoff)
    result = VolcanoEngine(fabric, catalog).execute(query)
    returned = result.table.nbytes
    return {
        "selectivity": selectivity,
        "rows_out": result.rows,
        "storage": fmt_bytes(result.bytes_on("storage")),
        "pcie_or_cxl": fmt_bytes(result.bytes_on("pcie")
                                 + result.bytes_on("cxl")),
        "membus": fmt_bytes(result.bytes_on("membus")),
        "cache": fmt_bytes(result.bytes_on("cache")),
        "returned": fmt_bytes(returned),
        "amplification": (result.bytes_on("membus") / returned
                          if returned else float("inf")),
        "elapsed": result.elapsed,
    }


def run_f1() -> list[dict]:
    return [run_selectivity(s)
            for s in (1.0, 0.5, 0.1, 0.01, 0.001)]


def test_f1_conventional_path(benchmark):
    rows = benchmark.pedantic(run_f1, rounds=1, iterations=1)
    report(
        "F1", "Conventional data path movement amplification",
        "every byte crosses disk->memory->caches->registers; "
        "amplification ~ 1/selectivity; elapsed barely improves with "
        "selectivity because movement, not compute, dominates",
        rows)
    # Shape checks: full table always crosses the memory bus...
    membus = [r["membus"] for r in rows]
    assert len(set(membus)) == 1
    # ...and amplification explodes as selectivity drops.
    assert rows[-1]["amplification"] > 100 * rows[0]["amplification"]


if __name__ == "__main__":
    report("F1", "Conventional data path movement amplification",
           "amplification ~ 1/selectivity", run_f1())
