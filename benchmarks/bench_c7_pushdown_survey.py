"""C7 — which operators make sense to push down? (§3.3)

The paper's open question: "identifying the SQL operators that make
sense to push down to the storage layer ... for what data types does
it make sense to filter them at the storage rather than at the
compute layer?"  And the AQUA observation that LIKE/regex gains the
most because a dedicated automaton beats a CPU at pattern matching.

For each candidate operator this bench runs pushdown vs CPU placement
and reports the movement reduction and the speedup, across a sweep of
storage-CU speeds (the "what would the nature of such a processor be"
axis).  Stateful operators (sort) are shown rejected by the placement
validator — the storage CU is stateless by design.
"""

from common import report

from repro import (
    AggSpec,
    Catalog,
    DataflowEngine,
    Query,
    build_fabric,
    col,
    cpu_only,
    dataflow_spec,
    make_lineitem,
    pushdown,
)

ROWS = 60_000
CHUNK = 4_096


def queries():
    return {
        "select_1pct": (Query.scan("lineitem")
                        .filter(col("l_quantity") > 49)),
        "select_50pct": (Query.scan("lineitem")
                         .filter(col("l_quantity") > 25)),
        "like_regex": (Query.scan("lineitem")
                       .filter(col("l_comment").like("%express%"))),
        "project_narrow": (Query.scan("lineitem")
                           .project(["l_orderkey"])),
        "pre_aggregate": (Query.scan("lineitem")
                          .aggregate(["l_returnflag"],
                                     [AggSpec("count", alias="n")])),
    }


def run_case(name, query, cu_scale: float) -> dict:
    def execute(push: bool):
        fabric = build_fabric(dataflow_spec(storage_cu_scale=cu_scale))
        catalog = Catalog()
        catalog.register("lineitem", make_lineitem(ROWS,
                                                   chunk_rows=CHUNK))
        engine = DataflowEngine(fabric, catalog)
        placement = (pushdown(query.plan, fabric) if push
                     else cpu_only(query.plan, fabric))
        return engine.execute(query, placement=placement)

    res_cpu = execute(False)
    res_push = execute(True)
    assert res_cpu.table.sorted_rows() == res_push.table.sorted_rows()
    return {
        "operator": name,
        "cu_scale": cu_scale,
        "movement_reduction":
            res_cpu.bytes_on("network")
            / max(1.0, res_push.bytes_on("network")),
        "speedup": res_cpu.elapsed / res_push.elapsed,
    }


def run_c7() -> list[dict]:
    rows = []
    for cu_scale in (0.25, 1.0, 4.0):
        for name, query in queries().items():
            rows.append(run_case(name, query, cu_scale))
    return rows


def test_c7_pushdown_survey(benchmark):
    rows = benchmark.pedantic(run_c7, rounds=1, iterations=1)
    report(
        "C7", "Per-operator pushdown survey x storage-CU speed",
        "reductive operators (selective filters, narrow projections, "
        "pre-aggregation) win big; non-reductive ones win little; "
        "LIKE gains even on a slow CU (regex is disproportionately "
        "expensive on a CPU — the AQUA case); faster CUs widen every "
        "gap",
        rows)

    def pick(op, scale):
        return next(r for r in rows if r["operator"] == op
                    and r["cu_scale"] == scale)

    # Reduction factor is a property of the data, not the CU speed.
    assert pick("select_1pct", 1.0)["movement_reduction"] > 30
    assert pick("project_narrow", 1.0)["movement_reduction"] > 20
    assert pick("pre_aggregate", 1.0)["movement_reduction"] > 50
    assert pick("select_50pct", 1.0)["movement_reduction"] < 3
    # Speedups: selective filter wins, non-selective barely.
    assert pick("select_1pct", 1.0)["speedup"] > 1.2
    # LIKE on a fast CU is the standout (AQUA).
    assert pick("like_regex", 4.0)["speedup"] > \
        pick("select_50pct", 4.0)["speedup"]
    # Faster CU never hurts.
    for op in ("select_1pct", "like_regex"):
        assert pick(op, 4.0)["speedup"] >= \
            0.95 * pick(op, 0.25)["speedup"]

    # A full stateful sort is rejected at the storage layer (§3.3:
    # "mostly stateless to avoid requiring additional memory") — the
    # CU only offers bounded run generation, so the stateful SortOp
    # has no kernel form there.
    fabric = build_fabric(dataflow_spec())
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(1000, chunk_rows=500))
    sort_query = Query.scan("lineitem").sort(["l_orderkey"])
    placement = pushdown(sort_query.plan, fabric)
    placement.sites[sort_query.plan.node_id] = ["storage.cu"]
    try:
        DataflowEngine(fabric, catalog).execute(sort_query,
                                                placement=placement)
        raise AssertionError("sort on storage CU should be rejected")
    except RuntimeError:
        pass


if __name__ == "__main__":
    report("C7", "Pushdown survey", "reductive ops win", run_c7())
