"""Thin wrapper so the harness runs from the benchmarks directory.

Equivalent to ``PYTHONPATH=src python -m repro bench``::

    python benchmarks/harness.py --smoke --tag local --out .
    python benchmarks/harness.py --smoke --serve --tag local --out .

The wrapper pins the bench directory to its own location, so
experiment ids resolve regardless of the working directory.
"""

import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
os.environ.setdefault("REPRO_BENCH_DIR", _HERE)

from repro.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
