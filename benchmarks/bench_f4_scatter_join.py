"""F4 — NIC-orchestrated scattering pipeline + NIC-resident queries
(Figure 4, §4.4).

Two claims:

1. SmartNICs can partition data on the fly and orchestrate a
   distributed, partitioned hash join "without involvement of the
   CPU" for the exchange — the scattering pipeline of Figure 4.
   We compare a single-node join against a 2-node NIC-scattered join
   (same data, same fabric class) and report elapsed time and where
   the partitioning work ran.

2. "A query returning only a COUNT can be executed directly on the
   NIC ... providing the final results at the end" — we run COUNT(*)
   with the final stage on the receiving NIC and measure the bytes
   that reach host memory.
"""

from common import fmt_bytes, fmt_time, report, rows_approx_equal

from repro import (
    Catalog,
    DataflowEngine,
    Query,
    build_fabric,
    col,
    dataflow_spec,
    make_lineitem,
    make_orders,
    pushdown,
)

LINEITEM_ROWS = 120_000
ORDER_ROWS = 30_000
CHUNK = 8_192

JOIN_QUERY_ROWS_FILTER = 10


def make_catalog():
    catalog = Catalog()
    catalog.register("lineitem",
                     make_lineitem(LINEITEM_ROWS,
                                   orders=ORDER_ROWS, chunk_rows=CHUNK))
    catalog.register("orders", make_orders(ORDER_ROWS, chunk_rows=CHUNK))
    return catalog


def join_query():
    from repro import AggSpec
    return (Query.scan("lineitem")
            .filter(col("l_quantity") > JOIN_QUERY_ROWS_FILTER)
            .join(Query.scan("orders"), "l_orderkey", "o_orderkey")
            .aggregate(["o_priority"],
                       [AggSpec("sum", "l_extendedprice", "rev"),
                        AggSpec("count", alias="n")]))


def run_join(partitions: int) -> dict:
    fabric = build_fabric(dataflow_spec(
        compute_nodes=max(1, partitions)))
    catalog = make_catalog()
    engine = DataflowEngine(fabric, catalog)
    query = join_query()
    placement = pushdown(query.plan, fabric)
    placement.partitions = partitions
    result = engine.execute(query, placement=placement)
    nic_partition_bytes = (
        fabric.trace.counter("device.storage.nic.proc.bytes.partition"))
    cpu_partition_bytes = sum(
        v for k, v in fabric.trace.counters.items()
        if ".cpu.bytes.partition" in k)
    return {
        "partitions": partitions,
        "rows": result.rows,
        "elapsed": result.elapsed,
        "network": result.bytes_on("network"),
        "nic_partition_bytes": nic_partition_bytes,
        "cpu_partition_bytes": cpu_partition_bytes,
        "sorted_rows": result.table.sorted_rows(),
    }


def run_count_on_nic() -> dict:
    fabric = build_fabric(dataflow_spec())
    catalog = make_catalog()
    engine = DataflowEngine(fabric, catalog)
    query = Query.scan("lineitem").count()
    placement = pushdown(query.plan, fabric, count_on_nic=True)
    result = engine.execute(query, placement=placement)
    return {
        "scenario": "count_on_nic",
        "count": int(result.table.column("count")[0]),
        "to_host_bytes": result.bytes_on("pcie") + result.bytes_on("cxl"),
        "network": result.bytes_on("network"),
        "elapsed": result.elapsed,
    }


def run_f4():
    single = run_join(1)
    scattered = run_join(2)
    count = run_count_on_nic()
    return single, scattered, count


def test_f4_scatter_join(benchmark):
    single, scattered, count = benchmark.pedantic(run_f4, rounds=1,
                                                  iterations=1)
    assert rows_approx_equal(single["sorted_rows"],
                             scattered["sorted_rows"])
    rows = []
    for r in (single, scattered):
        rows.append({
            "scenario": f"join_{r['partitions']}node",
            "rows": r["rows"],
            "elapsed": fmt_time(r["elapsed"]),
            "network": fmt_bytes(r["network"]),
            "nic_partitioned": fmt_bytes(r["nic_partition_bytes"]),
            "cpu_partitioned": fmt_bytes(r["cpu_partition_bytes"]),
        })
    rows.append({
        "scenario": "count_on_nic",
        "rows": count["count"],
        "elapsed": fmt_time(count["elapsed"]),
        "network": fmt_bytes(count["network"]),
        "nic_partitioned": "-",
        "cpu_partitioned": fmt_bytes(count["to_host_bytes"]),
    })
    report(
        "F4", "Scattering pipeline: NIC-orchestrated distributed join",
        "the NIC partitions both relations on the fly (CPU does no "
        "exchange work); 2-node execution beats 1-node; a COUNT query "
        "completes on the NIC with only the scalar reaching the host",
        rows,
        notes="cpu_partitioned for count_on_nic column shows bytes "
              "reaching host memory (pcie/cxl)")
    # The exchange ran on the NIC, not the CPU.
    assert scattered["nic_partition_bytes"] > 0
    assert scattered["cpu_partition_bytes"] == 0
    # Two nodes beat one on the same (per-node) hardware.
    assert scattered["elapsed"] < single["elapsed"]
    # COUNT: only a scalar crosses toward host memory.
    assert count["count"] == LINEITEM_ROWS
    assert count["to_host_bytes"] < 1024


if __name__ == "__main__":
    test = type("B", (), {})
    single, scattered, count = run_f4()
    print(single["elapsed"], scattered["elapsed"], count)
