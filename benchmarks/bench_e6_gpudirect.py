"""E6 (extension) — GPUs on the data path and the CPU bypass (§4.2).

The paper: moving data from storage to the GPU through "conventional
network stacks require[s] to go through the CPU with copies of the
data being made along the way and blocking CPU resources", which led
to CPU-bypass (GPUDirect) and to SmartNICs that talk to the GPU
directly.  "Their use in database engines is yet to be explored."

Exploration: a filter + hash-partition workload executed on the GPU
with the stream arriving from remote storage, three ways:

* **host-staged + CPU copies**: NIC -> DRAM -> GPU, the host CPU
  touching every byte (the conventional stack);
* **host-staged DMA**: same route, DMA engines moving the data;
* **GPUDirect**: NIC -> GPU, host memory and CPU untouched.
"""

from common import fmt_bytes, fmt_time, report

from repro import build_fabric, col, dataflow_spec, make_uniform_table
from repro.engine.operators import FilterOp, PartitionOp
from repro.flow import StageGraph

ROWS = 200_000
CHUNK = 16_384


def run_case(mode: str) -> dict:
    gpu_attach = "direct" if mode == "gpudirect" else "host"
    fabric = build_fabric(dataflow_spec(gpu=gpu_attach))
    table = make_uniform_table(ROWS, columns=4, distinct=1000,
                               chunk_rows=CHUNK)
    graph = StageGraph(fabric, name=f"e6_{mode}")
    src = graph.source("scan", table, medium=fabric.storage.medium)
    gpu_stage = graph.sink("gpu", "compute0.gpu",
                           [FilterOp(col("k0") < 500),
                            PartitionOp("k1", 4)])
    cpu_mediator = (fabric.site_device("compute0.cpu")
                    if mode == "host+cpu-copies" else None)
    graph.connect(src, gpu_stage, cpu_mediator=cpu_mediator)
    result = graph.run()
    rows_out = sum(c.num_rows for c in gpu_stage.collected)
    return {
        "mode": mode,
        "rows_out": rows_out,
        "elapsed": result.elapsed,
        "host_dram_bytes": fabric.trace.counter(
            "link.compute0.host.bytes"),
        "cpu_busy": fabric.trace.busy_time("device.compute0.cpu"),
        "gpu_busy": fabric.trace.busy_time("device.compute0.gpu"),
    }


def run_e6() -> list[dict]:
    return [run_case("host+cpu-copies"), run_case("host+dma"),
            run_case("gpudirect")]


def test_e6_gpudirect(benchmark):
    rows = benchmark.pedantic(run_e6, rounds=1, iterations=1)
    report(
        "E6", "Storage -> GPU: conventional stack vs GPUDirect",
        "the conventional stack stages every byte in host DRAM and "
        "burns CPU on copies; DMA removes the CPU but not the double "
        "crossing; GPUDirect removes both — 0 bytes through host "
        "memory, 0 CPU time",
        [dict(r, elapsed=fmt_time(r["elapsed"]),
              host_dram_bytes=fmt_bytes(r["host_dram_bytes"]),
              cpu_busy=fmt_time(r["cpu_busy"]),
              gpu_busy=fmt_time(r["gpu_busy"])) for r in rows])
    copies, dma, direct = rows
    # All three compute the same result.
    assert copies["rows_out"] == dma["rows_out"] == direct["rows_out"]
    # The conventional stack blocks CPU resources; DMA does not.
    assert copies["cpu_busy"] > 0
    assert dma["cpu_busy"] == 0 and direct["cpu_busy"] == 0
    # Host DRAM is crossed unless GPUDirect is used.
    assert copies["host_dram_bytes"] > 0
    assert dma["host_dram_bytes"] > 0
    assert direct["host_dram_bytes"] == 0
    # Each step of bypass is faster.
    assert direct["elapsed"] <= dma["elapsed"] <= copies["elapsed"]


if __name__ == "__main__":
    for r in run_e6():
        print(r)
