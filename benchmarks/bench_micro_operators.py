"""Micro-benchmarks of the *real* operator kernels (host throughput).

Unlike the experiment benches (which report simulated time), these
measure the wall-clock throughput of the vectorized operator
implementations themselves — the part of the library that actually
computes.  Useful for catching performance regressions in the numpy
kernels.
"""

import numpy as np
import pytest

from repro.engine.fusion import fuse_ops
from repro.engine.logical import AggSpec
from repro.engine.operators import (
    FilterOp,
    HashJoinBuild,
    HashJoinProbe,
    JoinState,
    MapOp,
    PartialAggregate,
    PartitionOp,
    ProjectOp,
    SortOp,
)
from repro.relational import (
    DataType,
    Field,
    Schema,
    col,
    lit,
    make_uniform_table,
)

ROWS = 500_000


def big_chunk(distinct=1000, seed=0):
    table = make_uniform_table(ROWS, columns=3, distinct=distinct,
                               seed=seed, chunk_rows=ROWS)
    return table.chunks[0]


def test_micro_filter_throughput(benchmark):
    chunk = big_chunk()
    op = FilterOp((col("k0") < 500) & (col("k1") > 100))
    result = benchmark(op.process, chunk)
    assert result[0].chunk.num_rows > 0
    benchmark.extra_info["rows"] = ROWS


def test_micro_partition_throughput(benchmark):
    chunk = big_chunk()
    op = PartitionOp("k0", 8)
    result = benchmark(op.process, chunk)
    assert sum(e.chunk.num_rows for e in result) == ROWS
    benchmark.extra_info["rows"] = ROWS


def test_micro_partial_aggregate_throughput(benchmark):
    chunk = big_chunk(distinct=100)
    op = PartialAggregate(chunk.schema, ["k0"],
                          [AggSpec("sum", "k1", "s"),
                           AggSpec("count", alias="n")])
    result = benchmark(op.process, chunk)
    assert result[0].chunk.num_rows == len(
        np.unique(chunk.column("k0")))
    benchmark.extra_info["rows"] = ROWS


def test_micro_hash_join_probe_throughput(benchmark):
    build_chunk = big_chunk(distinct=50_000, seed=1)
    probe_chunk = big_chunk(distinct=50_000, seed=2)
    state = JoinState()
    build = HashJoinBuild("k0", state)
    build.process(build_chunk)
    build.finish()
    output = Schema([Field("k0", DataType.INT64),
                     Field("k1", DataType.INT64)])
    probe = HashJoinProbe("k0", state, output, {})
    # Probe a slice so the fan-out stays bounded.
    small_probe = probe_chunk.slice(0, 50_000)
    result = benchmark(probe.process, small_probe)
    assert result and result[0].chunk.num_rows > 0
    benchmark.extra_info["probe_rows"] = 50_000


def _pipeline_ops():
    """A representative filter -> project -> map chain."""
    out_schema = Schema([Field("k0", DataType.INT64),
                         Field("k1", DataType.INT64),
                         Field("score", DataType.FLOAT64)])
    return [
        FilterOp((col("k0") < 500) & (col("k1") > 100)),
        ProjectOp(["k0", "k1"]),
        MapOp({"score": col("k0") * lit(2.0) + col("k1")}, out_schema),
    ]


def _run_unfused(ops, chunk):
    current = chunk
    for op in ops:
        emits = op.process(current)
        if not emits:
            return None
        current = emits[0].chunk
    return current


def _run_fused(fused, chunk):
    emits = fused.process(chunk)
    return emits[0].chunk if emits else None


@pytest.mark.parametrize("chunk_rows", [1_000, 10_000, 100_000])
def test_micro_pipeline_unfused(benchmark, chunk_rows):
    """Reference path: one dispatch and one intermediate per op."""
    chunk = big_chunk().slice(0, chunk_rows)
    ops = _pipeline_ops()
    result = benchmark(_run_unfused, ops, chunk)
    assert result is not None and result.num_rows > 0
    benchmark.extra_info["rows"] = chunk_rows
    benchmark.extra_info["variant"] = "unfused"


@pytest.mark.parametrize("chunk_rows", [1_000, 10_000, 100_000])
def test_micro_pipeline_fused(benchmark, chunk_rows, monkeypatch):
    """Fused closure path: one dispatch per morsel, lazy selection
    between steps.  Compare against ``test_micro_pipeline_unfused``
    at the same chunk size for the fusion speedup, and against
    ``test_micro_pipeline_codegen`` for the codegen speedup."""
    monkeypatch.setenv("REPRO_NO_CODEGEN", "1")
    chunk = big_chunk().slice(0, chunk_rows)
    ops = _pipeline_ops()
    [fused] = fuse_ops(ops)
    reference = _run_unfused(_pipeline_ops(), chunk)
    result = benchmark(_run_fused, fused, chunk)
    assert result.materialize().sorted_rows() == reference.sorted_rows()
    benchmark.extra_info["rows"] = chunk_rows
    benchmark.extra_info["variant"] = "fused"


@pytest.mark.parametrize("chunk_rows", [1_000, 10_000, 100_000])
def test_micro_pipeline_codegen(benchmark, chunk_rows, monkeypatch):
    """Generated-kernel path: the fused chain lowered to one flat
    function (predicates inlined, no per-step closures or chunks)."""
    monkeypatch.delenv("REPRO_NO_CODEGEN", raising=False)
    chunk = big_chunk().slice(0, chunk_rows)
    ops = _pipeline_ops()
    [fused] = fuse_ops(ops)
    reference = _run_unfused(_pipeline_ops(), chunk)
    # Resolve (compile or load) outside the timed region.
    _run_fused(fused, chunk)
    assert fused.kernel_origin in ("compiled", "memory", "disk")
    result = benchmark(_run_fused, fused, chunk)
    assert result.materialize().sorted_rows() == reference.sorted_rows()
    benchmark.extra_info["rows"] = chunk_rows
    benchmark.extra_info["variant"] = "codegen"


STRING_ROWS = 200_000


def _string_chunks():
    """The same lineitem rows, arena-backed vs plain dict-of-arrays.

    The arena chunk carries dictionary codes for its string columns;
    the dict chunk holds the decoded unicode arrays — the layout the
    store used before arenas.  Same values, different physical form.
    """
    from repro.relational import Chunk
    from repro.relational.datagen import make_lineitem
    table = make_lineitem(STRING_ROWS, chunk_rows=STRING_ROWS)
    arena_chunk = table.chunks[0]
    dict_chunk = Chunk(table.schema, dict(arena_chunk.columns))
    assert arena_chunk.dict_codes("l_returnflag") is not None
    assert dict_chunk.dict_codes("l_returnflag") is None
    return arena_chunk, dict_chunk


def _groupby_op(schema):
    return PartialAggregate(schema, ["l_returnflag"],
                            [AggSpec("sum", "l_extendedprice", "rev"),
                             AggSpec("count", alias="n")])


def test_micro_groupby_string_arena(benchmark):
    """Group-by over a dict-encoded string key: unique on int32
    codes, decode only the handful of group labels."""
    chunk, _ = _string_chunks()
    op = _groupby_op(chunk.schema)
    result = benchmark(op.process, chunk)
    assert result[0].chunk.num_rows == 3
    benchmark.extra_info["rows"] = STRING_ROWS
    benchmark.extra_info["variant"] = "arena"


def test_micro_groupby_string_dict(benchmark):
    """Reference: the same group-by over decoded unicode rows."""
    _, chunk = _string_chunks()
    op = _groupby_op(chunk.schema)
    result = benchmark(op.process, chunk)
    assert result[0].chunk.num_rows == 3
    benchmark.extra_info["rows"] = STRING_ROWS
    benchmark.extra_info["variant"] = "dict"


def test_micro_like_filter_arena(benchmark):
    """LIKE over a dict-encoded column: one regex per pool entry,
    verdicts gathered by code."""
    chunk, _ = _string_chunks()
    op = FilterOp(col("l_comment").like("%ab%"))
    result = benchmark(op.process, chunk)
    benchmark.extra_info["rows"] = STRING_ROWS
    benchmark.extra_info["variant"] = "arena"
    benchmark.extra_info["hits"] = (
        result[0].chunk.num_rows if result else 0)


def test_micro_like_filter_dict(benchmark):
    """Reference: the same LIKE, one regex match per row."""
    _, chunk = _string_chunks()
    op = FilterOp(col("l_comment").like("%ab%"))
    result = benchmark(op.process, chunk)
    benchmark.extra_info["rows"] = STRING_ROWS
    benchmark.extra_info["variant"] = "dict"
    benchmark.extra_info["hits"] = (
        result[0].chunk.num_rows if result else 0)


def test_micro_sort_throughput(benchmark):
    chunk = big_chunk()

    def run():
        op = SortOp(["k0", "k1"])
        op.process(chunk)
        return op.finish()

    result = benchmark(run)
    keys = result[0].chunk.column("k0")
    assert (keys[:-1] <= keys[1:]).all()
    benchmark.extra_info["rows"] = ROWS
