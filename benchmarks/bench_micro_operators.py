"""Micro-benchmarks of the *real* operator kernels (host throughput).

Unlike the experiment benches (which report simulated time), these
measure the wall-clock throughput of the vectorized operator
implementations themselves — the part of the library that actually
computes.  Useful for catching performance regressions in the numpy
kernels.
"""

import numpy as np
import pytest

from repro.engine.fusion import fuse_ops
from repro.engine.logical import AggSpec
from repro.engine.operators import (
    FilterOp,
    HashJoinBuild,
    HashJoinProbe,
    JoinState,
    MapOp,
    PartialAggregate,
    PartitionOp,
    ProjectOp,
    SortOp,
)
from repro.relational import (
    DataType,
    Field,
    Schema,
    col,
    lit,
    make_uniform_table,
)

ROWS = 500_000


def big_chunk(distinct=1000, seed=0):
    table = make_uniform_table(ROWS, columns=3, distinct=distinct,
                               seed=seed, chunk_rows=ROWS)
    return table.chunks[0]


def test_micro_filter_throughput(benchmark):
    chunk = big_chunk()
    op = FilterOp((col("k0") < 500) & (col("k1") > 100))
    result = benchmark(op.process, chunk)
    assert result[0].chunk.num_rows > 0
    benchmark.extra_info["rows"] = ROWS


def test_micro_partition_throughput(benchmark):
    chunk = big_chunk()
    op = PartitionOp("k0", 8)
    result = benchmark(op.process, chunk)
    assert sum(e.chunk.num_rows for e in result) == ROWS
    benchmark.extra_info["rows"] = ROWS


def test_micro_partial_aggregate_throughput(benchmark):
    chunk = big_chunk(distinct=100)
    op = PartialAggregate(chunk.schema, ["k0"],
                          [AggSpec("sum", "k1", "s"),
                           AggSpec("count", alias="n")])
    result = benchmark(op.process, chunk)
    assert result[0].chunk.num_rows == len(
        np.unique(chunk.column("k0")))
    benchmark.extra_info["rows"] = ROWS


def test_micro_hash_join_probe_throughput(benchmark):
    build_chunk = big_chunk(distinct=50_000, seed=1)
    probe_chunk = big_chunk(distinct=50_000, seed=2)
    state = JoinState()
    build = HashJoinBuild("k0", state)
    build.process(build_chunk)
    build.finish()
    output = Schema([Field("k0", DataType.INT64),
                     Field("k1", DataType.INT64)])
    probe = HashJoinProbe("k0", state, output, {})
    # Probe a slice so the fan-out stays bounded.
    small_probe = probe_chunk.slice(0, 50_000)
    result = benchmark(probe.process, small_probe)
    assert result and result[0].chunk.num_rows > 0
    benchmark.extra_info["probe_rows"] = 50_000


def _pipeline_ops():
    """A representative filter -> project -> map chain."""
    out_schema = Schema([Field("k0", DataType.INT64),
                         Field("k1", DataType.INT64),
                         Field("score", DataType.FLOAT64)])
    return [
        FilterOp((col("k0") < 500) & (col("k1") > 100)),
        ProjectOp(["k0", "k1"]),
        MapOp({"score": col("k0") * lit(2.0) + col("k1")}, out_schema),
    ]


def _run_unfused(ops, chunk):
    current = chunk
    for op in ops:
        emits = op.process(current)
        if not emits:
            return None
        current = emits[0].chunk
    return current


def _run_fused(fused, chunk):
    emits = fused.process(chunk)
    return emits[0].chunk if emits else None


@pytest.mark.parametrize("chunk_rows", [1_000, 10_000, 100_000])
def test_micro_pipeline_unfused(benchmark, chunk_rows):
    """Reference path: one dispatch and one intermediate per op."""
    chunk = big_chunk().slice(0, chunk_rows)
    ops = _pipeline_ops()
    result = benchmark(_run_unfused, ops, chunk)
    assert result is not None and result.num_rows > 0
    benchmark.extra_info["rows"] = chunk_rows
    benchmark.extra_info["variant"] = "unfused"


@pytest.mark.parametrize("chunk_rows", [1_000, 10_000, 100_000])
def test_micro_pipeline_fused(benchmark, chunk_rows):
    """Fused path: one dispatch per morsel, lazy selection between
    steps.  Compare against ``test_micro_pipeline_unfused`` at the
    same chunk size for the fusion speedup."""
    chunk = big_chunk().slice(0, chunk_rows)
    ops = _pipeline_ops()
    [fused] = fuse_ops(ops)
    reference = _run_unfused(_pipeline_ops(), chunk)
    result = benchmark(_run_fused, fused, chunk)
    assert result.materialize().sorted_rows() == reference.sorted_rows()
    benchmark.extra_info["rows"] = chunk_rows
    benchmark.extra_info["variant"] = "fused"


def test_micro_sort_throughput(benchmark):
    chunk = big_chunk()

    def run():
        op = SortOp(["k0", "k1"])
        op.process(chunk)
        return op.finish()

    result = benchmark(run)
    keys = result[0].chunk.column("k0")
    assert (keys[:-1] <= keys[1:]).all()
    benchmark.extra_info["rows"] = ROWS
