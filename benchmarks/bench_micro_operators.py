"""Micro-benchmarks of the *real* operator kernels (host throughput).

Unlike the experiment benches (which report simulated time), these
measure the wall-clock throughput of the vectorized operator
implementations themselves — the part of the library that actually
computes.  Useful for catching performance regressions in the numpy
kernels.
"""

import numpy as np

from repro.engine.logical import AggSpec
from repro.engine.operators import (
    FilterOp,
    HashJoinBuild,
    HashJoinProbe,
    JoinState,
    PartialAggregate,
    PartitionOp,
    SortOp,
)
from repro.relational import (
    DataType,
    Field,
    Schema,
    col,
    make_uniform_table,
)

ROWS = 500_000


def big_chunk(distinct=1000, seed=0):
    table = make_uniform_table(ROWS, columns=3, distinct=distinct,
                               seed=seed, chunk_rows=ROWS)
    return table.chunks[0]


def test_micro_filter_throughput(benchmark):
    chunk = big_chunk()
    op = FilterOp((col("k0") < 500) & (col("k1") > 100))
    result = benchmark(op.process, chunk)
    assert result[0].chunk.num_rows > 0
    benchmark.extra_info["rows"] = ROWS


def test_micro_partition_throughput(benchmark):
    chunk = big_chunk()
    op = PartitionOp("k0", 8)
    result = benchmark(op.process, chunk)
    assert sum(e.chunk.num_rows for e in result) == ROWS
    benchmark.extra_info["rows"] = ROWS


def test_micro_partial_aggregate_throughput(benchmark):
    chunk = big_chunk(distinct=100)
    op = PartialAggregate(chunk.schema, ["k0"],
                          [AggSpec("sum", "k1", "s"),
                           AggSpec("count", alias="n")])
    result = benchmark(op.process, chunk)
    assert result[0].chunk.num_rows == len(
        np.unique(chunk.column("k0")))
    benchmark.extra_info["rows"] = ROWS


def test_micro_hash_join_probe_throughput(benchmark):
    build_chunk = big_chunk(distinct=50_000, seed=1)
    probe_chunk = big_chunk(distinct=50_000, seed=2)
    state = JoinState()
    build = HashJoinBuild("k0", state)
    build.process(build_chunk)
    build.finish()
    output = Schema([Field("k0", DataType.INT64),
                     Field("k1", DataType.INT64)])
    probe = HashJoinProbe("k0", state, output, {})
    # Probe a slice so the fan-out stays bounded.
    small_probe = probe_chunk.slice(0, 50_000)
    result = benchmark(probe.process, small_probe)
    assert result and result[0].chunk.num_rows > 0
    benchmark.extra_info["probe_rows"] = 50_000


def test_micro_sort_throughput(benchmark):
    chunk = big_chunk()

    def run():
        op = SortOp(["k0", "k1"])
        op.process(chunk)
        return op.finish()

    result = benchmark(run)
    keys = result[0].chunk.column("k0")
    assert (keys[:-1] <= keys[1:]).all()
    benchmark.extra_info["rows"] = ROWS
