"""C2 — the data-center tax and bytes-scanned billing (§2.2, §3.2).

Two parts:

1. **Tax share**: a remote read pipeline with the cloud's mandatory
   serialize/compress/encrypt steps (on the CPU) vs the same pipeline
   without them: how much of the device time the tax consumes, and
   what offloading the tax to the SmartNIC recovers ([3]'s
   "datacenter tax" profiled at ~30% of cycles).

2. **Billing**: QaaS systems charge per byte *scanned*.  An S3-Select
   style pushdown GET scans the same bytes (same bill) but a plain
   GET-then-filter moves everything; with per-byte egress the
   difference shows up in what the user pays for movement.
"""

from common import fmt_bytes, fmt_time, report

from repro.cloud import EgressOp, IngressOp, ObjectStore, TaxConfig
from repro.flow import StageGraph
from repro.hardware import build_fabric, dataflow_spec
from repro.relational import col, make_lineitem

ROWS = 60_000
CHUNK = 4_096


def run_tax_pipeline(taxed: bool, offload: bool) -> dict:
    """Ship a table storage->CPU with/without tax, on CPU or NICs."""
    fabric = build_fabric(dataflow_spec())
    table = make_lineitem(ROWS, chunk_rows=CHUNK)
    graph = StageGraph(fabric, name="c2")
    src = graph.source("scan", table, medium=fabric.storage.medium)
    if taxed:
        egress_site = "storage.nic" if offload else "compute0.cpu"
        ingress_site = "compute0.nic" if offload else "compute0.cpu"
        egress = graph.stage("egress", egress_site,
                             [EgressOp(TaxConfig())])
        ingress = graph.stage("ingress", ingress_site,
                              [IngressOp(TaxConfig())])
        sink = graph.sink("out", "compute0.cpu")
        graph.connect(src, egress)
        graph.connect(egress, ingress)
        graph.connect(ingress, sink)
    else:
        sink = graph.sink("out", "compute0.cpu")
        graph.connect(src, sink)
    result = graph.run()
    assert result.table().num_rows == ROWS
    cpu_busy = fabric.trace.busy_time("device.compute0.cpu")
    tax_kinds = ("serialize", "deserialize", "compress", "decompress",
                 "encrypt", "decrypt")
    cpu_tax_bytes = sum(
        fabric.trace.counter(f"device.compute0.cpu.bytes.{k}")
        for k in tax_kinds)
    return {
        "taxed": taxed,
        "tax_site": ("nic" if offload else "cpu") if taxed else "-",
        "elapsed": result.elapsed,
        "network": fabric.trace.counter("movement.network.bytes"),
        "cpu_busy": cpu_busy,
        "cpu_tax_bytes": cpu_tax_bytes,
    }


def run_billing() -> list[dict]:
    fabric = build_fabric(dataflow_spec())
    table = make_lineitem(ROWS, chunk_rows=CHUNK)
    predicate = col("l_quantity") > 45

    rows = []
    for pushdown in (False, True):
        store = ObjectStore(fabric.storage, fabric.trace)
        keys = store.put_table("lineitem", table)

        def run():
            returned = 0
            for key in keys:
                if pushdown:
                    chunk = yield from store.select(
                        key, predicate=predicate,
                        columns=["l_orderkey", "l_extendedprice"])
                else:
                    chunk = yield from store.get(key)
                returned += chunk.nbytes
            return returned

        returned = fabric.sim.run_process(run())
        rows.append({
            "mode": "select-pushdown" if pushdown else "get-then-filter",
            "bytes_scanned": store.bill.bytes_scanned,
            "scan_dollars": store.bill.dollars,
            "bytes_returned": returned,
        })
    return rows


def run_c2():
    taxes = [run_tax_pipeline(False, False),
             run_tax_pipeline(True, False),
             run_tax_pipeline(True, True)]
    return taxes, run_billing()


def test_c2_datacenter_tax(benchmark):
    taxes, billing = benchmark.pedantic(run_c2, rounds=1, iterations=1)
    report(
        "C2a", "The data-center tax on a remote read path",
        "serialize/compress/encrypt consume a large share of host CPU "
        "time; offloading them to the NICs frees the CPU entirely and "
        "puts the compressed form on the wire",
        [dict(r, elapsed=fmt_time(r["elapsed"]),
              network=fmt_bytes(r["network"]),
              cpu_busy=fmt_time(r["cpu_busy"]),
              cpu_tax_bytes=fmt_bytes(r["cpu_tax_bytes"]))
         for r in taxes])
    report(
        "C2b", "Bytes-scanned billing (QaaS model, §3.2)",
        "the bill is identical — QaaS charges for bytes scanned, not "
        "computation — but pushdown returns a fraction of the bytes, "
        "which is why movement is the quantity to optimize",
        [dict(r, bytes_scanned=fmt_bytes(r["bytes_scanned"]),
              bytes_returned=fmt_bytes(r["bytes_returned"]),
              scan_dollars=f"${r['scan_dollars']:.6f}")
         for r in billing])

    untaxed, cpu_tax, nic_tax = taxes
    # Tax on the CPU consumes real time there.
    assert cpu_tax["cpu_tax_bytes"] > 0
    assert cpu_tax["cpu_busy"] > 5 * untaxed["cpu_busy"]
    # Offloading the tax returns the CPU to the untaxed level.
    assert nic_tax["cpu_tax_bytes"] == 0
    # With egress on the storage-side NIC the wire carries the
    # compressed form; with host-side tax the wire is still raw.
    assert nic_tax["network"] < untaxed["network"]
    assert cpu_tax["network"] >= untaxed["network"]
    # Billing: same scan bill, far fewer bytes returned.
    get, select = billing
    assert abs(get["bytes_scanned"] - select["bytes_scanned"]) < 1
    assert select["bytes_returned"] < get["bytes_returned"] / 10


if __name__ == "__main__":
    taxes, billing = run_c2()
    for r in taxes + billing:
        print(r)
