"""E1 (extension) — zone maps: fetch as little as possible (§2.1).

The paper: engines "try to reduce the amount of data movement by, for
instance, using indexes in conventional engines or zone maps in cloud
native engines to fetch as little data as possible" — but these
mechanisms help only when the physical layout cooperates, and they
are orthogonal to (and compose with) processing along the data path.

This bench runs a selective filter over the same rows stored
*clustered* (sorted on the filter column) and *shuffled*, with zone
maps on/off, on both engines, and finally shows zone maps composing
with storage pushdown: pruning cuts what is read, pushdown cuts what
is shipped.
"""

from common import fmt_bytes, fmt_time, report

import numpy as np

from repro import (
    Catalog,
    DataflowEngine,
    DataType,
    Query,
    Schema,
    Table,
    VolcanoEngine,
    build_fabric,
    col,
    cpu_only,
    dataflow_spec,
    pushdown,
)

ROWS = 200_000
CHUNK = 8_192
CUTOFF = ROWS // 20          # 5% selectivity


def make_table(clustered: bool) -> Table:
    schema = Schema.of(("k0", DataType.INT64), ("k1", DataType.INT64),
                       ("pad", DataType.STRING, 32))
    rng = np.random.default_rng(5)
    k0 = np.arange(ROWS, dtype=np.int64)
    if not clustered:
        k0 = rng.permutation(k0)
    return Table.from_arrays(schema, {
        "k0": k0,
        "k1": rng.integers(0, 1000, size=ROWS),
        "pad": np.full(ROWS, "x" * 32),
    }, chunk_rows=CHUNK)


def run_case(layout: str, engine_name: str, zonemaps: bool,
             push: bool = False) -> dict:
    fabric = build_fabric(dataflow_spec())
    catalog = Catalog()
    catalog.register("t", make_table(clustered=layout == "clustered"))
    query = (Query.scan("t").filter(col("k0") < CUTOFF)
             .project(["k1"]))
    if engine_name == "volcano":
        engine = VolcanoEngine(fabric, catalog, use_zonemaps=zonemaps)
        result = engine.execute(query)
    else:
        engine = DataflowEngine(fabric, catalog, use_zonemaps=zonemaps)
        placement = (pushdown(query.plan, fabric) if push
                     else cpu_only(query.plan, fabric))
        result = engine.execute(query, placement=placement)
    return {
        "layout": layout,
        "engine": engine_name + ("+pushdown" if push else ""),
        "zonemaps": zonemaps,
        "rows": result.rows,
        "storage_read": fabric.trace.counter("movement.storage.bytes"),
        "network": result.bytes_on("network"),
        "pruned_chunks": int(
            fabric.trace.counter("zonemap.pruned_chunks")),
        "elapsed": result.elapsed,
    }


def run_e1() -> list[dict]:
    rows = []
    for layout in ("clustered", "shuffled"):
        for zonemaps in (False, True):
            rows.append(run_case(layout, "volcano", zonemaps))
            rows.append(run_case(layout, "dataflow", zonemaps,
                                 push=True))
    return rows


def test_e1_zonemaps(benchmark):
    rows = benchmark.pedantic(run_e1, rounds=1, iterations=1)
    report(
        "E1", "Zone maps: clustered vs shuffled layout, composed "
        "with pushdown",
        "pruning cuts storage reads ~to selectivity on clustered "
        "data and does nothing on shuffled data; composed with "
        "pushdown, pruning cuts the read and pushdown cuts the "
        "shipment — orthogonal levers on movement",
        [dict(r, storage_read=fmt_bytes(r["storage_read"]),
              network=fmt_bytes(r["network"]),
              elapsed=fmt_time(r["elapsed"])) for r in rows])

    def pick(layout, engine, zonemaps):
        return next(r for r in rows if r["layout"] == layout
                    and r["engine"] == engine
                    and r["zonemaps"] == zonemaps)

    # Same answers everywhere.
    counts = {r["rows"] for r in rows}
    assert counts == {CUTOFF}
    # Clustered: pruning cuts reads by ~the selectivity.
    on = pick("clustered", "volcano", True)
    off = pick("clustered", "volcano", False)
    assert on["storage_read"] < 0.1 * off["storage_read"]
    assert on["pruned_chunks"] > 20
    # Shuffled: pruning is useless.
    shuffled = pick("shuffled", "volcano", True)
    assert shuffled["pruned_chunks"] == 0
    assert shuffled["storage_read"] == pick(
        "shuffled", "volcano", False)["storage_read"]
    # Composition: zonemaps + pushdown beats either alone on both
    # dimensions.
    combo = pick("clustered", "dataflow+pushdown", True)
    push_only = pick("clustered", "dataflow+pushdown", False)
    assert combo["storage_read"] < 0.1 * push_only["storage_read"]
    assert combo["network"] <= push_only["network"]


if __name__ == "__main__":
    for r in run_e1():
        print(r)
