"""F3 — streaming pipeline between NICs: staged group-by (Figure 3, §4.3-4.4).

The paper: "pre-aggregation could be done first at the storage layer,
once more on the sending NIC, and then again on the receiving NIC,
thereby creating a pipeline of group-by stages that can achieve more
than a single accelerator and significantly cut down the amount of
work needed at the final stage of processing."

Sweeps the number of pre-aggregation stages (0 = all on CPU, 1 =
storage CU only, 2 = +sending NIC, 3 = +receiving NIC) and the number
of groups, reporting the rows that reach the CPU's final stage and
the network bytes.
"""

from common import fmt_bytes, fmt_time, report

import numpy as np

from repro import AggSpec, build_fabric, dataflow_spec
from repro.engine.operators import MergeAggregate, PartialAggregate
from repro.flow import StageGraph
from repro.relational import DataType, Field, Schema, make_uniform_table

ROWS = 100_000
CHUNK = 2_048

STAGE_SITES = ["storage.cu", "storage.nic", "compute0.nic"]


def run_case(groups: int, stages: int) -> dict:
    fabric = build_fabric(dataflow_spec())
    table = make_uniform_table(ROWS, columns=2, distinct=groups,
                               chunk_rows=CHUNK)
    schema = table.schema
    specs = [AggSpec("sum", "k1", "total"), AggSpec("count", alias="n")]
    output = Schema([Field("k0", DataType.INT64),
                     Field("total", DataType.FLOAT64),
                     Field("n", DataType.INT64)])

    graph = StageGraph(fabric, name=f"f3_{groups}_{stages}")
    src = graph.source("scan", table, medium=fabric.storage.medium)
    prev = src
    if stages == 0:
        final_ops = [PartialAggregate(schema, ["k0"], specs),
                     MergeAggregate(schema, ["k0"], specs, final=True,
                                    output_schema=output)]
    else:
        partial = graph.stage("partial", STAGE_SITES[0],
                              [PartialAggregate(schema, ["k0"], specs)])
        graph.connect(prev, partial)
        prev = partial
        for i in range(1, stages):
            merge = graph.stage(f"merge{i}", STAGE_SITES[i],
                                [MergeAggregate(schema, ["k0"], specs)])
            graph.connect(prev, merge)
            prev = merge
        final_ops = [MergeAggregate(schema, ["k0"], specs, final=True,
                                    output_schema=output)]
    final = graph.sink("final", "compute0.cpu", final_ops)
    graph.connect(prev, final)
    result = graph.run()

    got = result.table()
    assert got.num_rows == len(np.unique(table.column("k0")))
    return {
        "groups": groups,
        "pre_stages": stages,
        "rows_into_cpu": final.rows_in,
        "network": fabric.trace.counter("movement.network.bytes"),
        "elapsed": result.elapsed,
        "cpu_busy": fabric.trace.busy_time("device.compute0.cpu"),
    }


def run_f3() -> list[dict]:
    rows = []
    for groups in (10, 1_000, 50_000):
        for stages in (0, 1, 2, 3):
            rows.append(run_case(groups, stages))
    return rows


def test_f3_nic_pipeline(benchmark):
    rows = benchmark.pedantic(run_f3, rounds=1, iterations=1)
    pretty = [dict(r, network=fmt_bytes(r["network"]),
                   elapsed=fmt_time(r["elapsed"]),
                   cpu_busy=fmt_time(r["cpu_busy"])) for r in rows]
    report(
        "F3", "Staged pre-aggregation pipeline across NICs",
        "each extra stage cuts rows reaching the CPU's final stage; "
        "gains are large for few groups (near-total reduction at the "
        "first stage) and shrink as groups approach input rows",
        pretty)

    def pick(groups, stages):
        return next(r for r in rows if r["groups"] == groups
                    and r["pre_stages"] == stages)

    # Few groups: one pre-agg stage slashes rows into the CPU.
    assert pick(10, 1)["rows_into_cpu"] < ROWS / 100
    # Extra merge stages never increase CPU-side rows.
    for groups in (10, 1_000, 50_000):
        seq = [pick(groups, s)["rows_into_cpu"] for s in (0, 1, 2, 3)]
        assert seq[1:] == sorted(seq[1:], reverse=True) or \
            all(v <= seq[0] for v in seq[1:])
    # CPU busy time falls once pre-aggregation is offloaded.
    assert pick(1_000, 3)["cpu_busy"] < pick(1_000, 0)["cpu_busy"]


if __name__ == "__main__":
    rows = run_f3()
    report("F3", "Staged pre-aggregation", "stages reduce CPU-side rows",
           [dict(r, network=fmt_bytes(r["network"]),
                 elapsed=fmt_time(r["elapsed"]),
                 cpu_busy=fmt_time(r["cpu_busy"])) for r in rows])
