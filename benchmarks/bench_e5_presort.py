"""E5 (extension) — pre-sorting at the storage layer (§3.3).

The paper: "a certain amount of pre-processing can also be efficiently
done in storage: pre-aggregation, pre-sorting, hashing, etc. although
probably only to parts of the data ... how would operators on the
compute layer side change given these pre-processing stages?"

The answer implemented here: the storage CU sorts each chunk (bounded
state — a run generator), and the compute-side sort *changes from a
full sort into a linear merge of runs*.  This bench sweeps data size
and compares full-CPU sorting against run-generation pushdown,
reporting where the comparison work happens.
"""

from common import fmt_time, report

from repro import (
    Catalog,
    DataflowEngine,
    Query,
    build_fabric,
    dataflow_spec,
    make_uniform_table,
    pushdown,
)

CHUNK = 4_096


def run_case(rows: int, presort: bool) -> dict:
    fabric = build_fabric(dataflow_spec())
    catalog = Catalog()
    catalog.register("t", make_uniform_table(rows, columns=2,
                                             chunk_rows=CHUNK))
    query = Query.scan("t").sort(["k0"])
    placement = pushdown(query.plan, fabric, presort_runs=presort)
    result = DataflowEngine(fabric, catalog).execute(
        query, placement=placement)
    assert result.rows == rows
    return {
        "rows": rows,
        "presort": presort,
        "elapsed": result.elapsed,
        "cpu_busy": fabric.trace.busy_time("device.compute0.cpu"),
        "cu_sort_bytes": fabric.trace.counter(
            "device.storage.cu.bytes.sort"),
        "cpu_sort_bytes": fabric.trace.counter(
            "device.compute0.cpu.bytes.sort"),
        "first_keys": result.table.combined().column(
            "k0")[:5].tolist(),
    }


def run_e5() -> list[dict]:
    out = []
    for rows in (20_000, 80_000, 200_000):
        out.append(run_case(rows, presort=False))
        out.append(run_case(rows, presort=True))
    return out


def test_e5_presort(benchmark):
    rows = benchmark.pedantic(run_e5, rounds=1, iterations=1)
    report(
        "E5", "Pre-sorting pushdown: run generation at storage, "
        "merge at compute",
        "per-chunk run generation is bounded-state (CU-safe); the "
        "compute-side operator changes from an O(n log n) sort into "
        "a linear run merge, cutting host CPU busy time; totals "
        "improve because the comparison work moved to where the data "
        "streamed from",
        [{k: (fmt_time(v) if k in ("elapsed", "cpu_busy") else v)
          for k, v in r.items() if k != "first_keys"} for r in rows])

    def pick(n, presort):
        return next(r for r in rows if r["rows"] == n
                    and r["presort"] == presort)

    for n in (20_000, 80_000, 200_000):
        base, pre = pick(n, False), pick(n, True)
        # Both produce the same sorted prefix.
        assert base["first_keys"] == pre["first_keys"]
        # The comparison work moved off the host CPU.
        assert pre["cpu_sort_bytes"] == 0
        assert pre["cu_sort_bytes"] > 0
        assert base["cpu_sort_bytes"] > 0
        assert pre["cpu_busy"] < base["cpu_busy"]


if __name__ == "__main__":
    for r in run_e5():
        print(r)
