"""E4 (extension) — kernel installation and the offload break-even
(§7.2).

Accelerators lack an ISA; every offloaded stage first installs a
kernel (register writes + logic, §7.2).  That setup cost is invisible
at scale but dominates tiny queries — so offloading has a *break-even
size*, one facet of "what operators make sense to push down".

Sweeps table size for a selective LIKE query (regex kernels install
an automaton, the most expensive kernel in the model) with pushdown
on/off, and reports when offload starts paying.
"""

from common import fmt_time, report

from repro import (
    Catalog,
    DataflowEngine,
    Query,
    build_fabric,
    col,
    cpu_only,
    dataflow_spec,
    make_lineitem,
    pushdown,
)

CHUNK = 2_048


def run_case(rows: int, push: bool) -> dict:
    fabric = build_fabric(dataflow_spec())
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(rows, chunk_rows=CHUNK))
    query = (Query.scan("lineitem")
             .filter(col("l_comment").like("%express%"))
             .project(["l_orderkey"]))
    engine = DataflowEngine(fabric, catalog)
    placement = (pushdown(query.plan, fabric) if push
                 else cpu_only(query.plan, fabric))
    result = engine.execute(query, placement=placement)
    install_time = sum(
        v for k, v in fabric.trace.counters.items()
        if k.endswith("kernel_install_time"))
    return {
        "rows": rows,
        "pushdown": push,
        "elapsed": result.elapsed,
        "kernel_install": install_time,
        "install_share": install_time / result.elapsed,
    }


def run_e4() -> list[dict]:
    out = []
    for rows in (200, 2_000, 20_000, 200_000):
        out.append(run_case(rows, push=False))
        out.append(run_case(rows, push=True))
    return out


def test_e4_kernel_overhead(benchmark):
    rows = benchmark.pedantic(run_e4, rounds=1, iterations=1)
    report(
        "E4", "Kernel installation cost and the offload break-even",
        "programming an ISA-less accelerator costs register writes + "
        "logic installation; the share of runtime it consumes falls "
        "with data size, so offload only pays beyond a break-even "
        "query size",
        [dict(r, elapsed=fmt_time(r["elapsed"]),
              kernel_install=fmt_time(r["kernel_install"]),
              install_share=f"{r['install_share']:.1%}")
         for r in rows])

    def pick(n, push):
        return next(r for r in rows if r["rows"] == n
                    and r["pushdown"] == push)

    # CPU plans install nothing; offloaded plans always install.
    for n in (200, 2_000, 20_000, 200_000):
        assert pick(n, False)["kernel_install"] == 0.0
        assert pick(n, True)["kernel_install"] > 0.0
    # The install share shrinks with size...
    shares = [pick(n, True)["install_share"]
              for n in (200, 2_000, 20_000, 200_000)]
    assert shares == sorted(shares, reverse=True)
    # ...and offload wins at scale even though it pays the setup.
    assert pick(200_000, True)["elapsed"] < \
        pick(200_000, False)["elapsed"]


if __name__ == "__main__":
    for r in run_e4():
        print(r)
