"""F2 — offloading selection/projection to remote storage (Figure 2).

The paper: pushing the filtering stages (projection, selection) down
to disaggregated storage cuts the data that crosses the network to
roughly selectivity x projected-width of the table, optimizing
network utilization.

Sweeps selectivity and projection width with the data-flow engine,
pushdown on (storage CU) vs off (filter/project on the CPU), on the
same network-attached fabric.
"""

from common import fmt_bytes, fmt_time, report

from repro import (
    Catalog,
    DataflowEngine,
    Query,
    build_fabric,
    col,
    cpu_only,
    dataflow_spec,
    make_lineitem,
    pushdown,
)

ROWS = 100_000
CHUNK = 8_192

NARROW = ["l_orderkey", "l_extendedprice"]
WIDE = ["l_orderkey", "l_partkey", "l_quantity", "l_extendedprice",
        "l_discount", "l_shipdate", "l_returnflag", "l_comment"]


def run_case(selectivity: float, columns: list[str],
             push: bool) -> dict:
    fabric = build_fabric(dataflow_spec())
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(ROWS, chunk_rows=CHUNK))
    cutoff = 1 + int(50 * selectivity)
    query = (Query.scan("lineitem")
             .filter(col("l_quantity") <= cutoff)
             .project(columns))
    engine = DataflowEngine(fabric, catalog)
    placement = (pushdown(query.plan, fabric) if push
                 else cpu_only(query.plan, fabric))
    result = engine.execute(query, placement=placement)
    return {
        "selectivity": selectivity,
        "width": "narrow" if columns is NARROW else "wide",
        "pushdown": push,
        "rows": result.rows,
        "network": result.bytes_on("network"),
        "elapsed": result.elapsed,
    }


def run_f2() -> list[dict]:
    rows = []
    for selectivity in (1.0, 0.1, 0.01):
        for columns in (WIDE, NARROW):
            for push in (False, True):
                rows.append(run_case(selectivity, columns, push))
    return rows


def test_f2_storage_pushdown(benchmark):
    rows = benchmark.pedantic(run_f2, rounds=1, iterations=1)
    pretty = [dict(r, network=fmt_bytes(r["network"]),
                   elapsed=fmt_time(r["elapsed"])) for r in rows]
    report(
        "F2", "Selection/projection pushdown to remote storage",
        "network bytes ~ selectivity x projected width; pushdown "
        "gains grow as either shrinks; at selectivity 1.0 and full "
        "width pushdown buys (almost) nothing",
        pretty)

    def pick(sel, width, push):
        return next(r for r in rows if r["selectivity"] == sel
                    and r["width"] == width and r["pushdown"] == push)

    # Selective + narrow: pushdown slashes network traffic >50x.
    assert pick(0.01, "narrow", True)["network"] < \
        pick(0.01, "narrow", False)["network"] / 50
    # Non-selective + wide: pushdown within 25% of no-pushdown.
    assert pick(1.0, "wide", True)["network"] > \
        0.75 * pick(1.0, "wide", False)["network"]
    # Each pushdown case agrees with its baseline on the row count.
    for sel in (1.0, 0.1, 0.01):
        for width in ("narrow", "wide"):
            assert pick(sel, width, True)["rows"] == \
                pick(sel, width, False)["rows"]


if __name__ == "__main__":
    rows = run_f2()
    report("F2", "Selection/projection pushdown",
           "network ~ selectivity x width",
           [dict(r, network=fmt_bytes(r["network"]),
                 elapsed=fmt_time(r["elapsed"])) for r in rows])
