"""C3 — credit-based flow control (§7.1).

The paper: queues along the pipeline connected by DMA engines, with
credit-based flow control — "easy to implement and ... low traffic".
For that design to be sound, three things must hold, and this bench
sweeps the credit window to show them:

* receiver-side buffering is bounded by the window (that is the point
  of credits: bounded queues, no drops);
* beyond a modest window the pipeline reaches the same throughput as
  an unbounded queue — flow control costs (almost) no performance;
* the counter-stream of credit messages is a negligible fraction of
  the data moved.
"""

from common import fmt_bytes, fmt_time, report

from repro.flow import CreditChannel
from repro.hardware import Link
from repro.sim import Simulator, Store, Trace

MESSAGES = 400
CHUNK_BYTES = 16 * 1024.0
LINK_BW = 1e9          # 1 GB/s
LINK_LATENCY = 20e-6   # a long-ish pipe: the bandwidth-delay product
                       # spans several chunks, so the window matters


def run_window(credits: int) -> dict:
    sim = Simulator()
    trace = Trace()
    link = Link(sim, trace, "pipe", bandwidth=LINK_BW,
                latency=LINK_LATENCY, ports=2)
    inbox = Store(sim)
    channel = CreditChannel(sim, trace, "ch", links=[link], inbox=inbox,
                            credits=credits)

    def producer():
        for i in range(MESSAGES):
            yield from channel.send(i, CHUNK_BYTES)
        yield from channel.send_end()

    def consumer():
        while True:
            ch, payload = yield inbox.get()
            ch.ack()
            if payload is None:
                continue
            from repro.flow.credits import END
            if payload is END:
                return
            # Consumer processes at ~link speed.
            yield sim.timeout(CHUNK_BYTES / LINK_BW)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    data_bytes = MESSAGES * CHUNK_BYTES
    control = trace.counter("flow.ch.control_bytes")
    return {
        "credits": credits,
        "elapsed": sim.now,
        "throughput_mib_s": data_bytes / sim.now / (1 << 20),
        "max_outstanding": channel.max_outstanding,
        "buffer_bound": fmt_bytes(credits * CHUNK_BYTES),
        "control_overhead": control / data_bytes,
    }


def run_c3() -> list[dict]:
    return [run_window(c) for c in (1, 2, 4, 8, 16, 64, 1024)]


def test_c3_credit_flow(benchmark):
    rows = benchmark.pedantic(run_c3, rounds=1, iterations=1)
    report(
        "C3", "Credit-based flow control: window sweep",
        "occupancy never exceeds the window; a modest window already "
        "matches unbounded-queue throughput (credits cost ~nothing); "
        "the credit counter-stream is <0.1% of data moved",
        [dict(r, elapsed=fmt_time(r["elapsed"])) for r in rows])
    unbounded = rows[-1]
    for r in rows:
        # Bounded occupancy (the §7.1 invariant).
        assert r["max_outstanding"] <= r["credits"]
        # Low control traffic.
        assert r["control_overhead"] < 0.001
    # Tiny windows throttle the pipe (credits have to round-trip)...
    assert rows[0]["throughput_mib_s"] < \
        0.7 * unbounded["throughput_mib_s"]
    # ...but a modest window recovers full throughput.
    modest = next(r for r in rows if r["credits"] == 8)
    assert modest["throughput_mib_s"] > \
        0.95 * unbounded["throughput_mib_s"]


if __name__ == "__main__":
    report("C3", "Credit window sweep", "bounded queues, ~free",
           [dict(r, elapsed=fmt_time(r["elapsed"]))
            for r in run_c3()])
