"""C4 — interference-aware scheduling (§7.3).

The paper: interference between plans contending for a limited
resource destroys sustained performance; the scheduler should (a)
choose among *data-path plan variants* per query and (b) dynamically
*rate-limit DMA engines*.

Workload: a batch of concurrent LIKE queries — regex can only run on
the storage CU or the host CPU, so a naive scheduler piles everyone
onto the CU.  Policies compared: greedy full-offload, interference-
aware variant choice, and interference + fair-share rate limiting.
Ablation A1: the interference policy restricted to a single variant
(variant choice disabled) degenerates to greedy.
"""

from common import fmt_time, report

import statistics

from repro import Catalog, Query, build_fabric, col, dataflow_spec, \
    make_lineitem
from repro.scheduler import Scheduler

ROWS = 30_000
CHUNK = 4_096
N_QUERIES = 6


def make_env():
    # A modest CU and fast disk/network make the CU the contended
    # resource — the regime where scheduling decisions matter.
    fabric = build_fabric(dataflow_spec(storage_cu_scale=0.3,
                                        ssd_gib_per_s=16,
                                        network_gbits=400))
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(ROWS, chunk_rows=CHUNK))
    return fabric, catalog


def query():
    return (Query.scan("lineitem")
            .filter(col("l_comment").like("%express%"))
            .project(["l_orderkey"]))


def run_policy(policy: str, variants: int = 3) -> dict:
    fabric, catalog = make_env()
    scheduler = Scheduler(fabric, catalog, policy=policy,
                          variants_per_query=variants)
    for i in range(N_QUERIES):
        scheduler.submit(f"q{i}", query(), arrival=i * 1e-4)
    records = scheduler.run()
    latencies = [r.latency for r in records]
    label = policy if variants > 1 else f"{policy} (1 variant, A1)"
    return {
        "policy": label,
        "makespan": scheduler.makespan(),
        "mean_latency": statistics.mean(latencies),
        "p95_latency": sorted(latencies)[int(0.95 * len(latencies))],
        "variants_used": len({r.variant_name for r in records}),
        "_rows": [r.table.sorted_rows() for r in records],
    }


def run_c4() -> list[dict]:
    return [
        run_policy("greedy"),
        run_policy("interference", variants=1),      # ablation A1
        run_policy("interference"),
        run_policy("interference+ratelimit"),
    ]


def test_c4_scheduling(benchmark):
    rows = benchmark.pedantic(run_c4, rounds=1, iterations=1)
    # All policies computed identical answers for identical queries.
    for r in rows:
        assert all(t == rows[0]["_rows"][0] for t in r["_rows"])
    pretty = [
        {"policy": r["policy"], "makespan": fmt_time(r["makespan"]),
         "mean_latency": fmt_time(r["mean_latency"]),
         "p95_latency": fmt_time(r["p95_latency"]),
         "variants_used": r["variants_used"]}
        for r in rows]
    report(
        "C4", "Scheduling under interference: policy comparison",
        "greedy full-offload self-interferes on the shared storage "
        "CU; variant-aware scheduling spreads load across CU and CPU "
        "and cuts makespan/latency; with only one variant (A1) the "
        "interference policy cannot help",
        pretty)

    greedy, ablation, interference, ratelimit = rows
    # A1: one variant == no room to maneuver.
    assert ablation["variants_used"] == 1
    assert ablation["makespan"] >= 0.95 * greedy["makespan"]
    # Variant-aware scheduling beats greedy clearly.
    assert interference["variants_used"] >= 2
    assert interference["makespan"] < 0.8 * greedy["makespan"]
    assert interference["mean_latency"] < greedy["mean_latency"]
    # Rate limiting keeps the win.
    assert ratelimit["makespan"] < 0.9 * greedy["makespan"]


if __name__ == "__main__":
    for r in run_c4():
        r.pop("_rows")
        print(r)
