"""C8 — CXL: hardware coherence + the PCIe bandwidth ladder (§6).

Two claims:

1. **Coherence**: with PCIe/RDMA-era *software* coherence a writer
   must ship invalidation RPCs to every sharer and sharers re-fetch
   whole regions; CXL's ``cxl.cache`` does line-granular hardware
   invalidation with no CPU involvement.  "Cache coherency expands
   the design space ... many active agents can cache and operate on
   the latest version simultaneously."  Sweep the number of sharers
   and compare invalidation traffic and time.

2. **Bandwidth**: each PCIe generation doubles bandwidth ("it does
   not seem we will lack bandwidth improvements"), so the time to
   ship a working set over the host interconnect halves per
   generation — which keeps shrinking the penalty of disaggregation.
"""

from common import fmt_bytes, fmt_time, report

from repro.hardware import (
    CoherenceDomain,
    Device,
    GIB,
    OpKind,
    cxl_link,
    pcie_link,
)
from repro.hardware.interconnect import PCIE_LANE_GBPS
from repro.sim import Simulator, Trace

REGION = 1 << 20       # 1 MiB shared region
WRITES = 20


def run_coherence(mode: str, sharers: int) -> dict:
    sim = Simulator()
    trace = Trace()
    link = cxl_link(sim, trace, "ic") if mode == "hardware" else \
        pcie_link(sim, trace, "ic")
    cpu = Device(sim, trace, "hostcpu",
                 rates={OpKind.GENERIC: 8.0 * GIB})
    domain = CoherenceDomain(sim, trace, "region", link=link, mode=mode,
                             cpu=cpu)
    domain.add_sharer("writer")
    for i in range(sharers):
        sharer_cpu = Device(sim, trace, f"sharer{i}",
                            rates={OpKind.GENERIC: 8.0 * GIB})
        domain.add_sharer(f"agent{i}", sharer_cpu)

    def run():
        for _ in range(WRITES):
            yield from domain.write(REGION, writer="writer")

    sim.run_process(run())
    return {
        "mode": mode,
        "sharers": sharers,
        "coherence_bytes": trace.total("flow.coherence"),
        "elapsed": sim.now,
        "cpu_busy": trace.busy_time("device.hostcpu"),
    }


def run_pcie_ladder(working_set: int = 1 << 30) -> list[dict]:
    rows = []
    for gen in sorted(PCIE_LANE_GBPS):
        sim = Simulator()
        trace = Trace()
        link = pcie_link(sim, trace, f"gen{gen}", generation=gen)

        def run():
            yield from link.transfer(working_set)

        sim.run_process(run())
        rows.append({
            "pcie_gen": gen,
            "bandwidth_gib_s": link.bandwidth / GIB,
            "transfer_1gib": sim.now,
        })
    return rows


def run_c8():
    coherence = [run_coherence(mode, sharers)
                 for sharers in (1, 2, 4, 8)
                 for mode in ("software", "hardware")]
    ladder = run_pcie_ladder()
    return coherence, ladder


def test_c8_cxl_coherence(benchmark):
    coherence, ladder = benchmark.pedantic(run_c8, rounds=1,
                                           iterations=1)
    report(
        "C8a", "Software (PCIe/RDMA) vs hardware (CXL) coherence",
        "software coherence traffic and time grow with sharers "
        "(region re-fetch per sharer + CPU work per RPC); hardware "
        "coherence sends line invalidations with zero CPU time",
        [dict(r, coherence_bytes=fmt_bytes(r["coherence_bytes"]),
              elapsed=fmt_time(r["elapsed"]),
              cpu_busy=fmt_time(r["cpu_busy"])) for r in coherence])
    report(
        "C8b", "The PCIe bandwidth ladder",
        "bandwidth doubles per generation, halving the working-set "
        "transfer time — disaggregation's bandwidth penalty keeps "
        "shrinking",
        [dict(r, transfer_1gib=fmt_time(r["transfer_1gib"]))
         for r in ladder])

    def pick(mode, sharers):
        return next(r for r in coherence if r["mode"] == mode
                    and r["sharers"] == sharers)

    for sharers in (1, 2, 4, 8):
        sw, hw = pick("software", sharers), pick("hardware", sharers)
        assert hw["coherence_bytes"] < sw["coherence_bytes"] / 4
        assert hw["elapsed"] < sw["elapsed"]
        assert hw["cpu_busy"] == 0.0
        assert sw["cpu_busy"] > 0.0
    # Software cost grows with sharers; each PCIe gen ~doubles.
    assert pick("software", 8)["coherence_bytes"] > \
        3 * pick("software", 2)["coherence_bytes"]
    for a, b in zip(ladder, ladder[1:]):
        ratio = a["transfer_1gib"] / b["transfer_1gib"]
        assert 1.8 < ratio < 2.2


if __name__ == "__main__":
    coherence, ladder = run_c8()
    for r in coherence + ladder:
        print(r)
