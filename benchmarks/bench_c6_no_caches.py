"""C6 — "No more data caches" (§7.5).

The paper: cloud engines stack caching layers (SSD/DRAM) over slow
object storage because the CPU-centric model must haul every byte up
before deciding whether it is needed.  The active-pipeline
alternative filters where the data lives, so caching *base tables*
buys little and costs the most expensive resource (DRAM).  Caching
*results* still makes sense.

Workload: a repeated stream of selective queries (80% repeats of a
small query set).  Configurations:

* baseline: CPU-placed pipeline + DRAM base-table cache (hits skip
  the network, like a warm caching layer);
* active pipeline: pushdown placement, no cache;
* active pipeline + result cache.
"""

from common import fmt_bytes, fmt_time, report

import numpy as np

from repro import (
    Catalog,
    DataCache,
    DataflowEngine,
    Query,
    ResultCache,
    build_fabric,
    col,
    cpu_only,
    dataflow_spec,
    make_uniform_table,
    pushdown,
)

ROWS = 60_000
CHUNK = 4_096
N_QUERIES = 20
DISTINCT_QUERIES = 4


def workload():
    rng = np.random.default_rng(3)
    cuts = [5, 10, 15, 20][:DISTINCT_QUERIES]
    picks = rng.integers(0, DISTINCT_QUERIES, size=N_QUERIES)
    return [(Query.scan("t").filter(col("k0") < cuts[p])
             .project(["k1"])) for p in picks]


def make_env():
    fabric = build_fabric(dataflow_spec())
    catalog = Catalog()
    catalog.register("t", make_uniform_table(ROWS, columns=4,
                                             distinct=1000,
                                             chunk_rows=CHUNK))
    return fabric, catalog


def run_base_table_cache() -> dict:
    """CPU-centric pipeline with a DRAM cache of base-table chunks."""
    fabric, catalog = make_env()
    engine = DataflowEngine(fabric, catalog)
    table = catalog.table("t")
    cache = DataCache(capacity_bytes=table.nbytes * 2,
                      name="base", trace=fabric.trace)
    total_elapsed = 0.0
    for i, query in enumerate(workload()):
        placement = cpu_only(query.plan, fabric)
        # Model the caching layer: chunks already cached skip the
        # storage+network path — we charge only the local membus.
        hits = sum(cache.lookup(f"t/{j}") for j, _ in
                   enumerate(table.chunks))
        for j, chunk in enumerate(table.chunks):
            if f"t/{j}" not in cache:
                cache.insert(f"t/{j}", chunk.nbytes)
        if hits == len(table.chunks):
            # Fully cached: run from local memory (no network).
            def local_run():
                for chunk in table.chunks:
                    yield from fabric.transfer(
                        "compute0.dram", "compute0.cpu", chunk.nbytes,
                        flow="cached")
                    device = fabric.site_device("compute0.cpu")
                    yield from device.execute("filter", chunk.nbytes)
            start = fabric.sim.now
            fabric.sim.run_process(local_run())
            total_elapsed += fabric.sim.now - start
        else:
            result = engine.execute(query, placement=placement,
                                    name=f"c6base{i}")
            total_elapsed += result.elapsed
    return {
        "config": "cpu-pipeline + base-table cache",
        "network": fabric.trace.counter("movement.network.bytes"),
        "dram_for_cache": cache.used_bytes,
        "elapsed_total": total_elapsed,
    }


def run_active_pipeline(result_cache: bool) -> dict:
    fabric, catalog = make_env()
    engine = DataflowEngine(fabric, catalog)
    cache = ResultCache(capacity_bytes=16 << 20) if result_cache else None
    total_elapsed = 0.0
    dram_for_results = 0
    for i, query in enumerate(workload()):
        if cache is not None:
            cached = cache.get(query.plan)
            if cached is not None:
                continue  # free hit: the answer is already local
        result = engine.execute(
            query, placement=pushdown(query.plan, fabric),
            name=f"c6act{i}")
        total_elapsed += result.elapsed
        if cache is not None:
            cache.put(query.plan, result.table)
            dram_for_results = cache.used_bytes
    name = "active pipeline" + (" + result cache" if result_cache
                                else "")
    return {
        "config": name,
        "network": fabric.trace.counter("movement.network.bytes"),
        "dram_for_cache": dram_for_results,
        "elapsed_total": total_elapsed,
    }


def run_c6():
    return [run_base_table_cache(),
            run_active_pipeline(False),
            run_active_pipeline(True)]


def test_c6_no_caches(benchmark):
    rows = benchmark.pedantic(run_c6, rounds=1, iterations=1)
    report(
        "C6", "Base-table caching vs the active pipeline",
        "the caching layer needs O(table) DRAM to kill its network "
        "traffic; the active pipeline gets comparable totals with "
        "zero cache DRAM by filtering at storage; result caching on "
        "top is nearly free and removes repeat work entirely",
        [dict(r, network=fmt_bytes(r["network"]),
              dram_for_cache=fmt_bytes(r["dram_for_cache"]),
              elapsed_total=fmt_time(r["elapsed_total"]))
         for r in rows])
    base, active, cached = rows
    # The caching layer holds the whole table in DRAM...
    assert base["dram_for_cache"] > 0.9 * (ROWS * 32)
    # ...while the pipeline needs none and moves far less data.
    assert active["dram_for_cache"] == 0
    assert active["network"] < base["network"] / 2
    # Result caching keeps a sliver of DRAM and cuts repeat work.
    assert cached["dram_for_cache"] < base["dram_for_cache"] / 10
    assert cached["elapsed_total"] < active["elapsed_total"] / 2


if __name__ == "__main__":
    for r in run_c6():
        print(r)
