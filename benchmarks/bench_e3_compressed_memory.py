"""E3 (extension) — compressed data in memory, decompressed on demand
(§5.4).

The paper: "it would be interesting if the possibility existed of
keeping data in memory compressed and having the accelerator
decompress on demand. Such a set of functional units would allow the
rest of the pipeline (the cores, aided by the caches) to see only
filtered and uncompressed data."

Three residency/processing configurations over the same (really
zlib-compressed) table:

* raw in DRAM, CPU filters — maximal DRAM footprint, full-table
  memory traffic;
* compressed in DRAM, CPU decompresses+filters — smaller footprint,
  but the cores burn time on decompression and the caches still see
  every raw byte;
* compressed in DRAM, near-memory unit decompresses+filters — same
  small footprint, and only surviving rows cross toward the caches.
"""

from common import fmt_bytes, fmt_time, report

from repro.hardware import CPUSocket, NearMemoryAccelerator, OpKind
from repro.relational import col, compress_chunk, make_uniform_table
from repro.sim import Simulator, Trace

ROWS = 300_000
DISTINCT = 40          # low-cardinality columns compress well
SELECTIVITY_CUTOFF = 2  # k0 < 2 -> ~5% of rows


def make_payload():
    table = make_uniform_table(ROWS, columns=4, distinct=DISTINCT,
                               chunk_rows=ROWS)
    chunk = table.chunks[0]
    compressed = compress_chunk(chunk)
    predicate = col("k0") < SELECTIVITY_CUTOFF
    survivors = chunk.filter(predicate.evaluate(chunk))
    return chunk, compressed, survivors


def run_config(config: str) -> dict:
    chunk, compressed, survivors = make_payload()
    sim = Simulator()
    trace = Trace()
    socket = CPUSocket(sim, trace, "s", cores=8, controllers=2)
    accel = NearMemoryAccelerator(sim, trace, "accel")
    raw, packed, kept = (float(chunk.nbytes),
                         float(compressed.nbytes),
                         float(survivors.nbytes))

    def raw_cpu():
        yield from socket.memory_read(raw, stream_id=0)
        yield from socket.core(0).execute(OpKind.FILTER, raw)

    def compressed_cpu():
        yield from socket.memory_read(packed, stream_id=0)
        yield from socket.core(0).execute(OpKind.DECOMPRESS, packed)
        # The caches then see the full raw stream.
        socket.caches.charge_stream(raw)
        yield from socket.core(0).execute(OpKind.FILTER, raw)

    def compressed_nearmem():
        yield from accel.execute(OpKind.DECOMPRESS, packed)
        yield from accel.execute(OpKind.FILTER, raw)
        # Only survivors move toward the caches and the core.
        yield from socket.memory_read(kept, stream_id=0)

    runner = {"raw+cpu": raw_cpu,
              "compressed+cpu": compressed_cpu,
              "compressed+nearmem": compressed_nearmem}[config]
    sim.run_process(runner())
    return {
        "config": config,
        "dram_resident": packed if config.startswith("compressed")
        else raw,
        "membus_bytes": trace.counter("movement.membus.bytes"),
        "cache_bytes": trace.counter("movement.cache.bytes"),
        "elapsed": sim.now,
        "compression_ratio": compressed.ratio,
    }


def run_e3() -> list[dict]:
    return [run_config(c) for c in
            ("raw+cpu", "compressed+cpu", "compressed+nearmem")]


def test_e3_compressed_memory(benchmark):
    rows = benchmark.pedantic(run_e3, rounds=1, iterations=1)
    report(
        "E3", "Compressed-in-memory with on-demand decompression",
        "compression shrinks DRAM residency by the ratio; doing the "
        "decompression on the CPU trades that for core time and full "
        "cache traffic; the near-memory unit keeps the small "
        "footprint AND sends only filtered, uncompressed survivors "
        "up the hierarchy",
        [dict(r, dram_resident=fmt_bytes(r["dram_resident"]),
              membus_bytes=fmt_bytes(r["membus_bytes"]),
              cache_bytes=fmt_bytes(r["cache_bytes"]),
              elapsed=fmt_time(r["elapsed"]),
              compression_ratio=f"{r['compression_ratio']:.1f}x")
         for r in rows])
    raw, cpu, nearmem = rows
    ratio = raw["compression_ratio"]
    assert ratio > 2
    # Residency shrinks by the (real) compression ratio.
    assert cpu["dram_resident"] < raw["dram_resident"] / 2
    assert nearmem["dram_resident"] == cpu["dram_resident"]
    # CPU decompression still floods the caches with raw bytes.
    assert cpu["cache_bytes"] >= raw["cache_bytes"]
    # The near-memory unit sends only survivors upward.
    assert nearmem["membus_bytes"] < 0.1 * raw["membus_bytes"]
    assert nearmem["cache_bytes"] < 0.1 * cpu["cache_bytes"]
    assert nearmem["elapsed"] < cpu["elapsed"]


if __name__ == "__main__":
    for r in run_e3():
        print(r)
