"""C5 — "No more buffer pools" (§7.4).

The paper: the buffer pool anchors the engine to a machine — its DRAM
footprint is O(working set) — whereas a streaming data-flow engine
needs only O(pipeline) memory on the compute node, making compute
stateless and elastic.

Sweeps the table size.  The baseline is the Volcano engine reading
through a buffer pool sized to hold the hot set (the classic
configuration); the data-flow engine runs the same aggregation with
its bounded channel buffers.  Reported compute-node memory:
buffer-pool peak residency vs the peak of (in-flight channel chunks +
final operator state).
"""

from common import fmt_bytes, fmt_time, report

from repro import (
    AggSpec,
    BufferPool,
    Catalog,
    DataflowEngine,
    Query,
    VolcanoEngine,
    build_fabric,
    col,
    dataflow_spec,
    make_uniform_table,
)

CHUNK = 4_096
CREDITS = 8


def query():
    return (Query.scan("t")
            .filter(col("k0") < 500)
            .aggregate(["k1"], [AggSpec("count", alias="n")]))


def run_size(rows: int) -> dict:
    table = make_uniform_table(rows, columns=4, distinct=1000,
                               chunk_rows=CHUNK)

    # Volcano + buffer pool sized to the table (the "keep it all in
    # memory" doctrine).
    fabric_v = build_fabric(dataflow_spec())
    catalog_v = Catalog()
    catalog_v.register("t", table)
    pool = BufferPool(fabric_v, capacity_bytes=table.nbytes * 2,
                      page_bytes=1 << 20)
    volcano = VolcanoEngine(fabric_v, catalog_v, bufferpool=pool)
    res_v = volcano.execute(query())

    # Data-flow engine: bounded channels, state only in the final agg.
    fabric_d = build_fabric(dataflow_spec())
    catalog_d = Catalog()
    catalog_d.register("t", table)
    engine = DataflowEngine(fabric_d, catalog_d,
                            default_credits=CREDITS)
    res_d = engine.execute(query())
    # Pipeline memory bound: inflight chunks x chunk bytes + result
    # state held by the final aggregate.
    chunk_bytes = table.chunks[0].nbytes
    inflight_peak = max(
        (fabric_d.trace.peak(name) for name in fabric_d.trace.series
         if name.startswith("stage.") and name.endswith(".inbox")),
        default=0.0)
    dataflow_peak = (CREDITS + inflight_peak) * chunk_bytes \
        + res_d.table.nbytes

    assert res_v.table.sorted_rows() == res_d.table.sorted_rows()
    return {
        "rows": rows,
        "table": table.nbytes,
        "bufferpool_peak": pool.peak_bytes,
        "dataflow_peak": dataflow_peak,
        "ratio": pool.peak_bytes / dataflow_peak,
        "volcano_elapsed": res_v.elapsed,
        "dataflow_elapsed": res_d.elapsed,
    }


def run_c5() -> list[dict]:
    return [run_size(n) for n in (20_000, 80_000, 320_000)]


def test_c5_no_bufferpool(benchmark):
    rows = benchmark.pedantic(run_c5, rounds=1, iterations=1)
    report(
        "C5", "Compute-node memory: buffer pool vs streaming pipeline",
        "buffer-pool residency grows with the data (O(table)); the "
        "data-flow engine's compute memory stays O(pipeline) — flat — "
        "so the gap widens with scale and the compute layer is "
        "effectively stateless (elastic)",
        [dict(r, table=fmt_bytes(r["table"]),
              bufferpool_peak=fmt_bytes(r["bufferpool_peak"]),
              dataflow_peak=fmt_bytes(r["dataflow_peak"]),
              volcano_elapsed=fmt_time(r["volcano_elapsed"]),
              dataflow_elapsed=fmt_time(r["dataflow_elapsed"]))
         for r in rows])
    # Buffer pool grows ~linearly with the table.
    assert rows[-1]["bufferpool_peak"] > 10 * rows[0]["bufferpool_peak"]
    # Pipeline memory stays flat (within 2x across a 16x size sweep).
    assert rows[-1]["dataflow_peak"] < 2 * rows[0]["dataflow_peak"]
    # And the gap widens.
    assert rows[-1]["ratio"] > 4 * rows[0]["ratio"]


if __name__ == "__main__":
    for r in run_c5():
        print(r)
