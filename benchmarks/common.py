"""Shared helpers for the experiment benchmarks.

Every experiment (F1–F6 architecture scenarios, C1–C8 claims; see
DESIGN.md) prints a table of the series the paper's argument predicts
and saves it under ``benchmarks/results/`` so EXPERIMENTS.md can
record paper-vs-measured.
"""

from __future__ import annotations

import os
from typing import Optional

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")

KIB = 1024.0
MIB = 1024.0 ** 2
GIB = 1024.0 ** 3


def rows_approx_equal(a: list[tuple], b: list[tuple],
                      rel: float = 1e-9) -> bool:
    """Order-insensitive row comparison tolerant of float summation
    order (different plans add floats in different orders)."""
    if len(a) != len(b):
        return False
    for row_a, row_b in zip(sorted(a), sorted(b)):
        if len(row_a) != len(row_b):
            return False
        for va, vb in zip(row_a, row_b):
            if isinstance(va, float) or isinstance(vb, float):
                scale = max(abs(va), abs(vb), 1.0)
                if abs(va - vb) > rel * scale:
                    return False
            elif va != vb:
                return False
    return True


def fmt_bytes(n: float) -> str:
    """Human-readable byte count."""
    if n >= GIB:
        return f"{n / GIB:.2f}GiB"
    if n >= MIB:
        return f"{n / MIB:.2f}MiB"
    if n >= KIB:
        return f"{n / KIB:.1f}KiB"
    return f"{n:.0f}B"


def fmt_time(seconds: float) -> str:
    """Human-readable (simulated) duration."""
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.1f}us"
    return f"{seconds * 1e9:.0f}ns"


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows: list[dict], columns: Optional[list[str]] = None
                 ) -> str:
    """Plain-text aligned table from dict rows."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_cell(row.get(col, "")) for col in columns]
             for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in cells))
              for i, col in enumerate(columns)]
    header = "  ".join(col.ljust(widths[i])
                       for i, col in enumerate(columns))
    divider = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(r[i].ljust(widths[i])
                               for i in range(len(columns)))
                     for r in cells)
    return f"{header}\n{divider}\n{body}"


def report(exp_id: str, title: str, claim: str, rows: list[dict],
           columns: Optional[list[str]] = None, notes: str = "") -> str:
    """Print one experiment's result table.

    The canonical machine-readable record is the harness's
    ``BENCH_<tag>.json`` (``repro bench``); the legacy per-experiment
    text files are only written when ``REPRO_RESULTS_TXT=1`` is set.
    """
    table = format_table(rows, columns)
    text = (f"== {exp_id}: {title} ==\n"
            f"paper: {claim}\n\n{table}\n")
    if notes:
        text += f"\nnotes: {notes}\n"
    print("\n" + text)
    if os.environ.get("REPRO_RESULTS_TXT") == "1":
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{exp_id.lower()}.txt")
        with open(path, "w") as handle:
            handle.write(text)
    return text
