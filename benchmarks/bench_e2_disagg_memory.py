"""E2 (extension) — operator offloading to disaggregated memory (§5.3).

The paper cites Farview: "an accelerator can very well be coupled with
one or both the source and target NICs ... offload query operators on
the bottom part of query plans to NIC-based accelerators. By starting
to execute a query plan near memory, the portion ... that needs to be
processed by the CPU is greatly reduced."

Here a working table lives in a *disaggregated memory node* (not in
storage).  The bottom of the plan — filter + partial aggregation —
runs either on the compute node's CPU (every byte crosses the network)
or on the memory node's near-memory accelerator (only reduced state
crosses).  Sweeps filter selectivity.
"""

from common import fmt_bytes, fmt_time, report

from repro import AggSpec, build_fabric, dataflow_spec
from repro.engine.operators import (
    FilterOp,
    MergeAggregate,
    PartialAggregate,
)
from repro.flow import StageGraph
from repro.relational import (
    DataType,
    Field,
    Schema,
    col,
    make_uniform_table,
)

ROWS = 150_000
CHUNK = 8_192
DISTINCT = 1_000
GROUPS = 50


def run_case(selectivity: float, offload: bool) -> dict:
    fabric = build_fabric(dataflow_spec(disagg_memory=True))
    table = make_uniform_table(ROWS, columns=3, distinct=DISTINCT,
                               chunk_rows=CHUNK)
    fabric.disagg.dram.allocate(table.nbytes)
    cutoff = int(DISTINCT * selectivity)
    predicate = col("k0") < cutoff
    schema = table.schema
    specs = [AggSpec("sum", "k2", "total"), AggSpec("count", alias="n")]
    output = Schema([Field("k1", DataType.INT64),
                     Field("total", DataType.FLOAT64),
                     Field("n", DataType.INT64)])
    group_pred = col("k1") < GROUPS   # keep group count fixed at 50

    graph = StageGraph(fabric, name=f"e2_{selectivity}_{offload}")
    src = graph.source("resident", table, location="memnode.node")
    bottom_site = "memnode.accel" if offload else "compute0.cpu"
    bottom = graph.stage(
        "bottom", bottom_site,
        [FilterOp(predicate & group_pred),
         PartialAggregate(schema, ["k1"], specs)])
    final = graph.sink(
        "final", "compute0.cpu",
        [MergeAggregate(schema, ["k1"], specs, final=True,
                        output_schema=output)])
    graph.connect(src, bottom)
    graph.connect(bottom, final)
    result = graph.run()
    return {
        "selectivity": selectivity,
        "bottom": "memnode.accel" if offload else "compute0.cpu",
        "groups": result.table().num_rows,
        "network": fabric.trace.counter("movement.network.bytes"),
        "elapsed": result.elapsed,
        "rows": result.table().sorted_rows(),
    }


def run_e2() -> list[dict]:
    out = []
    for selectivity in (1.0, 0.1, 0.01):
        out.append(run_case(selectivity, offload=False))
        out.append(run_case(selectivity, offload=True))
    return out


def test_e2_disagg_memory(benchmark):
    rows = benchmark.pedantic(run_e2, rounds=1, iterations=1)
    report(
        "E2", "Offloading the bottom of the plan to disaggregated "
        "memory (Farview-style)",
        "with the bottom stages near the remote memory, only partial "
        "aggregate state crosses the network — bytes shrink by orders "
        "of magnitude and the CPU's share of the plan collapses; "
        "pulling to the CPU moves the full table regardless of "
        "selectivity",
        [{k: (fmt_bytes(v) if k == "network" else
              fmt_time(v) if k == "elapsed" else v)
          for k, v in r.items() if k != "rows"} for r in rows])

    def pick(sel, bottom):
        return next(r for r in rows if r["selectivity"] == sel
                    and r["bottom"] == bottom)

    for sel in (1.0, 0.1, 0.01):
        cpu = pick(sel, "compute0.cpu")
        accel = pick(sel, "memnode.accel")
        assert cpu["rows"] == accel["rows"]
        assert accel["network"] < cpu["network"] / 20
        assert accel["elapsed"] < cpu["elapsed"]
    # CPU-side network is selectivity-independent (full table moves).
    cpu_nets = {pick(s, "compute0.cpu")["network"]
                for s in (1.0, 0.1, 0.01)}
    assert len(cpu_nets) == 1


if __name__ == "__main__":
    for r in run_e2():
        r.pop("rows")
        print(r)
