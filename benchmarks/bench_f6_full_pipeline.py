"""F6 — the full data-flow pipeline, storage to cores (Figure 6, §7).

The capstone comparison on one end-to-end analytic query
(filter + join + group-by):

* Volcano on the conventional local-storage node (Figure 1);
* Volcano on the disaggregated fabric (the lift-and-shift cloud
  deployment the paper says is obsolete);
* data-flow engine, CPU-only placement (push-based but no offload);
* data-flow engine, optimizer-chosen placement (Figure 6);
* data-flow engine, optimizer placement but CPU-mediated copies
  instead of DMA engines (ablation A2, §7.1).

All five produce identical rows; movement and elapsed time differ.
"""

from common import fmt_bytes, fmt_time, report

from repro import (
    AggSpec,
    Catalog,
    DataflowEngine,
    Optimizer,
    Query,
    VolcanoEngine,
    build_fabric,
    col,
    conventional_spec,
    cpu_only,
    dataflow_spec,
    make_lineitem,
    make_orders,
)

LINEITEM_ROWS = 120_000
ORDER_ROWS = 30_000
CHUNK = 8_192


def make_catalog():
    catalog = Catalog()
    catalog.register(
        "lineitem", make_lineitem(LINEITEM_ROWS, orders=ORDER_ROWS,
                                  chunk_rows=CHUNK))
    catalog.register("orders", make_orders(ORDER_ROWS,
                                           chunk_rows=CHUNK))
    return catalog


def query():
    return (Query.scan("lineitem")
            .filter(col("l_shipdate").between(8500, 8800))
            .join(Query.scan("orders").filter(col("o_priority") <= 2),
                  "l_orderkey", "o_orderkey")
            .aggregate(["o_priority"],
                       [AggSpec("sum", "l_extendedprice", "rev"),
                        AggSpec("count", alias="n")]))


def summarize(name, result, fabric):
    return {
        "plan": name,
        "rows": result.rows,
        "elapsed": result.elapsed,
        "network": result.bytes_on("network"),
        "host_ic": result.bytes_on("pcie") + result.bytes_on("cxl"),
        "membus": result.bytes_on("membus"),
        "total_moved": result.total_bytes_moved,
        "_rows": result.table.sorted_rows(),
    }


def run_f6():
    out = []

    fabric = build_fabric(conventional_spec())
    res = VolcanoEngine(fabric, make_catalog()).execute(query())
    out.append(summarize("volcano/local-disk", res, fabric))

    fabric = build_fabric(dataflow_spec())
    res = VolcanoEngine(fabric, make_catalog()).execute(query())
    out.append(summarize("volcano/disaggregated", res, fabric))

    fabric = build_fabric(dataflow_spec())
    catalog = make_catalog()
    q = query()
    res = DataflowEngine(fabric, catalog).execute(
        q, placement=cpu_only(q.plan, fabric))
    out.append(summarize("dataflow/cpu-only", res, fabric))

    fabric = build_fabric(dataflow_spec())
    catalog = make_catalog()
    q = query()
    best = Optimizer(fabric, catalog).optimize(q)
    res = DataflowEngine(fabric, catalog).execute(
        q, placement=best.placement)
    out.append(summarize("dataflow/optimized", res, fabric))

    fabric = build_fabric(dataflow_spec())
    catalog = make_catalog()
    q = query()
    best = Optimizer(fabric, catalog).optimize(q)
    res = DataflowEngine(fabric, catalog,
                         cpu_mediated=True).execute(
        q, placement=best.placement)
    out.append(summarize("dataflow/optimized+cpu-copies", res, fabric))
    return out


def test_f6_full_pipeline(benchmark):
    rows = benchmark.pedantic(run_f6, rounds=1, iterations=1)
    # Correctness oracle across all five configurations.
    for r in rows[1:]:
        assert r["_rows"] == rows[0]["_rows"]
    pretty = [
        {"plan": r["plan"], "rows": r["rows"],
         "elapsed": fmt_time(r["elapsed"]),
         "network": fmt_bytes(r["network"]),
         "host_ic": fmt_bytes(r["host_ic"]),
         "membus": fmt_bytes(r["membus"]),
         "total_moved": fmt_bytes(r["total_moved"])}
        for r in rows]
    report(
        "F6", "Full pipeline: storage -> NIC -> interconnect -> "
        "near-memory -> cores",
        "the placed data-flow pipeline moves a fraction of the bytes "
        "of any CPU-centric configuration and finishes faster; "
        "CPU-mediated copies (no DMA) erode the advantage (A2)",
        pretty)

    by = {r["plan"]: r for r in rows}
    optimized = by["dataflow/optimized"]
    # The optimized pipeline moves far less over the network...
    assert optimized["network"] < \
        by["volcano/disaggregated"]["network"] / 4
    # ...and less in total than any CPU-centric plan.
    for name in ("volcano/disaggregated", "dataflow/cpu-only"):
        assert optimized["total_moved"] < by[name]["total_moved"]
        assert optimized["elapsed"] < by[name]["elapsed"]
    # A2: removing the DMA engines makes the same placement slower.
    assert by["dataflow/optimized+cpu-copies"]["elapsed"] > \
        optimized["elapsed"]


if __name__ == "__main__":
    for r in run_f6():
        r.pop("_rows")
        print(r)
