"""F5 — processing near memory (Figure 5, §5.2–§5.4).

Three of the paper's proposed near-memory functional units, each
compared against the CPU doing the same work over the memory bus:

* **filter + decompress**: the accelerator filters (and decompresses)
  on the memory->cache path so the cores "see only filtered and
  uncompressed data";
* **pointer chasing**: a traversal unit walks a hierarchical block
  structure inside the memory system and sends only the leaf up;
* **list maintenance**: GC-style free-list cleanup runs entirely near
  memory.
"""

from common import fmt_bytes, fmt_time, report

import numpy as np

from repro.hardware import (
    CPUSocket,
    FreeList,
    HierarchicalBlockStore,
    LRUCache,
    NearMemoryAccelerator,
    OpKind,
    chase_near_memory,
    chase_on_cpu,
    gc_near_memory,
    gc_on_cpu,
)
from repro.sim import Simulator, Trace


def env():
    sim = Simulator()
    trace = Trace()
    socket = CPUSocket(sim, trace, "s", cores=8, controllers=2)
    accel = NearMemoryAccelerator(sim, trace, "accel")
    return sim, trace, socket, accel


# ---------------------------------------------------------------------------
# Filter on the memory -> cache path
# ---------------------------------------------------------------------------

def run_filter(selectivity: float, on_accel: bool,
               nbytes: int = 64 << 20) -> dict:
    sim, trace, socket, accel = env()
    kept = nbytes * selectivity

    def cpu_side():
        # Everything crosses the controller and caches, then the core
        # filters in software.
        yield from socket.memory_read(nbytes, stream_id=0)
        yield from socket.core(0).execute(OpKind.FILTER, nbytes)

    def accel_side():
        # The accelerator filters at memory bandwidth; only survivors
        # cross toward the caches/core.
        yield from accel.execute(OpKind.FILTER, nbytes)
        yield from socket.memory_read(kept, stream_id=0)

    sim.run_process(accel_side() if on_accel else cpu_side())
    return {
        "selectivity": selectivity,
        "site": "near-memory" if on_accel else "cpu",
        "membus_bytes": trace.counter("movement.membus.bytes"),
        "cache_bytes": trace.counter("movement.cache.bytes"),
        "elapsed": sim.now,
    }


# ---------------------------------------------------------------------------
# Pointer chasing
# ---------------------------------------------------------------------------

def run_chase(n_keys: int, lookups: int = 200, cached: bool = False
              ) -> dict:
    keys = list(range(0, n_keys * 2, 2))
    store = HierarchicalBlockStore(keys, fanout=16, leaf_capacity=64)
    rng = np.random.default_rng(42)
    probes = rng.integers(0, n_keys * 2, size=lookups).tolist()

    sim, trace, socket, _accel = env()
    cache = LRUCache(capacity_blocks=256) if cached else None

    def cpu_run():
        for key in probes:
            yield from chase_on_cpu(store, key, socket, cache=cache)

    sim.run_process(cpu_run())
    cpu = {"membus": trace.counter("movement.membus.bytes"),
           "elapsed": sim.now}

    sim2, trace2, socket2, accel2 = env()

    def nm_run():
        for key in probes:
            yield from chase_near_memory(store, key, accel2, socket2)

    sim2.run_process(nm_run())
    near = {"membus": trace2.counter("movement.membus.bytes"),
            "elapsed": sim2.now}
    return {
        "keys": n_keys,
        "height": store.height,
        "llc_cached": cached,
        "cpu_membus": cpu["membus"],
        "nm_membus": near["membus"],
        "cpu_elapsed": cpu["elapsed"],
        "nm_elapsed": near["elapsed"],
    }


# ---------------------------------------------------------------------------
# List maintenance (GC)
# ---------------------------------------------------------------------------

def run_gc(nodes: int = 200_000) -> dict:
    dead = set(range(0, nodes, 10))

    sim, trace, socket, _ = env()
    removed_cpu = sim.run_process(
        gc_on_cpu(FreeList(list(range(nodes))), set(dead), socket))
    cpu = {"membus": trace.counter("movement.membus.bytes"),
           "elapsed": sim.now}

    sim2, trace2, _s2, accel2 = env()
    removed_nm = sim2.run_process(
        gc_near_memory(FreeList(list(range(nodes))), set(dead), accel2,
                       trace2))
    assert removed_cpu == removed_nm
    return {
        "scenario": "gc",
        "nodes": nodes,
        "cpu_membus": cpu["membus"],
        "nm_membus": trace2.counter("movement.membus.bytes"),
        "cpu_elapsed": cpu["elapsed"],
        "nm_elapsed": sim2.now,
    }


def run_f5():
    filters = [run_filter(s, on) for s in (1.0, 0.1, 0.01)
               for on in (False, True)]
    chases = [run_chase(n) for n in (10_000, 1_000_000)]
    chases.append(run_chase(1_000_000, cached=True))
    gc = run_gc()
    return filters, chases, gc


def test_f5_near_memory(benchmark):
    filters, chases, gc = benchmark.pedantic(run_f5, rounds=1,
                                             iterations=1)
    report(
        "F5a", "Near-memory filtering on the memory->cache path",
        "the CPU sees only filtered data: membus/cache bytes drop "
        "with selectivity when the accelerator filters; on the CPU "
        "they never drop",
        [dict(r, membus_bytes=fmt_bytes(r["membus_bytes"]),
              cache_bytes=fmt_bytes(r["cache_bytes"]),
              elapsed=fmt_time(r["elapsed"])) for r in filters])
    report(
        "F5b", "Pointer-chasing functional unit",
        "a traversal on the CPU moves height x block per lookup; near "
        "memory only the leaf moves — the gap grows with tree height "
        "and shrinks when the LLC already holds the hot upper levels",
        [dict(r, cpu_membus=fmt_bytes(r["cpu_membus"]),
              nm_membus=fmt_bytes(r["nm_membus"]),
              cpu_elapsed=fmt_time(r["cpu_elapsed"]),
              nm_elapsed=fmt_time(r["nm_elapsed"])) for r in chases])
    report(
        "F5c", "List-maintenance (GC) functional unit",
        "memory-centric maintenance near memory moves nothing toward "
        "the CPU",
        [dict(gc, cpu_membus=fmt_bytes(gc["cpu_membus"]),
              nm_membus=fmt_bytes(gc["nm_membus"]),
              cpu_elapsed=fmt_time(gc["cpu_elapsed"]),
              nm_elapsed=fmt_time(gc["nm_elapsed"]))])

    # Filter: near-memory movement scales with selectivity; CPU's not.
    def fpick(sel, site):
        return next(r for r in filters if r["selectivity"] == sel
                    and r["site"] == site)
    assert fpick(0.01, "near-memory")["membus_bytes"] < \
        fpick(0.01, "cpu")["membus_bytes"] / 50
    assert fpick(0.01, "cpu")["membus_bytes"] == \
        fpick(1.0, "cpu")["membus_bytes"]
    # Chase: near-memory moves exactly one block per lookup.
    big = next(r for r in chases if r["keys"] == 1_000_000
               and not r["llc_cached"])
    assert big["nm_membus"] < big["cpu_membus"] / (big["height"] - 1)
    # A warm LLC narrows (but here does not erase) the CPU's gap.
    cached = next(r for r in chases if r["llc_cached"])
    assert cached["cpu_membus"] < big["cpu_membus"]
    # GC near memory: zero bytes toward the CPU.
    assert gc["nm_membus"] == 0


if __name__ == "__main__":
    filters, chases, gc = run_f5()
    for r in filters + chases + [gc]:
        print(r)
