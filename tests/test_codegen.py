"""Generated kernels: cache keys, disk persistence, and bit-identity.

The contract under test: a generated kernel is indistinguishable from
the closure pipeline (same chunks, same charges, same ring events),
the cache key covers everything that could change the generated code
(pipeline, entry schema, fabric context, fusion flag), and the disk
cache survives process boundaries while rejecting corrupt or stale
entries instead of loading them.
"""

import numpy as np
import pytest

from repro.engine import DataflowEngine, VolcanoEngine, codegen
from repro.engine.fusion import FusedOp
from repro.engine.logical import AggSpec, Query
from repro.engine.operators import FilterOp, MapOp, ProjectOp
from repro.hardware import build_fabric, dataflow_spec
from repro.obs import table_checksum
from repro.relational import Catalog
from repro.relational.datagen import make_lineitem, make_orders
from repro.relational.expressions import Expression, col, lit
from repro.relational.schema import DataType, Field, Schema

ROWS = 4000


@pytest.fixture(autouse=True)
def _isolated_kernel_cache(tmp_path, monkeypatch):
    """Each test gets a private disk cache and fresh module state."""
    monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR", str(tmp_path / "kernels"))
    monkeypatch.delenv("REPRO_NO_CODEGEN", raising=False)
    monkeypatch.delenv("REPRO_NO_FUSE", raising=False)
    codegen.reset()
    yield
    codegen.reset()


def _schema(extra=()):
    fields = [Field("a", DataType.INT64), Field("b", DataType.FLOAT64)]
    fields += list(extra)
    return Schema(fields)


def _pipeline():
    return [FilterOp(col("a") > lit(5)), ProjectOp(["a"])]


# ---------------------------------------------------------------------------
# Fingerprints: everything that changes the kernel changes the key
# ---------------------------------------------------------------------------

def test_same_pipeline_same_schema_same_fingerprint():
    fp1 = codegen.pipeline_fingerprint(_pipeline(), _schema(), "ctx")
    fp2 = codegen.pipeline_fingerprint(_pipeline(), _schema(), "ctx")
    assert fp1 == fp2


def test_schema_change_changes_fingerprint():
    base = codegen.pipeline_fingerprint(_pipeline(), _schema(), "ctx")
    widened = codegen.pipeline_fingerprint(
        _pipeline(), _schema([Field("c", DataType.STRING, 8)]), "ctx")
    assert base != widened


def test_fabric_context_change_changes_fingerprint():
    one = codegen.pipeline_fingerprint(_pipeline(), _schema(), "fab-a")
    two = codegen.pipeline_fingerprint(_pipeline(), _schema(), "fab-b")
    assert one != two


def test_fusion_flag_changes_fingerprint(monkeypatch):
    enabled = codegen.pipeline_fingerprint(_pipeline(), _schema(), "ctx")
    monkeypatch.setenv("REPRO_NO_FUSE", "1")
    disabled = codegen.pipeline_fingerprint(_pipeline(), _schema(), "ctx")
    assert enabled != disabled


def test_predicate_constant_changes_fingerprint():
    loose = codegen.pipeline_fingerprint(
        [FilterOp(col("a") > lit(5))], _schema(), "ctx")
    tight = codegen.pipeline_fingerprint(
        [FilterOp(col("a") > lit(6))], _schema(), "ctx")
    assert loose != tight


def test_distinct_fabrics_have_distinct_contexts():
    fabric = build_fabric(dataflow_spec())
    other = build_fabric(dataflow_spec(network_gbits=400.0))
    assert codegen.fabric_context(fabric) != codegen.fabric_context(other)
    # Cached on the object: second call is the same string.
    assert codegen.fabric_context(fabric) is codegen.fabric_context(fabric)


# ---------------------------------------------------------------------------
# Cache tiers: compile -> memory -> disk, with verification on load
# ---------------------------------------------------------------------------

def test_compile_then_memory_then_disk_hit():
    kernel, origin, fp = codegen.get_kernel(_pipeline(), _schema(), "ctx")
    assert origin == "compiled" and kernel is not None
    _, origin2, fp2 = codegen.get_kernel(_pipeline(), _schema(), "ctx")
    assert origin2 == "memory" and fp2 == fp
    codegen._memory.clear()          # simulate a fresh process
    _, origin3, fp3 = codegen.get_kernel(_pipeline(), _schema(), "ctx")
    assert origin3 == "disk" and fp3 == fp
    stats = codegen.counters()
    assert stats["compiles"] == 1
    assert stats["memory_hits"] == 1
    assert stats["disk_hits"] == 1
    assert stats["disk_writes"] == 1


def test_corrupt_disk_entry_discarded_and_recompiled():
    _, _, fp = codegen.get_kernel(_pipeline(), _schema(), "ctx")
    path = codegen.kernel_cache_dir() / f"{fp}.py"
    path.write_text(path.read_text()[:-40] + "# truncated\n")
    codegen._memory.clear()
    _, origin, _ = codegen.get_kernel(_pipeline(), _schema(), "ctx")
    assert origin == "compiled"
    assert codegen.counters()["disk_stale"] == 1
    assert not path.read_text().endswith("# truncated\n")


def test_wrong_fingerprint_header_discarded():
    _, _, fp = codegen.get_kernel(_pipeline(), _schema(), "ctx")
    path = codegen.kernel_cache_dir() / f"{fp}.py"
    text = path.read_text()
    path.write_text(text.replace(fp, "0" * 64))
    codegen._memory.clear()
    _, origin, _ = codegen.get_kernel(_pipeline(), _schema(), "ctx")
    assert origin == "compiled"
    assert codegen.counters()["disk_stale"] == 1


def test_unparseable_disk_body_discarded():
    _, _, fp = codegen.get_kernel(_pipeline(), _schema(), "ctx")
    path = codegen.kernel_cache_dir() / f"{fp}.py"
    bad_body = "def make_kernel(:\n"
    import hashlib
    path.write_text("\n".join([
        f"# repro-kernel v{codegen.CODEGEN_VERSION}",
        f"# fingerprint: {fp}",
        f"# source-sha256: "
        f"{hashlib.sha256(bad_body.encode()).hexdigest()}",
        bad_body,
    ]))
    codegen._memory.clear()
    _, origin, _ = codegen.get_kernel(_pipeline(), _schema(), "ctx")
    assert origin == "compiled"
    assert codegen.counters()["disk_stale"] == 1


def test_empty_cache_dir_env_disables_disk():
    import os
    os.environ["REPRO_KERNEL_CACHE_DIR"] = ""
    assert codegen.kernel_cache_dir() is None
    _, origin, _ = codegen.get_kernel(_pipeline(), _schema(), "ctx")
    assert origin == "compiled"
    assert codegen.counters()["disk_writes"] == 0


# ---------------------------------------------------------------------------
# Fallbacks
# ---------------------------------------------------------------------------

class _Opaque(Expression):
    """An expression codegen has never heard of."""

    def evaluate(self, chunk):
        return np.asarray(chunk.columns["a"] > 5)

    def required_columns(self):
        return {"a"}

    def __repr__(self):
        return "opaque()"


def test_unsupported_expression_falls_back_to_closures():
    parts = [FilterOp(_Opaque()), ProjectOp(["a"])]
    kernel, origin, fp = codegen.resolve(parts, _schema(), "ctx")
    assert kernel is None and origin == "closure" and fp is None
    assert codegen.counters()["unsupported"] == 1
    # The fused op still runs correctly on the closure path.
    from repro.relational.table import Chunk
    fused = FusedOp(parts, "ctx")
    chunk = Chunk(_schema(), {
        "a": np.arange(10, dtype=np.int64),
        "b": np.zeros(10)})
    charges = fused.extra_charges(chunk)
    emits = fused.process(chunk)
    assert fused.kernel_origin == "closure"
    assert [len(c) for c in (charges,)] == [1]
    assert emits[0].chunk.num_rows == 4


def test_no_codegen_env_disables(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CODEGEN", "1")
    kernel, origin, fp = codegen.resolve(_pipeline(), _schema(), "ctx")
    assert kernel is None and origin == "disabled" and fp is None
    assert codegen.counters()["disabled"] == 1


# ---------------------------------------------------------------------------
# End-to-end bit-identity and cold/warm equivalence
# ---------------------------------------------------------------------------

def _catalog():
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(ROWS, orders=ROWS // 4,
                                               chunk_rows=500))
    catalog.register("orders", make_orders(ROWS // 4, chunk_rows=500))
    return catalog


def _queries():
    return {
        "filter_project": (
            Query.scan("lineitem")
            .filter(col("l_quantity") > 40)
            .project(["l_orderkey", "l_extendedprice"])),
        "like_map_agg": (
            Query.scan("lineitem")
            .filter(col("l_comment").like("%a%"))
            .with_column("disc", col("l_extendedprice")
                         * (lit(1.0) - col("l_discount")))
            .aggregate(["l_returnflag"],
                       [AggSpec("sum", "disc", "rev"),
                        AggSpec("count", alias="n")])),
        "inset_between": (
            Query.scan("lineitem")
            .filter(col("l_returnflag").isin(["A", "R"]))
            .filter(col("l_quantity").between(5, 45))
            .project(["l_orderkey", "l_quantity"])),
    }


def _run_engine(engine_cls, query):
    fabric = build_fabric(dataflow_spec())
    result = engine_cls(fabric, _catalog()).execute(query)
    return {
        "checksum": table_checksum(result.table),
        "sim_time_s": result.elapsed,
        "movement": result.movement,
        "ledger": fabric.trace.movement_ledger(),
        "ring": [event.to_dict() for event in fabric.trace.events],
    }


@pytest.mark.parametrize("engine_cls", [DataflowEngine, VolcanoEngine])
@pytest.mark.parametrize("name", sorted(_queries()))
def test_codegen_and_closure_runs_bit_identical(monkeypatch, engine_cls,
                                                name):
    query = _queries()[name]
    generated = _run_engine(engine_cls, query)
    monkeypatch.setenv("REPRO_NO_CODEGEN", "1")
    closures = _run_engine(engine_cls, query)
    assert generated["checksum"] == closures["checksum"]
    assert generated["sim_time_s"] == closures["sim_time_s"]
    assert generated["movement"] == closures["movement"]
    assert generated["ledger"] == closures["ledger"]
    assert generated["ring"] == closures["ring"]


def test_cold_and_warm_cache_runs_bit_identical():
    query = _queries()["like_map_agg"]
    cold = _run_engine(DataflowEngine, query)
    assert codegen.counters()["compiles"] >= 1
    codegen._memory.clear()          # fresh process, disk cache warm
    warm = _run_engine(DataflowEngine, query)
    assert codegen.counters()["disk_hits"] >= 1
    assert cold == warm


def test_counters_surface_in_query_result():
    fabric = build_fabric(dataflow_spec())
    result = DataflowEngine(fabric, _catalog()).execute(
        _queries()["filter_project"])
    assert result.counters.get("codegen.compiles", 0) >= 1
    # Counters never leak into the simulated accounting.
    assert not any(k.startswith("codegen.")
                   for k in result.movement)


def test_resolved_kernels_report_info():
    fabric = build_fabric(dataflow_spec())
    engine = DataflowEngine(fabric, _catalog())
    graph = engine.compile(_queries()["filter_project"])
    graph.run()
    infos = [op.kernel_info()
             for stage in graph.stages.values()
             for op in stage.ops if isinstance(op, FusedOp)]
    assert infos, "expected at least one fused segment"
    for info in infos:
        assert info["origin"] in ("compiled", "memory", "disk")
        assert info["fingerprint"]
        assert "def kernel(chunk, charges):" in info["source"]
