"""Unit tests for Store, Resource and Gate primitives."""

import pytest

from repro.sim import Gate, Resource, SimulationError, Simulator, Store


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    received = []

    def producer():
        for i in range(5):
            yield store.put(i)

    def consumer():
        for _ in range(5):
            item = yield store.get()
            received.append(item)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert received == [0, 1, 2, 3, 4]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    log = []

    def consumer():
        item = yield store.get()
        log.append((sim.now, item))

    def producer():
        yield sim.timeout(7.0)
        yield store.put("x")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert log == [(7.0, "x")]


def test_store_put_blocks_when_full():
    sim = Simulator()
    store = Store(sim, capacity=2)
    log = []

    def producer():
        for i in range(3):
            yield store.put(i)
            log.append((sim.now, f"put{i}"))

    def consumer():
        yield sim.timeout(5.0)
        yield store.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    # Third put completes only after the consumer frees a slot at t=5.
    assert log == [(0.0, "put0"), (0.0, "put1"), (5.0, "put2")]


def test_store_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Store(sim, capacity=0)


def test_store_max_occupancy_tracked():
    sim = Simulator()
    store = Store(sim, capacity=10)

    def producer():
        for i in range(4):
            yield store.put(i)

    sim.process(producer())
    sim.run()
    assert store.max_occupancy == 4
    assert len(store) == 4


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    ok, item = store.try_get()
    assert (ok, item) == (False, None)

    def producer():
        yield store.put("a")

    sim.process(producer())
    sim.run()
    ok, item = store.try_get()
    assert (ok, item) == (True, "a")


def test_store_occupancy_never_exceeds_capacity():
    sim = Simulator()
    store = Store(sim, capacity=3)

    def producer():
        for i in range(20):
            yield store.put(i)

    def consumer():
        for _ in range(20):
            yield store.get()
            yield sim.timeout(1.0)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert store.max_occupancy <= 3


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_serializes_when_capacity_one():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def user(tag, hold):
        yield res.request()
        log.append((sim.now, tag, "start"))
        yield sim.timeout(hold)
        res.release()
        log.append((sim.now, tag, "end"))

    sim.process(user("a", 2.0))
    sim.process(user("b", 3.0))
    sim.run()
    assert log == [
        (0.0, "a", "start"),
        (2.0, "a", "end"),
        (2.0, "b", "start"),
        (5.0, "b", "end"),
    ]


def test_resource_parallel_when_capacity_two():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    ends = []

    def user(hold):
        yield res.request()
        yield sim.timeout(hold)
        res.release()
        ends.append(sim.now)

    sim.process(user(2.0))
    sim.process(user(2.0))
    sim.run()
    assert ends == [2.0, 2.0]


def test_resource_multi_unit_request():
    sim = Simulator()
    res = Resource(sim, capacity=4)
    log = []

    def wide():
        yield res.request(3)
        log.append((sim.now, "wide"))
        yield sim.timeout(2.0)
        res.release(3)

    def narrow():
        yield sim.timeout(0.5)
        yield res.request(2)  # only 1 free until wide releases
        log.append((sim.now, "narrow"))
        res.release(2)

    sim.process(wide())
    sim.process(narrow())
    sim.run()
    assert log == [(0.0, "wide"), (2.0, "narrow")]


def test_resource_fifo_head_of_line():
    """A big request at the head blocks later small ones (hardware FIFO)."""
    sim = Simulator()
    res = Resource(sim, capacity=2)
    order = []

    def holder():
        yield res.request(1)
        yield sim.timeout(10.0)
        res.release(1)

    def big():
        yield sim.timeout(1.0)
        yield res.request(2)
        order.append("big")
        res.release(2)

    def small():
        yield sim.timeout(2.0)
        yield res.request(1)
        order.append("small")
        res.release(1)

    sim.process(holder())
    sim.process(big())
    sim.process(small())
    sim.run()
    assert order == ["big", "small"]


def test_resource_request_exceeding_capacity_rejected():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    with pytest.raises(SimulationError):
        res.request(3)


def test_resource_over_release_rejected():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    with pytest.raises(SimulationError):
        res.release(1)


def test_resource_utilization():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user():
        yield res.request()
        yield sim.timeout(3.0)
        res.release()
        yield sim.timeout(7.0)

    sim.process(user())
    sim.run()
    assert sim.now == 10.0
    assert res.utilization() == pytest.approx(0.3)


# ---------------------------------------------------------------------------
# Gate
# ---------------------------------------------------------------------------

def test_gate_broadcasts_to_all_waiters():
    sim = Simulator()
    gate = Gate(sim)
    woken = []

    def waiter(tag):
        value = yield gate.wait()
        woken.append((sim.now, tag, value))

    def firer():
        yield sim.timeout(2.0)
        gate.fire("go")

    sim.process(waiter("a"))
    sim.process(waiter("b"))
    sim.process(firer())
    sim.run()
    assert woken == [(2.0, "a", "go"), (2.0, "b", "go")]


def test_gate_rearms_after_fire():
    sim = Simulator()
    gate = Gate(sim)
    woken = []

    def waiter():
        yield gate.wait()
        woken.append(sim.now)
        yield gate.wait()
        woken.append(sim.now)

    def firer():
        yield sim.timeout(1.0)
        gate.fire()
        yield sim.timeout(1.0)
        gate.fire()

    sim.process(waiter())
    sim.process(firer())
    sim.run()
    assert woken == [1.0, 2.0]
