"""Tests for physical operators against naive Python oracles."""

import numpy as np
import pytest

from repro.engine.logical import AggSpec
from repro.engine.operators import (
    FilterOp,
    HashJoinBuild,
    HashJoinProbe,
    JoinState,
    LimitOp,
    MergeAggregate,
    PartialAggregate,
    PartitionOp,
    ProjectOp,
    SortOp,
    group_inverse,
    partial_state_schema,
)
from repro.hardware import OpKind
from repro.relational import Chunk, DataType, Field, Schema, col


def ints_chunk(**cols):
    schema = Schema([Field(n, DataType.INT64) for n in cols])
    return Chunk(schema, {n: np.asarray(v, dtype=np.int64)
                          for n, v in cols.items()})


# ---------------------------------------------------------------------------
# Filter / project / limit
# ---------------------------------------------------------------------------

def test_filter_op():
    chunk = ints_chunk(x=[1, 5, 10], y=[1, 2, 3])
    out = FilterOp(col("x") > 3).process(chunk)
    assert len(out) == 1
    assert out[0].chunk.column("x").tolist() == [5, 10]


def test_filter_op_all_dropped_emits_nothing():
    chunk = ints_chunk(x=[1, 2])
    assert FilterOp(col("x") > 100).process(chunk) == []


def test_filter_op_kind_follows_predicate():
    assert FilterOp(col("x") > 3).kind == OpKind.FILTER
    schema = Schema.of(("s", DataType.STRING, 8))
    like = FilterOp(col("s").like("a%"))
    assert like.kind == OpKind.REGEX


def test_project_op():
    chunk = ints_chunk(x=[1, 2], y=[3, 4])
    out = ProjectOp(["y"]).process(chunk)
    assert out[0].chunk.schema.names == ["y"]


def test_limit_op_truncates_across_chunks():
    op = LimitOp(5)
    out1 = op.process(ints_chunk(x=[1, 2, 3]))
    out2 = op.process(ints_chunk(x=[4, 5, 6]))
    out3 = op.process(ints_chunk(x=[7]))
    got = [e.chunk.column("x").tolist() for e in out1 + out2 + out3]
    assert got == [[1, 2, 3], [4, 5]]


# ---------------------------------------------------------------------------
# Partition
# ---------------------------------------------------------------------------

def test_partition_places_every_row_exactly_once():
    rng = np.random.default_rng(0)
    values = rng.integers(0, 1000, size=500)
    chunk = ints_chunk(k=values)
    op = PartitionOp("k", 4)
    emits = op.process(chunk)
    total = sum(e.chunk.num_rows for e in emits)
    assert total == 500
    routes = {e.route for e in emits}
    assert routes <= {0, 1, 2, 3}


def test_partition_deterministic_by_key():
    op = PartitionOp("k", 3)
    emits = op.process(ints_chunk(k=[7, 7, 7, 42]))
    by_route = {e.route: e.chunk.column("k").tolist() for e in emits}
    # All 7s land in one partition.
    assert any(v == [7, 7, 7] for v in by_route.values())


def test_partition_function_consistent_across_instances():
    """Co-partitioning: build and probe sides agree (join invariant)."""
    keys = np.arange(100, dtype=np.int64)
    a = PartitionOp.hash_values(keys, 4)
    b = PartitionOp.hash_values(keys, 4)
    assert (a == b).all()
    assert set(np.unique(a)) <= {0, 1, 2, 3}


def test_partition_invalid_n():
    with pytest.raises(ValueError):
        PartitionOp("k", 0)


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

def agg_pipeline(chunks, group_by, aggs, output_schema, merge_hops=0,
                 batch=3):
    """Run partial -> merge^n -> final and return the result chunk."""
    input_schema = chunks[0].schema
    partial = PartialAggregate(input_schema, group_by, aggs)
    merges = [MergeAggregate(input_schema, group_by, aggs, batch=batch)
              for _ in range(merge_hops)]
    final = MergeAggregate(input_schema, group_by, aggs, final=True,
                           output_schema=output_schema)
    emits_per_chunk = [partial.process(chunk) for chunk in chunks]
    # Drive each merge stage over the stream, flushing at end of
    # stream exactly like the stage executor does.
    stream = [e for emits in emits_per_chunk for e in emits]
    for merge in merges:
        out = []
        for e in stream:
            out.extend(merge.process(e.chunk))
        out.extend(merge.finish())
        stream = out
    for e in stream:
        final.process(e.chunk)
    out = final.finish()
    assert len(out) == 1
    return out[0].chunk


def test_grouped_sum_matches_oracle():
    rng = np.random.default_rng(1)
    keys = rng.integers(0, 10, size=200)
    vals = rng.integers(0, 100, size=200)
    chunks = [ints_chunk(g=keys[i:i + 50], v=vals[i:i + 50])
              for i in range(0, 200, 50)]
    output = Schema([Field("g", DataType.INT64),
                     Field("total", DataType.FLOAT64)])
    result = agg_pipeline(chunks, ["g"], [AggSpec("sum", "v", "total")],
                          output)
    oracle = {}
    for k, v in zip(keys, vals):
        oracle[k] = oracle.get(k, 0) + v
    got = dict(zip(result.column("g").tolist(),
                   result.column("total").tolist()))
    assert got == {k: float(v) for k, v in oracle.items()}


def test_all_agg_ops_match_oracle():
    rng = np.random.default_rng(2)
    keys = rng.integers(0, 5, size=300)
    vals = rng.integers(-50, 50, size=300)
    chunks = [ints_chunk(g=keys[i:i + 100], v=vals[i:i + 100])
              for i in range(0, 300, 100)]
    aggs = [AggSpec("sum", "v", "s"), AggSpec("count", alias="c"),
            AggSpec("min", "v", "lo"), AggSpec("max", "v", "hi"),
            AggSpec("avg", "v", "m")]
    output = Schema([Field("g", DataType.INT64),
                     Field("s", DataType.FLOAT64),
                     Field("c", DataType.INT64),
                     Field("lo", DataType.FLOAT64),
                     Field("hi", DataType.FLOAT64),
                     Field("m", DataType.FLOAT64)])
    result = agg_pipeline(chunks, ["g"], aggs, output)
    for i, g in enumerate(result.column("g").tolist()):
        mask = keys == g
        assert result.column("s")[i] == vals[mask].sum()
        assert result.column("c")[i] == mask.sum()
        assert result.column("lo")[i] == vals[mask].min()
        assert result.column("hi")[i] == vals[mask].max()
        assert result.column("m")[i] == pytest.approx(vals[mask].mean())


def test_merge_hops_do_not_change_result():
    """Staged pre-aggregation (§4.4) is semantically transparent."""
    rng = np.random.default_rng(3)
    keys = rng.integers(0, 8, size=400)
    vals = rng.integers(0, 10, size=400)
    chunks = [ints_chunk(g=keys[i:i + 40], v=vals[i:i + 40])
              for i in range(0, 400, 40)]
    output = Schema([Field("g", DataType.INT64),
                     Field("t", DataType.FLOAT64)])
    specs = [AggSpec("sum", "v", "t")]
    base = agg_pipeline(chunks, ["g"], specs, output, merge_hops=0)
    staged = agg_pipeline(chunks, ["g"], specs, output, merge_hops=3)
    assert base.sorted_rows() == staged.sorted_rows()


def test_merge_stage_reduces_rows():
    """A merge stage collapses duplicate groups across its window."""
    schema = ints_chunk(g=[0], v=[0]).schema
    specs = [AggSpec("sum", "v", "t")]
    partial = PartialAggregate(schema, ["g"], specs)
    states = []
    for base in range(4):
        chunk = ints_chunk(g=[1, 2], v=[base, base * 10])
        states.extend(e.chunk for e in partial.process(chunk))
    merge = MergeAggregate(schema, ["g"], specs, batch=4)
    out = []
    for state in states:
        out.extend(merge.process(state))
    out.extend(merge.finish())
    # 4 state chunks x 2 groups -> one merged chunk with 2 groups.
    assert len(out) == 1
    assert out[0].chunk.num_rows == 2


def test_merge_batch_buffers_until_window_full():
    schema = ints_chunk(g=[0], v=[0]).schema
    specs = [AggSpec("count", alias="n")]
    partial = PartialAggregate(schema, ["g"], specs)
    state = partial.process(ints_chunk(g=[1], v=[1]))[0].chunk
    merge = MergeAggregate(schema, ["g"], specs, batch=3)
    assert merge.process(state) == []
    assert merge.process(state) == []
    out = merge.process(state)
    assert len(out) == 1
    # End-of-stream flush emits a partial window.
    merge.process(state)
    assert len(merge.finish()) == 1


def test_scalar_count_no_groups():
    chunks = [ints_chunk(x=[1, 2, 3]), ints_chunk(x=[4, 5])]
    output = Schema([Field("count", DataType.INT64)])
    result = agg_pipeline(chunks, [], [AggSpec("count")], output)
    assert result.column("count").tolist() == [5]


def test_scalar_aggregate_over_empty_stream():
    final = MergeAggregate(Schema.of(("x", DataType.INT64)), [],
                           [AggSpec("count")], final=True,
                           output_schema=Schema([Field("count",
                                                       DataType.INT64)]))
    out = final.finish()
    assert out[0].chunk.column("count").tolist() == [0]


def test_partial_state_is_small():
    """The state stream is narrower than the raw stream (reduction)."""
    schema = Schema.of(("g", DataType.INT64), ("v", DataType.INT64),
                       ("wide", DataType.STRING, 64))
    state = partial_state_schema(schema, ["g"], [AggSpec("sum", "v")])
    assert state.row_nbytes < schema.row_nbytes


def test_group_inverse_empty_groups():
    chunk = ints_chunk(x=[1, 2, 3])
    groups, inverse = group_inverse(chunk, [])
    assert groups.num_rows == 0
    assert inverse.tolist() == [0, 0, 0]


# ---------------------------------------------------------------------------
# Hash join
# ---------------------------------------------------------------------------

def run_join(left_chunks, right_chunks, left_key, right_key,
             output_schema, rename):
    state = JoinState()
    build = HashJoinBuild(right_key, state)
    for chunk in right_chunks:
        build.process(chunk)
    build.finish()
    probe = HashJoinProbe(left_key, state, output_schema, rename)
    out = []
    for chunk in left_chunks:
        out.extend(e.chunk for e in probe.process(chunk))
    return out


def test_join_matches_bruteforce():
    rng = np.random.default_rng(4)
    lk = rng.integers(0, 20, size=100)
    lv = rng.integers(0, 1000, size=100)
    rk = rng.integers(0, 20, size=30)
    rv = rng.integers(0, 1000, size=30)
    left = [ints_chunk(k=lk[i:i + 25], lval=lv[i:i + 25])
            for i in range(0, 100, 25)]
    right = [ints_chunk(k=rk, rval=rv)]
    output = Schema([Field("k", DataType.INT64),
                     Field("lval", DataType.INT64),
                     Field("rval", DataType.INT64)])
    out = run_join(left, right, "k", "k", output, {"k": "r_k"})
    got = sorted(row for c in out for row in c.to_rows())
    oracle = sorted((int(a), int(b), int(d))
                    for a, b in zip(lk, lv)
                    for c, d in zip(rk, rv) if a == c)
    assert got == oracle


def test_join_with_duplicates_on_both_sides():
    left = [ints_chunk(k=[1, 1, 2], a=[10, 11, 12])]
    right = [ints_chunk(k=[1, 1, 3], b=[20, 21, 22])]
    output = Schema([Field("k", DataType.INT64),
                     Field("a", DataType.INT64),
                     Field("b", DataType.INT64)])
    out = run_join(left, right, "k", "k", output, {"k": "r_k"})
    rows = sorted(row for c in out for row in c.to_rows())
    assert rows == [(1, 10, 20), (1, 10, 21), (1, 11, 20), (1, 11, 21)]


def test_join_empty_build_side():
    left = [ints_chunk(k=[1, 2], a=[1, 2])]
    output = Schema([Field("k", DataType.INT64),
                     Field("a", DataType.INT64)])
    out = run_join(left, [], "k", "k", output, {})
    assert out == []


def test_probe_before_build_raises():
    state = JoinState()
    probe = HashJoinProbe("k", state,
                          Schema([Field("k", DataType.INT64)]), {})
    with pytest.raises(RuntimeError):
        probe.process(ints_chunk(k=[1]))


# ---------------------------------------------------------------------------
# Sort
# ---------------------------------------------------------------------------

def test_sort_single_key():
    op = SortOp(["x"])
    op.process(ints_chunk(x=[3, 1], y=[30, 10]))
    op.process(ints_chunk(x=[2], y=[20]))
    out = op.finish()
    assert out[0].chunk.column("x").tolist() == [1, 2, 3]
    assert out[0].chunk.column("y").tolist() == [10, 20, 30]


def test_sort_multi_key_priority():
    op = SortOp(["a", "b"])
    op.process(ints_chunk(a=[1, 1, 0], b=[2, 1, 9]))
    out = op.finish()
    assert out[0].chunk.to_rows() == [(0, 9), (1, 1), (1, 2)]


def test_sort_empty_stream():
    assert SortOp(["x"]).finish() == []
