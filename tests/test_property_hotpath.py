"""Property test: the hot-path rewrites are observably invisible.

PR 9 moved the simulator and credit-flow hot paths onto raw
callbacks (``Simulator.call_later``, the ``_Delivery`` /
``_CreditReturn`` chains) while keeping the generator/heap reference
implementations behind ``REPRO_SLOW_KERNEL=1`` and
``REPRO_SLOW_FLOW=1``.  These properties pin the contract with
randomized workloads instead of hand-picked scenarios:

* arbitrary mixes of timeout ladders and credit-channel traffic
  (random credit windows, link shapes, message sizes, producer gaps,
  consumer think times) produce **bit-identical** observable state —
  event ring, movement ledger, counters, payload order, final clock —
  on the fast paths and on both reference paths;
* every run drains: ``Simulator.pending_events == 0`` afterwards
  (a leaked event means a callback or credit return outlived the
  workload, which the fast paths could otherwise hide).
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow import CreditChannel
from repro.hardware.interconnect import Link
from repro.sim import Simulator, Store, Trace

delays = st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
sizes = st.floats(min_value=1.0, max_value=65536.0, allow_nan=False)

workloads = st.fixed_dictionaries({
    # 0 links = in-node delivery; 1-2 links = serialized wire hops.
    "links": st.lists(
        st.tuples(st.floats(min_value=1e3, max_value=1e9,
                            allow_nan=False),   # bandwidth
                  st.floats(min_value=0.0, max_value=1e-3,
                            allow_nan=False)),  # latency
        min_size=0, max_size=2),
    "credits": st.integers(min_value=1, max_value=6),
    # (payload size, producer-side gap before the send)
    "messages": st.lists(st.tuples(sizes, delays),
                         min_size=1, max_size=15),
    # Consumer think times, cycled per ack.
    "thinks": st.lists(delays, min_size=1, max_size=4),
    # Independent timeout ladders racing the flow traffic.
    "tickers": st.lists(st.lists(delays, min_size=1, max_size=5),
                        min_size=0, max_size=3),
})


def _run_workload(spec: dict, slow_kernel: bool = False,
                  slow_flow: bool = False) -> dict:
    """One deterministic run of ``spec``; returns observable state.

    The reference flags are read at ``Simulator`` / ``CreditChannel``
    construction, so setting them around the build is enough; saved
    and restored manually because hypothesis re-enters this function
    many times per test (no per-example fixture).
    """
    saved = {key: os.environ.get(key)
             for key in ("REPRO_SLOW_KERNEL", "REPRO_SLOW_FLOW")}
    try:
        os.environ.pop("REPRO_SLOW_KERNEL", None)
        os.environ.pop("REPRO_SLOW_FLOW", None)
        if slow_kernel:
            os.environ["REPRO_SLOW_KERNEL"] = "1"
        if slow_flow:
            os.environ["REPRO_SLOW_FLOW"] = "1"
        sim = Simulator()
        trace = Trace()
        links = [Link(sim, trace, f"l{i}", bandwidth=bandwidth,
                      latency=latency)
                 for i, (bandwidth, latency)
                 in enumerate(spec["links"])]
        inbox = Store(sim)
        channel = CreditChannel(sim, trace, "ch", links=links,
                                inbox=inbox, credits=spec["credits"],
                                actor="producer", direction="a->b")
        received: list[int] = []

        def producer():
            for index, (size, gap) in enumerate(spec["messages"]):
                if gap:
                    yield sim.timeout(gap)
                yield from channel.send(index, size)

        def consumer():
            thinks = spec["thinks"]
            for count in range(len(spec["messages"])):
                handle, payload = yield inbox.get()
                received.append(payload)
                think = thinks[count % len(thinks)]
                if think:
                    yield sim.timeout(think)
                handle.ack()

        def ticker(ladder):
            for delay in ladder:
                yield sim.timeout(delay)
                trace.add("ticker.steps")

        sim.process(producer())
        sim.process(consumer())
        for ladder in spec["tickers"]:
            sim.process(ticker(ladder))
        sim.run()
        return {
            "ring": [event.to_dict() for event in trace.events],
            "ledger": trace.movement_ledger(),
            "counters": dict(trace.counters),
            "received": received,
            "now": sim.now,
            "pending": sim.pending_events,
            "max_outstanding": channel.max_outstanding,
        }
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


@given(spec=workloads)
@settings(max_examples=40, deadline=None)
def test_fast_and_reference_paths_bit_identical(spec):
    fast = _run_workload(spec)
    slow_kernel = _run_workload(spec, slow_kernel=True)
    slow_flow = _run_workload(spec, slow_flow=True)
    for reference in (slow_kernel, slow_flow):
        assert reference == fast
    # Each path drained and delivered FIFO within the credit window.
    for state in (fast, slow_kernel, slow_flow):
        assert state["pending"] == 0
        assert state["received"] == list(range(len(spec["messages"])))
        assert state["max_outstanding"] <= spec["credits"]
