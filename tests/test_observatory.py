"""The runtime saturation observatory: series, bound, regret, gates.

The expensive serving run is shared module-wide; every test reads the
same server/record.  Exactness claims are all tolerance 0 — the
observatory is Fraction arithmetic end to end.
"""

import copy
import dataclasses
import json
from fractions import Fraction

import pytest

from repro.analysis import (
    IntervalIndex,
    Observatory,
    OBSERVATORY_SCHEMA,
    attribute,
    bound_class,
    effective_cost,
    raw_intervals,
    render_top,
)
from repro.obs import report_violations, make_report
from repro.serve import SERVE_SCENARIOS, run_scenario
from repro.serve.dashboard import render_dashboard, write_dashboard
from repro.serve.scenarios import serve_scenario_server
from repro.sim import EventKind, EventRing, Trace

QUERIES = 60


@pytest.fixture(scope="module")
def server():
    return serve_scenario_server("two_tenant_bursty",
                                 queries=QUERIES)


@pytest.fixture(scope="module")
def record(server):
    return server.report("two_tenant_bursty")


# ---------------------------------------------------------------------------
# Tentpole: the series reconcile exactly, every invariant recomputed
# ---------------------------------------------------------------------------

def test_observatory_violations_empty(server):
    assert server.observatory_violations() == []


def test_window_sums_telescope_to_whole_horizon(server):
    obs = server.observatory
    trace = server.fabric.trace
    whole = attribute(trace, 0.0, obs._horizon)
    totals = {}
    for buckets in obs._window_buckets:
        for name, value in buckets.items():
            totals[name] = totals.get(name, Fraction(0)) + value
    assert totals == whole.buckets  # Fraction-exact, tolerance 0


def test_every_window_tiles_exactly(server):
    obs = server.observatory
    for i, buckets in enumerate(obs._window_buckets):
        width = (Fraction(obs._edges[i + 1])
                 - Fraction(obs._edges[i]))
        assert sum(buckets.values(), Fraction(0)) == width


def test_per_query_attribution_equals_window_clipped_sums(server):
    obs = server.observatory
    trace = server.fabric.trace
    index = IntervalIndex(raw_intervals(trace))
    for rec in [r for r in server.records if r.completed][:10]:
        whole = attribute(trace, rec.arrival, rec.finished,
                          intervals=index)
        pieces = {}
        for i in range(len(obs._edges) - 1):
            q0 = max(rec.arrival, obs._edges[i])
            q1 = min(rec.finished, obs._edges[i + 1])
            if q1 <= q0:
                continue
            part = attribute(trace, q0, q1, intervals=index)
            for name, value in part.buckets.items():
                pieces[name] = pieces.get(name, Fraction(0)) + value
        assert pieces == whole.buckets


def test_payload_structure(record):
    obs = record["observatory"]
    assert obs["schema"] == OBSERVATORY_SCHEMA
    assert obs["windows"] == len(obs["series"])
    assert obs["pools"] == sorted(obs["pools"])
    assert not obs["partial"] and obs["partial_reason"] == ""
    for i, entry in enumerate(obs["series"]):
        assert entry["window"] == i
        assert entry["end"] > entry["start"]
        for key in ("pools", "saturation", "link_bytes"):
            assert key in entry
    # Saturation is share-of-window: each window's shares sum to 1.
    for entry in obs["series"]:
        assert sum(entry["saturation"].values()) == \
            pytest.approx(1.0, abs=1e-9)


def test_link_bytes_positive_and_per_link(record):
    obs = record["observatory"]
    moved = {}
    for entry in obs["series"]:
        for link, nbytes in entry["link_bytes"].items():
            assert nbytes > 0
            moved[link] = moved.get(link, 0.0) + nbytes
    assert moved, "no link moved any bytes in a serving run?"
    assert all(not link.startswith("link:") for link in moved)


def test_bound_classifier_counts_and_classes(server, record):
    obs = record["observatory"]
    completed = sum(1 for r in server.records if r.completed)
    tagged = obs["bound"]["queries"]
    assert len(tagged) == completed == record["completed"]
    for entry in tagged:
        assert entry["class"] == bound_class(entry["bucket"])
        assert 0.0 <= entry["share"] <= 1.0
    by_tenant = obs["bound"]["by_tenant"]
    assert sum(c for cell in by_tenant.values()
               for c in cell.values()) == completed
    windowed = sum(c for entry in obs["bound"]["series"]
                   for cell in entry["tenants"].values()
                   for c in cell.values())
    assert windowed == completed


def test_bound_class_collapses_pools():
    assert bound_class("device:compute0.cpu") == "device"
    assert bound_class("storage:storage.media") == "storage"
    assert bound_class("nic:compute0.nic.dma") == "nic"
    assert bound_class("link:net.storage") == "link"
    assert bound_class("wait:other") == "wait:other"
    assert bound_class("wait:credit") == "wait:credit"


def test_regret_entries_scored_for_every_completion(server, record):
    obs = record["observatory"]
    regret = obs["regret"]
    assert len(regret["queries"]) == record["completed"]
    for entry in regret["queries"]:
        assert entry["regret_s"] >= 0.0
        assert entry["best_eff_s"] <= entry["chosen_eff_s"]
        if entry["chosen"] == entry["best"]:
            assert entry["regret_s"] == 0.0
    leaders = regret["leaders"]
    values = [e["regret_s"] for e in leaders]
    assert values == sorted(values, reverse=True)
    assert len(leaders) <= 10


def test_effective_cost_reduces_to_bottleneck_when_idle(server):
    variants = server.executor.plan_variants(
        server.templates["count_hot"]())
    for variant in variants:
        assert effective_cost(variant.cost, {}) == pytest.approx(
            variant.cost.bottleneck_time)
        # Full saturation inflates but stays finite (rho capped).
        shares = {f"device:{k}": 1.0
                  for k in variant.cost.device_time}
        shares.update({f"link:{k}": 1.0
                       for k in variant.cost.link_time})
        inflated = effective_cost(variant.cost, shares)
        assert inflated >= variant.cost.bottleneck_time
        assert inflated < variant.cost.bottleneck_time * 21


def test_scheduler_records_variant_decisions(server):
    # The server pops each decision at completion, so the executor's
    # dict is empty after a drained run — the decisions landed in the
    # observatory instead.
    assert server.executor.decisions == {}
    considered = [
        decision for _r, _v, decision in server.observatory._completed]
    assert all(d is not None for d in considered)
    for decision in considered[:5]:
        names = [name for name, _b, _s in decision.considered]
        assert decision.chosen in names


def test_digest_deterministic_across_identical_runs():
    a = run_scenario("two_tenant_bursty", queries=25, verify=False)
    b = run_scenario("two_tenant_bursty", queries=25, verify=False)
    assert a["observatory_digest"] == b["observatory_digest"]
    assert a["observatory"] == b["observatory"]


# ---------------------------------------------------------------------------
# Observer effect: bit-identical with the observatory off
# ---------------------------------------------------------------------------

def test_observatory_has_zero_observer_effect():
    config = SERVE_SCENARIOS["two_tenant_bursty"].config
    on = serve_scenario_server("two_tenant_bursty", queries=40,
                               config=config)
    off = serve_scenario_server(
        "two_tenant_bursty", queries=40,
        config=dataclasses.replace(config, observatory=False))
    assert off.observatory is None
    assert on.completion_order == off.completion_order
    assert [r.checksum for r in on.records] == \
        [r.checksum for r in off.records]
    assert [r.to_dict() for r in on.records] == \
        [r.to_dict() for r in off.records]
    # The event rings are bit-identical: the observatory never emits.
    on_events = [e.to_dict() for e in on.fabric.trace.events]
    off_events = [e.to_dict() for e in off.fabric.trace.events]
    assert on_events == off_events
    assert on.fabric.trace.events.dropped == \
        off.fabric.trace.events.dropped


# ---------------------------------------------------------------------------
# Satellite 1: bounded-ring overflow marks attributions partial
# ---------------------------------------------------------------------------

def _overflowed_trace():
    trace = Trace(events=EventRing(4))
    span = trace.open_span("device.cpu", 0.0)
    trace.close_span(span, 1.0)
    for i in range(10):
        trace.emit(float(i) / 10, EventKind.CHUNK_EMIT, "chan",
                   nbytes=64, flow_id=i + 1)
    assert trace.events.dropped > 0
    return trace


def test_attribute_marks_partial_on_overflowed_ring():
    trace = _overflowed_trace()
    att = attribute(trace, 0.0, 1.0)
    assert att.partial
    assert "dropped" in att.partial_reason
    assert att.exact  # arithmetic still reconciles; inputs are short
    doc = att.to_dict()
    assert doc["partial"] and doc["partial_reason"]


def test_attribute_not_partial_on_complete_ring():
    trace = Trace()
    span = trace.open_span("device.cpu", 0.0)
    trace.close_span(span, 1.0)
    att = attribute(trace, 0.0, 1.0)
    assert not att.partial and att.partial_reason == ""


def test_observatory_marks_partial_on_overflowed_ring():
    trace = _overflowed_trace()
    obs = Observatory([], trace, window_s=0.5)
    obs.finalize(1.0)
    payload = obs.payload()
    assert payload["partial"]
    assert payload["events_dropped"] == trace.events.dropped
    assert "dropped" in payload["partial_reason"]
    assert obs.observatory_violations([]) == []
    text = render_top(payload)
    assert "PARTIAL" in text


def test_validate_report_rejects_partial_without_reason(record):
    serving = copy.deepcopy(
        {k: v for k, v in record.items()
         if k not in ("records", "completion_order")})
    report = make_report("t", [], [], serving=[serving])
    assert report_violations(report) == []
    broken = copy.deepcopy(report)
    broken["serving"][0]["observatory"]["partial"] = True
    errors = report_violations(broken)
    assert any("partial" in e for e in errors)


def test_validate_report_rejects_sparse_series(record):
    serving = copy.deepcopy(
        {k: v for k, v in record.items()
         if k not in ("records", "completion_order")})
    report = make_report("t", [], [], serving=[serving])
    broken = copy.deepcopy(report)
    del broken["serving"][0]["observatory"]["series"][0]
    errors = report_violations(broken)
    assert any("dense" in e for e in errors)


def test_validate_report_rejects_partial_exemplar_without_reason(
        record):
    serving = copy.deepcopy(
        {k: v for k, v in record.items()
         if k not in ("records", "completion_order")})
    report = make_report("t", [], [], serving=[serving])
    exemplars = report["serving"][0]["telemetry"]["exemplars"]
    assert exemplars, "fixture run produced no exemplars"
    exemplars[0]["attribution"]["partial"] = True
    exemplars[0]["attribution"]["partial_reason"] = ""
    errors = report_violations(report)
    assert any("partial" in e for e in errors)


# ---------------------------------------------------------------------------
# Rendering: repro top and the dashboard panel, payload-only
# ---------------------------------------------------------------------------

def test_render_top_from_payload_alone(record):
    payload = json.loads(json.dumps(record["observatory"]))
    text = render_top(payload, name="two_tenant_bursty")
    assert "two_tenant_bursty" in text
    assert OBSERVATORY_SCHEMA in text
    assert "ring complete" in text
    assert "placement-regret leaders" in text
    for tenant in ("gold", "bronze"):
        assert tenant in text
    followed = render_top(payload, follow=True)
    assert "bytes moved" in followed
    assert len(followed.splitlines()) > len(text.splitlines())


def test_dashboard_renders_observatory_panel(record):
    html = render_dashboard(record)
    assert "saturation observatory" in html
    assert "placement-regret leaders" in html
    assert "bound queries by tenant" in html
    assert OBSERVATORY_SCHEMA in html
    assert "http" not in html.split("</style>")[1]  # zero fetches


def test_dashboard_json_twin_carries_observatory(record, tmp_path):
    html_path, json_path = write_dashboard(
        str(tmp_path / "dash.html"), record)
    with open(json_path) as handle:
        twin = json.load(handle)
    assert twin["observatory"]["schema"] == OBSERVATORY_SCHEMA
    assert twin["observatory_digest"] == record["observatory_digest"]


# ---------------------------------------------------------------------------
# run_scenario / bench integration
# ---------------------------------------------------------------------------

def test_run_scenario_gates_observatory():
    rec = run_scenario("two_tenant_bursty", queries=25)
    assert rec["observatory_violations"] == []
    assert rec["observatory"]["schema"] == OBSERVATORY_SCHEMA
    assert len(rec["observatory_digest"]) == 64


def test_bench_record_keeps_digest_drops_payload():
    from repro.bench import _run_serve_task
    rec = _run_serve_task(("two_tenant_bursty", None, 25))
    assert "observatory" not in rec
    assert len(rec["observatory_digest"]) == 64
    assert rec["observatory_windows"] > 0
    assert rec["observatory_partial"] is False
