"""Property tests for the per-tenant weighted fair queue."""

import random

import pytest

from repro.serve import WeightedFairQueue


def drain(queue):
    order = []
    while len(queue):
        order.append(queue.pop())
    return order


# ---------------------------------------------------------------------------
# Basics
# ---------------------------------------------------------------------------

def test_fifo_within_one_tenant():
    queue = WeightedFairQueue()
    for i in range(10):
        queue.push("a", weight=1.0, cost=0.001, item=i)
    assert [item for _t, item in drain(queue)] == list(range(10))


def test_pop_empty_raises():
    queue = WeightedFairQueue()
    with pytest.raises(IndexError):
        queue.pop()


def test_depth_tracking():
    queue = WeightedFairQueue()
    queue.push("a", 1.0, 0.001, "x")
    queue.push("a", 1.0, 0.001, "y")
    queue.push("b", 2.0, 0.001, "z")
    assert len(queue) == 3
    assert queue.depth("a") == 2
    assert queue.depth("b") == 1
    assert queue.max_depth == 3
    queue.pop()
    assert len(queue) == 2
    assert queue.max_depth == 3  # high-water mark sticks


# ---------------------------------------------------------------------------
# Weighted sharing
# ---------------------------------------------------------------------------

def test_weights_set_interleave_ratio():
    """With a 3:1 weight ratio and equal costs, a backlogged drain
    serves the heavy tenant ~3x as often in any prefix."""
    queue = WeightedFairQueue()
    for i in range(30):
        queue.push("heavy", 3.0, 0.001, ("heavy", i))
    for i in range(30):
        queue.push("light", 1.0, 0.001, ("light", i))
    order = [tenant for tenant, _item in drain(queue)]
    # In the first 20 pops the heavy tenant should get ~3/4.
    heavy_share = order[:20].count("heavy") / 20
    assert heavy_share >= 0.7


def test_equal_weights_alternate():
    queue = WeightedFairQueue()
    for i in range(8):
        queue.push("a", 1.0, 0.001, i)
        queue.push("b", 1.0, 0.001, i)
    order = [tenant for tenant, _ in drain(queue)]
    # Neither tenant is ever more than one serve ahead.
    for i in range(1, len(order) + 1):
        prefix = order[:i]
        assert abs(prefix.count("a") - prefix.count("b")) <= 1


# ---------------------------------------------------------------------------
# Starvation freedom under adversarial mixes
# ---------------------------------------------------------------------------

def test_no_starvation_under_flood():
    """A tenant that floods the queue cannot starve a light tenant:
    the light tenant's single request is served within a bounded
    number of pops (its finish tag beats the flood's backlog)."""
    queue = WeightedFairQueue()
    for i in range(1000):
        queue.push("flood", 1.0, 0.001, ("flood", i))
    queue.push("light", 1.0, 0.001, ("light", 0))
    for position in range(1000 + 1):
        tenant, _item = queue.pop()
        if tenant == "light":
            break
    # Served within a couple of pops, not after the flood drains.
    assert position <= 2


def test_no_starvation_adversarial_mix():
    """Random adversarial pushes: every tenant's wait (in pops) is
    bounded relative to its share of the queue, and nothing is lost."""
    rng = random.Random(7)
    queue = WeightedFairQueue()
    weights = {"gold": 4.0, "silver": 2.0, "bronze": 1.0}
    pushed = {name: 0 for name in weights}
    popped = {name: 0 for name in weights}
    for _round in range(2000):
        name = rng.choice(list(weights))
        # Adversary varies costs wildly to try to game the tags.
        cost = rng.choice([1e-5, 1e-4, 1e-3, 1e-2])
        queue.push(name, weights[name], cost, None)
        pushed[name] += 1
        if len(queue) > 64:
            tenant, _ = queue.pop()
            popped[tenant] += 1
    while len(queue):
        tenant, _ = queue.pop()
        popped[tenant] += 1
    assert pushed == popped  # conservation: nothing starved forever


def test_late_joiner_not_penalized():
    """Virtual time advances with service, so a tenant that joins
    after others have been served competes from *now*, not from the
    epoch (no banked credit against it)."""
    queue = WeightedFairQueue()
    for i in range(50):
        queue.push("early", 1.0, 0.001, i)
    for _ in range(50):
        queue.pop()
    assert queue.virtual_time > 0
    queue.push("late", 1.0, 0.001, "first")
    queue.push("early", 1.0, 0.001, "more")
    tenant, item = queue.pop()
    assert (tenant, item) == ("late", "first")


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------

def test_deterministic_under_fixed_seed():
    def run(seed):
        rng = random.Random(seed)
        queue = WeightedFairQueue()
        order = []
        for i in range(500):
            name = rng.choice(["a", "b", "c"])
            queue.push(name, {"a": 1.0, "b": 2.0, "c": 4.0}[name],
                       rng.choice([1e-4, 1e-3]), i)
            if rng.random() < 0.5 and len(queue):
                order.append(queue.pop())
        order.extend(drain(queue))
        return order

    assert run(42) == run(42)
    assert run(42) != run(43)  # the seed actually matters


def test_tie_break_is_push_order():
    """Identical finish tags fall back to submission order, so the
    drain order is a total, deterministic function of the pushes."""
    queue = WeightedFairQueue()
    queue.push("b", 1.0, 0.001, "first-pushed")
    queue.push("a", 1.0, 0.001, "second-pushed")
    assert queue.pop()[1] == "first-pushed"
    assert queue.pop()[1] == "second-pushed"
