"""Tests for interference tracking and the query scheduler."""

import pytest

from repro.engine import AggSpec, Query
from repro.hardware import build_fabric, dataflow_spec
from repro.optimizer import Optimizer
from repro.relational import Catalog, col, make_lineitem, make_uniform_table
from repro.scheduler import LoadTracker, ScheduledQuery, Scheduler, demand_vector


def make_env(rows=4000, compute_nodes=1):
    fabric = build_fabric(dataflow_spec(compute_nodes=compute_nodes))
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(rows, chunk_rows=500))
    catalog.register("uniform", make_uniform_table(rows, distinct=50,
                                                   chunk_rows=500))
    return fabric, catalog


HEAVY = (Query.scan("lineitem")
         .filter(col("l_quantity") > 5)
         .aggregate(["l_returnflag"],
                    [AggSpec("sum", "l_extendedprice", "rev")]))
LIGHT = Query.scan("uniform").filter(col("k0") < 5).count()


# ---------------------------------------------------------------------------
# LoadTracker
# ---------------------------------------------------------------------------

def test_demand_vector_covers_devices_and_links():
    fabric, catalog = make_env()
    optimizer = Optimizer(fabric, catalog)
    best = optimizer.optimize(HEAVY)
    vector = demand_vector(best.cost)
    assert any(k.startswith("device:") for k in vector)
    assert any(k.startswith("link:") for k in vector)
    assert all(v >= 0 for v in vector.values())


def test_load_tracker_admit_release():
    tracker = LoadTracker()
    tracker.admit("a", {"device:x": 1.0})
    tracker.admit("b", {"device:x": 2.0, "link:l": 1.0})
    assert tracker.load() == {"device:x": 3.0, "link:l": 1.0}
    tracker.release("a")
    assert tracker.load() == {"device:x": 2.0, "link:l": 1.0}
    assert tracker.active_jobs == ["b"]


def test_load_tracker_duplicate_admit_rejected():
    tracker = LoadTracker()
    tracker.admit("a", {})
    with pytest.raises(ValueError):
        tracker.admit("a", {})


def test_interference_score_only_counts_shared_resources():
    tracker = LoadTracker()
    tracker.admit("busy", {"device:x": 10.0})
    disjoint = {"device:y": 1.0}
    overlapping = {"device:x": 1.0}
    assert tracker.interference_score(disjoint) == 1.0
    assert tracker.interference_score(overlapping) == 11.0
    assert tracker.jobs_sharing(disjoint) == 0
    assert tracker.jobs_sharing(overlapping) == 1


# ---------------------------------------------------------------------------
# Scheduler
# ---------------------------------------------------------------------------

def test_scheduler_runs_single_query():
    fabric, catalog = make_env()
    scheduler = Scheduler(fabric, catalog, policy="greedy")
    scheduler.submit("q1", HEAVY)
    records = scheduler.run()
    assert len(records) == 1
    assert records[0].table is not None
    assert records[0].table.num_rows > 0
    assert records[0].finished > records[0].started >= 0


def test_scheduler_concurrent_queries_all_finish_correctly():
    fabric, catalog = make_env()
    scheduler = Scheduler(fabric, catalog,
                          policy="interference+ratelimit")
    for i in range(4):
        scheduler.submit(f"q{i}", HEAVY, arrival=i * 1e-4)
    records = scheduler.run()
    assert len(records) == 4
    tables = [r.table.sorted_rows() for r in records]
    assert all(t == tables[0] for t in tables)  # identical queries


def test_scheduler_rejects_duplicate_names():
    fabric, catalog = make_env()
    scheduler = Scheduler(fabric, catalog)
    scheduler.submit("q", LIGHT)
    with pytest.raises(ValueError):
        scheduler.submit("q", LIGHT)


def test_scheduler_rejects_unknown_policy():
    fabric, catalog = make_env()
    with pytest.raises(ValueError):
        Scheduler(fabric, catalog, policy="magic")


def test_scheduler_results_match_solo_execution():
    fabric, catalog = make_env()
    scheduler = Scheduler(fabric, catalog, policy="interference")
    scheduler.submit("heavy", HEAVY)
    scheduler.submit("light", LIGHT, arrival=1e-5)
    records = {r.name: r for r in scheduler.run()}

    from repro.engine import DataflowEngine
    fabric2, catalog2 = make_env()
    solo = DataflowEngine(fabric2, catalog2)
    assert records["heavy"].table.sorted_rows() == \
        solo.execute(HEAVY).table.sorted_rows()
    fabric3, catalog3 = make_env()
    solo3 = DataflowEngine(fabric3, catalog3)
    assert records["light"].table.sorted_rows() == \
        solo3.execute(LIGHT).table.sorted_rows()


def test_interference_policy_spreads_variants():
    """With the shared storage CU as the offload bottleneck, the
    scheduler should not give everyone the same full-offload plan.

    A LIKE predicate can only run on the storage CU or the CPU (NICs
    have no regex engine), so concurrent queries must split between
    the two — the §7.3 scenario.
    """
    fabric = build_fabric(dataflow_spec(storage_cu_scale=0.3,
                                        ssd_gib_per_s=16,
                                        network_gbits=400))
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(4000, chunk_rows=500))
    regex_query = (Query.scan("lineitem")
                   .filter(col("l_comment").like("%express%"))
                   .project(["l_orderkey"]))
    scheduler = Scheduler(fabric, catalog, policy="interference",
                          variants_per_query=3)
    for i in range(4):
        scheduler.submit(f"q{i}", regex_query, arrival=0.0)
    records = scheduler.run()
    variants = [r.variant_name for r in records]
    assert len(set(variants)) >= 2, variants
    # All four still computed the right answer.
    tables = [r.table.sorted_rows() for r in records]
    assert all(t == tables[0] for t in tables)


def test_greedy_policy_always_picks_best():
    fabric, catalog = make_env()
    scheduler = Scheduler(fabric, catalog, policy="greedy")
    for i in range(3):
        scheduler.submit(f"q{i}", HEAVY, arrival=0.0)
    records = scheduler.run()
    variants = {r.variant_name for r in records}
    assert len(variants) == 1


def test_scheduler_makespan_and_latency_reporting():
    fabric, catalog = make_env()
    scheduler = Scheduler(fabric, catalog, policy="greedy")
    scheduler.submit("a", LIGHT, arrival=0.0)
    scheduler.submit("b", LIGHT, arrival=1e-4)
    scheduler.run()
    assert scheduler.makespan() > 0
    assert scheduler.mean_latency() > 0


def test_scheduled_query_latency_properties():
    record = ScheduledQuery("q", arrival=1.0, started=2.0, finished=5.0)
    assert record.latency == 4.0
    assert record.run_time == 3.0


# ---------------------------------------------------------------------------
# Workload utilities
# ---------------------------------------------------------------------------

def test_poisson_arrivals_seeded_and_monotone():
    from repro.scheduler import poisson_arrivals
    a = poisson_arrivals(50, rate=100.0, seed=7)
    b = poisson_arrivals(50, rate=100.0, seed=7)
    assert a == b
    assert all(x < y for x, y in zip(a, a[1:]))
    # Mean inter-arrival roughly 1/rate.
    gaps = [y - x for x, y in zip([0.0] + a, a)]
    assert 0.5 / 100 < sum(gaps) / len(gaps) < 2.0 / 100


def test_poisson_requires_positive_rate():
    from repro.scheduler import poisson_arrivals
    with pytest.raises(ValueError):
        poisson_arrivals(5, rate=0.0)


def test_workload_mix_runs_open_workload():
    from repro.scheduler import Scheduler, WorkloadMix
    fabric, catalog = make_env()
    mix = WorkloadMix(
        templates={
            "heavy": lambda: (Query.scan("lineitem")
                              .filter(col("l_quantity") > 5)
                              .count()),
            "light": lambda: (Query.scan("uniform")
                              .filter(col("k0") < 5).count()),
        },
        weights={"heavy": 1.0, "light": 3.0}, seed=11)
    scheduler = Scheduler(fabric, catalog, policy="interference")
    names = mix.submit_to(scheduler, n=6, rate=5000.0)
    records = scheduler.run()
    assert len(records) == 6
    assert all(r.table is not None for r in records)
    kinds = {name.split("#")[0] for name in names}
    assert kinds <= {"heavy", "light"}


def test_workload_mix_draw_respects_weights_roughly():
    from repro.scheduler import WorkloadMix
    mix = WorkloadMix(templates={"a": lambda: None,
                                 "b": lambda: None},
                      weights={"a": 9.0, "b": 1.0}, seed=3)
    picks = mix.draw(500)
    assert picks.count("a") > 350


def test_workload_mix_validation():
    from repro.scheduler import WorkloadMix
    with pytest.raises(ValueError):
        WorkloadMix(templates={})
    with pytest.raises(ValueError):
        WorkloadMix(templates={"a": lambda: None}, weights={})
