"""The movement ledger: exact bytes × link × operator attribution.

The ledger is the paper's §3.3 cost metric made queryable: for the
same SQL query, the data-flow engine's pushed-down filter must show
up as strictly fewer bytes crossing the CPU-side links than the
Volcano plan, which drags whole chunks up to the host before
filtering.
"""

import pytest

from repro.engine import DataflowEngine, VolcanoEngine
from repro.hardware import build_fabric, dataflow_spec
from repro.relational import Catalog, make_lineitem
from repro.relational.sql import parse_sql
from repro.sim import Trace

ROWS = 8000
SQL = ("SELECT l_orderkey, l_extendedprice FROM lineitem "
       "WHERE l_quantity > 45")


def run_engine(engine_cls):
    fabric = build_fabric(dataflow_spec())
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(ROWS, chunk_rows=1000))
    result = engine_cls(fabric, catalog).execute(parse_sql(SQL))
    return result, fabric.trace


def ledger_bytes(trace, link):
    return sum(row["bytes"] for row in trace.movement_ledger()
               if row["link"] == link)


def test_record_movement_accumulates_cells():
    trace = Trace()
    trace.record_movement("net0", "g.scan", "a->b", 100.0)
    trace.record_movement("net0", "g.scan", "a->b", 50.0)
    trace.record_movement("net0", "g.filter", "a->b", 25.0)
    rows = trace.movement_ledger()
    assert rows == [
        {"link": "net0", "actor": "g.filter", "direction": "a->b",
         "bytes": 25.0, "chunks": 1.0},
        {"link": "net0", "actor": "g.scan", "direction": "a->b",
         "bytes": 150.0, "chunks": 2.0},
    ]
    assert trace.ledger_link_totals() == {"net0": 175.0}


def test_dataflow_ledger_moves_fewer_cpu_side_bytes():
    """Same SQL on both engines: pushdown shrinks host-bound traffic."""
    res_v, trace_v = run_engine(VolcanoEngine)
    res_d, trace_d = run_engine(DataflowEngine)
    assert res_v.table.sorted_rows() == res_d.table.sorted_rows()

    # The membus is the CPU-side link: everything the host touches
    # crosses it.  The ledgers must both attribute traffic to it...
    volcano_bytes = ledger_bytes(trace_v, "compute0.membus")
    dataflow_bytes = ledger_bytes(trace_d, "compute0.membus")
    assert volcano_bytes > 0
    assert dataflow_bytes > 0
    # ...and the pushed-down plan moves strictly fewer bytes there.
    assert dataflow_bytes < volcano_bytes

    # Attribution names real operators, not a catch-all.
    actors = {row["actor"] for row in trace_d.movement_ledger()}
    assert any("filter" in actor for actor in actors)


@pytest.mark.parametrize("engine_cls", [VolcanoEngine, DataflowEngine])
def test_ledger_reconciles_with_link_report(engine_cls):
    """Per-link ledger byte totals equal the link.* byte counters."""
    _result, trace = run_engine(engine_cls)
    totals = trace.ledger_link_totals()
    report = trace.link_report()
    assert totals, "ledger is empty"
    for link, nbytes in totals.items():
        assert nbytes == pytest.approx(report[link]["bytes"]), link
    # Every link that carried bytes is in the ledger too.
    for link, entry in report.items():
        if entry["bytes"] > 0:
            assert link in totals, link
