"""Determinism guarantees: repeat runs and the kernel fast path.

Two properties the perf work must never erode:

* the stack is bit-deterministic — the same seeded scenario run twice
  produces identical checksums, simulated times, movement ledgers,
  and event rings;
* the zero-delay fast path in :class:`repro.sim.Simulator` is an
  implementation detail — forcing the heap-only reference path via
  ``REPRO_SLOW_KERNEL=1`` yields the exact same trace;
* pipeline fusion is likewise an implementation detail — forcing the
  unfused reference path via ``REPRO_NO_FUSE=1`` yields the exact
  same trace (see ``tests/test_fusion.py`` for the full matrix).
"""

from repro import bench
from repro.engine import AggSpec, DataflowEngine, Query
from repro.hardware import build_fabric, dataflow_spec
from repro.obs import table_checksum
from repro.relational import Catalog, col, make_lineitem, make_orders
from repro.sim import Simulator

ROWS = 2000


def _catalog():
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(ROWS, orders=ROWS // 4,
                                               chunk_rows=500))
    catalog.register("orders", make_orders(ROWS // 4, chunk_rows=500))
    return catalog


def _query():
    return (Query.scan("lineitem")
            .filter(col("l_quantity") > 10)
            .join(Query.scan("orders").filter(col("o_priority") <= 2),
                  "l_orderkey", "o_orderkey")
            .aggregate(["o_priority"],
                       [AggSpec("sum", "l_extendedprice", "rev")]))


def _run_once() -> dict:
    """One full data-flow run, captured down to the event ring."""
    fabric = build_fabric(dataflow_spec())
    result = DataflowEngine(fabric, _catalog()).execute(_query())
    return {
        "checksum": table_checksum(result.table),
        "sim_time_s": result.elapsed,
        "ledger": fabric.trace.movement_ledger(),
        "ring": [event.to_dict() for event in fabric.trace.events],
    }


def test_repeat_runs_are_bit_identical():
    first, second = _run_once(), _run_once()
    assert first["checksum"] == second["checksum"]
    assert first["sim_time_s"] == second["sim_time_s"]
    assert first["ledger"] == second["ledger"]
    assert first["ring"] == second["ring"]


def test_smoke_records_are_bit_identical():
    """Harness-level repeat: everything but wall time matches."""
    first = bench.run_smoke(rows=ROWS, only=["scheduler_mix"])[0]
    second = bench.run_smoke(rows=ROWS, only=["scheduler_mix"])[0]
    for key in sorted(set(first) | set(second)):
        if key == "wall_time_s":
            continue
        assert first[key] == second[key], key


def test_slow_kernel_flag_disables_fast_path(monkeypatch):
    monkeypatch.delenv("REPRO_SLOW_KERNEL", raising=False)
    assert Simulator().fast_path is True
    monkeypatch.setenv("REPRO_SLOW_KERNEL", "1")
    sim = Simulator()
    assert sim.fast_path is False

    def proc():
        yield sim.timeout(0.0)
        evt = sim.event()
        evt.succeed("x")
        value = yield evt
        return value

    # With the fast path off every event goes through the heap.
    assert sim.run_process(proc()) == "x"
    assert not sim._immediate


def test_fast_and_slow_kernel_traces_identical(monkeypatch):
    """The fast path must not change a single simulated quantity."""
    monkeypatch.delenv("REPRO_SLOW_KERNEL", raising=False)
    fast = _run_once()
    monkeypatch.setenv("REPRO_SLOW_KERNEL", "1")
    slow = _run_once()
    assert fast["checksum"] == slow["checksum"]
    assert fast["sim_time_s"] == slow["sim_time_s"]
    assert fast["ledger"] == slow["ledger"]
    assert fast["ring"] == slow["ring"]


def test_fast_and_slow_smoke_scenarios_identical(monkeypatch):
    """Guard at harness level too, over the join+agg scenario."""
    monkeypatch.delenv("REPRO_SLOW_KERNEL", raising=False)
    fast = bench.run_smoke(rows=ROWS, only=["join_agg"])[0]
    monkeypatch.setenv("REPRO_SLOW_KERNEL", "1")
    slow = bench.run_smoke(rows=ROWS, only=["join_agg"])[0]
    for key in sorted(set(fast) | set(slow)):
        if key == "wall_time_s":
            continue
        assert fast[key] == slow[key], key


def test_fused_and_unfused_traces_identical(monkeypatch):
    """Fusion must not change a single simulated quantity."""
    monkeypatch.delenv("REPRO_NO_FUSE", raising=False)
    fused = _run_once()
    monkeypatch.setenv("REPRO_NO_FUSE", "1")
    unfused = _run_once()
    assert fused["checksum"] == unfused["checksum"]
    assert fused["sim_time_s"] == unfused["sim_time_s"]
    assert fused["ledger"] == unfused["ledger"]
    assert fused["ring"] == unfused["ring"]


def test_fused_and_unfused_smoke_scenarios_identical(monkeypatch):
    """Guard at harness level too, over the join+agg scenario."""
    monkeypatch.delenv("REPRO_NO_FUSE", raising=False)
    fused = bench.run_smoke(rows=ROWS, only=["join_agg"])[0]
    monkeypatch.setenv("REPRO_NO_FUSE", "1")
    unfused = bench.run_smoke(rows=ROWS, only=["join_agg"])[0]
    for key in sorted(set(fused) | set(unfused)):
        if key == "wall_time_s":
            continue
        assert fused[key] == unfused[key], key


def test_kernel_orders_same_instant_events_by_schedule_order():
    """Interleaved zero-delay and due-now heap events keep seq order."""
    sim = Simulator()
    order = []

    def waiter(tag, evt):
        value = yield evt
        order.append((tag, sim.now, value))

    def driver():
        # A zero-delay timeout (heap on slow path, deque on fast) and
        # a succeed() race at the same instant; sequence order wins.
        t = sim.timeout(1.0, "t")
        e = sim.event()
        sim.process(waiter("a", t))
        sim.process(waiter("b", e))
        yield sim.timeout(1.0)
        e.succeed("e")
        yield sim.timeout(0.0)

    sim.run_process(driver())
    assert order == [("a", 1.0, "t"), ("b", 1.0, "e")]
