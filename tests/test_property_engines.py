"""Property-based engine equivalence: random queries, two engines.

Hypothesis generates random predicates, projections, aggregations and
placements; the Volcano engine and the data-flow engine must agree on
every one of them.  This is the repo's strongest end-to-end oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    AggSpec,
    DataflowEngine,
    Query,
    VolcanoEngine,
    cpu_only,
    pushdown,
)
from repro.hardware import build_fabric, dataflow_spec
from repro.relational import Catalog, col, make_uniform_table

ROWS = 1200
DISTINCT = 40
CHUNK = 150

COLUMNS = ["k0", "k1", "k2"]


def fresh_env():
    fabric = build_fabric(dataflow_spec())
    catalog = Catalog()
    catalog.register("t", make_uniform_table(ROWS, columns=3,
                                             distinct=DISTINCT,
                                             chunk_rows=CHUNK))
    return fabric, catalog


# Strategy: a random predicate over the integer columns.
comparisons = st.sampled_from(["<", "<=", ">", ">=", "==", "!="])
column_names = st.sampled_from(COLUMNS)
values = st.integers(min_value=-5, max_value=DISTINCT + 5)


@st.composite
def predicates(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        name = draw(column_names)
        op = draw(comparisons)
        value = draw(values)
        c = col(name)
        return {"<": c < value, "<=": c <= value, ">": c > value,
                ">=": c >= value, "==": c == value,
                "!=": c != value}[op]
    left = draw(predicates(depth=depth - 1))
    right = draw(predicates(depth=depth - 1))
    return (left & right) if draw(st.booleans()) else (left | right)


@st.composite
def query_plans(draw):
    query = Query.scan("t")
    if draw(st.booleans()):
        query = query.filter(draw(predicates()))
    shape = draw(st.sampled_from(["plain", "project", "aggregate",
                                  "count", "sort_limit"]))
    if shape == "project":
        keep = draw(st.lists(column_names, min_size=1, max_size=3,
                             unique=True))
        query = query.project(keep)
    elif shape == "aggregate":
        group = draw(column_names)
        agg_col = draw(column_names)
        op = draw(st.sampled_from(["sum", "count", "min", "max",
                                   "avg"]))
        spec = (AggSpec("count", alias="n") if op == "count"
                else AggSpec(op, agg_col, "agg"))
        query = query.aggregate([group], [spec])
    elif shape == "count":
        query = query.count()
    elif shape == "sort_limit":
        keys = draw(st.lists(column_names, min_size=1, max_size=2,
                             unique=True))
        query = query.sort(keys).limit(draw(
            st.integers(min_value=0, max_value=ROWS)))
    return query


@given(query=query_plans(), use_pushdown=st.booleans())
@settings(max_examples=25, deadline=None)
def test_random_queries_agree(query, use_pushdown):
    fabric_v, catalog_v = fresh_env()
    res_v = VolcanoEngine(fabric_v, catalog_v).execute(query)

    fabric_d, catalog_d = fresh_env()
    placement = (pushdown(query.plan, fabric_d) if use_pushdown
                 else cpu_only(query.plan, fabric_d))
    res_d = DataflowEngine(fabric_d, catalog_d).execute(
        query, placement=placement)

    rows_v = res_v.table.sorted_rows()
    rows_d = res_d.table.sorted_rows()
    assert len(rows_v) == len(rows_d)
    for a, b in zip(rows_v, rows_d):
        assert len(a) == len(b)
        for va, vb in zip(a, b):
            if isinstance(va, float):
                assert va == pytest.approx(vb, rel=1e-9, abs=1e-9) or \
                    (np.isnan(va) and np.isnan(vb))
            else:
                assert va == vb


@given(query=query_plans())
@settings(max_examples=10, deadline=None)
def test_pushdown_never_moves_more_network_bytes(query):
    fabric_c, catalog_c = fresh_env()
    res_c = DataflowEngine(fabric_c, catalog_c).execute(
        query, placement=cpu_only(query.plan, fabric_c))

    fabric_p, catalog_p = fresh_env()
    res_p = DataflowEngine(fabric_p, catalog_p).execute(
        query, placement=pushdown(query.plan, fabric_p))

    assert res_p.bytes_on("network") <= res_c.bytes_on("network") + 1
