"""Tests for the cost model, enumeration, and optimizer ranking."""

import pytest

from repro.engine import (
    AggSpec,
    DataflowEngine,
    Query,
    cpu_only,
    pushdown,
)
from repro.hardware import build_fabric, conventional_spec, dataflow_spec
from repro.optimizer import (
    CostModel,
    Optimizer,
    enumerate_placements,
)
from repro.relational import Catalog, col, make_lineitem, make_orders


def make_env(rows=4000, compute_nodes=1, **spec_overrides):
    fabric = build_fabric(dataflow_spec(compute_nodes=compute_nodes,
                                        **spec_overrides))
    catalog = Catalog()
    catalog.register("lineitem",
                     make_lineitem(rows, orders=rows // 4,
                                   chunk_rows=500))
    catalog.register("orders", make_orders(rows // 4, chunk_rows=500))
    return fabric, catalog


SELECTIVE = (Query.scan("lineitem")
             .filter(col("l_quantity") > 45)
             .project(["l_orderkey"]))


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------

def test_cost_model_pushdown_moves_fewer_network_bytes():
    fabric, catalog = make_env()
    model = CostModel(fabric, catalog)
    plan = SELECTIVE.plan
    cost_push = model.cost(plan, pushdown(plan, fabric))
    cost_cpu = model.cost(plan, cpu_only(plan, fabric))
    assert cost_push.network_bytes < cost_cpu.network_bytes
    assert cost_push.total_bytes < cost_cpu.total_bytes
    # Both pipelines are scan-bottlenecked, so makespans can tie —
    # but pushdown never predicts worse.
    assert cost_push.bottleneck_time <= cost_cpu.bottleneck_time


def test_cost_model_scan_bytes_exact():
    """Scan volume is known exactly — model must match the table."""
    fabric, catalog = make_env()
    model = CostModel(fabric, catalog)
    plan = Query.scan("lineitem").plan
    cost = model.cost(plan, cpu_only(plan, fabric))
    assert cost.segment_bytes["storage"] == pytest.approx(
        catalog.table("lineitem").nbytes, rel=0.01)


def test_cost_model_exact_cardinalities_injectable():
    fabric, catalog = make_env()
    plan = SELECTIVE.plan
    filter_node = plan.children[0]
    exact = {filter_node.node_id: 123.0}
    model = CostModel(fabric, catalog, cardinalities=exact)
    assert model.rows_out(filter_node) == 123.0


def test_cost_model_cpu_only_network_matches_simulation():
    """CPU-only placement: network bytes = table bytes, and the
    simulated counter agrees (model and simulator share accounting)."""
    fabric, catalog = make_env()
    model = CostModel(fabric, catalog)
    plan = SELECTIVE.plan
    predicted = model.cost(plan, cpu_only(plan, fabric)).network_bytes
    engine = DataflowEngine(fabric, catalog)
    result = engine.execute(SELECTIVE,
                            placement=cpu_only(plan, fabric))
    # Each network hop counts once; predicted is per-hop too.
    assert result.bytes_on("network") == pytest.approx(predicted, rel=0.01)


def test_cost_model_aggregate_chain_reduces_stream():
    fabric, catalog = make_env()
    model = CostModel(fabric, catalog)
    query = (Query.scan("lineitem")
             .aggregate(["l_returnflag"],
                        [AggSpec("sum", "l_extendedprice", "rev")]))
    plan = query.plan
    cost_staged = model.cost(plan, pushdown(plan, fabric))
    cost_cpu = model.cost(plan, cpu_only(plan, fabric))
    assert cost_staged.network_bytes < cost_cpu.network_bytes


# ---------------------------------------------------------------------------
# Enumeration
# ---------------------------------------------------------------------------

def test_enumeration_yields_multiple_options():
    fabric, catalog = make_env()
    plans = list(enumerate_placements(SELECTIVE.plan, fabric))
    assert len(plans) > 3
    # Sites used must differ across candidates.
    signatures = {tuple(sorted((k, tuple(v))
                               for k, v in p.sites.items()))
                  for p in plans}
    assert len(signatures) == len(plans)


def test_enumeration_respects_monotonicity():
    fabric, catalog = make_env()
    from repro.engine.placement import data_path_sites
    path = data_path_sites(fabric)
    index = {site: i for i, site in enumerate(path)}
    plan = SELECTIVE.plan
    for placement in enumerate_placements(plan, fabric):
        for node in plan.walk():
            my_first = placement.sites[node.node_id][0]
            for child in node.children:
                child_last = placement.sites[child.node_id][-1]
                assert index.get(child_last, len(path) - 1) <= \
                    index.get(my_first, len(path) - 1)


def test_enumeration_capped():
    fabric, catalog = make_env()
    query = Query.scan("lineitem")
    for i in range(6):
        query = query.filter(col("l_quantity") > i)
    plans = list(enumerate_placements(query.plan, fabric,
                                      max_placements=10))
    assert len(plans) == 10


def test_enumeration_all_valid():
    fabric, catalog = make_env()
    query = (Query.scan("lineitem")
             .filter(col("l_quantity") > 10)
             .aggregate(["l_returnflag"], [AggSpec("count", alias="n")]))
    for placement in enumerate_placements(query.plan, fabric):
        placement.validate(query.plan, fabric)


# ---------------------------------------------------------------------------
# Optimizer
# ---------------------------------------------------------------------------

def test_optimizer_prefers_offload_on_smart_fabric():
    fabric, catalog = make_env()
    optimizer = Optimizer(fabric, catalog)
    best = optimizer.optimize(SELECTIVE)
    used_sites = {s for chain in best.placement.sites.values()
                  for s in chain}
    assert used_sites & {"storage.cu", "storage.nic"}, used_sites


def test_optimizer_on_dumb_fabric_falls_back_to_cpu():
    fabric = build_fabric(conventional_spec())
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(2000, chunk_rows=500))
    optimizer = Optimizer(fabric, catalog)
    best = optimizer.optimize(SELECTIVE)
    used_sites = {s for chain in best.placement.sites.values()
                  for s in chain}
    assert used_sites == {"compute0.cpu"}


def test_optimizer_choice_beats_cpu_only_in_simulation():
    """The ranking is consistent with simulated reality."""
    fabric, catalog = make_env()
    optimizer = Optimizer(fabric, catalog)
    best = optimizer.optimize(SELECTIVE)

    fabric1, catalog1 = make_env()
    engine1 = DataflowEngine(fabric1, catalog1)
    res_best = engine1.execute(SELECTIVE, placement=best.placement)

    fabric2, catalog2 = make_env()
    engine2 = DataflowEngine(fabric2, catalog2)
    res_cpu = engine2.execute(
        SELECTIVE, placement=cpu_only(SELECTIVE.plan, fabric2))

    assert res_best.table.sorted_rows() == res_cpu.table.sorted_rows()
    assert res_best.total_bytes_moved <= res_cpu.total_bytes_moved
    assert res_best.elapsed <= res_cpu.elapsed


def test_plan_variants_include_best_and_cpu_only():
    fabric, catalog = make_env()
    optimizer = Optimizer(fabric, catalog)
    variants = optimizer.plan_variants(SELECTIVE, n=3)
    assert len(variants) >= 2
    names = [v.placement.name for v in variants]
    assert "cpu-only" in names
    # Best first.
    scores = [v.score for v in variants[:-1]]
    assert scores == sorted(scores)


def test_variants_are_distinct():
    fabric, catalog = make_env()
    optimizer = Optimizer(fabric, catalog)
    variants = optimizer.plan_variants(SELECTIVE, n=4)
    signatures = {Optimizer._signature(v.placement) for v in variants}
    assert len(signatures) == len(variants)


# ---------------------------------------------------------------------------
# Distributed join planning (Figure 4 in the plan space)
# ---------------------------------------------------------------------------

JOIN_QUERY = (Query.scan("lineitem")
              .filter(col("l_quantity") > 5)
              .join(Query.scan("orders"), "l_orderkey", "o_orderkey")
              .aggregate(["o_priority"],
                         [AggSpec("count", alias="n")]))


def test_enumeration_offers_partitioned_join_on_multinode_fabric():
    fabric, catalog = make_env(compute_nodes=2)
    from repro.optimizer import enumerate_placements
    partitions = {p.partitions for p in
                  enumerate_placements(JOIN_QUERY.plan, fabric)}
    assert partitions == {1, 2}


def test_enumeration_single_node_has_no_partitioned_variant():
    fabric, catalog = make_env()
    from repro.optimizer import enumerate_placements
    partitions = {p.partitions for p in
                  enumerate_placements(JOIN_QUERY.plan, fabric)}
    assert partitions == {1}


def test_cost_model_partitioned_join_reduces_per_node_device_time():
    fabric, catalog = make_env(compute_nodes=2)
    model = CostModel(fabric, catalog)
    single = pushdown(JOIN_QUERY.plan, fabric)
    double = pushdown(JOIN_QUERY.plan, fabric)
    double.partitions = 2
    cost1 = model.cost(JOIN_QUERY.plan, single)
    cost2 = model.cost(JOIN_QUERY.plan, double)
    # Node 0's CPU sheds join work to node 1 (the aggregate above the
    # join stays on node 0, so the drop is less than a full half).
    assert cost2.device_time["compute0.cpu"] < \
        0.85 * cost1.device_time["compute0.cpu"]
    assert cost2.device_time["compute1.cpu"] > 0
    # The scatter site paid partition work.
    assert cost2.device_time.get("storage.nic", 0.0) > 0


def test_optimizer_picks_distributed_join_when_it_wins():
    """With a join-bound query on a fast network, 2-way wins."""
    fabric, catalog = make_env(rows=8000,
                               compute_nodes=2,
                               network_gbits=400,
                               ssd_gib_per_s=32)
    optimizer = Optimizer(fabric, catalog, max_placements=512)
    best = optimizer.optimize(JOIN_QUERY)
    assert best.placement.partitions == 2
    # And the simulation agrees the chosen plan runs correctly.
    engine = DataflowEngine(fabric, catalog)
    result = engine.execute(JOIN_QUERY, placement=best.placement)
    assert result.rows == 5
