"""Tests for credit channels, rate limiting, and stage graphs."""

import numpy as np
import pytest

from repro.engine.logical import AggSpec
from repro.engine.operators import (
    FilterOp,
    MergeAggregate,
    PartialAggregate,
    PartitionOp,
    ProjectOp,
)
from repro.flow import END, CreditChannel, RateLimiter, StageGraph
from repro.hardware import build_fabric, dataflow_spec
from repro.relational import (
    DataType,
    Field,
    Schema,
    col,
    make_uniform_table,
)
from repro.sim import Simulator, Store, Trace


# ---------------------------------------------------------------------------
# RateLimiter
# ---------------------------------------------------------------------------

def test_rate_limiter_paces_traffic():
    sim = Simulator()
    limiter = RateLimiter(sim, rate=100.0, burst=10.0)

    def proc():
        for _ in range(5):
            yield from limiter.acquire(100.0)
        return sim.now

    elapsed = sim.run_process(proc())
    # 500 bytes at 100 B/s with a 10-byte burst: ~4.9s.
    assert elapsed == pytest.approx(4.9, rel=0.05)


def test_rate_limiter_set_rate_takes_effect():
    sim = Simulator()
    limiter = RateLimiter(sim, rate=100.0, burst=1.0)

    def proc():
        yield from limiter.acquire(100.0)
        first = sim.now
        limiter.set_rate(1000.0)
        yield from limiter.acquire(100.0)
        return first, sim.now - first

    first, second = sim.run_process(proc())
    assert second < first


def test_rate_limiter_rejects_bad_rate():
    sim = Simulator()
    with pytest.raises(ValueError):
        RateLimiter(sim, rate=0.0)
    limiter = RateLimiter(sim, rate=1.0)
    with pytest.raises(ValueError):
        limiter.set_rate(-1.0)


# ---------------------------------------------------------------------------
# CreditChannel
# ---------------------------------------------------------------------------

def channel_env(credits=2):
    sim = Simulator()
    trace = Trace()
    inbox = Store(sim)
    channel = CreditChannel(sim, trace, "ch", links=[], inbox=inbox,
                            credits=credits)
    return sim, trace, inbox, channel


def test_channel_delivers_in_order():
    sim, trace, inbox, channel = channel_env(credits=10)
    received = []

    def producer():
        for i in range(5):
            yield from channel.send(i, 10.0)

    def consumer():
        for _ in range(5):
            ch, payload = yield inbox.get()
            received.append(payload)
            ch.ack()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert received == [0, 1, 2, 3, 4]


def test_channel_outstanding_never_exceeds_credits():
    """The §7.1 invariant: occupancy bounded by the credit window."""
    sim, trace, inbox, channel = channel_env(credits=3)

    def producer():
        for i in range(20):
            yield from channel.send(i, 10.0)

    def consumer():
        for _ in range(20):
            ch, _payload = yield inbox.get()
            yield sim.timeout(1.0)   # slow consumer
            ch.ack()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert channel.max_outstanding <= 3


def test_channel_blocks_producer_when_credits_exhausted():
    sim, trace, inbox, channel = channel_env(credits=1)
    times = []

    def producer():
        for i in range(3):
            yield from channel.send(i, 0.0)
            times.append(sim.now)

    def consumer():
        for _ in range(3):
            ch, _ = yield inbox.get()
            yield sim.timeout(5.0)
            ch.ack()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert times[1] >= 5.0
    assert times[2] >= 10.0


def test_channel_counts_control_traffic():
    sim, trace, inbox, channel = channel_env(credits=4)

    def producer():
        for i in range(4):
            yield from channel.send(i, 10.0)

    def consumer():
        for _ in range(4):
            ch, _ = yield inbox.get()
            ch.ack()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert trace.counter("flow.ch.control_bytes") == 4 * 16


def test_channel_requires_positive_credits():
    sim = Simulator()
    with pytest.raises(ValueError):
        CreditChannel(sim, Trace(), "ch", links=[], inbox=Store(sim),
                      credits=0)


def test_end_sentinel_repr():
    assert repr(END) == "END"


# ---------------------------------------------------------------------------
# StageGraph end-to-end
# ---------------------------------------------------------------------------

def test_stage_graph_filter_pipeline():
    fabric = build_fabric(dataflow_spec())
    table = make_uniform_table(5000, columns=2, distinct=100, seed=9,
                               chunk_rows=1000)
    graph = StageGraph(fabric, name="t1")
    src = graph.source("scan", table, medium=fabric.storage.medium)
    filt = graph.stage("filter", "storage.cu", [FilterOp(col("k0") < 50)])
    sink = graph.sink("collect", "compute0.cpu")
    graph.connect(src, filt)
    graph.connect(filt, sink)
    result = graph.run()

    expected = table.combined().filter(table.column("k0") < 50)
    assert result.table().sorted_rows() == expected.sorted_rows()
    assert result.elapsed > 0
    # Data crossed the network (storage -> compute).
    assert fabric.trace.counter("movement.network.bytes") > 0


def test_stage_graph_pushdown_reduces_network_bytes():
    table = make_uniform_table(20000, columns=4, distinct=1000, seed=10,
                               chunk_rows=2000)
    predicate = col("k0") < 100   # ~10% selectivity

    def run(pushdown):
        fabric = build_fabric(dataflow_spec())
        graph = StageGraph(fabric, name="t")
        src = graph.source("scan", table, medium=fabric.storage.medium)
        site = "storage.cu" if pushdown else "compute0.cpu"
        filt = graph.stage("filter", site, [FilterOp(predicate)])
        sink = graph.sink("out", "compute0.cpu")
        graph.connect(src, filt)
        graph.connect(filt, sink)
        result = graph.run()
        return result, fabric.trace.counter("movement.network.bytes")

    res_push, net_push = run(True)
    res_cpu, net_cpu = run(False)
    assert res_push.table().sorted_rows() == res_cpu.table().sorted_rows()
    assert net_push < net_cpu * 0.25


def test_stage_graph_staged_aggregation():
    """Partial agg at storage, merge at NICs, final at CPU (§4.4)."""
    fabric = build_fabric(dataflow_spec())
    table = make_uniform_table(10000, columns=2, distinct=20, seed=11,
                               chunk_rows=500)
    schema = table.schema
    specs = [AggSpec("sum", "k1", "total"), AggSpec("count", alias="n")]
    output = Schema([Field("k0", DataType.INT64),
                     Field("total", DataType.FLOAT64),
                     Field("n", DataType.INT64)])

    graph = StageGraph(fabric, name="agg")
    src = graph.source("scan", table, medium=fabric.storage.medium)
    partial = graph.stage("partial", "storage.cu",
                          [PartialAggregate(schema, ["k0"], specs)])
    merge1 = graph.stage("merge_snic", "storage.nic",
                         [MergeAggregate(schema, ["k0"], specs)])
    merge2 = graph.stage("merge_cnic", "compute0.nic",
                         [MergeAggregate(schema, ["k0"], specs)])
    final = graph.sink("final", "compute0.cpu",
                       [MergeAggregate(schema, ["k0"], specs, final=True,
                                       output_schema=output)])
    graph.connect(src, partial)
    graph.connect(partial, merge1)
    graph.connect(merge1, merge2)
    graph.connect(merge2, final)
    result = graph.run()

    got = result.table()
    k0 = table.column("k0")
    k1 = table.column("k1")
    for g, total, n in got.sorted_rows():
        mask = k0 == g
        assert total == k1[mask].sum()
        assert n == mask.sum()
    assert got.num_rows == len(np.unique(k0))


def test_stage_graph_partition_router():
    fabric = build_fabric(dataflow_spec(compute_nodes=2))
    table = make_uniform_table(4000, columns=2, distinct=500, seed=12,
                               chunk_rows=400)
    graph = StageGraph(fabric, name="scatter")
    src = graph.source("scan", table, medium=fabric.storage.medium)
    scatter = graph.stage("scatter", "storage.nic",
                          [PartitionOp("k0", 2)], router="partition")
    sink0 = graph.sink("n0", "compute0.cpu")
    sink1 = graph.sink("n1", "compute1.cpu")
    graph.connect(src, scatter)
    graph.connect(scatter, sink0)
    graph.connect(scatter, sink1)
    result = graph.run()

    rows0 = result.tables["n0"].num_rows
    rows1 = result.tables["n1"].num_rows
    assert rows0 + rows1 == 4000
    assert rows0 > 0 and rows1 > 0
    combined = (result.tables["n0"].sorted_rows()
                + result.tables["n1"].sorted_rows())
    assert sorted(combined) == table.sorted_rows()


def test_stage_graph_rejects_unconnected_stage():
    fabric = build_fabric(dataflow_spec())
    graph = StageGraph(fabric, name="bad")
    graph.stage("orphan", "compute0.cpu", [ProjectOp(["x"])])
    with pytest.raises(RuntimeError):
        graph.start()


def test_stage_graph_duplicate_name_rejected():
    fabric = build_fabric(dataflow_spec())
    table = make_uniform_table(10, columns=1)
    graph = StageGraph(fabric, name="dup")
    graph.source("s", table)
    with pytest.raises(ValueError):
        graph.source("s", table)
