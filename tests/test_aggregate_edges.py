"""Edge cases in aggregation semantics across both engines."""


import numpy as np

from repro.engine import AggSpec, DataflowEngine, Query, VolcanoEngine
from repro.engine.logical import Aggregate
from repro.hardware import build_fabric, dataflow_spec
from repro.relational import (
    Catalog,
    DataType,
    Field,
    Schema,
    Table,
    col,
)


def env_with(values: dict):
    schema = Schema([Field(n, DataType.INT64) for n in values])
    table = Table.from_arrays(
        schema, {n: np.asarray(v, dtype=np.int64)
                 for n, v in values.items()}, chunk_rows=3)
    fabric = build_fabric(dataflow_spec())
    catalog = Catalog()
    catalog.register("t", table)
    return fabric, catalog


def run_both(fabric_catalog_factory, query):
    fabric, catalog = fabric_catalog_factory()
    res_v = VolcanoEngine(fabric, catalog).execute(query)
    fabric2, catalog2 = fabric_catalog_factory()
    res_d = DataflowEngine(fabric2, catalog2).execute(query)
    assert res_v.table.sorted_rows() == res_d.table.sorted_rows()
    return res_v


def test_count_star_empty_table():
    factory = lambda: env_with({"x": []})
    result = run_both(factory, Query.scan("t").count())
    assert result.table.column("count").tolist() == [0]


def test_grouped_aggregate_empty_table():
    factory = lambda: env_with({"g": [], "v": []})
    result = run_both(
        factory,
        Query.scan("t").aggregate(["g"], [AggSpec("sum", "v", "s")]))
    assert result.rows == 0


def test_avg_with_single_row_groups():
    factory = lambda: env_with({"g": [1, 2, 3], "v": [10, 20, 30]})
    result = run_both(
        factory,
        Query.scan("t").aggregate(["g"], [AggSpec("avg", "v", "m")]))
    got = dict(zip(result.table.column("g").tolist(),
                   result.table.column("m").tolist()))
    assert got == {1: 10.0, 2: 20.0, 3: 30.0}


def test_negative_values_min_max_sum():
    factory = lambda: env_with({"g": [0, 0, 0], "v": [-5, -10, 3]})
    query = Query.scan("t").aggregate(
        ["g"], [AggSpec("min", "v", "lo"), AggSpec("max", "v", "hi"),
                AggSpec("sum", "v", "s")])
    result = run_both(factory, query)
    row = result.table.sorted_rows()[0]
    assert row == (0, -10.0, 3.0, -12.0)


def test_multiple_counts_and_shared_columns():
    factory = lambda: env_with({"g": [1, 1, 2], "v": [5, 6, 7]})
    query = Query.scan("t").aggregate(
        ["g"], [AggSpec("count", alias="n"),
                AggSpec("sum", "v", "s"),
                AggSpec("avg", "v", "m")])
    result = run_both(factory, query)
    rows = {r[0]: r[1:] for r in result.table.sorted_rows()}
    assert rows[1] == (2, 11.0, 5.5)
    assert rows[2] == (1, 7.0, 7.0)


def test_group_by_two_columns():
    factory = lambda: env_with(
        {"a": [1, 1, 2, 2, 1], "b": [0, 0, 0, 1, 1],
         "v": [1, 2, 3, 4, 5]})
    query = Query.scan("t").aggregate(
        ["a", "b"], [AggSpec("sum", "v", "s")])
    result = run_both(factory, query)
    got = {(r[0], r[1]): r[2] for r in result.table.sorted_rows()}
    assert got == {(1, 0): 3.0, (1, 1): 5.0, (2, 0): 3.0, (2, 1): 4.0}


def test_aggregate_above_join_estimates_and_runs():
    """An aggregate whose child is a join (no base-table stats path)."""
    fabric = build_fabric(dataflow_spec())
    catalog = Catalog()
    schema = Schema.of(("k", DataType.INT64), ("v", DataType.INT64))
    catalog.register("a", Table.from_arrays(
        schema, {"k": np.arange(20), "v": np.arange(20)},
        chunk_rows=5))
    catalog.register("b", Table.from_arrays(
        schema, {"k": np.arange(0, 20, 2), "v": np.arange(10)},
        chunk_rows=5))
    query = (Query.scan("a").join(Query.scan("b"), "k", "k")
             .aggregate([], [AggSpec("count", alias="n")]))
    agg: Aggregate = query.plan
    # Cardinality estimation must not crash on a join child.
    assert agg.estimate_rows(catalog) >= 1.0
    res = DataflowEngine(fabric, catalog).execute(query)
    assert res.table.column("n").tolist() == [10]


def test_filter_selectivity_above_join_defaults():
    """Filter above a join: column stats unavailable -> defaults."""
    from repro.engine.logical import Filter
    fabric = build_fabric(dataflow_spec())
    catalog = Catalog()
    schema = Schema.of(("k", DataType.INT64), ("v", DataType.INT64))
    catalog.register("a", Table.from_arrays(
        schema, {"k": np.arange(10), "v": np.arange(10)},
        chunk_rows=5))
    query = (Query.scan("a").join(Query.scan("a"), "k", "k")
             .filter(col("v") > 5))
    filter_node: Filter = query.plan
    sel = filter_node.selectivity(catalog)
    assert 0.0 < sel <= 1.0
