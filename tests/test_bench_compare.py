"""The bench regression gate: --compare against a baseline report."""

import copy
import json

import pytest

from repro import bench
from repro.cli import main as cli_main
from repro.obs import make_report, validate_report

ROWS = 2500


@pytest.fixture(scope="module")
def record():
    return bench.run_smoke(rows=ROWS, only=["filter_project"])[0]


def baseline_for(record):
    return make_report("base", [copy.deepcopy(record)],
                       created="2026-08-06")


def test_compare_identical_records_passes(record):
    assert bench.compare_reports(baseline_for(record), [record]) == []


def test_compare_flags_checksum_and_rows_exactly(record):
    baseline = baseline_for(record)
    baseline["smoke"][0]["checksum"] = "0" * 64
    violations = bench.compare_reports(baseline, [record])
    assert any("checksum" in v for v in violations)

    baseline = baseline_for(record)
    baseline["smoke"][0]["rows"] = record["rows"] + 1
    assert bench.compare_reports(baseline, [record])


def test_compare_tolerance_on_sim_time(record):
    baseline = baseline_for(record)
    # 0.5% drift: inside the default 1% tolerance.
    baseline["smoke"][0]["sim_time_s"] = record["sim_time_s"] * 1.005
    assert bench.compare_reports(baseline, [record]) == []
    # 5% drift: a regression at the default tolerance...
    baseline["smoke"][0]["sim_time_s"] = record["sim_time_s"] * 1.05
    violations = bench.compare_reports(baseline, [record])
    assert any("sim_time_s" in v for v in violations)
    # ...but acceptable when the caller widens the window.
    assert bench.compare_reports(baseline, [record],
                                 tolerance=0.10) == []


def test_compare_flags_link_bytes_and_missing_scenarios(record):
    baseline = baseline_for(record)
    link = next(iter(baseline["smoke"][0]["links"]))
    baseline["smoke"][0]["links"][link]["bytes"] *= 2.0
    violations = bench.compare_reports(baseline, [record])
    assert any(link in v for v in violations)

    baseline = baseline_for(record)
    baseline["smoke"][0]["name"] = "filter_project"
    assert any("missing" in v.lower()
               for v in bench.compare_reports(baseline, []))


def test_run_compare_passes_then_catches_regression(record, tmp_path):
    """End to end: a doctored baseline flips the exit code."""
    path = tmp_path / "BENCH_base.json"
    path.write_text(json.dumps(baseline_for(record)))
    assert bench.run_compare(str(path)) == 0

    doctored = baseline_for(record)
    doctored["smoke"][0]["sim_time_s"] *= 1.5
    path.write_text(json.dumps(doctored))
    assert bench.run_compare(str(path)) == 1


def test_cli_compare_exit_codes(record, tmp_path, capsys):
    path = tmp_path / "BENCH_base.json"
    path.write_text(json.dumps(baseline_for(record)))
    assert cli_main(["bench", "--compare", str(path)]) == 0
    capsys.readouterr()

    doctored = baseline_for(record)
    doctored["smoke"][0]["checksum"] = "f" * 64
    path.write_text(json.dumps(doctored))
    assert cli_main(["bench", "--compare", str(path)]) == 1
    assert "REGRESSION" in capsys.readouterr().err


def test_v1_baseline_gates_v2_run(record):
    """The checked-in seed predates event tracing but still compares."""
    baseline = baseline_for(record)
    baseline["schema"] = "repro.bench/v1"
    for rec in baseline["smoke"]:
        for key in ("events", "events_truncated", "stalls", "ledger"):
            rec.pop(key, None)
    assert validate_report(baseline) == ""
    assert bench.compare_reports(baseline, [record]) == []


def test_seed_baseline_is_still_valid():
    import os
    path = os.path.join(os.path.dirname(__file__), "..",
                        "benchmarks", "BENCH_seed.json")
    with open(path) as handle:
        seed = json.load(handle)
    assert seed["schema"] == "repro.bench/v1"
    assert validate_report(seed) == ""


def test_v2_schema_requires_event_stats(record):
    # v3 keeps every v2 smoke-record requirement.
    report = make_report("unit", [copy.deepcopy(record)])
    assert report["schema"] == "repro.bench/v3"
    assert validate_report(report) == ""

    broken = copy.deepcopy(report)
    del broken["smoke"][0]["events"]["truncated"]
    with pytest.raises(ValueError, match="events"):
        validate_report(broken)

    broken = copy.deepcopy(report)
    broken["smoke"][0]["events_truncated"] = "no"
    with pytest.raises(ValueError, match="events_truncated"):
        validate_report(broken)
