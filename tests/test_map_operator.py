"""Tests for computed-column projection (Map) across the stack."""

import numpy as np
import pytest

from repro.engine import (
    AggSpec,
    DataflowEngine,
    Query,
    VolcanoEngine,
    pushdown,
)
from repro.engine.kernels import compile_kernel
from repro.engine.operators import MapOp
from repro.hardware import build_fabric, dataflow_spec
from repro.relational import (
    Catalog,
    DataType,
    Schema,
    col,
    lit,
    make_lineitem,
)


def make_env(rows=3000):
    fabric = build_fabric(dataflow_spec())
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(rows, chunk_rows=500))
    return fabric, catalog


REVENUE = (Query.scan("lineitem")
           .with_column("net",
                        col("l_extendedprice")
                        * (lit(1.0) - col("l_discount")))
           .filter(col("l_quantity") > 40)
           .aggregate(["l_returnflag"], [AggSpec("sum", "net", "rev")]))


def test_map_engines_agree():
    fabric, catalog = make_env()
    res_v = VolcanoEngine(fabric, catalog).execute(REVENUE)
    fabric2, catalog2 = make_env()
    res_d = DataflowEngine(fabric2, catalog2).execute(REVENUE)
    rows_v, rows_d = res_v.table.sorted_rows(), res_d.table.sorted_rows()
    assert len(rows_v) == len(rows_d) == 3
    for a, b in zip(rows_v, rows_d):
        assert a[0] == b[0]
        assert a[1] == pytest.approx(b[1])


def test_map_values_match_numpy_oracle():
    fabric, catalog = make_env()
    res = VolcanoEngine(fabric, catalog).execute(REVENUE)
    table = catalog.table("lineitem")
    price = table.column("l_extendedprice")
    disc = table.column("l_discount")
    qty = table.column("l_quantity")
    flags = table.column("l_returnflag")
    net = price * (1.0 - disc)
    for flag, rev in res.table.sorted_rows():
        mask = (qty > 40) & (flags == flag)
        assert rev == pytest.approx(net[mask].sum())


def test_map_schema_appends_float_column():
    fabric, catalog = make_env()
    plan = Query.scan("lineitem").with_column(
        "x", col("l_quantity") * lit(2)).plan
    schema = plan.output_schema(catalog)
    assert schema.names[-1] == "x"
    assert schema.field("x").dtype == DataType.FLOAT64


def test_map_rejects_shadowing():
    fabric, catalog = make_env()
    plan = Query.scan("lineitem").with_column(
        "l_quantity", col("l_quantity") * lit(2)).plan
    with pytest.raises(ValueError, match="shadows"):
        plan.output_schema(catalog)


def test_map_requires_expressions():
    from repro.engine.logical import Map, Scan
    with pytest.raises(ValueError):
        Map(Scan("t"), {})


def test_map_pushdown_placement_offloads():
    fabric, catalog = make_env()
    placement = pushdown(REVENUE.plan, fabric)
    map_node = REVENUE.plan.children[0].children[0]
    from repro.engine.logical import Map
    assert isinstance(map_node, Map)
    assert placement.sites[map_node.node_id] == ["storage.cu"]


def test_map_kernel_compiles_with_alu_logic():
    schema = Schema.of(("a", DataType.INT64), ("b", DataType.FLOAT64),
                       ("net", DataType.FLOAT64))
    op = MapOp({"net": col("a") * col("b")}, schema)
    kernel = compile_kernel(op)
    assert kernel.logic_bytes > 0
    assert kernel.registers["unit"] == "map"


def test_map_op_empty_chunk():
    schema = Schema.of(("a", DataType.INT64), ("x", DataType.FLOAT64))
    op = MapOp({"x": col("a") + lit(1)}, schema)
    from repro.relational import Chunk
    empty = Chunk(Schema.of(("a", DataType.INT64)),
                  {"a": np.empty(0, dtype=np.int64)})
    assert op.process(empty) == []
