"""Tests for the expression layer, including the selectivity model."""

import numpy as np
import pytest

from repro.hardware import OpKind
from repro.relational import Chunk, DataType, Schema, col, lit


def chunk():
    schema = Schema.of(("x", DataType.INT64), ("y", DataType.FLOAT64),
                       ("name", DataType.STRING, 16))
    return Chunk(schema, {
        "x": np.array([1, 5, 10, 15], dtype=np.int64),
        "y": np.array([1.0, 2.0, 3.0, 4.0]),
        "name": np.array(["alpha", "beta", "alphabet", "gamma"]),
    })


def test_comparison_operators():
    c = chunk()
    assert (col("x") > 5).evaluate(c).tolist() == [False, False, True, True]
    assert (col("x") <= 5).evaluate(c).tolist() == [True, True, False, False]
    assert (col("x") == 10).evaluate(c).tolist() == [False, False, True,
                                                     False]
    assert (col("x") != 10).evaluate(c).tolist() == [True, True, False, True]


def test_arithmetic():
    c = chunk()
    expr = col("x") * lit(2) + col("y")
    assert expr.evaluate(c).tolist() == [3.0, 12.0, 23.0, 34.0]
    assert (col("x") - lit(1)).evaluate(c).tolist() == [0, 4, 9, 14]
    assert (col("y") / lit(2)).evaluate(c).tolist() == [0.5, 1.0, 1.5, 2.0]


def test_boolean_combinators():
    c = chunk()
    expr = (col("x") > 1) & (col("x") < 15)
    assert expr.evaluate(c).tolist() == [False, True, True, False]
    expr = (col("x") == 1) | (col("x") == 15)
    assert expr.evaluate(c).tolist() == [True, False, False, True]
    expr = ~(col("x") > 5)
    assert expr.evaluate(c).tolist() == [True, True, False, False]


def test_like_patterns():
    c = chunk()
    assert col("name").like("alpha%").evaluate(c).tolist() == [
        True, False, True, False]
    assert col("name").like("%et%").evaluate(c).tolist() == [
        False, True, True, False]
    assert col("name").like("bet_").evaluate(c).tolist() == [
        False, True, False, False]


def test_between_inclusive():
    c = chunk()
    assert col("x").between(5, 10).evaluate(c).tolist() == [
        False, True, True, False]


def test_isin():
    c = chunk()
    assert col("x").isin([1, 15]).evaluate(c).tolist() == [
        True, False, False, True]


def test_required_columns():
    expr = (col("x") > 5) & (col("name").like("a%")) | (col("y") < lit(2))
    assert expr.required_columns() == {"x", "y", "name"}


def test_op_kind_regex_propagates():
    plain = (col("x") > 5) & (col("y") < 2)
    assert plain.op_kind() == OpKind.FILTER
    with_like = (col("x") > 5) & col("name").like("a%")
    assert with_like.op_kind() == OpKind.REGEX
    with_like_or = (col("x") > 5) | col("name").like("a%")
    assert with_like_or.op_kind() == OpKind.REGEX
    negated = ~col("name").like("a%")
    assert negated.op_kind() == OpKind.REGEX


def test_selectivity_range_interpolation():
    stats = {"x": {"min": 0, "max": 100, "distinct": 100}}
    assert (col("x") < 25).estimate_selectivity(stats) == pytest.approx(0.25)
    assert (col("x") > 25).estimate_selectivity(stats) == pytest.approx(0.75)
    assert (col("x") == 7).estimate_selectivity(stats) == pytest.approx(0.01)


def test_selectivity_between():
    stats = {"x": {"min": 0, "max": 100, "distinct": 100}}
    sel = col("x").between(10, 30).estimate_selectivity(stats)
    assert sel == pytest.approx(0.2)


def test_selectivity_conjunction_multiplies():
    stats = {"x": {"min": 0, "max": 100, "distinct": 100},
             "y": {"min": 0, "max": 10, "distinct": 10}}
    expr = (col("x") < 50) & (col("y") < 5)
    assert expr.estimate_selectivity(stats) == pytest.approx(0.25)


def test_selectivity_disjunction_inclusion_exclusion():
    stats = {"x": {"min": 0, "max": 100, "distinct": 100}}
    expr = (col("x") < 50) | (col("x") < 50)
    assert expr.estimate_selectivity(stats) == pytest.approx(0.75)


def test_selectivity_clamped_to_unit_interval():
    stats = {"x": {"min": 0, "max": 100}}
    assert (col("x") < 200).estimate_selectivity(stats) == 1.0
    assert (col("x") < -5).estimate_selectivity(stats) == 0.0


def test_selectivity_without_stats_uses_defaults():
    assert 0.0 < (col("x") == 1).estimate_selectivity(None) < 1.0
    assert 0.0 < col("name").like("a%").estimate_selectivity(None) < 1.0


def test_selectivity_isin_uses_distinct():
    stats = {"x": {"distinct": 20}}
    assert col("x").isin([1, 2]).estimate_selectivity(stats) == \
        pytest.approx(0.1)


def test_unknown_ops_rejected():
    from repro.relational import Arith, Compare
    with pytest.raises(ValueError):
        Compare("~=", col("x"), lit(1))
    with pytest.raises(ValueError):
        Arith("%", col("x"), lit(1))
