"""Tests for the cloud substrate: object store, tax, buffer pool, caches."""

import pytest

from repro.cloud import (
    BufferPool,
    DataCache,
    EgressOp,
    IngressOp,
    ObjectStore,
    ResultCache,
    TaxConfig,
    plan_fingerprint,
    xor_cipher,
)
from repro.engine import AggSpec, Query
from repro.hardware import ComputationalStorage, build_fabric, dataflow_spec
from repro.relational import (
    col,
    make_lineitem,
    make_uniform_table,
)
from repro.sim import Simulator, Trace


def storage_env():
    sim = Simulator()
    trace = Trace()
    storage = ComputationalStorage(sim, trace, "s")
    return sim, trace, storage


# ---------------------------------------------------------------------------
# Object store
# ---------------------------------------------------------------------------

def test_objectstore_put_get_roundtrip():
    sim, trace, storage = storage_env()
    store = ObjectStore(storage, trace)
    table = make_uniform_table(1000, chunk_rows=250)
    keys = store.put_table("t", table)
    assert len(keys) == 4

    def fetch_all():
        chunks = []
        for key in keys:
            chunk = yield from store.get(key)
            chunks.append(chunk)
        return chunks

    chunks = sim.run_process(fetch_all())
    got = sorted(row for c in chunks for row in c.to_rows())
    assert got == table.sorted_rows()


def test_objectstore_bills_bytes_scanned():
    sim, trace, store_backend = storage_env()
    store = ObjectStore(store_backend, trace, compress=False)
    table = make_uniform_table(1000, chunk_rows=1000)
    keys = store.put_table("t", table)

    def fetch():
        yield from store.get(keys[0])

    sim.run_process(fetch())
    assert store.bill.bytes_scanned == store.objects[keys[0]].nbytes
    assert store.bill.dollars > 0


def test_objectstore_select_pushdown_reduces_returned_bytes():
    sim, trace, storage = storage_env()
    store = ObjectStore(storage, trace)
    table = make_uniform_table(2000, distinct=100, chunk_rows=2000)
    keys = store.put_table("t", table)

    def run():
        full = yield from store.get(keys[0])
        reduced = yield from store.select(keys[0],
                                          predicate=col("k0") < 10,
                                          columns=["k0"])
        return full, reduced

    full, reduced = sim.run_process(run())
    assert reduced.num_rows < full.num_rows
    assert reduced.schema.names == ["k0"]
    # Billing covers scanned bytes regardless of what was returned.
    assert store.bill.bytes_scanned == pytest.approx(
        2 * store.objects[keys[0]].nbytes)
    # The returned rows are correct.
    expected = table.combined().filter(
        table.column("k0") < 10).project(["k0"])
    assert reduced.sorted_rows() == expected.sorted_rows()


def test_objectstore_select_on_empty_match():
    sim, trace, storage = storage_env()
    store = ObjectStore(storage, trace)
    table = make_uniform_table(100, distinct=10, chunk_rows=100)
    keys = store.put_table("t", table)

    def run():
        return (yield from store.select(keys[0],
                                        predicate=col("k0") > 999))

    chunk = sim.run_process(run())
    assert chunk.num_rows == 0


def test_objectstore_missing_key():
    sim, trace, storage = storage_env()
    store = ObjectStore(storage, trace)
    with pytest.raises(KeyError):
        sim.run_process(store.get("nope"))


def test_objectstore_compression_shrinks_objects():
    sim, trace, storage = storage_env()
    table = make_uniform_table(5000, distinct=3, chunk_rows=5000)
    plain = ObjectStore(storage, trace, compress=False)
    packed = ObjectStore(storage, trace, compress=True)
    key_plain = plain.put_table("p", table)[0]
    key_packed = packed.put_table("c", table)[0]
    assert packed.objects[key_packed].nbytes < \
        plain.objects[key_plain].nbytes


# ---------------------------------------------------------------------------
# Data-center tax
# ---------------------------------------------------------------------------

def test_xor_cipher_involution():
    payload = b"the quick brown fox" * 100
    scrambled = xor_cipher(payload)
    assert scrambled != payload
    assert xor_cipher(scrambled) == payload


def test_tax_roundtrip_preserves_data():
    table = make_lineitem(500, chunk_rows=500)
    chunk = table.chunks[0]
    config = TaxConfig()
    egress = EgressOp(config)
    ingress = IngressOp(config)
    wire = egress.process(chunk)[0].chunk
    restored = ingress.process(wire)[0].chunk
    assert restored.sorted_rows() == chunk.sorted_rows()


def test_tax_wire_payload_is_compressed_and_scrambled():
    table = make_uniform_table(2000, distinct=3, chunk_rows=2000)
    chunk = table.chunks[0]
    wire = EgressOp(TaxConfig()).process(chunk)[0].chunk
    assert wire.nbytes < chunk.nbytes  # compression won
    # Without decryption, decompression fails (content is scrambled).
    import zlib
    with pytest.raises(zlib.error):
        zlib.decompress(wire.payload)


def test_tax_config_steps():
    assert TaxConfig().steps == ["serialize", "compress", "encrypt"]
    assert TaxConfig(compress=False).steps == ["serialize", "encrypt"]


def test_ingress_rejects_raw_chunk():
    table = make_uniform_table(10, chunk_rows=10)
    with pytest.raises(TypeError):
        IngressOp().process(table.chunks[0])


def test_tax_extra_charges_reported():
    table = make_uniform_table(100, chunk_rows=100)
    chunk = table.chunks[0]
    egress = EgressOp(TaxConfig())
    kinds = [k for k, _ in egress.extra_charges(chunk)]
    assert kinds == ["compress", "encrypt"]
    none = EgressOp(TaxConfig(compress=False, encrypt=False))
    assert none.extra_charges(chunk) == []


# ---------------------------------------------------------------------------
# Buffer pool
# ---------------------------------------------------------------------------

def bufferpool_env(capacity_pages=4):
    fabric = build_fabric(dataflow_spec())
    pool = BufferPool(fabric, capacity_bytes=capacity_pages << 20,
                      page_bytes=1 << 20)
    return fabric, pool


def test_bufferpool_hit_after_miss():
    fabric, pool = bufferpool_env()

    def run():
        miss = yield from pool.fetch("t", 0, 1 << 20)
        hit = yield from pool.fetch("t", 0, 1 << 20)
        return miss, hit

    miss, hit = fabric.sim.run_process(run())
    assert (miss, hit) == (False, True)
    assert pool.hits == 1 and pool.misses == 1


def test_bufferpool_miss_moves_data_hit_does_not():
    fabric, pool = bufferpool_env()

    def run():
        yield from pool.fetch("t", 0, 1 << 20)
        before = fabric.trace.counter("movement.network.bytes")
        yield from pool.fetch("t", 0, 1 << 20)
        after = fabric.trace.counter("movement.network.bytes")
        return before, after

    before, after = fabric.sim.run_process(run())
    assert before > 0
    assert after == before


def test_bufferpool_evicts_and_frees_dram():
    fabric, pool = bufferpool_env(capacity_pages=2)

    def run():
        for i in range(5):
            yield from pool.fetch("t", i, 1 << 20)

    fabric.sim.run_process(run())
    assert pool.resident_bytes <= 2 << 20
    assert pool.peak_bytes <= 2 << 20
    assert fabric.compute[0].dram.used <= 2 << 20


def test_bufferpool_capacity_validation():
    fabric = build_fabric(dataflow_spec())
    with pytest.raises(ValueError):
        BufferPool(fabric, capacity_bytes=100, page_bytes=1 << 20)


# ---------------------------------------------------------------------------
# Caches
# ---------------------------------------------------------------------------

def test_datacache_byte_budget_respected():
    cache = DataCache(capacity_bytes=100)
    cache.insert("a", 60)
    cache.insert("b", 60)   # evicts a
    assert "a" not in cache
    assert "b" in cache
    assert cache.used_bytes <= 100
    assert cache.evictions == 1


def test_datacache_oversized_entry_not_admitted():
    cache = DataCache(capacity_bytes=100)
    cache.insert("huge", 200)
    assert "huge" not in cache


def test_datacache_hit_tracking():
    cache = DataCache(capacity_bytes=100)
    assert cache.lookup("x") is False
    cache.insert("x", 10)
    assert cache.lookup("x") is True
    assert cache.hit_rate == 0.5


def test_plan_fingerprint_distinguishes_plans():
    q1 = Query.scan("t").filter(col("a") > 1)
    q2 = Query.scan("t").filter(col("a") > 2)
    q3 = Query.scan("t").filter(col("a") > 1)
    assert plan_fingerprint(q1.plan) != plan_fingerprint(q2.plan)
    assert plan_fingerprint(q1.plan) == plan_fingerprint(q3.plan)


def test_result_cache_roundtrip():
    cache = ResultCache()
    plan = (Query.scan("t")
            .aggregate(["a"], [AggSpec("count", alias="n")]).plan)
    table = make_uniform_table(100, chunk_rows=100)
    assert cache.get(plan) is None
    cache.put(plan, table)
    assert cache.get(plan) is table
    assert cache.hit_rate == 0.5


def test_result_cache_evicts_by_bytes():
    table = make_uniform_table(1000, chunk_rows=1000)
    cache = ResultCache(capacity_bytes=int(table.nbytes * 1.5))
    p1 = Query.scan("a").plan
    p2 = Query.scan("b").plan
    cache.put(p1, table)
    cache.put(p2, table)   # evicts p1
    assert cache.get(p1) is None
    assert cache.get(p2) is table
