"""Smoke tests: the CLI and every example run end to end."""

import importlib.util
import os

import pytest

from repro.cli import main

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                            "examples")


def run_example(name: str, capsys) -> str:
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, f"{name}.py"))
    spec = importlib.util.spec_from_file_location(f"example_{name}",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_demo(capsys):
    assert main(["demo", "--rows", "5000"]) == 0
    out = capsys.readouterr().out
    assert "volcano" in out and "dataflow" in out
    assert "optimizer-chosen sites" in out


def test_cli_sites(capsys):
    assert main(["sites"]) == 0
    out = capsys.readouterr().out
    assert "storage.cu" in out
    assert "compute0.nearmem" in out


def test_cli_sites_conventional(capsys):
    assert main(["sites", "--spec", "conventional"]) == 0
    out = capsys.readouterr().out
    assert "storage.cu" not in out
    assert "compute0.cpu" in out


@pytest.mark.parametrize("placement", ["optimize", "pushdown", "cpu"])
def test_cli_query(capsys, placement):
    assert main(["query", "--rows", "5000", "--selectivity", "0.1",
                 "--placement", placement]) == 0
    out = capsys.readouterr().out
    assert "rows out" in out
    assert "network" in out


def test_cli_query_with_zonemaps(capsys):
    assert main(["query", "--rows", "5000", "--zonemaps"]) == 0


def test_cli_experiments(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    for exp in ("F1", "F6", "C8", "E5"):
        assert exp in out


def test_cli_unknown_spec_rejected():
    with pytest.raises(SystemExit):
        main(["sites", "--spec", "quantum"])


# ---------------------------------------------------------------------------
# Report-output routing: defaults land under benchmarks/results/
# ---------------------------------------------------------------------------

RESULTS = os.path.join("benchmarks", "results")


def test_cli_trace_default_routes_to_results(capsys, tmp_path,
                                             monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["trace", "--rows", "2000"]) == 0
    expected = os.path.join(RESULTS, "trace_dataflow.json")
    assert os.path.exists(expected)
    assert expected in capsys.readouterr().out


def test_cli_trace_explicit_path_honored(capsys, tmp_path,
                                         monkeypatch):
    monkeypatch.chdir(tmp_path)
    out = os.path.join("elsewhere", "t.json")
    assert main(["trace", "--rows", "2000", "-o", out]) == 0
    assert os.path.exists(out)
    assert not os.path.exists(RESULTS)


def test_cli_whatif_bare_flag_routes_to_results(capsys, tmp_path,
                                                monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["whatif", "--query", "f2", "--rows", "800",
                 "--vary", "nic.bw=2x", "-o"]) == 0
    assert os.path.exists(os.path.join(RESULTS, "WHATIF_f2.json"))


def test_cli_whatif_without_flag_writes_nothing(capsys, tmp_path,
                                                monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["whatif", "--query", "f2", "--rows", "800",
                 "--vary", "nic.bw=2x"]) == 0
    assert not os.path.exists(RESULTS)


def test_cli_report_default_routes_to_results(capsys, tmp_path,
                                              monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["report", "--queries", "f2", "--rows", "800"]) == 0
    assert os.path.exists(os.path.join(RESULTS, "attribution.html"))
    assert os.path.exists(os.path.join(RESULTS, "attribution.json"))


def test_cli_top_json_routes_to_results(capsys, tmp_path,
                                        monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["top", "--queries", "30", "--once", "--json"]) == 0
    out = capsys.readouterr().out
    assert "placement-regret leaders" in out
    expected = os.path.join(RESULTS, "TOP_two_tenant_bursty.json")
    assert os.path.exists(expected)
    # The artifact renders standalone through --from.
    assert main(["top", "--from", expected, "--follow"]) == 0
    followed = capsys.readouterr().out
    assert "bytes moved" in followed


# ---------------------------------------------------------------------------
# Examples
# ---------------------------------------------------------------------------

def test_example_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "all three engines agree" in out


def test_example_cloud_analytics(capsys):
    out = run_example("cloud_analytics", capsys)
    assert "same answer, same scan bill" in out


def test_example_distributed_join(capsys):
    out = run_example("distributed_join", capsys)
    assert "NICs did all the partitioning" in out


def test_example_nic_telemetry(capsys):
    out = run_example("nic_telemetry", capsys)
    assert "the host CPU never saw the stream" in out


def test_example_near_memory_htap(capsys):
    out = run_example("near_memory_htap", capsys)
    assert "a fraction of the memory traffic" in out


def test_example_rack_scale(capsys):
    out = run_example("rack_scale", capsys)
    assert "compute nodes are stateless" in out


def test_cli_sql(capsys):
    assert main(["sql", "SELECT COUNT(*) AS n FROM lineitem "
                 "WHERE l_quantity > 25", "--rows", "4000"]) == 0
    out = capsys.readouterr().out
    assert "placement" in out and "n" in out


def test_cli_sql_join(capsys):
    assert main(["sql",
                 "SELECT o_priority, COUNT(*) AS n FROM lineitem "
                 "JOIN orders ON l_orderkey = o_orderkey "
                 "GROUP BY o_priority",
                 "--rows", "4000", "--placement", "pushdown"]) == 0
    out = capsys.readouterr().out
    assert "o_priority" in out
