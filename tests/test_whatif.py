"""The causal what-if engine: perturbations, sensitivity, reports."""

import json

import pytest

from repro.analysis import (
    WHATIF_SCHEMA,
    optimizer_crosscheck,
    parse_vary,
    render_report,
    run_scenario,
    run_whatif,
    whatif_violations,
    write_report,
)
from repro.cli import main as cli_main
from repro.hardware import build_fabric, dataflow_spec

ROWS = 800


# ---------------------------------------------------------------------------
# Perturbation registry
# ---------------------------------------------------------------------------

def test_perturbable_resources_reflect_the_fabric():
    plain = build_fabric(dataflow_spec())
    assert "gpu.speed" not in plain.perturbable_resources()
    with_gpu = build_fabric(dataflow_spec(gpu="host"))
    resources = with_gpu.perturbable_resources()
    for expected in ("net.bw", "net.lat", "cxl.bw", "ssd.bw",
                     "cpu.speed", "nic.speed", "storage_cu.speed",
                     "nearmem.speed", "gpu.speed"):
        assert expected in resources, expected


def test_apply_perturbation_scales_hardware():
    fabric = build_fabric(dataflow_spec())
    link = fabric.link_between("storage.node", "switch")
    before_bw = link.bandwidth
    before_line = fabric.compute[0].nic.line_rate
    fabric.apply_perturbation("net.bw", 2.0)
    assert link.bandwidth == before_bw * 2.0
    # net.bw also raises the NIC DMA line rate (wire speed).
    assert fabric.compute[0].nic.line_rate == before_line * 2.0

    cpu_rate = dict(fabric.compute[0].cpu.rates)
    fabric.apply_perturbation("cpu.speed", 4.0)
    for kind, rate in fabric.compute[0].cpu.rates.items():
        assert rate == cpu_rate[kind] * 4.0


def test_apply_perturbation_rejects_unknown_and_absent():
    fabric = build_fabric(dataflow_spec())
    with pytest.raises(ValueError, match="unknown or absent"):
        fabric.apply_perturbation("gpu.speed", 2.0)   # no GPU here
    with pytest.raises(ValueError, match="unknown or absent"):
        fabric.apply_perturbation("quantum.bw", 2.0)
    with pytest.raises(ValueError, match="positive"):
        fabric.apply_perturbation("net.bw", 0.0)


def test_alias_resolution():
    fabric = build_fabric(dataflow_spec())
    assert fabric.canonical_resource("nic.bw") == "net.bw"
    link = fabric.link_between("storage.node", "switch")
    before = link.bandwidth
    fabric.apply_perturbation("nic.bw", 2.0)
    assert link.bandwidth == before * 2.0


# ---------------------------------------------------------------------------
# --vary parsing
# ---------------------------------------------------------------------------

def test_parse_vary():
    assert parse_vary("nic.bw=2x,cxl.lat=0.5x") == [
        ("nic.bw", 2.0), ("cxl.lat", 0.5)]
    assert parse_vary(" net.bw = 4 ") == [("net.bw", 4.0)]
    with pytest.raises(ValueError, match="expected"):
        parse_vary("nic.bw")
    with pytest.raises(ValueError, match="factor"):
        parse_vary("nic.bw=fast")
    with pytest.raises(ValueError, match="positive"):
        parse_vary("nic.bw=-1x")


# ---------------------------------------------------------------------------
# The sweep itself
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def f6_payload():
    return run_whatif("f6", rows=ROWS)


def test_f6_baseline_is_bit_identical(f6_payload):
    baseline = f6_payload["baseline"]
    assert baseline["verified_identical"] is True
    assert baseline["checksums_stable"] is True
    assert len(baseline["digest"]) == 64


def test_f6_attribution_is_exact(f6_payload):
    attribution = f6_payload["baseline"]["attribution"]
    assert attribution["exact"] is True
    assert attribution["elapsed_s"] == pytest.approx(
        f6_payload["baseline"]["sim_time_s"])


def test_f6_gpu_is_off_path_and_storage_on_path(f6_payload):
    assert "gpu.speed" in f6_payload["off_path"]
    by_resource = {row["resource"]: row
                   for row in f6_payload["sensitivity"]}
    assert not by_resource["gpu.speed"]["on_path"]
    # The idle GPU gains nothing at any factor.
    assert by_resource["gpu.speed"]["max_speedup"] == pytest.approx(
        1.0)
    # The scan's media is the real bottleneck.
    assert by_resource["ssd.bw"]["on_path"]
    assert by_resource["ssd.bw"]["max_speedup"] > 1.1


def test_f6_speedups_monotone_in_factor(f6_payload):
    for row in f6_payload["sensitivity"]:
        speedups = [row["speedups"][f"{f:g}"]
                    for f in f6_payload["factors"]]
        # Improving a resource never slows the query down (within
        # exact simulation, monotone up to tiny FP jitter).
        for earlier, later in zip(speedups, speedups[1:]):
            assert later >= earlier - 1e-9


def test_f6_payload_passes_validation(f6_payload):
    assert whatif_violations(f6_payload) == []


def test_whatif_validation_catches_breakage(f6_payload):
    broken = json.loads(json.dumps(f6_payload))
    broken["schema"] = "repro.whatif/v0"
    broken["baseline"]["verified_identical"] = False
    broken["baseline"]["attribution"]["exact"] = False
    errors = whatif_violations(broken)
    assert any("schema" in e for e in errors)
    assert any("bit-identical" in e for e in errors)
    assert any("reconcile" in e for e in errors)


def test_vary_runs_are_reported():
    payload = run_whatif("f2", rows=ROWS, resources=[],
                         vary=[("nic.bw", 2.0), ("ssd.bw", 2.0)])
    assert payload["sensitivity"] == []
    assert [row["resource"] for row in payload["vary"]] == [
        "net.bw", "ssd.bw"]
    for row in payload["vary"]:
        assert row["checksum_match"] is True
        assert row["speedup"] > 0
    # Doubling the scan medium beats doubling an underused wire.
    assert payload["vary"][1]["speedup"] > payload["vary"][0][
        "speedup"]


def test_unknown_query_and_resource_raise():
    with pytest.raises(KeyError, match="unknown query"):
        run_whatif("f9", rows=ROWS)
    with pytest.raises(ValueError, match="absent"):
        run_whatif("f2", rows=ROWS, resources=["gpu.speed"])


def test_perturbation_changes_timing_not_answer():
    base = run_scenario("f3", rows=ROWS)
    fast = run_scenario("f3", rows=ROWS,
                        perturbations=(("ssd.bw", 4.0),))
    assert fast.result.elapsed < base.result.elapsed
    assert fast.result.checksum() == base.result.checksum()
    assert fast.digest() != base.digest()


# ---------------------------------------------------------------------------
# Optimizer cross-check
# ---------------------------------------------------------------------------

def test_optimizer_crosscheck_shape():
    check = optimizer_crosscheck("f2", rows=ROWS, k=3)
    assert check["k"] >= 1
    assert len(check["plans"]) == check["k"]
    for plan in check["plans"]:
        assert plan["predicted_s"] > 0
        assert plan["simulated_s"] > 0
        assert plan["attribution_exact"] is True
    assert isinstance(check["disagreements"], list)
    assert check["agreement"] == (not check["disagreements"])


# ---------------------------------------------------------------------------
# HTML report + JSON artifact
# ---------------------------------------------------------------------------

def test_report_is_self_contained_html(f6_payload, tmp_path):
    html_text = render_report([f6_payload])
    assert html_text.startswith("<!DOCTYPE html>")
    assert "gpu.speed" in html_text
    assert "off-path" in html_text
    assert "critical-path attribution" in html_text
    # Self-contained: no external fetches of any kind.
    for marker in ("http://", "https://", "<script", "src=",
                   "@import", "<link"):
        assert marker not in html_text, marker

    html_path, json_path = write_report(
        str(tmp_path / "report.html"), [f6_payload])
    assert (tmp_path / "report.html").read_text().startswith(
        "<!DOCTYPE html>")
    artifact = json.loads((tmp_path / "report.json").read_text())
    assert artifact["schema"] == WHATIF_SCHEMA
    assert artifact["queries"][0]["query"] == "f6"
    assert whatif_violations(artifact["queries"][0]) == []


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

def test_cli_whatif_writes_valid_payload(tmp_path, capsys):
    out = tmp_path / "WHATIF_f2.json"
    code = cli_main(["whatif", "--query", "f2", "--rows", str(ROWS),
                     "--resources", "ssd.bw",
                     "--factors", "2,4", "-o", str(out)])
    assert code == 0
    printed = capsys.readouterr().out
    assert "per-resource sensitivity" in printed
    payload = json.loads(out.read_text())
    assert payload["schema"] == WHATIF_SCHEMA
    assert whatif_violations(payload) == []
    assert [row["resource"] for row in payload["sensitivity"]] == [
        "ssd.bw"]


def test_cli_report_writes_html_and_json(tmp_path, capsys):
    out = tmp_path / "attr.html"
    code = cli_main(["report", "-o", str(out), "--queries", "f2",
                     "--rows", str(ROWS)])
    assert code == 0
    assert "wrote" in capsys.readouterr().out
    assert out.read_text().startswith("<!DOCTYPE html>")
    artifact = json.loads((tmp_path / "attr.json").read_text())
    assert len(artifact["queries"]) == 1


def test_cli_optimize_validate_whatif(capsys):
    code = cli_main(["optimize", "--query", "f2", "--rows",
                     str(ROWS), "-k", "2", "--validate-whatif"])
    assert code == 0
    printed = capsys.readouterr().out
    assert "optimizer cross-check" in printed
    assert ("agrees with simulation" in printed
            or "DISAGREEMENTS" in printed)
