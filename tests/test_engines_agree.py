"""The central correctness oracle: both engines agree on every query.

The Volcano engine and the data-flow engine execute the same logical
plans over the same real data on the same simulated fabric; their
results must match row for row (order-insensitive).  This is the
reproduction's strongest invariant (DESIGN.md).
"""

import pytest

from repro.engine import (
    AggSpec,
    DataflowEngine,
    Placement,
    Query,
    VolcanoEngine,
    cpu_only,
    pushdown,
)
from repro.hardware import build_fabric, dataflow_spec
from repro.relational import (
    Catalog,
    col,
    make_customer,
    make_lineitem,
    make_orders,
    make_uniform_table,
)

ROWS = 8000
CHUNK = 1000


def make_env(compute_nodes=1):
    fabric = build_fabric(dataflow_spec(compute_nodes=compute_nodes))
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(ROWS, orders=ROWS // 4,
                                               chunk_rows=CHUNK))
    catalog.register("orders", make_orders(ROWS // 4, chunk_rows=CHUNK))
    catalog.register("customer", make_customer(ROWS // 10,
                                               chunk_rows=CHUNK))
    catalog.register("uniform", make_uniform_table(ROWS, columns=3,
                                                   distinct=50,
                                                   chunk_rows=CHUNK))
    return fabric, catalog


def run_both(query, compute_nodes=1, placement_factory=None):
    # Fresh fabrics so traces do not interfere.
    fabric_v, catalog = make_env(compute_nodes)
    volcano = VolcanoEngine(fabric_v, catalog)
    res_v = volcano.execute(query)

    fabric_d, catalog_d = make_env(compute_nodes)
    dataflow = DataflowEngine(fabric_d, catalog_d)
    placement = (placement_factory(query.plan, fabric_d)
                 if placement_factory else None)
    res_d = dataflow.execute(query, placement=placement)
    return res_v, res_d


QUERIES = {
    "filter_project": (
        Query.scan("lineitem")
        .filter(col("l_quantity") > 40)
        .project(["l_orderkey", "l_extendedprice"])),
    "like_filter": (
        Query.scan("lineitem")
        .filter(col("l_comment").like("%express%"))
        .project(["l_orderkey"])),
    "group_by_sum": (
        Query.scan("lineitem")
        .filter(col("l_shipdate").between(8500, 10500))
        .aggregate(["l_returnflag"],
                   [AggSpec("sum", "l_extendedprice", "revenue"),
                    AggSpec("count", alias="n"),
                    AggSpec("avg", "l_discount", "avg_disc")])),
    "scalar_count": (
        Query.scan("lineitem").filter(col("l_quantity") > 25).count()),
    "join_filter_agg": (
        Query.scan("lineitem")
        .filter(col("l_quantity") > 10)
        .join(Query.scan("orders").filter(col("o_priority") <= 2),
              "l_orderkey", "o_orderkey")
        .aggregate(["o_priority"],
                   [AggSpec("sum", "l_extendedprice", "rev")])),
    "sort_limit": (
        Query.scan("uniform")
        .filter(col("k0") < 25)
        .sort(["k0", "k1"])
        .limit(100)),
    "min_max": (
        Query.scan("uniform")
        .aggregate(["k0"], [AggSpec("min", "k1", "lo"),
                            AggSpec("max", "k1", "hi")])),
}


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_engines_agree_pushdown(name):
    res_v, res_d = run_both(QUERIES[name])
    assert res_v.table.sorted_rows() == res_d.table.sorted_rows()
    assert res_v.rows > 0  # queries chosen to be non-empty


@pytest.mark.parametrize("name", ["filter_project", "group_by_sum",
                                  "join_filter_agg"])
def test_engines_agree_cpu_only_placement(name):
    res_v, res_d = run_both(QUERIES[name], placement_factory=cpu_only)
    assert res_v.table.sorted_rows() == res_d.table.sorted_rows()


def test_engines_agree_distributed_join():
    query = (Query.scan("lineitem")
             .filter(col("l_quantity") > 10)
             .join(Query.scan("orders"), "l_orderkey", "o_orderkey")
             .aggregate(["o_priority"],
                        [AggSpec("count", alias="n")]))

    def partitioned(plan, fabric):
        placement = pushdown(plan, fabric)
        placement.partitions = 2
        return placement

    res_v, res_d = run_both(query, compute_nodes=2,
                            placement_factory=partitioned)
    assert res_v.table.sorted_rows() == res_d.table.sorted_rows()


def test_dataflow_moves_fewer_network_bytes():
    """The headline claim: offloading cuts network movement."""
    query = (Query.scan("lineitem")
             .filter(col("l_quantity") > 45)
             .project(["l_orderkey"]))
    res_v, res_d = run_both(query)
    assert res_d.bytes_on("network") < 0.25 * res_v.bytes_on("network")


def test_dataflow_faster_on_selective_query():
    query = (Query.scan("lineitem")
             .filter(col("l_quantity") > 48)
             .count())
    res_v, res_d = run_both(query)
    assert res_d.elapsed < res_v.elapsed


def test_count_completes_on_nic():
    """§4.4: a COUNT query finishes on the NIC; nothing reaches DRAM."""
    fabric, catalog = make_env()
    engine = DataflowEngine(fabric, catalog)
    query = Query.scan("lineitem").count()
    placement = pushdown(query.plan, fabric, count_on_nic=True)
    agg_node = query.plan
    chain = placement.sites[agg_node.node_id]
    assert chain[-1] == "compute0.nic"
    result = engine.execute(query, placement=placement)
    assert result.table.column("count").tolist() == [ROWS]
    # Only the tiny final count crosses PCIe toward the host.
    assert result.bytes_on("pcie") < 1024
    assert result.bytes_on("cxl") < 1024


def test_volcano_reports_movement_on_every_segment():
    fabric, catalog = make_env()
    engine = VolcanoEngine(fabric, catalog)
    result = engine.execute(QUERIES["filter_project"])
    for segment in ("network", "membus", "cache", "storage"):
        assert result.bytes_on(segment) > 0, segment


def test_placement_validation_rejects_bad_site():
    fabric, catalog = make_env()
    engine = DataflowEngine(fabric, catalog)
    query = QUERIES["filter_project"]
    bad = Placement(sites={n.node_id: ["no.such.site"]
                           for n in query.plan.walk()})
    from repro.engine import PlacementError
    with pytest.raises(PlacementError):
        engine.execute(query, placement=bad)


def test_placement_validation_rejects_unsupported_kind():
    """A join cannot run on a storage CU (no such capability, §3.3)."""
    fabric, catalog = make_env()
    engine = DataflowEngine(fabric, catalog)
    query = Query.scan("lineitem").join(Query.scan("orders"),
                                        "l_orderkey", "o_orderkey")
    placement = pushdown(query.plan, fabric)
    placement.sites[query.plan.node_id] = ["storage.cu"]
    from repro.engine import PlacementError
    with pytest.raises(PlacementError):
        engine.execute(query, placement=placement)


def test_stateful_sort_rejected_at_kernel_time_on_cu():
    """The CU advertises SORT (bounded run generation), but a full
    stateful sort has no kernel form — the runtime refuses it."""
    fabric, catalog = make_env()
    engine = DataflowEngine(fabric, catalog)
    query = Query.scan("uniform").sort(["k0"])
    placement = pushdown(query.plan, fabric)
    placement.sites[query.plan.node_id] = ["storage.cu"]
    with pytest.raises(RuntimeError, match="ISA|kernel"):
        engine.execute(query, placement=placement)
