"""The benchmark harness: smoke scenarios, report schema, CLI."""

import copy
import json
import os

import pytest

from repro import bench, obs
from repro.cli import main as cli_main
from repro.obs import (
    REPORT_SCHEMA,
    combine_checksums,
    make_report,
    table_checksum,
    validate_report,
)
from repro.relational import make_uniform_table

ROWS = 3000


@pytest.fixture(scope="module")
def smoke_record():
    return bench.run_smoke(rows=ROWS, only=["filter_project"])[0]


def test_smoke_record_is_complete_and_sane(smoke_record):
    record = smoke_record
    assert record["name"] == "filter_project"
    assert record["agree"] is True
    assert record["sim_time_s"] > 0
    assert record["wall_time_s"] > 0
    # Nonzero per-link byte counters on the data path.
    assert record["links"]
    assert sum(entry["bytes"]
               for entry in record["links"].values()) > 0
    assert all(entry["chunks"] > 0
               for entry in record["links"].values())
    # Utilization within [0, 1] for every device and link.
    assert record["utilization"]
    assert all(0.0 <= v <= 1.0
               for v in record["utilization"].values())
    assert record["movement_bytes"].get("storage.bytes", 0) > 0
    assert record["critical_path"]
    assert len(record["checksum"]) == 64


def test_smoke_runs_are_deterministic():
    """Two identical runs: identical byte counters and checksums."""
    first = bench.run_smoke(rows=ROWS, only=["group_by_sum"])[0]
    second = bench.run_smoke(rows=ROWS, only=["group_by_sum"])[0]
    for key in ("checksum", "sim_time_s", "movement_bytes", "links",
                "utilization", "rows", "agree"):
        assert first[key] == second[key], key


def test_run_smoke_rejects_unknown_scenario():
    with pytest.raises(ValueError, match="unknown smoke"):
        bench.run_smoke(rows=ROWS, only=["no_such_scenario"])


def test_table_checksum_order_insensitive_and_content_sensitive():
    table_a = make_uniform_table(500, columns=2, distinct=10,
                                 chunk_rows=100)
    table_b = make_uniform_table(500, columns=2, distinct=10,
                                 chunk_rows=250)  # same rows, rechunked
    table_c = make_uniform_table(500, columns=2, distinct=11,
                                 chunk_rows=100)  # different content
    assert table_checksum(table_a) == table_checksum(table_b)
    assert table_checksum(table_a) != table_checksum(table_c)


def test_combine_checksums_is_order_insensitive():
    sums = {"a": "1" * 64, "b": "2" * 64}
    swapped = {"b": "2" * 64, "a": "1" * 64}
    assert combine_checksums(sums) == combine_checksums(swapped)
    assert combine_checksums(sums) != combine_checksums(
        {"a": "2" * 64, "b": "1" * 64})


def test_report_round_trip_and_validation(smoke_record, tmp_path):
    report = make_report("unit", [smoke_record], created="2026-08-06")
    assert report["schema"] == REPORT_SCHEMA
    assert validate_report(report) == ""
    path = bench.write_report(report, str(tmp_path))
    assert os.path.basename(path) == "BENCH_unit.json"
    with open(path) as handle:
        assert validate_report(json.load(handle)) == ""


def test_validation_rejects_bad_reports(smoke_record):
    report = make_report("unit", [smoke_record])

    broken = copy.deepcopy(report)
    broken["schema"] = "repro.bench/v0"
    with pytest.raises(ValueError, match="schema"):
        validate_report(broken)

    broken = copy.deepcopy(report)
    broken["smoke"][0]["utilization"]["device:x"] = 1.5
    with pytest.raises(ValueError, match="outside"):
        validate_report(broken)

    broken = copy.deepcopy(report)
    broken["smoke"][0]["checksum"] = "nope"
    with pytest.raises(ValueError, match="sha256"):
        validate_report(broken)

    broken = copy.deepcopy(report)
    del broken["smoke"][0]["links"]
    with pytest.raises(ValueError, match="links"):
        validate_report(broken)

    broken = copy.deepcopy(report)
    for link in broken["smoke"][0]["links"].values():
        link["bytes"] = 0.0
    with pytest.raises(ValueError, match="zero"):
        validate_report(broken)

    broken = copy.deepcopy(report)
    del broken["smoke"][0]["checksum"]
    with pytest.raises(ValueError, match="checksum missing"):
        validate_report(broken)


def test_validation_reason_string_without_raising(smoke_record):
    report = make_report("unit", [smoke_record])
    assert validate_report(report, strict=False) == ""

    broken = copy.deepcopy(report)
    del broken["smoke"][0]["checksum"]
    broken["smoke"][0]["sim_time_s"] = 0.0
    reason = validate_report(broken, strict=False)
    assert "checksum missing" in reason
    assert "sim_time_s" in reason
    violations = obs.report_violations(broken)
    assert len(violations) == 2


def test_experiment_index_points_at_real_scripts():
    index = bench.experiment_index()
    assert len(index) == 20
    for exp_id, path in index.items():
        assert os.path.isfile(path), exp_id


def test_cli_smoke_writes_valid_report(tmp_path, capsys):
    code = cli_main(["bench", "--smoke", "--rows", "2500",
                     "--tag", "clitest", "--out", str(tmp_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "BENCH_clitest.json" in out
    path = tmp_path / "BENCH_clitest.json"
    report = json.loads(path.read_text())
    assert validate_report(report) == ""
    assert report["tag"] == "clitest"
    names = {record["name"] for record in report["smoke"]}
    assert names == set(bench.SMOKE_SCENARIOS)
    assert all(record["agree"] for record in report["smoke"])
    assert report["totals"]["benchmarks"] == len(names)


def test_cli_bench_list(capsys):
    assert cli_main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    assert "filter_project" in out
    assert "f1" in out and "e6" in out


def test_results_txt_gated_by_env(tmp_path, monkeypatch, capsys):
    import importlib.util
    spec = importlib.util.spec_from_file_location(
        "bench_common",
        os.path.join(bench.default_bench_dir(), "common.py"))
    common = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(common)
    monkeypatch.setattr(common, "RESULTS_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_RESULTS_TXT", raising=False)
    common.report("x1", "t", "c", [{"a": 1}])
    assert not os.path.exists(tmp_path / "x1.txt")
    monkeypatch.setenv("REPRO_RESULTS_TXT", "1")
    common.report("x1", "t", "c", [{"a": 1}])
    assert os.path.exists(tmp_path / "x1.txt")
    capsys.readouterr()
