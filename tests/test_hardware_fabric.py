"""Tests for fabric topology, presets, and functional units."""

import pytest

from repro.hardware import (
    CoherenceDomain,
    Device,
    FreeList,
    HierarchicalBlockStore,
    Link,
    LRUCache,
    NoRouteError,
    OpKind,
    build_fabric,
    chase_near_memory,
    chase_on_cpu,
    conventional_spec,
    dataflow_spec,
    gc_near_memory,
    gc_on_cpu,
)
from repro.hardware.presets import FabricSpec
from repro.hardware.topology import Fabric
from repro.sim import Simulator, Trace


# ---------------------------------------------------------------------------
# Fabric routing
# ---------------------------------------------------------------------------

def simple_fabric():
    fabric = Fabric()
    trace, sim = fabric.trace, fabric.sim
    fabric.add_location("a")
    fabric.add_location("b")
    fabric.add_location("c")
    fabric.connect("a", "b", Link(sim, trace, "ab", bandwidth=100.0,
                                  latency=1.0))
    fabric.connect("b", "c", Link(sim, trace, "bc", bandwidth=50.0,
                                  latency=2.0))
    return fabric


def test_route_shortest_path():
    fabric = simple_fabric()
    links = fabric.route("a", "c")
    assert [link.name for link in links] == ["ab", "bc"]


def test_route_same_location_empty():
    fabric = simple_fabric()
    assert fabric.route("a", "a") == []


def test_route_missing_raises():
    fabric = simple_fabric()
    fabric.add_location("island")
    with pytest.raises(NoRouteError):
        fabric.route("a", "island")


def test_path_bandwidth_is_bottleneck():
    fabric = simple_fabric()
    assert fabric.path_bandwidth("a", "c") == 50.0
    assert fabric.path_latency("a", "c") == 3.0


def test_transfer_crosses_all_links():
    fabric = simple_fabric()

    def proc():
        yield from fabric.transfer("a", "c", 100.0, flow="q")

    fabric.sim.process(proc())
    fabric.run()
    assert fabric.trace.counter("link.ab.bytes") == 100.0
    assert fabric.trace.counter("link.bc.bytes") == 100.0
    # (1 + 100/100) + (2 + 100/50) = 2 + 4 = 6
    assert fabric.sim.now == pytest.approx(6.0)


def test_device_location_registration():
    fabric = simple_fabric()
    dev = Device(fabric.sim, fabric.trace, "dev",
                 rates={OpKind.FILTER: 10.0})
    fabric.add_device(dev, at="b")
    assert fabric.location_of("dev") == "b"
    assert fabric.route("dev", "c")[0].name == "bc"


def test_duplicate_device_rejected():
    fabric = simple_fabric()
    dev = Device(fabric.sim, fabric.trace, "dev", rates={})
    fabric.add_device(dev, at="a")
    dev2 = Device(fabric.sim, fabric.trace, "dev", rates={})
    with pytest.raises(ValueError):
        fabric.add_device(dev2, at="b")


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------

def test_dataflow_fabric_has_all_sites():
    fabric = build_fabric(dataflow_spec())
    for site in ("storage.cu", "storage.nic", "compute0.nic",
                 "compute0.nearmem", "compute0.cpu"):
        assert fabric.has_site(site), site


def test_conventional_fabric_has_only_cpu():
    fabric = build_fabric(conventional_spec())
    assert fabric.has_site("compute0.cpu")
    for site in ("storage.cu", "storage.nic", "compute0.nic",
                 "compute0.nearmem"):
        assert not fabric.has_site(site), site


def test_conventional_storage_is_local():
    fabric = build_fabric(conventional_spec())
    links = fabric.route("storage.node", "compute0.cpu")
    segments = [link.segment for link in links]
    assert "network" not in segments
    assert segments[0] in ("pcie", "cxl")


def test_dataflow_storage_is_remote():
    fabric = build_fabric(dataflow_spec())
    segments = [link.segment for link in
                fabric.route("storage.node", "compute0.cpu")]
    assert segments.count("network") == 2  # storage->switch->compute


def test_multi_compute_nodes():
    fabric = build_fabric(dataflow_spec(compute_nodes=3))
    assert len(fabric.compute) == 3
    for i in range(3):
        assert fabric.has_site(f"compute{i}.cpu")
    # Nodes reach each other through the switch.
    links = fabric.route("compute0.node", "compute2.node")
    assert len(links) == 2


def test_local_storage_with_multiple_nodes_rejected():
    with pytest.raises(ValueError):
        build_fabric(FabricSpec(storage_attachment="local",
                                compute_nodes=2))


def test_disagg_memory_node():
    fabric = build_fabric(dataflow_spec(disagg_memory=True))
    assert fabric.disagg is not None
    assert fabric.has_site("memnode.accel")
    assert fabric.route("memnode.node", "compute0.node")


def test_cxl_spec_lowers_latency():
    pcie_fab = build_fabric(dataflow_spec(use_cxl=False))
    cxl_fab = build_fabric(dataflow_spec(use_cxl=True))
    pcie_host = pcie_fab.route("compute0.node", "compute0.dram")[0]
    cxl_host = cxl_fab.route("compute0.node", "compute0.dram")[0]
    assert cxl_host.latency < pcie_host.latency
    assert cxl_host.segment == "cxl"


# ---------------------------------------------------------------------------
# Functional units (§5.4)
# ---------------------------------------------------------------------------

def test_block_store_lookup_correct():
    keys = list(range(0, 1000, 3))
    store = HierarchicalBlockStore(keys, fanout=4, leaf_capacity=8)
    assert store.lookup(999) == 999 * 2 + 1
    assert store.lookup(0) == 1
    assert store.lookup(1) is None  # not a multiple of 3


def test_block_store_height_grows_with_keys():
    small = HierarchicalBlockStore(list(range(10)), fanout=4,
                                   leaf_capacity=4)
    large = HierarchicalBlockStore(list(range(10000)), fanout=4,
                                   leaf_capacity=4)
    assert large.height > small.height


def test_block_store_requires_sorted_keys():
    with pytest.raises(ValueError):
        HierarchicalBlockStore([3, 1, 2])


def test_block_store_traverse_ends_at_leaf():
    store = HierarchicalBlockStore(list(range(100)), fanout=4,
                                   leaf_capacity=4)
    path = store.traverse(42)
    assert path[-1].is_leaf
    assert all(not b.is_leaf for b in path[:-1])


def chase_env():
    from repro.hardware import CPUSocket, NearMemoryAccelerator
    sim = Simulator()
    trace = Trace()
    socket = CPUSocket(sim, trace, "s", cores=2, controllers=1)
    accel = NearMemoryAccelerator(sim, trace, "accel")
    return sim, trace, socket, accel


def test_chase_cpu_and_nearmem_agree():
    sim, trace, socket, accel = chase_env()
    store = HierarchicalBlockStore(list(range(0, 4096, 2)), fanout=8,
                                   leaf_capacity=16)

    def run():
        cpu_result = yield from chase_on_cpu(store, 100, socket)
        nm_result = yield from chase_near_memory(store, 100, accel, socket)
        return cpu_result, nm_result

    cpu_result, nm_result = sim.run_process(run())
    assert cpu_result == nm_result == 201


def test_chase_near_memory_moves_fewer_bytes():
    store = HierarchicalBlockStore(list(range(0, 65536, 2)), fanout=8,
                                   leaf_capacity=16)

    sim1, trace1, socket1, _ = chase_env()
    sim1.run_process(chase_on_cpu(store, 1234, socket1))
    cpu_moved = trace1.counter("movement.membus.bytes")

    sim2, trace2, socket2, accel2 = chase_env()
    sim2.run_process(chase_near_memory(store, 1234, accel2, socket2))
    nm_moved = trace2.counter("movement.membus.bytes")

    assert nm_moved < cpu_moved
    assert nm_moved == store.block_bytes  # only the leaf crosses


def test_chase_on_cpu_with_warm_cache_skips_memory():
    store = HierarchicalBlockStore(list(range(0, 4096, 2)), fanout=8,
                                   leaf_capacity=16)
    sim, trace, socket, _ = chase_env()
    cache = LRUCache(capacity_blocks=1024)

    def run():
        yield from chase_on_cpu(store, 100, socket, cache=cache)
        before = trace.counter("movement.membus.bytes")
        yield from chase_on_cpu(store, 100, socket, cache=cache)
        after = trace.counter("movement.membus.bytes")
        return before, after

    before, after = sim.run_process(run())
    assert after == before  # second traversal fully cached


def test_gc_agreement_and_movement():
    sim, trace, socket, accel = chase_env()
    free_list = FreeList(list(range(1000)))
    dead = set(range(0, 1000, 10))

    def run():
        removed_cpu = yield from gc_on_cpu(
            FreeList(list(range(1000))) and free_list, dead, socket)
        return removed_cpu

    removed = sim.run_process(run())
    assert removed == 100
    assert trace.counter("movement.membus.bytes") > 0

    sim2, trace2, _sock2, accel2 = chase_env()
    fl2 = FreeList(list(range(1000)))

    def run2():
        return (yield from gc_near_memory(fl2, dead, accel2, trace2))

    removed2 = sim2.run_process(run2())
    assert removed2 == 100
    assert trace2.counter("movement.membus.bytes") == 0


# ---------------------------------------------------------------------------
# Coherence (§6.2)
# ---------------------------------------------------------------------------

def coherence_env(mode):
    sim = Simulator()
    trace = Trace()
    link = Link(sim, trace, "lk", bandwidth=1e9, latency=1e-6)
    cpu = Device(sim, trace, "cpu", rates={OpKind.GENERIC: 1e9})
    domain = CoherenceDomain(sim, trace, "dom", link=link, mode=mode,
                             cpu=cpu)
    domain.add_sharer("host")
    domain.add_sharer("accel")
    return sim, trace, domain


def test_hardware_coherence_cheaper_than_software():
    region = 1 << 20

    sim_hw, trace_hw, dom_hw = coherence_env("hardware")
    sim_hw.run_process(dom_hw.write(region, writer="host"))
    hw_bytes = trace_hw.total("flow.coherence")
    hw_time = sim_hw.now

    sim_sw, trace_sw, dom_sw = coherence_env("software")
    sim_sw.run_process(dom_sw.write(region, writer="host"))
    sw_bytes = trace_sw.total("flow.coherence")
    sw_time = sim_sw.now

    assert hw_bytes < sw_bytes  # no region re-fetch with HW coherence
    assert hw_time < sw_time


def test_software_coherence_requires_cpu():
    sim = Simulator()
    trace = Trace()
    link = Link(sim, trace, "lk", bandwidth=1e9, latency=1e-6)
    with pytest.raises(ValueError):
        CoherenceDomain(sim, trace, "dom", link=link, mode="software")


def test_unknown_coherence_mode_rejected():
    sim = Simulator()
    trace = Trace()
    link = Link(sim, trace, "lk", bandwidth=1e9, latency=1e-6)
    with pytest.raises(ValueError):
        CoherenceDomain(sim, trace, "dom", link=link, mode="magic")


# ---------------------------------------------------------------------------
# GPU attachment (§4.2)
# ---------------------------------------------------------------------------

def test_gpu_absent_by_default():
    fabric = build_fabric(dataflow_spec())
    assert not fabric.has_site("compute0.gpu")
    assert fabric.compute[0].gpu is None


def test_gpu_host_attachment_routes_through_dram():
    fabric = build_fabric(dataflow_spec(gpu="host"))
    assert fabric.has_site("compute0.gpu")
    route = [link.name for link in fabric.route("compute0.node",
                                            "compute0.gpu")]
    assert route == ["compute0.host", "compute0.gpu_host"]


def test_gpu_direct_attachment_bypasses_dram():
    fabric = build_fabric(dataflow_spec(gpu="direct"))
    route = [link.name for link in fabric.route("compute0.node",
                                            "compute0.gpu")]
    assert route == ["compute0.gpudirect"]


def test_gpu_supports_parallel_kinds_not_statefulness_constraint():
    from repro.hardware import GPU, OpKind
    from repro.sim import Simulator, Trace
    gpu = GPU(Simulator(), Trace(), "g")
    for kind in (OpKind.FILTER, OpKind.JOIN_PROBE, OpKind.SORT,
                 OpKind.AGGREGATE):
        assert gpu.supports(kind)
    # Regex is supported but disproportionately slow (divergence).
    assert gpu.rate_for(OpKind.REGEX) < 0.1 * gpu.rate_for(
        OpKind.FILTER)
    assert gpu.programmable


def test_unknown_gpu_mode_rejected():
    with pytest.raises(ValueError):
        build_fabric(dataflow_spec(gpu="quantum"))
