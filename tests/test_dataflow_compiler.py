"""Structural tests for the data-flow compiler (plan -> stage graph)."""

import pytest

from repro.engine import (
    AggSpec,
    DataflowEngine,
    Query,
    cpu_only,
    pushdown,
)
from repro.hardware import build_fabric, dataflow_spec
from repro.relational import Catalog, col, make_lineitem, make_orders


def make_env(compute_nodes=1):
    fabric = build_fabric(dataflow_spec(compute_nodes=compute_nodes))
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(2000, orders=500,
                                               chunk_rows=250))
    catalog.register("orders", make_orders(500, chunk_rows=250))
    return fabric, catalog


def compile_graph(query, compute_nodes=1, placement_fn=pushdown,
                  partitions=1):
    fabric, catalog = make_env(compute_nodes)
    engine = DataflowEngine(fabric, catalog)
    placement = placement_fn(query.plan, fabric)
    placement.partitions = partitions
    return engine.compile(query, placement), fabric


def test_same_site_operators_fuse_into_one_stage():
    query = (Query.scan("lineitem")
             .filter(col("l_quantity") > 10)
             .filter(col("l_discount") > 0.01)
             .project(["l_orderkey"]))
    graph, fabric = compile_graph(query)
    # scan + one fused CU stage (filter+filter+project) + gather.
    cu_stages = [s for s in graph.stages.values()
                 if s.device is fabric.site_device("storage.cu")]
    assert len(cu_stages) == 1
    # Stage-level fusion put all three ops on one stage; pipeline
    # fusion then lowered the linear run into a single fused op.
    assert sum(len(op.fused_parts()) for op in cu_stages[0].ops) == 3
    assert len(cu_stages[0].ops) == 1


def test_cpu_only_plan_has_two_stages():
    query = (Query.scan("lineitem")
             .filter(col("l_quantity") > 10)
             .project(["l_orderkey"]))
    graph, fabric = compile_graph(query, placement_fn=cpu_only)
    # Source + one fused CPU stage.
    assert len(graph.stages) == 2
    sinks = [s for s in graph.stages.values() if s.is_sink]
    assert len(sinks) == 1
    assert sum(len(op.fused_parts()) for op in sinks[0].ops) == 2


def test_staged_aggregate_creates_chain_of_stages():
    query = Query.scan("lineitem").aggregate(
        ["l_returnflag"], [AggSpec("count", alias="n")])
    graph, fabric = compile_graph(query)
    devices = {s.name: s.device.name if s.device else None
               for s in graph.stages.values()}
    names = set(devices.values())
    # The chain touches the CU, both NICs, and the CPU.
    assert "storage.cu" in names
    assert "storage.nic.proc" in names
    assert "compute0.nic.proc" in names
    assert "compute0.cpu" in names


def test_join_compiles_to_build_and_dependent_probe():
    query = (Query.scan("lineitem")
             .join(Query.scan("orders"), "l_orderkey", "o_orderkey"))
    graph, fabric = compile_graph(query)
    build = [s for s in graph.stages.values()
             if any("join_build" in op.name for op in s.ops)]
    probe = [s for s in graph.stages.values()
             if any("join_probe" in op.name for op in s.ops)]
    assert len(build) == 1 and len(probe) == 1
    assert build[0].done in probe[0].depends_on


def test_partitioned_join_structure():
    query = (Query.scan("lineitem")
             .join(Query.scan("orders"), "l_orderkey", "o_orderkey")
             .aggregate([], [AggSpec("count", alias="n")]))
    graph, fabric = compile_graph(query, compute_nodes=2, partitions=2)
    scatters = [s for s in graph.stages.values()
                if s.router == "partition"]
    assert len(scatters) == 2      # build side + probe side
    for scatter in scatters:
        assert len(scatter.outputs) == 2
    probes = [s for s in graph.stages.values()
              if any("join_probe" in op.name for op in s.ops)]
    assert len(probes) == 2
    # Each probe runs on a different compute node's CPU.
    assert {p.device.name for p in probes} == {"compute0.cpu",
                                               "compute1.cpu"}


def test_partitioned_join_requires_enough_nodes():
    query = (Query.scan("lineitem")
             .join(Query.scan("orders"), "l_orderkey", "o_orderkey"))
    with pytest.raises(ValueError, match="compute nodes"):
        compile_graph(query, compute_nodes=1, partitions=2)


def test_compile_does_not_run():
    query = Query.scan("lineitem").count()
    graph, fabric = compile_graph(query)
    assert fabric.sim.now == 0.0
    assert all(s.done_at is None for s in graph.stages.values())
    # Running afterwards works.
    result = graph.run()
    assert result.elapsed > 0


def test_every_nonsource_stage_is_connected():
    query = (Query.scan("lineitem")
             .filter(col("l_quantity") > 10)
             .join(Query.scan("orders").filter(col("o_priority") < 3),
                   "l_orderkey", "o_orderkey")
             .aggregate(["o_priority"], [AggSpec("count", alias="n")])
             .sort(["o_priority"])
             .limit(3))
    graph, fabric = compile_graph(query)
    for stage in graph.stages.values():
        if stage.source_table is None:
            assert stage.inputs, stage.name
    # And it runs correctly end to end.
    result = graph.run()
    table = result.table()
    assert table.num_rows <= 3
