"""Pipeline fusion and selection-vector execution.

Three layers of guarantees:

* unit: ``fuse_ops`` rewrites exactly the maximal linear runs, and a
  :class:`FusedOp` replays the same ``(kind, nbytes)`` charge sequence
  the unfused executor would have produced;
* chunk: selection-vector views are lazy, compose under chained
  filters, report the same ``nbytes`` as their materialised form, and
  settle at segment boundaries;
* end to end: fused and ``REPRO_NO_FUSE=1`` runs are bit-identical —
  checksums, simulated times, movement ledgers, event rings — on both
  engines, across every smoke scenario shape.
"""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.engine import (
    AggSpec,
    DataflowEngine,
    FusedOp,
    Query,
    VolcanoEngine,
    describe_op,
    fuse_ops,
    fusion_enabled,
)
from repro.engine.operators import (
    FilterOp,
    LimitOp,
    MapOp,
    PartialAggregate,
    PartitionOp,
    ProjectOp,
)
from repro.hardware import build_fabric, dataflow_spec
from repro.obs import table_checksum
from repro.relational import (
    Catalog,
    Chunk,
    DataType,
    Schema,
    col,
    lit,
    make_lineitem,
    make_orders,
)

ROWS = 2000


# ---------------------------------------------------------------------------
# fuse_ops rewriting
# ---------------------------------------------------------------------------

def _schema():
    return Schema.of(("a", DataType.INT64), ("b", DataType.FLOAT64))


def _chunk(n=10):
    return Chunk(_schema(), {
        "a": np.arange(n, dtype=np.int64),
        "b": np.linspace(0.0, 1.0, n)})


def test_fuse_ops_fuses_maximal_linear_runs():
    f = FilterOp(col("a") > 3)
    p = ProjectOp(["a"])
    limit = LimitOp(5)
    f2 = FilterOp(col("a") > 4)
    m = MapOp({"c": col("a") + lit(1)},
              Schema.of(("a", DataType.INT64), ("c", DataType.FLOAT64)))
    out = fuse_ops([f, p, limit, f2, m])
    # [filter, project] fuse; limit breaks the run; [filter, map] fuse.
    assert len(out) == 3
    assert isinstance(out[0], FusedOp) and out[0].parts == [f, p]
    assert out[1] is limit
    assert isinstance(out[2], FusedOp) and out[2].parts == [f2, m]


def test_fuse_ops_absorbs_trailing_partial_aggregate():
    f = FilterOp(col("a") > 3)
    agg = PartialAggregate(_schema(), ["a"], [AggSpec("sum", "b", "s")])
    out = fuse_ops([f, agg])
    assert len(out) == 1 and isinstance(out[0], FusedOp)
    assert out[0].parts == [f, agg]


def test_fuse_ops_leaves_singletons_and_stateful_ops_alone():
    f = FilterOp(col("a") > 3)
    part = PartitionOp("a", 2)
    agg = PartialAggregate(_schema(), ["a"], [AggSpec("count", alias="n")])
    # A lone streaming op, a stateful exchange, a bare aggregate: no
    # run of length >= 2 ever forms.
    assert fuse_ops([f]) == [f]
    assert fuse_ops([part, agg]) == [part, agg]
    assert fuse_ops([]) == []


def test_fused_op_rejects_invalid_chains():
    f = FilterOp(col("a") > 3)
    part = PartitionOp("a", 2)
    with pytest.raises(ValueError, match="at least two"):
        FusedOp([f])
    with pytest.raises(ValueError, match="cannot fuse"):
        FusedOp([part, f])
    with pytest.raises(ValueError, match="cannot fuse"):
        FusedOp([f, part])


def test_fused_parts_reports_originals_for_kernel_installation():
    f, p = FilterOp(col("a") > 3), ProjectOp(["a"])
    fused = fuse_ops([f, p])[0]
    assert fused.fused_parts() == [f, p]
    # Unfused ops report themselves.
    assert f.fused_parts() == [f]


def test_describe_op_marks_fused_segments():
    f, p = FilterOp(col("a") > 3), ProjectOp(["a"])
    fused = fuse_ops([f, p])[0]
    lines = describe_op(fused)
    assert "fused segment" in lines[0]
    assert lines[1].strip().startswith("|")
    assert describe_op(f) == [f.name]


# ---------------------------------------------------------------------------
# Charge-sequence equivalence
# ---------------------------------------------------------------------------

def _unfused_charges(ops, chunk):
    """The (kind, nbytes) sequence the unfused executor would charge."""
    charges = []
    current = chunk
    for op in ops:
        charges.append((op.kind, float(op.charge_bytes(current))))
        charges.extend(op.extra_charges(current))
        emits = op.process(current)
        if not emits:
            break
        current = emits[0].chunk
    return charges


def _fused_charges(fused, chunk):
    charges = [(fused.kind, float(fused.charge_bytes(chunk)))]
    charges.extend(fused.extra_charges(chunk))
    return charges


def test_fused_charge_sequence_matches_unfused():
    ops = [FilterOp(col("a") > 3), ProjectOp(["a"]),
           MapOp({"c": col("a") * lit(2)},
                 Schema.of(("a", DataType.INT64),
                           ("c", DataType.FLOAT64)))]
    chunk = _chunk(10)
    fused = fuse_ops(list(ops))[0]
    assert _fused_charges(fused, chunk) == _unfused_charges(ops, chunk)


def test_fused_charges_stop_where_the_stream_empties():
    # The first filter keeps nothing: downstream parts are not charged,
    # exactly like the unfused executor's early exit.
    ops = [FilterOp(col("a") > 100), ProjectOp(["a"])]
    chunk = _chunk(10)
    fused = fuse_ops(list(ops))[0]
    fused_seq = _fused_charges(fused, chunk)
    assert fused_seq == _unfused_charges(ops, chunk)
    assert len(fused_seq) == 1  # only the filter itself
    assert fused.process(chunk) == []


def test_fused_process_memo_serves_the_charged_chunk_once():
    ops = [FilterOp(col("a") > 3), ProjectOp(["a"])]
    fused = fuse_ops(list(ops))[0]
    chunk = _chunk(10)
    fused.extra_charges(chunk)          # executor charges first...
    emits = fused.process(chunk)        # ...then processes same chunk
    assert fused._memo_chunk is None    # memo consumed
    [emit] = emits
    assert emit.chunk.sorted_rows() == [(i,) for i in range(4, 10)]
    # A process() without a preceding charge still computes correctly.
    [again] = fused.process(chunk)
    assert again.chunk.sorted_rows() == emit.chunk.sorted_rows()


# ---------------------------------------------------------------------------
# Selection-vector chunk semantics
# ---------------------------------------------------------------------------

def test_filter_returns_lazy_view_with_exact_nbytes():
    chunk = _chunk(10)
    view = chunk.filter(chunk.column("a") > 4)
    assert view._sel is not None
    assert view.num_rows == 5
    assert view.nbytes == view.materialize().nbytes
    assert view.materialize()._sel is None
    # Dense chunks materialize to themselves.
    assert chunk.materialize() is chunk


def test_empty_and_all_true_masks():
    chunk = _chunk(6)
    nothing = chunk.filter(np.zeros(6, dtype=bool))
    assert nothing.num_rows == 0 and nothing.nbytes == 0
    assert nothing.materialize().num_rows == 0
    everything = chunk.filter(np.ones(6, dtype=bool))
    assert everything.num_rows == 6
    assert everything.sorted_rows() == chunk.sorted_rows()


def test_chained_filters_compose_selection_indices():
    chunk = _chunk(10)
    first = chunk.filter(chunk.column("a") >= 2)
    second = first.filter(first.column("a") < 7)
    # Still one view over the original dense columns.
    assert second.columns.base is chunk.columns
    assert list(second.column("a")) == [2, 3, 4, 5, 6]
    third = second.filter(np.array([True, False, True, False, True]))
    assert list(third.column("a")) == [2, 4, 6]


def test_view_project_take_slice_stay_lazy():
    chunk = _chunk(10)
    view = chunk.filter(chunk.column("a") % 2 == 0)   # 0 2 4 6 8
    projected = view.project(["b"])
    assert projected._sel is not None
    assert projected.schema.names == ["b"]
    taken = view.take(np.array([4, 0]))
    assert list(taken.column("a")) == [8, 0]
    sliced = view.slice(1, 3)
    assert list(sliced.column("a")) == [2, 4]


def test_view_gathers_each_column_once_and_only_when_read():
    chunk = _chunk(10)
    view = chunk.filter(chunk.column("a") > 7)
    cache = view.columns._cache
    assert cache == {}                       # nothing gathered yet
    a1 = view.column("a")
    assert set(cache) == {"a"}               # only the touched column
    assert view.column("a") is a1            # cached, not re-gathered
    with pytest.raises(KeyError):
        view.columns["missing"]


def test_boundary_operations_materialize_views():
    chunk = _chunk(10)
    view = chunk.filter(chunk.column("a") > 4)
    from repro.relational.schema import Field
    wide = view.with_column(Field("d", DataType.FLOAT64),
                            np.zeros(view.num_rows))
    assert wide._sel is None                 # with_column settles
    renamed = view.rename({"a": "z"})
    assert renamed._sel is None and "z" in renamed.schema
    from repro.relational import Table
    table = Table(view.schema)
    table.append(view)                       # table storage settles
    assert table.chunks[0]._sel is None
    assert table.num_rows == 5


# ---------------------------------------------------------------------------
# End-to-end bit-identity: fused vs REPRO_NO_FUSE=1
# ---------------------------------------------------------------------------

def _catalog():
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(ROWS, orders=ROWS // 4,
                                               chunk_rows=500))
    catalog.register("orders", make_orders(ROWS // 4, chunk_rows=500))
    return catalog


def _queries():
    return {
        "filter_project": (
            Query.scan("lineitem")
            .filter(col("l_quantity") > 40)
            .project(["l_orderkey", "l_extendedprice"])),
        "chained_filters_map": (
            Query.scan("lineitem")
            .filter(col("l_quantity") > 10)
            .filter(col("l_discount") > 0.01)
            .with_column("disc_price", col("l_extendedprice")
                         * (lit(1.0) - col("l_discount")))
            .project(["l_orderkey", "disc_price"])),
        "filter_agg": (
            Query.scan("lineitem")
            .filter(col("l_quantity") > 10)
            .aggregate(["l_returnflag"],
                       [AggSpec("sum", "l_extendedprice", "revenue"),
                        AggSpec("count", alias="n")])),
        "join_agg": (
            Query.scan("lineitem")
            .filter(col("l_quantity") > 10)
            .join(Query.scan("orders")
                  .filter(col("o_priority") <= 2),
                  "l_orderkey", "o_orderkey")
            .aggregate(["o_priority"],
                       [AggSpec("sum", "l_extendedprice", "rev")])),
    }


def _run_engine(engine_cls, query):
    fabric = build_fabric(dataflow_spec())
    result = engine_cls(fabric, _catalog()).execute(query)
    return {
        "checksum": table_checksum(result.table),
        "sim_time_s": result.elapsed,
        "movement": result.movement,
        "ledger": fabric.trace.movement_ledger(),
        "ring": [event.to_dict() for event in fabric.trace.events],
    }


@pytest.mark.parametrize("engine_cls", [DataflowEngine, VolcanoEngine])
@pytest.mark.parametrize("name", sorted(_queries()))
def test_fused_and_unfused_runs_bit_identical(monkeypatch, engine_cls,
                                              name):
    query = _queries()[name]
    monkeypatch.delenv("REPRO_NO_FUSE", raising=False)
    fused = _run_engine(engine_cls, query)
    monkeypatch.setenv("REPRO_NO_FUSE", "1")
    unfused = _run_engine(engine_cls, query)
    assert fused["checksum"] == unfused["checksum"]
    assert fused["sim_time_s"] == unfused["sim_time_s"]
    assert fused["movement"] == unfused["movement"]
    assert fused["ledger"] == unfused["ledger"]
    assert fused["ring"] == unfused["ring"]


def test_no_fuse_flag_round_trip(monkeypatch):
    monkeypatch.delenv("REPRO_NO_FUSE", raising=False)
    assert fusion_enabled() is True
    monkeypatch.setenv("REPRO_NO_FUSE", "1")
    assert fusion_enabled() is False
    # Compilation under the flag produces no fused ops at all.
    fabric = build_fabric(dataflow_spec())
    engine = DataflowEngine(fabric, _catalog())
    graph = engine.compile(_queries()["filter_project"])
    for stage in graph.stages.values():
        for op in stage.ops:
            assert not isinstance(op, FusedOp)
    monkeypatch.delenv("REPRO_NO_FUSE")
    fabric = build_fabric(dataflow_spec())
    graph = DataflowEngine(fabric, _catalog()).compile(
        _queries()["filter_project"])
    assert any(isinstance(op, FusedOp)
               for stage in graph.stages.values() for op in stage.ops)


def test_query_plan_flag_prints_fusion_boundaries(capsys):
    rc = cli_main(["query", "--rows", "2000", "--placement",
                   "pushdown", "--plan"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fused segment" in out
    assert "materialize at stage boundary" in out
