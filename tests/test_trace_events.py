"""The typed event layer: ring buffer, emit, merge, Chrome export."""

import json

import pytest

from repro.flow.credits import CreditChannel
from repro.hardware.device import Device, OpKind
from repro.hardware.interconnect import Link
from repro.hardware.nic import NIC
from repro.sim import (
    EventKind,
    EventRing,
    Resource,
    Simulator,
    Store,
    Trace,
    TraceEvent,
    chrome_trace,
    export_chrome_trace,
)
from repro.sim.trace import TRACE_SCHEMA


# ---------------------------------------------------------------------------
# EventRing
# ---------------------------------------------------------------------------

def _event(ts, kind=EventKind.OP_OPEN, actor="a"):
    return TraceEvent(ts=ts, kind=kind, actor=actor)


def test_ring_keeps_newest_and_counts_dropped():
    ring = EventRing(capacity=3)
    for ts in range(5):
        ring.append(_event(float(ts)))
    assert len(ring) == 3
    assert ring.dropped == 2
    assert ring.truncated
    # Oldest-first iteration even after the cursor wrapped.
    assert [e.ts for e in ring] == [2.0, 3.0, 4.0]
    assert [e.ts for e in ring.last(2)] == [3.0, 4.0]
    assert ring.stats() == {"recorded": 3, "capacity": 3,
                            "dropped": 2, "truncated": True}


def test_ring_below_capacity_is_complete():
    ring = EventRing(capacity=4)
    ring.extend(_event(float(ts)) for ts in range(3))
    assert not ring.truncated
    assert ring.dropped == 0
    assert [e.ts for e in ring] == [0.0, 1.0, 2.0]


def test_ring_grow_preserves_order_and_never_shrinks():
    ring = EventRing(capacity=2)
    for ts in range(4):
        ring.append(_event(float(ts)))
    assert [e.ts for e in ring] == [2.0, 3.0]
    ring.grow(5)
    assert ring.capacity == 5
    assert [e.ts for e in ring] == [2.0, 3.0]
    ring.append(_event(9.0))
    assert [e.ts for e in ring] == [2.0, 3.0, 9.0]
    assert ring.dropped == 2          # history carries over
    ring.grow(1)                      # shrinking is a no-op
    assert ring.capacity == 5
    ring.clear()
    assert len(ring) == 0


def test_ring_rejects_nonpositive_capacity():
    with pytest.raises(ValueError, match="capacity"):
        EventRing(capacity=0)


def test_event_dict_round_trip_is_sparse():
    full = TraceEvent(ts=1.5, kind=EventKind.DMA_COMPLETE,
                      actor="nic.n0", label="read", nbytes=4096.0,
                      dur=0.25, flow_id=7)
    bare = TraceEvent(ts=2.0, kind=EventKind.CACHE_HIT, actor="c")
    assert TraceEvent.from_dict(full.to_dict()) == full
    assert bare.to_dict() == {"ts": 2.0, "kind": EventKind.CACHE_HIT,
                              "actor": "c"}
    assert TraceEvent.from_dict(bare.to_dict()) == bare


# ---------------------------------------------------------------------------
# Trace: emit, ledger, serialization, merge
# ---------------------------------------------------------------------------

def test_emit_records_and_advances_watermark():
    trace = Trace()
    trace.emit(1.0, EventKind.OP_OPEN, "stage.g.s")
    assert trace.clock == 1.0
    # A window-shaped event advances the clock to its end.
    trace.emit(2.0, EventKind.CREDIT_STALL, "g.a->b", dur=0.5)
    assert trace.clock == 2.5
    assert [e.kind for e in trace.events] == [EventKind.OP_OPEN,
                                              EventKind.CREDIT_STALL]
    assert trace.event_stats()["recorded"] == 2
    assert trace.next_flow_id() == 1
    assert trace.next_flow_id() == 2


def test_trace_v2_round_trip_with_events_and_ledger():
    trace = Trace()
    trace.add("link.net0.bytes", 100.0)
    trace.emit(0.5, EventKind.CHUNK_EMIT, "g.a->b", nbytes=100.0,
               flow_id=1)
    trace.emit(0.7, EventKind.CHUNK_RECV, "g.a->b", flow_id=1)
    trace.record_movement("net0", "g.a", "x->y", 100.0)
    data = trace.to_dict()
    assert data["schema"] == TRACE_SCHEMA == "repro.trace/v3"
    rebuilt = Trace.from_dict(json.loads(json.dumps(data)))
    assert [e for e in rebuilt.events] == [e for e in trace.events]
    assert rebuilt.ledger == trace.ledger
    assert rebuilt.to_dict() == data


def test_from_dict_accepts_v1_payload():
    trace = Trace()
    trace.add("n", 2.0)
    data = trace.to_dict()
    data["schema"] = "repro.trace/v1"
    del data["events"]
    del data["ledger"]
    rebuilt = Trace.from_dict(data)
    assert rebuilt.counter("n") == 2.0
    assert len(rebuilt.events) == 0
    assert rebuilt.ledger == {}


def test_merge_interleaves_events_and_adds_ledger_cells():
    a, b = Trace(), Trace()
    a.emit(1.0, EventKind.OP_OPEN, "x")
    a.emit(3.0, EventKind.OP_CLOSE, "x")
    b.emit(2.0, EventKind.CACHE_MISS, "c")
    a.record_movement("net0", "s1", "up", 100.0)
    b.record_movement("net0", "s1", "up", 50.0)
    b.record_movement("pcie0", "s2", "down", 10.0)
    a._flow_seq, b._flow_seq = 3, 7
    a.merge(b)
    assert [e.ts for e in a.events] == [1.0, 2.0, 3.0]
    assert a.ledger[("net0", "s1", "up")] == [150.0, 2.0]
    assert a.ledger[("pcie0", "s2", "down")] == [10.0, 1.0]
    assert a.next_flow_id() == 8    # sequence continues past both


def test_merge_never_drops_retained_events():
    """Merging two full rings grows capacity instead of truncating."""
    a, b = Trace(), Trace()
    a.events = EventRing(capacity=2)
    b.events = EventRing(capacity=2)
    for ts in range(4):
        a.emit(float(ts), EventKind.CACHE_HIT, "a")
        b.emit(float(ts) + 0.5, EventKind.CACHE_MISS, "b")
    assert a.events.dropped == b.events.dropped == 2
    a.merge(b)
    # Everything both sides still held survives, timestamp-sorted.
    assert [e.ts for e in a.events] == [2.0, 2.5, 3.0, 3.5]
    assert a.events.capacity >= 4
    assert a.events.dropped == 4    # pre-merge losses carry over


# ---------------------------------------------------------------------------
# Backpressure attribution
# ---------------------------------------------------------------------------

def test_credit_stall_attributed_to_sending_stage():
    sim = Simulator()
    trace = Trace()
    link = Link(sim, trace, "net0", bandwidth=1e6, latency=1e-6,
                segment="network")
    inbox = Store(sim, name="inbox")
    channel = CreditChannel(sim, trace, "g.a->b", [link], inbox,
                            credits=2, actor="g.a", direction="x->y")

    def producer():
        for _ in range(8):
            yield from channel.send(b"payload", 4096)
        yield from channel.send_end()

    def consumer():
        for _ in range(9):
            yield inbox.get()
            yield sim.timeout(0.05)   # slow: starves the window
            channel.ack()

    sim.process(producer())
    sim.process(consumer())
    sim.run()

    report = trace.stall_report()
    assert set(report) == {"g.a"}    # charged to the *sender* stage
    stats = report["g.a"]
    assert stats["credit_starved_s"] > 0.0
    assert stats["total_s"] == pytest.approx(
        stats["credit_starved_s"] + stats["downstream_full_s"]
        + stats["device_busy_s"])
    kinds = {e.kind for e in trace.events}
    assert EventKind.CREDIT_STALL in kinds
    assert EventKind.CREDIT_GRANT in kinds
    stalls = [e for e in trace.events
              if e.kind == EventKind.CREDIT_STALL]
    assert sum(e.dur for e in stalls) == pytest.approx(
        stats["credit_starved_s"])


def test_device_slot_contention_counter():
    sim = Simulator()
    trace = Trace()
    device = Device(sim, trace, "cpu", rates={OpKind.GENERIC: 1e6},
                    slots=1)

    def worker():
        yield from device.execute(OpKind.GENERIC, 1e6)

    sim.process(worker())
    sim.process(worker())    # queues behind the single slot
    sim.run()
    assert trace.counter("device.cpu.slot_wait_s") > 0.0


# ---------------------------------------------------------------------------
# Chrome trace export
# ---------------------------------------------------------------------------

def _sample_trace():
    trace = Trace()
    span = trace.open_span("query.volcano", 0.0)
    trace.close_span(span, 2.0)
    trace.emit(0.5, EventKind.CHUNK_EMIT, "g.a->b", nbytes=256.0,
               flow_id=1)
    trace.emit(0.9, EventKind.CHUNK_RECV, "g.a->b", flow_id=1)
    trace.emit(1.0, EventKind.CREDIT_STALL, "g.a->b", dur=0.25)
    trace.emit(1.5, EventKind.CACHE_MISS, "cache.c0", label="k")
    return trace


def test_chrome_trace_records_are_uniformly_shaped():
    payload = chrome_trace(_sample_trace())
    events = payload["traceEvents"]
    assert events
    for record in events:
        for key in ("ph", "ts", "pid", "tid"):
            assert key in record, (record, key)
    phases = {r["ph"] for r in events}
    assert {"M", "X", "i", "s", "f"} <= phases
    # The chunk_emit/chunk_recv pair became a tied flow arrow.
    starts = [r for r in events if r["ph"] == "s"]
    finishes = [r for r in events if r["ph"] == "f"]
    assert len(starts) == len(finishes) == 1
    assert starts[0]["id"] == finishes[0]["id"]
    # Timestamps are microseconds (1 simulated second = 1e6 us).
    spans = [r for r in events
             if r["ph"] == "X" and r["name"] == "query.volcano"]
    assert spans[0]["dur"] == pytest.approx(2e6)


def test_chrome_trace_export_round_trips_through_json(tmp_path):
    path = tmp_path / "trace.json"
    payload = export_chrome_trace(_sample_trace(), str(path))
    loaded = json.loads(path.read_text())
    assert loaded == payload
    assert isinstance(loaded["traceEvents"], list)
    assert loaded["otherData"]["event_ring"]["truncated"] is False


def test_chrome_trace_of_empty_trace_is_valid_and_empty():
    payload = chrome_trace(Trace())
    # No spans, no events: only the (empty) metadata survives, and
    # the payload is still a well-formed trace_events object.
    assert payload["traceEvents"] == []
    assert payload["otherData"]["event_ring"]["recorded"] == 0
    assert json.loads(json.dumps(payload)) == payload


def test_chrome_trace_closes_open_spans_at_watermark():
    trace = Trace()
    trace.open_span("device.d0", 1.0)    # never closed
    trace.tick(3.0)                      # clock watermark advances
    payload = chrome_trace(trace)
    spans = [r for r in payload["traceEvents"]
             if r["ph"] == "X" and r["name"] == "device.d0"]
    assert len(spans) == 1
    # The still-open span exports as [start, clock], not negative/NaN.
    assert spans[0]["ts"] == pytest.approx(1e6)
    assert spans[0]["dur"] == pytest.approx(2e6)


def test_chrome_trace_open_span_before_any_tick_has_zero_dur():
    trace = Trace()
    trace.open_span("device.d0", 0.5)
    # clock watermark still 0.0 < start: dur clamps to zero.
    spans = [r for r in chrome_trace(trace)["traceEvents"]
             if r["ph"] == "X"]
    assert spans[0]["dur"] == 0.0


def test_chrome_trace_skips_arrow_for_unmatched_send():
    trace = Trace()
    trace.emit(0.1, EventKind.CHUNK_EMIT, "g.a->b", nbytes=64.0,
               flow_id=7)            # receive never recorded
    trace.emit(0.2, EventKind.CHUNK_EMIT, "g.a->b", nbytes=64.0,
               flow_id=8)
    trace.emit(0.3, EventKind.CHUNK_RECV, "g.a->b", flow_id=8)
    payload = chrome_trace(trace)
    starts = [r for r in payload["traceEvents"] if r["ph"] == "s"]
    finishes = [r for r in payload["traceEvents"] if r["ph"] == "f"]
    # Flow 7's dangling send emits no arrow; flow 8 pairs up.
    assert [r["id"] for r in starts] == [8]
    assert [r["id"] for r in finishes] == [8]
    # The instant events themselves are still all exported.
    instants = [r for r in payload["traceEvents"] if r["ph"] == "i"]
    assert len(instants) == 3


def test_chrome_trace_skips_arrow_for_orphan_receive():
    trace = Trace()
    trace.emit(0.3, EventKind.CHUNK_RECV, "g.a->b", flow_id=9)
    payload = chrome_trace(trace)
    assert not [r for r in payload["traceEvents"]
                if r["ph"] in ("s", "f")]


# ---------------------------------------------------------------------------
# NIC DMA transfers
# ---------------------------------------------------------------------------

def test_nic_dma_transfer_occupies_an_engine_and_emits_events():
    sim = Simulator()
    trace = Trace()
    nic = NIC(sim, trace, "n0", gbits=100.0, dma_engines=1)
    nbytes = nic.line_rate * 0.5       # half a second each

    def xfer():
        yield from nic.dma_transfer(nbytes, label="scatter")

    sim.process(xfer())
    sim.process(xfer())                # queues behind the one engine
    sim.run()
    assert sim.now == pytest.approx(1.0)
    assert trace.counter("nic.n0.dma_transfers") == 2
    assert trace.counter("nic.n0.dma_bytes") == pytest.approx(
        2 * nbytes)
    completes = [e for e in trace.events
                 if e.kind == EventKind.DMA_COMPLETE]
    assert len(completes) == 2
    assert completes[0].dur == pytest.approx(0.5)
    assert completes[1].dur == pytest.approx(1.0)  # waited 0.5 s
    assert completes[0].actor == "nic.n0"
    assert completes[0].label == "scatter"


# ---------------------------------------------------------------------------
# utilization() guards: elapsed <= 0 never divides
# ---------------------------------------------------------------------------

def test_trace_utilization_zero_horizon():
    trace = Trace()
    span = trace.open_span("dev", 0.0)
    trace.close_span(span, 1.0)
    assert trace.utilization("dev", elapsed=0.0) == 0.0
    assert trace.utilization("dev", elapsed=-1.0) == 0.0
    assert Trace().utilization("dev") == 0.0     # clock still at 0


def test_resource_and_device_utilization_zero_horizon():
    sim = Simulator()
    trace = Trace()
    resource = Resource(sim, capacity=1, name="r")
    assert resource.utilization(elapsed=0.0) == 0.0
    assert resource.utilization() == 0.0         # sim.now == 0
    device = Device(sim, trace, "d", rates={OpKind.GENERIC: 1e9})
    assert device.utilization(elapsed=0.0) == 0.0
    link = Link(sim, trace, "l0", bandwidth=1e9, latency=0.0)
    assert link.utilization(elapsed=0.0) == 0.0
    nic = NIC(sim, trace, "n0")
    assert nic.utilization(elapsed=0.0) == {"dma": 0.0}
