"""Property test: IntervalIndex window clipping == scalar reference.

The vectorized clip (:class:`repro.analysis.IntervalIndex`) claims
bit-identity with the scalar `_clip` path for every interval/window
shape — zero-width intervals, open (still-running) spans, edges that
land exactly on window boundaries, fully-contained and
fully-straddling spans.  Hypothesis drives the claim; the attribution
built on either path must agree Fraction-exactly.
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.analysis import IntervalIndex, attribute
from repro.analysis.critical_path import _clip
from repro.sim import Trace

# A coarse binary grid makes exact window-edge collisions common
# (0.125 steps are exact in binary floating point), while the float
# strategy exercises arbitrary unaligned reals.
_GRID = st.integers(min_value=-8, max_value=24).map(lambda i: i / 8)
_REAL = st.floats(min_value=-1.0, max_value=3.0,
                  allow_nan=False, allow_infinity=False)
_POINT = st.one_of(_GRID, _REAL)

_BUCKETS = [("device:cpu", 0), ("storage:media", 1), ("nic:dma", 2),
            ("link:bus", 3), ("wait:wire", 4), ("wait:credit", 5)]


@st.composite
def _interval(draw):
    start = draw(_POINT)
    kind = draw(st.sampled_from(["closed", "zero", "open"]))
    if kind == "open":
        end = None                      # still-running span
    elif kind == "zero":
        end = start                     # zero-width interval
    else:
        end = start + abs(draw(_POINT))
    bucket, prio = draw(st.sampled_from(_BUCKETS))
    return (start, end, bucket, prio)


@st.composite
def _window(draw):
    q0 = draw(_POINT)
    width = draw(st.one_of(st.just(0.0), _GRID.map(abs), _REAL.map(abs)))
    return q0, q0 + width


@given(intervals=st.lists(_interval(), max_size=24),
       window=_window())
@settings(max_examples=300, deadline=None)
def test_vectorized_clip_matches_scalar_reference(intervals, window):
    q0, q1 = window
    assert IntervalIndex(intervals).clip(q0, q1) \
        == _clip(intervals, q0, q1)


@given(intervals=st.lists(_interval(), max_size=24),
       window=_window())
@settings(max_examples=200, deadline=None)
def test_attribution_identical_on_either_path(intervals, window):
    q0, q1 = window
    trace = Trace()
    via_index = attribute(trace, q0, q1,
                          intervals=IntervalIndex(intervals))
    via_list = attribute(trace, q0, q1, intervals=list(intervals))
    assert via_index.buckets == via_list.buckets  # Fraction-exact
    assert via_index.segments == via_list.segments
    if q1 > q0:
        width = Fraction(q1) - Fraction(q0)
        assert via_index.total == width  # tiles the window exactly


# -- pinned edge cases the strategy must never regress on ------------------

def test_zero_width_interval_contributes_nothing():
    intervals = [(0.5, 0.5, "device:cpu", 0)]
    assert IntervalIndex(intervals).clip(0.0, 1.0) == []
    assert _clip(intervals, 0.0, 1.0) == []


def test_exactly_aligned_edges_are_half_open():
    # A span ending exactly at q0 or starting exactly at q1 is out.
    intervals = [(0.0, 0.25, "device:cpu", 0),
                 (0.75, 1.0, "link:bus", 3)]
    for path in (IntervalIndex(intervals).clip,
                 lambda a, b: _clip(intervals, a, b)):
        assert path(0.25, 0.75) == []
        assert path(0.0, 0.25) == [(0.0, 0.25, "device:cpu", 0)]


def test_fully_contained_and_straddling_spans():
    contained = (0.4, 0.6, "device:cpu", 0)
    straddling = (0.0, 2.0, "storage:media", 1)
    open_span = (0.5, None, "nic:dma", 2)
    clipped = IntervalIndex(
        [contained, straddling, open_span]).clip(0.25, 0.75)
    assert clipped == [
        (0.4, 0.6, "device:cpu", 0),
        (0.25, 0.75, "storage:media", 1),
        (0.5, 0.75, "nic:dma", 2)]
    assert clipped == _clip([contained, straddling, open_span],
                            0.25, 0.75)
