"""Unit tests for Device, Link, and movement accounting."""

import pytest

from repro.hardware import (
    Device,
    Link,
    OpKind,
    UnsupportedOperation,
    pcie_link,
    rdma_link,
)
from repro.sim import Simulator, Trace


def make_env():
    sim = Simulator()
    return sim, Trace()


# ---------------------------------------------------------------------------
# Device
# ---------------------------------------------------------------------------

def test_device_service_time():
    sim, trace = make_env()
    dev = Device(sim, trace, "d", rates={OpKind.FILTER: 100.0}, startup=1.0)
    assert dev.service_time(OpKind.FILTER, 200.0) == pytest.approx(3.0)


def test_device_execute_charges_time_and_counters():
    sim, trace = make_env()
    dev = Device(sim, trace, "d", rates={OpKind.FILTER: 100.0})

    def proc():
        yield from dev.execute(OpKind.FILTER, 500.0)
        return sim.now

    assert sim.run_process(proc()) == pytest.approx(5.0)
    assert trace.counter("device.d.bytes.filter") == 500.0
    assert trace.counter("device.d.ops") == 1


def test_device_unsupported_kind_raises():
    sim, trace = make_env()
    dev = Device(sim, trace, "d", rates={OpKind.FILTER: 100.0})
    assert not dev.supports(OpKind.SORT)
    with pytest.raises(UnsupportedOperation):
        dev.rate_for(OpKind.SORT)


def test_device_default_rate_fallback():
    sim, trace = make_env()
    dev = Device(sim, trace, "d", rates={}, default_rate=50.0)
    assert dev.supports(OpKind.SORT)
    assert dev.rate_for(OpKind.SORT) == 50.0


def test_device_slots_limit_concurrency():
    sim, trace = make_env()
    dev = Device(sim, trace, "d", rates={OpKind.FILTER: 100.0}, slots=1)
    done = []

    def user(tag):
        yield from dev.execute(OpKind.FILTER, 100.0)
        done.append((sim.now, tag))

    sim.process(user("a"))
    sim.process(user("b"))
    sim.run()
    assert done == [(1.0, "a"), (2.0, "b")]


def test_device_parallel_slots():
    sim, trace = make_env()
    dev = Device(sim, trace, "d", rates={OpKind.FILTER: 100.0}, slots=2)
    done = []

    def user(tag):
        yield from dev.execute(OpKind.FILTER, 100.0)
        done.append((sim.now, tag))

    sim.process(user("a"))
    sim.process(user("b"))
    sim.run()
    assert done == [(1.0, "a"), (1.0, "b")]


def test_device_busy_span_recorded():
    sim, trace = make_env()
    dev = Device(sim, trace, "d", rates={OpKind.FILTER: 100.0})

    def proc():
        yield from dev.execute(OpKind.FILTER, 300.0)

    sim.process(proc())
    sim.run()
    assert trace.busy_time("device.d") == pytest.approx(3.0)


# ---------------------------------------------------------------------------
# Link
# ---------------------------------------------------------------------------

def test_link_transfer_time():
    sim, trace = make_env()
    link = Link(sim, trace, "l", bandwidth=1000.0, latency=0.5)
    assert link.transfer_time(2000.0) == pytest.approx(2.5)


def test_link_transfer_counts_bytes_and_segment():
    sim, trace = make_env()
    link = Link(sim, trace, "l", bandwidth=1000.0, latency=0.0,
                segment="network")

    def proc():
        yield from link.transfer(800.0, flow="q1")

    sim.process(proc())
    sim.run()
    assert trace.counter("link.l.bytes") == 800.0
    assert trace.counter("movement.network.bytes") == 800.0
    assert trace.counter("flow.q1.bytes") == 800.0


def test_link_contention_serializes():
    sim, trace = make_env()
    link = Link(sim, trace, "l", bandwidth=100.0, latency=0.0, ports=1)
    done = []

    def sender(tag):
        yield from link.transfer(100.0)
        done.append((sim.now, tag))

    sim.process(sender("a"))
    sim.process(sender("b"))
    sim.run()
    assert done == [(1.0, "a"), (2.0, "b")]


def test_link_rejects_nonpositive_bandwidth():
    sim, trace = make_env()
    with pytest.raises(ValueError):
        Link(sim, trace, "l", bandwidth=0.0, latency=0.0)


def test_pcie_generations_double_bandwidth():
    sim, trace = make_env()
    gen3 = pcie_link(sim, trace, "g3", generation=3)
    gen5 = pcie_link(sim, trace, "g5", generation=5)
    ratio = gen5.bandwidth / gen3.bandwidth
    assert ratio == pytest.approx(4.0, rel=0.01)


def test_pcie_unknown_generation_rejected():
    sim, trace = make_env()
    with pytest.raises(ValueError):
        pcie_link(sim, trace, "bad", generation=2)


def test_rdma_bandwidth_matches_gbits():
    sim, trace = make_env()
    link = rdma_link(sim, trace, "r", gbits=100.0)
    assert link.bandwidth == pytest.approx(12.5e9)
    assert link.latency < 10e-6


def test_remaining_link_factories():
    from repro.hardware import cache_bus, ethernet_link, memory_bus, \
        nvlink_link
    sim, trace = make_env()
    eth = ethernet_link(sim, trace, "e", gbits=400.0)
    assert eth.bandwidth == pytest.approx(50e9)
    assert eth.segment == "network"
    nvl = nvlink_link(sim, trace, "n", generation=4)
    assert nvl.segment == "nvlink"
    mem = memory_bus(sim, trace, "m", gib_per_s=20.0)
    assert mem.segment == "membus"
    cache = cache_bus(sim, trace, "c")
    assert cache.segment == "cache"
    assert cache.latency < mem.latency < eth.latency
    with pytest.raises(ValueError):
        nvlink_link(sim, trace, "bad", generation=9)


def test_cxl_requires_gen5_plus():
    from repro.hardware import cxl_link
    sim, trace = make_env()
    with pytest.raises(ValueError):
        cxl_link(sim, trace, "bad", generation=4)


def test_storage_medium_presets():
    from repro.hardware import StorageMedium
    sim, trace = make_env()
    ssd = StorageMedium.nvme_ssd(sim, trace, "ssd")
    hdd = StorageMedium.hdd(sim, trace, "hdd")
    backend = StorageMedium.object_store_backend(sim, trace, "obj")
    assert ssd.read_bandwidth > backend.read_bandwidth > \
        hdd.read_bandwidth
    assert hdd.access_latency > ssd.access_latency
    # Writes are slower than reads by default.
    assert ssd.write_bandwidth < ssd.read_bandwidth


def test_storage_medium_write_charges():
    from repro.hardware import StorageMedium
    from repro.sim import Simulator, Trace
    sim = Simulator()
    trace = Trace()
    ssd = StorageMedium.nvme_ssd(sim, trace, "ssd")

    def proc():
        yield from ssd.write(1 << 20)

    sim.run_process(proc())
    assert trace.counter("storage.ssd.bytes.write") == float(1 << 20)
