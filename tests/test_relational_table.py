"""Tests for schema, chunk, and table."""

import numpy as np
import pytest

from repro.relational import Chunk, DataType, Field, Schema, Table


def small_schema():
    return Schema.of(("a", DataType.INT64), ("b", DataType.FLOAT64),
                     ("s", DataType.STRING, 8))


def small_chunk():
    return Chunk(small_schema(), {
        "a": np.array([1, 2, 3], dtype=np.int64),
        "b": np.array([1.5, 2.5, 3.5]),
        "s": np.array(["x", "y", "z"]),
    })


# ---------------------------------------------------------------------------
# Schema
# ---------------------------------------------------------------------------

def test_schema_row_nbytes():
    schema = small_schema()
    # int64 (8) + float64 (8) + U8 string (8*4)
    assert schema.row_nbytes == 8 + 8 + 32


def test_schema_duplicate_names_rejected():
    with pytest.raises(ValueError):
        Schema.of(("a", DataType.INT64), ("a", DataType.INT64))


def test_schema_unknown_type_rejected():
    with pytest.raises(ValueError):
        Field("x", "varchar")


def test_schema_project_preserves_order():
    schema = small_schema()
    proj = schema.project(["s", "a"])
    assert proj.names == ["s", "a"]


def test_schema_project_unknown_column():
    with pytest.raises(KeyError):
        small_schema().project(["nope"])


def test_schema_concat_with_prefix():
    left = Schema.of(("a", DataType.INT64))
    right = Schema.of(("a", DataType.INT64), ("b", DataType.FLOAT64))
    joined = left.concat(right, prefix="r_")
    assert joined.names == ["a", "r_a", "r_b"]


# ---------------------------------------------------------------------------
# Chunk
# ---------------------------------------------------------------------------

def test_chunk_nbytes_exact():
    chunk = small_chunk()
    assert chunk.nbytes == 3 * 8 + 3 * 8 + 3 * 32


def test_chunk_ragged_columns_rejected():
    with pytest.raises(ValueError):
        Chunk(Schema.of(("a", DataType.INT64), ("b", DataType.INT64)),
              {"a": np.array([1, 2]), "b": np.array([1])})


def test_chunk_missing_column_rejected():
    with pytest.raises(ValueError):
        Chunk(small_schema(), {"a": np.array([1])})


def test_chunk_filter_mask():
    chunk = small_chunk()
    out = chunk.filter(np.array([True, False, True]))
    assert out.column("a").tolist() == [1, 3]
    assert out.column("s").tolist() == ["x", "z"]


def test_chunk_filter_wrong_mask_length():
    with pytest.raises(ValueError):
        small_chunk().filter(np.array([True]))


def test_chunk_project():
    out = small_chunk().project(["b"])
    assert out.schema.names == ["b"]
    assert out.nbytes == 3 * 8


def test_chunk_take_reorders():
    out = small_chunk().take(np.array([2, 0, 0]))
    assert out.column("a").tolist() == [3, 1, 1]


def test_chunk_concat_roundtrip():
    chunk = small_chunk()
    joined = Chunk.concat([chunk, chunk])
    assert joined.num_rows == 6
    assert joined.column("a").tolist() == [1, 2, 3, 1, 2, 3]


def test_chunk_concat_empty_rejected():
    with pytest.raises(ValueError):
        Chunk.concat([])


def test_chunk_with_column():
    chunk = small_chunk()
    out = chunk.with_column(Field("c", DataType.INT64),
                            np.array([7, 8, 9], dtype=np.int64))
    assert out.schema.names == ["a", "b", "s", "c"]
    assert out.column("c").tolist() == [7, 8, 9]


def test_chunk_rename():
    out = small_chunk().rename({"a": "alpha"})
    assert out.schema.names == ["alpha", "b", "s"]
    assert out.column("alpha").tolist() == [1, 2, 3]


def test_chunk_to_rows():
    rows = small_chunk().to_rows()
    assert rows[0] == (1, 1.5, "x")
    assert len(rows) == 3


def test_chunk_dtype_coercion():
    schema = Schema.of(("a", DataType.INT64))
    chunk = Chunk(schema, {"a": [1.0, 2.0]})
    assert chunk.column("a").dtype == np.int64


# ---------------------------------------------------------------------------
# Table
# ---------------------------------------------------------------------------

def test_table_from_arrays_chunking():
    schema = Schema.of(("a", DataType.INT64))
    table = Table.from_arrays(schema, {"a": np.arange(10)}, chunk_rows=3)
    assert [c.num_rows for c in table.chunks] == [3, 3, 3, 1]
    assert table.num_rows == 10


def test_table_column_concatenated():
    schema = Schema.of(("a", DataType.INT64))
    table = Table.from_arrays(schema, {"a": np.arange(10)}, chunk_rows=4)
    assert table.column("a").tolist() == list(range(10))


def test_table_schema_mismatch_rejected():
    schema = Schema.of(("a", DataType.INT64))
    other = Schema.of(("b", DataType.INT64))
    table = Table(schema)
    with pytest.raises(ValueError):
        table.append(Chunk(other, {"b": np.array([1])}))


def test_table_rechunk_preserves_rows():
    schema = Schema.of(("a", DataType.INT64))
    table = Table.from_arrays(schema, {"a": np.arange(100)}, chunk_rows=7)
    rechunked = table.rechunk(25)
    assert rechunked.sorted_rows() == table.sorted_rows()
    assert [c.num_rows for c in rechunked.chunks] == [25, 25, 25, 25]


def test_empty_table():
    schema = Schema.of(("a", DataType.INT64))
    table = Table.from_arrays(schema, {"a": np.empty(0, dtype=np.int64)})
    assert table.num_rows == 0
    assert table.combined().num_rows == 0
    assert table.column("a").tolist() == []
