"""End-to-end tests for the multi-tenant serving stack."""

import asyncio
import json

import pytest

from repro.bench import compare_reports, run_serving
from repro.obs import make_report, validate_report
from repro.serve import (
    AdmissionController,
    ArrivalSpec,
    AsyncFrontEnd,
    QueryServer,
    ServeConfig,
    ShedResponse,
    TenantClass,
    open_arrivals,
    run_scenario,
    schedule_for,
    serve_templates,
)
from repro.serve.scenarios import _make_catalog
from repro.hardware import build_fabric, dataflow_spec


def make_server(config=None, tenants=None):
    fabric = build_fabric(dataflow_spec())
    catalog = _make_catalog(1500)
    tenants = tenants or [
        TenantClass(name="a", weight=2.0, slo_s=0.01, seed=1,
                    arrival=ArrivalSpec(kind="poisson", rate=500.0),
                    templates={"count_hot": 1.0}),
        TenantClass(name="b", weight=1.0, slo_s=0.01, seed=2,
                    arrival=ArrivalSpec(kind="poisson", rate=500.0),
                    templates={"topk": 1.0}),
    ]
    server = QueryServer(fabric, catalog, tenants, serve_templates(),
                         config or ServeConfig())
    return server


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------

def test_admission_sheds_when_queue_full():
    ctrl = AdmissionController(max_queue=2, max_concurrency=2)
    assert ctrl.decide(queued=1, running=2, backlog_cost_s=0.1).admitted
    verdict = ctrl.decide(queued=2, running=2, backlog_cost_s=0.1)
    assert not verdict.admitted
    assert verdict.retry_after_s == pytest.approx(0.05)
    assert "queue full" in verdict.reason
    assert ctrl.counters() == {"admitted": 1, "shed": 1}


def test_admission_retry_after_has_floor():
    ctrl = AdmissionController(max_queue=0, max_concurrency=4)
    verdict = ctrl.decide(queued=0, running=4, backlog_cost_s=0.0)
    assert not verdict.admitted
    assert verdict.retry_after_s >= 1e-3


def test_admission_rejects_bad_config():
    with pytest.raises(ValueError):
        AdmissionController(max_queue=-1, max_concurrency=1)
    with pytest.raises(ValueError):
        AdmissionController(max_queue=1, max_concurrency=0)


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------

def test_open_arrivals_are_seeded_and_sorted():
    tenant = TenantClass(name="t", seed=5,
                         arrival=ArrivalSpec(kind="bursty", rate=1000.0,
                                             rate_off=10.0),
                         templates={"count_hot": 1.0})
    first = open_arrivals(tenant, 50)
    second = open_arrivals(tenant, 50)
    assert [a.time for a in first] == [a.time for a in second]
    assert all(a.time <= b.time for a, b in zip(first, first[1:]))
    assert all(a.tenant == "t" for a in first)


def test_open_arrivals_rejects_closed_tenant():
    tenant = TenantClass(name="t",
                         arrival=ArrivalSpec(kind="closed"),
                         templates={"count_hot": 1.0})
    with pytest.raises(ValueError, match="closed-loop"):
        open_arrivals(tenant, 10)


def test_schedule_merges_and_skips_closed():
    open_tenant = TenantClass(
        name="open", seed=1,
        arrival=ArrivalSpec(kind="poisson", rate=1000.0),
        templates={"count_hot": 1.0})
    closed_tenant = TenantClass(
        name="closed", arrival=ArrivalSpec(kind="closed"),
        templates={"count_hot": 1.0})
    merged = schedule_for([open_tenant, closed_tenant],
                          {"open": 20, "closed": 99})
    assert len(merged) == 20
    assert all(a.tenant == "open" for a in merged)
    times = [a.time for a in merged]
    assert times == sorted(times)


def test_arrival_kind_validation():
    with pytest.raises(ValueError, match="unknown arrival kind"):
        ArrivalSpec(kind="lunar")


# ---------------------------------------------------------------------------
# QueryServer (batch mode, no asyncio)
# ---------------------------------------------------------------------------

def test_server_batch_submit_and_drain():
    server = make_server()
    records = [server.submit("a", "count_hot") for _ in range(5)]
    server.drain()
    assert all(r.completed for r in records)
    assert all(r.checksum for r in records)
    assert len({r.checksum for r in records}) == 1  # same template
    assert server.accounting_violations() == []


def test_server_plan_cache_hits_after_first():
    server = make_server()
    for _ in range(4):
        server.submit("a", "count_hot")
    server.drain()
    counters = server.plan_cache.counters()
    assert counters["misses"] == 1
    assert counters["hits"] == 3
    kinds = [r.plan_cache for r in server.records]
    assert kinds == ["miss", "hit", "hit", "hit"]


def test_server_sheds_above_queue_bound():
    config = ServeConfig(max_concurrency=1, max_queue=1)
    server = make_server(config=config)
    seen = []
    for _ in range(5):
        record = server.submit("a", "count_hot",
                               on_done=seen.append)
    del record
    server.drain()
    shed = [r for r in server.records if not r.admitted]
    # 1 running + 1 queued admitted at submission time; rest shed.
    assert len(shed) == 3
    assert all(r.retry_after_s > 0 for r in shed)
    assert len(seen) == 5  # on_done fired for shed and completed
    assert server.accounting_violations() == []


def test_server_unknown_template_and_tenant():
    server = make_server()
    with pytest.raises(ValueError):
        server.submit("a", "nope")
    with pytest.raises(KeyError):
        server.submit("ghost", "count_hot")


def test_tenant_validation():
    with pytest.raises(ValueError, match="unknown"):
        make_server(tenants=[
            TenantClass(name="a", templates={"no_such": 1.0})])
    with pytest.raises(ValueError, match="weight"):
        TenantClass(name="a", weight=0.0,
                    templates={"count_hot": 1.0})


# ---------------------------------------------------------------------------
# Async front-end
# ---------------------------------------------------------------------------

def test_frontend_closed_loop_client():
    server = make_server()
    front = AsyncFrontEnd(server)
    latencies = []

    async def client():
        for _ in range(5):
            record = await front.submit("a", "count_hot")
            latencies.append(record.latency)
            await front.sleep_until(front.now + 0.001)

    front.serve([client()])
    assert len(latencies) == 5
    assert all(lat > 0 for lat in latencies)
    assert server.idle


def test_frontend_open_loop_submissions():
    server = make_server()
    front = AsyncFrontEnd(server)

    async def replay():
        futures = [front.submit("a", "count_hot", at=i * 0.001)
                   for i in range(10)]
        await asyncio.gather(*futures)

    front.serve([replay()])
    assert len(server.records) == 10
    arrivals = [r.arrival for r in server.records]
    assert arrivals == pytest.approx([i * 0.001 for i in range(10)])


def test_frontend_rejects_past_scheduling():
    server = make_server()
    front = AsyncFrontEnd(server)

    async def client():
        await front.sleep_until(0.01)
        front.submit("a", "count_hot", at=0.001)  # in the past

    with pytest.raises(ValueError, match="cannot schedule"):
        front.serve([client()])


def test_frontend_detects_deadlocked_population():
    server = make_server()
    front = AsyncFrontEnd(server)

    async def deadlocked():
        # Waits on a future nothing will ever resolve.
        await asyncio.get_running_loop().create_future()

    with pytest.raises(RuntimeError, match="stalled"):
        front.serve([deadlocked()])


def test_frontend_shed_response_to_closed_client():
    config = ServeConfig(max_concurrency=1, max_queue=1)
    server = make_server(config=config)
    front = AsyncFrontEnd(server)
    responses = []

    async def eager():
        # Three concurrent submits at t=0: one runs, one queues, and
        # the third finds the waiting room full and is shed.
        futures = [front.submit("a", "count_hot") for _ in range(3)]
        responses.extend(await asyncio.gather(*futures))

    front.serve([eager()])
    kinds = [type(r).__name__ for r in responses]
    assert kinds.count("ShedResponse") == 1
    shed = next(r for r in responses if isinstance(r, ShedResponse))
    assert shed.retry_after_s > 0


# ---------------------------------------------------------------------------
# Scenarios: end-to-end serving runs
# ---------------------------------------------------------------------------

def test_scenario_two_tenant_bursty_end_to_end():
    record = run_scenario("two_tenant_bursty", queries=60)
    assert record["queries"] >= 60
    assert record["completed"] + record["shed"] == record["queries"]
    assert record["accounting_violations"] == []
    assert record["verification"]["mismatches"] == 0
    latency = record["latency"]
    assert 0 < latency["p50_s"] <= latency["p99_s"] <= latency["p999_s"]
    assert record["goodput_qps"] > 0
    assert record["plan_cache"]["hits"] > 0


def test_scenario_three_tenant_classes():
    record = run_scenario("three_tenant_mix", queries=90)
    assert len(record["tenants"]) == 3
    for tenant in record["tenants"].values():
        assert tenant["completed"] > 0  # nobody starved


def test_scenario_overload_sheds_and_protects_steady_tenant():
    record = run_scenario("overload_shed", queries=120)
    assert record["shed"] > 0
    tenants = record["tenants"]
    flood, steady = tenants["flood"], tenants["steady"]
    assert flood.get("shed", 0) > 0
    # The weighted fair queue + admission keep the steady tenant's
    # completion rate far above the flooding tenant's.
    steady_rate = steady["completed"] / steady["submitted"]
    flood_rate = flood["completed"] / flood["submitted"]
    assert steady_rate > flood_rate


def test_scenario_is_deterministic():
    def strip(record):
        record = dict(record)
        record.pop("wall_time_s", None)
        return json.dumps(record, sort_keys=True, default=str)

    first = run_scenario("two_tenant_bursty", queries=40,
                         verify=False)
    second = run_scenario("two_tenant_bursty", queries=40,
                          verify=False)
    assert strip(first) == strip(second)


def test_scenario_unknown_name():
    with pytest.raises(ValueError, match="unknown serve scenario"):
        run_scenario("nope")


# ---------------------------------------------------------------------------
# Bench integration: v3 schema + compare gating
# ---------------------------------------------------------------------------

def test_v3_report_with_serving_validates():
    serving = run_serving(names=["two_tenant_bursty"], queries=40)
    report = make_report("t", smoke=[], serving=serving)
    assert report["schema"] == "repro.bench/v3"
    assert validate_report(report) == ""


def test_v3_report_missing_serving_section_fails():
    report = make_report("t", smoke=[])
    del report["serving"]
    with pytest.raises(ValueError, match="serving"):
        validate_report(report)


def test_v2_report_without_serving_still_valid():
    report = make_report("t", smoke=[])
    report["schema"] = "repro.bench/v2"
    del report["serving"]
    assert validate_report(report) == ""


def test_serving_record_schema_violations_detected():
    serving = run_serving(names=["two_tenant_bursty"], queries=40)
    report = make_report("t", smoke=[], serving=serving)
    report["serving"][0]["slo_violations"] = \
        report["serving"][0]["completed"] + 1
    reason = validate_report(report, strict=False)
    assert "more SLO violations than completions" in reason


def test_compare_gates_serving_metrics():
    serving = run_serving(names=["two_tenant_bursty"], queries=40)
    baseline = make_report("base", smoke=[], serving=serving)

    fresh = [dict(serving[0])]
    assert compare_reports(baseline, [], fresh_serving=fresh) == []

    # Checksums and counts gate exactly.
    broken = [dict(serving[0])]
    broken[0]["checksum"] = "0" * 64
    violations = compare_reports(baseline, [], fresh_serving=broken)
    assert any("checksum" in v for v in violations)

    drifted = [dict(serving[0])]
    drifted[0]["shed"] = serving[0]["shed"] + 1
    violations = compare_reports(baseline, [],
                                 fresh_serving=drifted)
    assert any("shed" in v for v in violations)

    # Percentiles gate within tolerance.
    slow = [dict(serving[0])]
    slow[0]["latency"] = dict(serving[0]["latency"])
    slow[0]["latency"]["p99_s"] = serving[0]["latency"]["p99_s"] * 2
    violations = compare_reports(baseline, [], fresh_serving=slow)
    assert any("latency.p99_s" in v for v in violations)
    assert compare_reports(baseline, [], tolerance=2.0,
                           fresh_serving=slow) == []

    missing = compare_reports(baseline, [], fresh_serving=[])
    assert any("missing from fresh run" in v for v in missing)


def test_serving_rerun_reproduces_baseline():
    """The full regression-gate loop: re-running a serving scenario
    with the baseline's (rows, requested_queries) reproduces every
    gated metric bit for bit."""
    first = run_serving(names=["two_tenant_bursty"], queries=40)
    baseline = make_report("base", smoke=[], serving=first)
    again = run_serving(
        names=["two_tenant_bursty"],
        rows=first[0]["rows"],
        queries=first[0]["requested_queries"])
    assert compare_reports(baseline, [], fresh_serving=again) == []
