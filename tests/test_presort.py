"""Tests for sorted-run generation and merging (§3.3 pre-sorting)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import DataflowEngine, Query, VolcanoEngine, pushdown
from repro.engine.operators import MergeRuns, SortOp, SortRuns, merge_sorted
from repro.hardware import build_fabric, dataflow_spec
from repro.relational import Catalog, Chunk, DataType, Field, Schema, \
    make_uniform_table


def ints_chunk(**cols):
    schema = Schema([Field(n, DataType.INT64) for n in cols])
    return Chunk(schema, {n: np.asarray(v, dtype=np.int64)
                          for n, v in cols.items()})


# ---------------------------------------------------------------------------
# merge_sorted
# ---------------------------------------------------------------------------

def test_merge_sorted_basic():
    a = ints_chunk(k=[1, 3, 5], v=[10, 30, 50])
    b = ints_chunk(k=[2, 3, 6], v=[20, 31, 60])
    out = merge_sorted(a, b, ["k"])
    assert out.column("k").tolist() == [1, 2, 3, 3, 5, 6]
    assert out.column("v").tolist() == [10, 20, 30, 31, 50, 60]


def test_merge_sorted_stable_ties_keep_first_run_first():
    a = ints_chunk(k=[1, 1], v=[100, 101])
    b = ints_chunk(k=[1], v=[200])
    out = merge_sorted(a, b, ["k"])
    assert out.column("v").tolist() == [100, 101, 200]


def test_merge_sorted_empty_sides():
    a = ints_chunk(k=[1, 2], v=[1, 2])
    empty = a.slice(0, 0)
    assert merge_sorted(a, empty, ["k"]).column("k").tolist() == [1, 2]
    assert merge_sorted(empty, a, ["k"]).column("k").tolist() == [1, 2]


def test_merge_sorted_multi_key():
    a = ints_chunk(k=[1, 1, 2], t=[1, 3, 1], v=[0, 1, 2])
    b = ints_chunk(k=[1, 2], t=[2, 0], v=[3, 4])
    out = merge_sorted(a, b, ["k", "t"])
    assert out.to_rows() == [(1, 1, 0), (1, 2, 3), (1, 3, 1),
                             (2, 0, 4), (2, 1, 2)]


@given(a=st.lists(st.integers(-100, 100), max_size=100),
       b=st.lists(st.integers(-100, 100), max_size=100))
@settings(max_examples=40, deadline=None)
def test_merge_sorted_property(a, b):
    ca = ints_chunk(k=sorted(a)) if a else \
        ints_chunk(k=[]).slice(0, 0)
    cb = ints_chunk(k=sorted(b)) if b else \
        ints_chunk(k=[]).slice(0, 0)
    out = merge_sorted(ca, cb, ["k"])
    assert out.column("k").tolist() == sorted(a + b)


# ---------------------------------------------------------------------------
# SortRuns + MergeRuns pipeline
# ---------------------------------------------------------------------------

def test_runs_then_merge_equals_full_sort():
    rng = np.random.default_rng(9)
    values = rng.integers(0, 1000, size=500)
    payload = rng.integers(0, 10, size=500)
    chunks = [ints_chunk(k=values[i:i + 100], v=payload[i:i + 100])
              for i in range(0, 500, 100)]

    full = SortOp(["k", "v"])
    for c in chunks:
        full.process(c)
    expected = full.finish()[0].chunk

    runs_op = SortRuns(["k", "v"])
    merge = MergeRuns(["k", "v"])
    for c in chunks:
        for emit in runs_op.process(c):
            merge.process(emit.chunk)
    got = merge.finish()[0].chunk
    assert got.to_rows() == expected.to_rows()


def test_merge_runs_empty_stream():
    assert MergeRuns(["k"]).finish() == []


def test_sort_runs_emits_per_chunk():
    op = SortRuns(["k"])
    out = op.process(ints_chunk(k=[3, 1, 2]))
    assert len(out) == 1
    assert out[0].chunk.column("k").tolist() == [1, 2, 3]
    assert op.process(ints_chunk(k=[]).slice(0, 0)) == []


# ---------------------------------------------------------------------------
# Engine integration: presort_runs placement
# ---------------------------------------------------------------------------

def test_presort_pushdown_matches_volcano():
    fabric = build_fabric(dataflow_spec())
    catalog = Catalog()
    catalog.register("t", make_uniform_table(5000, columns=2,
                                             distinct=200,
                                             chunk_rows=500))
    query = (Query.scan("t").filter(col_k0_under(150))
             .sort(["k0", "k1"]))

    placement = pushdown(query.plan, fabric, presort_runs=True)
    sort_node = query.plan
    assert placement.sites[sort_node.node_id][0] == "storage.cu"
    result = DataflowEngine(fabric, catalog).execute(
        query, placement=placement)

    fabric2 = build_fabric(dataflow_spec())
    catalog2 = Catalog()
    catalog2.register("t", make_uniform_table(5000, columns=2,
                                              distinct=200,
                                              chunk_rows=500))
    reference = VolcanoEngine(fabric2, catalog2).execute(query)
    # Full order (not just multiset) must match.
    assert result.table.combined().to_rows() == \
        reference.table.combined().to_rows()
    # The expensive SORT work ran on the storage CU, not the CPU.
    assert fabric.trace.counter("device.storage.cu.bytes.sort") > 0
    assert fabric.trace.counter("device.compute0.cpu.bytes.sort") == 0


def col_k0_under(value):
    from repro.relational import col
    return col("k0") < value


def test_presort_reduces_cpu_sort_time():
    def run(presort):
        fabric = build_fabric(dataflow_spec())
        catalog = Catalog()
        catalog.register("t", make_uniform_table(20000, columns=2,
                                                 chunk_rows=1000))
        query = Query.scan("t").sort(["k0"])
        placement = pushdown(query.plan, fabric,
                             presort_runs=presort)
        DataflowEngine(fabric, catalog).execute(query,
                                                placement=placement)
        return fabric.trace.busy_time("device.compute0.cpu")

    assert run(True) < run(False)
