"""Tests for the accelerator kernel compilation layer (§7.2)."""

import pytest

from repro.engine.kernels import (
    Kernel,
    KernelUnsupported,
    compile_kernel,
    install_kernel,
    installation_time,
)
from repro.engine.logical import AggSpec
from repro.engine.operators import (
    FilterOp,
    HashJoinBuild,
    HashJoinProbe,
    JoinState,
    LimitOp,
    MergeAggregate,
    PartialAggregate,
    PartitionOp,
    ProjectOp,
    SortOp,
)
from repro.hardware import Device, OpKind
from repro.relational import DataType, Field, Schema, col, lit
from repro.sim import Simulator, Trace

SCHEMA = Schema.of(("x", DataType.INT64), ("y", DataType.INT64),
                   ("s", DataType.STRING, 16))


def test_simple_comparison_is_register_only():
    kernel = compile_kernel(FilterOp(col("x") > 5))
    assert kernel.logic_bytes == 0
    assert kernel.registers["p.col"] == "x"
    assert kernel.registers["p.cmp"] == ">"
    assert kernel.registers["p.imm"] == 5


def test_between_is_register_only():
    kernel = compile_kernel(FilterOp(col("x").between(3, 9)))
    assert kernel.logic_bytes == 0
    assert kernel.registers["p.lo"] == 3
    assert kernel.registers["p.hi"] == 9


def test_like_needs_automaton_logic():
    short = compile_kernel(FilterOp(col("s").like("a%")))
    long = compile_kernel(FilterOp(col("s").like("%much longer pattern%")))
    assert short.logic_bytes > 0
    assert long.logic_bytes > short.logic_bytes


def test_compound_predicate_needs_tree_logic():
    simple = compile_kernel(FilterOp(col("x") > 5))
    compound = compile_kernel(
        FilterOp((col("x") > 5) & (col("y") < 3) | ~(col("x") == 0)))
    assert compound.logic_bytes > simple.logic_bytes
    assert compound.register_count > simple.register_count


def test_column_column_comparison_needs_alu():
    kernel = compile_kernel(FilterOp(col("x") > col("y")))
    assert kernel.logic_bytes > 0


def test_arithmetic_operand_compiles():
    kernel = compile_kernel(FilterOp(col("x") * lit(2) > col("y")))
    assert kernel.logic_bytes > 0
    assert any(".alu" in k for k in kernel.registers)


def test_isin_logic_scales_with_set():
    small = compile_kernel(FilterOp(col("x").isin([1, 2])))
    big = compile_kernel(FilterOp(col("x").isin(list(range(100)))))
    assert big.logic_bytes > small.logic_bytes


def test_project_partition_limit_register_only():
    assert compile_kernel(ProjectOp(["x", "y"])).logic_bytes == 0
    assert compile_kernel(PartitionOp("x", 4)).logic_bytes == 0
    assert compile_kernel(LimitOp(10)).logic_bytes == 0


def test_aggregate_stages_compile():
    specs = [AggSpec("sum", "y", "t"), AggSpec("count", alias="n")]
    partial = compile_kernel(PartialAggregate(SCHEMA, ["x"], specs))
    assert partial.logic_bytes > 0
    merge = compile_kernel(MergeAggregate(SCHEMA, ["x"], specs))
    assert merge.logic_bytes > 0


def test_scalar_final_merge_compiles_but_grouped_does_not():
    specs = [AggSpec("count", alias="n")]
    scalar_out = Schema([Field("n", DataType.INT64)])
    scalar = MergeAggregate(SCHEMA, [], specs, final=True,
                            output_schema=scalar_out)
    assert compile_kernel(scalar).registers["unit"] == "aggregate"

    grouped_out = Schema([Field("x", DataType.INT64),
                          Field("n", DataType.INT64)])
    grouped = MergeAggregate(SCHEMA, ["x"], specs, final=True,
                             output_schema=grouped_out)
    with pytest.raises(KernelUnsupported):
        compile_kernel(grouped)


def test_stateful_operators_have_no_kernel_form():
    state = JoinState()
    with pytest.raises(KernelUnsupported):
        compile_kernel(HashJoinBuild("x", state))
    with pytest.raises(KernelUnsupported):
        compile_kernel(HashJoinProbe("x", state, SCHEMA, {}))
    with pytest.raises(KernelUnsupported):
        compile_kernel(SortOp(["x"]))


def test_installation_time_components():
    kernel = Kernel("k", OpKind.FILTER, {"a": 1, "b": 2},
                    logic_bytes=1000)
    expected = 2 * 100e-9 + 1000 / 1.0e9
    assert installation_time(kernel) == pytest.approx(expected)


def test_install_kernel_charges_device():
    sim = Simulator()
    trace = Trace()
    device = Device(sim, trace, "accel", rates={OpKind.FILTER: 1e9},
                    programmable=True)
    kernel = compile_kernel(FilterOp(col("s").like("%abc%")))

    def run():
        yield from install_kernel(device, kernel)
        return sim.now

    elapsed = sim.run_process(run())
    assert elapsed == pytest.approx(installation_time(kernel))
    assert trace.counter("device.accel.kernel_installs") == 1


def test_stage_on_accelerator_pays_installation():
    from repro.flow import StageGraph
    from repro.hardware import build_fabric, dataflow_spec
    from repro.relational import make_uniform_table
    fabric = build_fabric(dataflow_spec())
    table = make_uniform_table(1000, chunk_rows=500)
    graph = StageGraph(fabric, name="k")
    src = graph.source("scan", table, medium=fabric.storage.medium)
    filt = graph.stage("filter", "storage.cu",
                       [FilterOp(col("k0") < 100)])
    sink = graph.sink("out", "compute0.cpu")
    graph.connect(src, filt)
    graph.connect(filt, sink)
    graph.run()
    assert fabric.trace.counter(
        "device.storage.cu.kernel_installs") == 1


def test_stateful_op_on_accelerator_fails_loudly():
    from repro.flow import StageGraph
    from repro.hardware import build_fabric, dataflow_spec
    from repro.relational import make_uniform_table
    fabric = build_fabric(dataflow_spec(storage_nic="dpu"))
    # A DPU supports JOIN_BUILD by rate table, but a *final grouped*
    # aggregate still has no kernel form — the runtime must refuse.
    table = make_uniform_table(100, chunk_rows=50)
    specs = [AggSpec("count", alias="n")]
    out = Schema([Field("k0", DataType.INT64),
                  Field("n", DataType.INT64)])
    graph = StageGraph(fabric, name="bad")
    src = graph.source("scan", table, medium=fabric.storage.medium)
    agg = graph.stage("agg", "storage.nic",
                      [MergeAggregate(table.schema, ["k0"], specs,
                                      final=True, output_schema=out)])
    graph.connect(src, agg)
    with pytest.raises(RuntimeError, match="kernel|unbounded|cannot"):
        graph.run()
