"""Plan-cache correctness: hits, misses, invalidation, bit-identity."""

import pytest

from repro.engine import AggSpec, Query
from repro.hardware import build_fabric, dataflow_spec
from repro.optimizer import Optimizer
from repro.relational import Catalog, col, make_lineitem, make_uniform_table
from repro.serve import (
    PlanCache,
    fabric_fingerprint,
    plan_fingerprint,
    schema_fingerprint,
)


def make_env(rows=3000):
    fabric = build_fabric(dataflow_spec())
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(rows, chunk_rows=500))
    catalog.register("uniform", make_uniform_table(rows, distinct=50,
                                                   chunk_rows=500))
    return fabric, catalog


def template():
    return (Query.scan("lineitem")
            .filter(col("l_quantity") > 20)
            .aggregate(["l_returnflag"],
                       [AggSpec("sum", "l_extendedprice", "rev")]))


def other_template():
    return (Query.scan("uniform")
            .filter(col("k0") < 10)
            .count())


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------

def test_plan_fingerprint_stable_across_instances():
    # Fresh plan objects have fresh node ids; the fingerprint must
    # not see them.
    assert plan_fingerprint(template()) == plan_fingerprint(template())


def test_plan_fingerprint_sees_predicate_changes():
    changed = (Query.scan("lineitem")
               .filter(col("l_quantity") > 21)
               .aggregate(["l_returnflag"],
                          [AggSpec("sum", "l_extendedprice", "rev")]))
    assert plan_fingerprint(template()) != plan_fingerprint(changed)


def test_schema_fingerprint_sees_data_changes():
    _fabric, catalog_a = make_env(rows=3000)
    _fabric, catalog_b = make_env(rows=3000)
    assert (schema_fingerprint(catalog_a, ["lineitem"])
            == schema_fingerprint(catalog_b, ["lineitem"]))
    _fabric, catalog_c = make_env(rows=4000)
    assert (schema_fingerprint(catalog_a, ["lineitem"])
            != schema_fingerprint(catalog_c, ["lineitem"]))


def test_fabric_fingerprint_sees_topology_changes():
    fabric_a = build_fabric(dataflow_spec())
    fabric_b = build_fabric(dataflow_spec())
    assert fabric_fingerprint(fabric_a) == fabric_fingerprint(fabric_b)
    fabric_c = build_fabric(dataflow_spec(compute_nodes=2))
    assert fabric_fingerprint(fabric_a) != fabric_fingerprint(fabric_c)


# ---------------------------------------------------------------------------
# Hit / miss / invalidation
# ---------------------------------------------------------------------------

def test_miss_then_hit():
    fabric, catalog = make_env()
    optimizer = Optimizer(fabric, catalog)
    cache = PlanCache()
    assert cache.lookup(template(), catalog, fabric) is None
    planned = template()
    variants = optimizer.plan_variants(planned, n=3)
    cache.store(planned, catalog, fabric, variants)
    assert cache.lookup(template(), catalog, fabric) is not None
    assert cache.counters() == {"hits": 1, "misses": 1,
                                "invalidations": 0, "entries": 1}


def test_distinct_templates_are_distinct_entries():
    fabric, catalog = make_env()
    optimizer = Optimizer(fabric, catalog)
    cache = PlanCache()
    planned = template()
    cache.store(planned, catalog, fabric,
                optimizer.plan_variants(planned, n=2))
    assert cache.lookup(other_template(), catalog, fabric) is None
    assert len(cache) == 1


def test_schema_change_invalidates():
    fabric, catalog = make_env(rows=3000)
    optimizer = Optimizer(fabric, catalog)
    cache = PlanCache()
    planned = template()
    cache.store(planned, catalog, fabric,
                optimizer.plan_variants(planned, n=2))
    # Same query, same fabric — but the table changed underneath.
    _fabric, catalog_changed = make_env(rows=4000)
    assert cache.lookup(template(), catalog_changed, fabric) is None
    assert cache.counters()["invalidations"] == 1
    assert len(cache) == 0  # stale entry dropped, not kept


def test_placement_context_change_invalidates():
    fabric, catalog = make_env()
    optimizer = Optimizer(fabric, catalog)
    cache = PlanCache()
    planned = template()
    cache.store(planned, catalog, fabric,
                optimizer.plan_variants(planned, n=2))
    other_fabric = build_fabric(dataflow_spec(compute_nodes=2))
    assert cache.lookup(template(), catalog, other_fabric) is None
    assert cache.counters()["invalidations"] == 1


def test_capacity_eviction():
    fabric, catalog = make_env()
    optimizer = Optimizer(fabric, catalog)
    cache = PlanCache(capacity=1)
    planned_a, planned_b = template(), other_template()
    cache.store(planned_a, catalog, fabric,
                optimizer.plan_variants(planned_a, n=1))
    cache.store(planned_b, catalog, fabric,
                optimizer.plan_variants(planned_b, n=1))
    assert len(cache) == 1
    assert cache.lookup(other_template(), catalog, fabric) is not None


def test_rebind_rejects_mismatched_shape():
    fabric, catalog = make_env()
    optimizer = Optimizer(fabric, catalog)
    cache = PlanCache()
    planned = template()
    variants = optimizer.plan_variants(planned, n=1)
    # Corrupt the stored shape to prove the guard trips.
    cache.store(planned, catalog, fabric, variants)
    entry = next(iter(cache._entries.values()))
    entry.variants[0].chains.append(["compute0.node"])
    with pytest.raises(ValueError):
        cache.lookup(template(), catalog, fabric)


# ---------------------------------------------------------------------------
# Bit-identity: cached variants == fresh optimization
# ---------------------------------------------------------------------------

def test_cached_variants_match_fresh_optimization():
    fabric, catalog = make_env()
    optimizer = Optimizer(fabric, catalog)
    cache = PlanCache()
    planned = template()
    cache.store(planned, catalog, fabric,
                optimizer.plan_variants(planned, n=3))

    fresh_plan = template()
    cached = cache.lookup(fresh_plan, catalog, fabric)
    fresh = optimizer.plan_variants(fresh_plan, n=3)
    assert len(cached) == len(fresh)
    nodes = list(fresh_plan.plan.walk())
    for cached_variant, fresh_variant in zip(cached, fresh):
        assert (cached_variant.placement.name
                == fresh_variant.placement.name)
        assert (cached_variant.placement.result_site
                == fresh_variant.placement.result_site)
        assert (cached_variant.placement.partitions
                == fresh_variant.placement.partitions)
        assert (cached_variant.cost.bottleneck_time
                == fresh_variant.cost.bottleneck_time)
        for node in nodes:
            assert (cached_variant.placement.sites.get(node.node_id)
                    == fresh_variant.placement.sites.get(node.node_id))


def test_cached_execution_is_bit_identical():
    """Executing a cached placement produces the same checksum AND
    the same simulated time as executing a fresh optimization."""
    from repro.engine import DataflowEngine
    from repro.obs import table_checksum

    def run(use_cache):
        fabric, catalog = make_env()
        optimizer = Optimizer(fabric, catalog)
        cache = PlanCache()
        # Prime with a throwaway instance, as the server would.
        primer = template()
        cache.store(primer, catalog, fabric,
                    optimizer.plan_variants(primer, n=3))
        plan = template()
        if use_cache:
            variants = cache.lookup(plan, catalog, fabric)
        else:
            variants = optimizer.plan_variants(plan, n=3)
        result = DataflowEngine(fabric, catalog).execute(
            plan, placement=variants[0].placement)
        return table_checksum(result.table), result.elapsed

    cached_sum, cached_elapsed = run(use_cache=True)
    fresh_sum, fresh_elapsed = run(use_cache=False)
    assert cached_sum == fresh_sum
    assert cached_elapsed == fresh_elapsed
