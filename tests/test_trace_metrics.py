"""The trace metrics registry: spans, serialization, derived reports."""

import pytest

from repro.engine import Query, VolcanoEngine
from repro.engine.results import TraceSnapshot
from repro.hardware import build_fabric, dataflow_spec
from repro.relational import Catalog, col, make_lineitem
from repro.sim import Trace
from repro.sim.trace import TRACE_SCHEMA, Span


def test_open_span_duration_uses_clock_watermark():
    trace = Trace()
    span = trace.open_span("work", 2.0)
    assert not span.closed
    assert span.duration == 0.0          # clock still at 2.0
    trace.tick(7.5)
    assert span.duration == pytest.approx(5.5)
    trace.tick(3.0)                      # never moves backwards
    assert trace.clock == 7.5
    trace.close_span(span, 9.0)
    assert span.closed
    assert span.duration == pytest.approx(7.0)
    assert trace.clock == 9.0


def test_orphan_span_duration_is_zero():
    span = Span("loose", 4.0)
    assert span.duration == 0.0


def test_close_open_spans():
    trace = Trace()
    done = trace.open_span("a", 0.0)
    trace.close_span(done, 1.0)
    trace.open_span("a", 2.0)
    trace.open_span("b", 3.0)
    assert trace.close_open_spans(5.0) == 2
    assert all(s.closed for spans in trace.spans.values()
               for s in spans)
    assert trace.busy_time("a") == pytest.approx(1.0 + 3.0)
    assert trace.close_open_spans() == 0


def test_span_summary_and_critical_path():
    trace = Trace()
    s1 = trace.open_span("long", 0.0)
    trace.close_span(s1, 4.0)
    s2 = trace.open_span("short", 1.0)
    trace.close_span(s2, 2.0)
    trace.open_span("short", 3.0)        # stays open, counts to clock
    trace.tick(5.0)

    summary = trace.span_summary()
    assert summary["long"]["count"] == 1
    assert summary["long"]["total_s"] == pytest.approx(4.0)
    assert summary["short"]["count"] == 2
    assert summary["short"]["open"] == 1
    assert summary["short"]["total_s"] == pytest.approx(1.0 + 2.0)

    path = trace.critical_path()
    assert [entry["span"] for entry in path] == ["long", "short"]
    assert path[0]["share"] == pytest.approx(4.0 / 5.0)
    assert trace.critical_path(top=1)[0]["span"] == "long"


def test_utilization_clamped():
    trace = Trace()
    # Two overlapping spans (a 2-slot device): raw busy > horizon.
    for _ in range(2):
        span = trace.open_span("dev", 0.0)
        trace.close_span(span, 10.0)
    assert trace.busy_time("dev") == pytest.approx(20.0)
    assert trace.utilization("dev") == 1.0
    assert trace.utilization("dev", elapsed=40.0) == pytest.approx(0.5)
    assert Trace().utilization("missing") == 0.0


def test_device_utilization_from_counters():
    trace = Trace()
    trace.add("device.cpu.busy_s", 3.0)
    trace.add("device.nic.busy_s", 30.0)   # over-busy multi-slot
    trace.add("device.cpu.ops", 7)         # not a busy counter
    trace.tick(10.0)
    util = trace.device_utilization()
    assert util == {"cpu": pytest.approx(0.3), "nic": 1.0}
    assert trace.device_utilization(elapsed=0.0) == {"cpu": 0.0,
                                                     "nic": 0.0}


def test_link_report_groups_bytes_and_chunks():
    trace = Trace()
    trace.add("link.net0.bytes", 4096.0)
    trace.add("link.net0.chunks", 4)
    trace.add("link.pcie0.bytes", 1024.0)
    trace.add("movement.network.bytes", 4096.0)  # ignored
    report = trace.link_report()
    assert report["net0"] == {"bytes": 4096.0, "chunks": 4.0}
    assert report["pcie0"] == {"bytes": 1024.0, "chunks": 0.0}
    assert "movement.network" not in report


def test_trace_round_trip():
    trace = Trace()
    trace.add("bytes", 512.0)
    trace.sample("queue", 1.0, 3.0)
    closed = trace.open_span("stage", 0.0)
    trace.close_span(closed, 2.0)
    trace.open_span("stage", 4.0)        # still open
    trace.tick(6.0)

    data = trace.to_dict()
    assert data["schema"] == TRACE_SCHEMA
    import json
    rebuilt = Trace.from_dict(json.loads(json.dumps(data)))
    assert rebuilt.clock == trace.clock
    assert dict(rebuilt.counters) == dict(trace.counters)
    assert rebuilt.series["queue"] == [(1.0, 3.0)]
    spans = rebuilt.spans["stage"]
    assert [(s.start, s.end) for s in spans] == [(0.0, 2.0), (4.0, None)]
    # The rebuilt open span is owned by the rebuilt trace.
    assert spans[1].duration == pytest.approx(2.0)
    assert rebuilt.to_dict() == data


def test_from_dict_rejects_wrong_schema():
    with pytest.raises(ValueError, match="schema"):
        Trace.from_dict({"schema": "repro.trace/v0"})
    with pytest.raises(ValueError, match="schema"):
        Trace.from_dict({})


def test_merge_combines_all_records_and_clock():
    a, b = Trace(), Trace()
    a.add("n", 1)
    b.add("n", 2)
    b.sample("s", 1.0, 9.0)
    span = b.open_span("w", 0.0)
    b.close_span(span, 5.0)
    a.merge(b)
    assert a.counter("n") == 3
    assert a.series["s"] == [(1.0, 9.0)]
    assert a.busy_time("w") == pytest.approx(5.0)
    assert a.clock == 5.0


def test_snapshot_busy_and_utilization_delta():
    trace = Trace()
    trace.add("device.cpu.busy_s", 1.0)
    snapshot = TraceSnapshot(trace)
    trace.add("device.cpu.busy_s", 2.0)
    trace.add("device.nic.busy_s", 8.0)
    assert snapshot.busy_delta() == {"cpu": pytest.approx(2.0),
                                     "nic": pytest.approx(8.0)}
    util = snapshot.utilization_delta(4.0, slots={"nic": 4})
    assert util["cpu"] == pytest.approx(0.5)
    assert util["nic"] == pytest.approx(0.5)   # 8 s over 4 slots * 4 s
    # Never above 1 even when busy exceeds capacity.
    assert snapshot.utilization_delta(1.0)["nic"] == 1.0
    assert snapshot.utilization_delta(0.0) == {}


def test_query_populates_spans_and_device_busy_counters():
    fabric = build_fabric(dataflow_spec())
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(2000, chunk_rows=500))
    query = (Query.scan("lineitem")
             .filter(col("l_quantity") > 25)
             .project(["l_orderkey"]))
    result = VolcanoEngine(fabric, catalog).execute(query)

    trace = fabric.trace
    assert trace.busy_time("query.volcano") == pytest.approx(
        result.elapsed)
    assert trace.total("device.") > 0
    util = trace.device_utilization(elapsed=result.elapsed)
    assert util and all(0.0 <= v <= 1.0 for v in util.values())
    assert result.utilization
    assert all(0.0 <= v <= 1.0 for v in result.utilization.values())
    links = trace.link_report()
    assert links and all(entry["bytes"] > 0 and entry["chunks"] > 0
                         for entry in links.values())
    # Every link that moved bytes moved whole chunks.
    assert trace.critical_path(top=1)[0]["span"] == "query.volcano"
