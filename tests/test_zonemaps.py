"""Tests for zone maps and zone-map-pruned scans (§2.1)."""

import numpy as np
import pytest

from repro.engine import DataflowEngine, Query, VolcanoEngine
from repro.hardware import build_fabric, dataflow_spec
from repro.relational import (
    Catalog,
    Chunk,
    DataType,
    Schema,
    Table,
    col,
    lit,
)
from repro.relational.zonemaps import ZoneMap, may_match, prunable_chunks


def clustered_table(n=1000, chunk_rows=100):
    """Values sorted on k0 -> zone maps prune well."""
    schema = Schema.of(("k0", DataType.INT64), ("k1", DataType.INT64))
    k0 = np.arange(n, dtype=np.int64)
    rng = np.random.default_rng(1)
    k1 = rng.integers(0, 100, size=n)
    return Table.from_arrays(schema, {"k0": k0, "k1": k1},
                             chunk_rows=chunk_rows)


def shuffled_table(n=1000, chunk_rows=100):
    schema = Schema.of(("k0", DataType.INT64), ("k1", DataType.INT64))
    rng = np.random.default_rng(2)
    k0 = rng.permutation(n).astype(np.int64)
    k1 = rng.integers(0, 100, size=n)
    return Table.from_arrays(schema, {"k0": k0, "k1": k1},
                             chunk_rows=chunk_rows)


# ---------------------------------------------------------------------------
# ZoneMap construction and may_match
# ---------------------------------------------------------------------------

def test_zonemap_bounds_exact():
    table = clustered_table()
    zonemap = ZoneMap.build(table)
    assert len(zonemap) == 10
    assert zonemap.bounds(0, "k0") == (0.0, 99.0)
    assert zonemap.bounds(9, "k0") == (900.0, 999.0)


def test_zonemap_ignores_string_columns():
    schema = Schema.of(("s", DataType.STRING, 8))
    table = Table(schema, [Chunk(schema, {"s": np.array(["a", "b"])})])
    zonemap = ZoneMap.build(table)
    assert zonemap.bounds(0, "s") is None


def test_may_match_comparisons():
    zone = {"x": (10.0, 20.0)}
    assert may_match(zone, col("x") == 15)
    assert not may_match(zone, col("x") == 5)
    assert may_match(zone, col("x") < 11)
    assert not may_match(zone, col("x") < 10)
    assert may_match(zone, col("x") <= 10)
    assert may_match(zone, col("x") > 19)
    assert not may_match(zone, col("x") > 20)
    assert may_match(zone, col("x") >= 20)


def test_may_match_not_equal_single_value_zone():
    assert not may_match({"x": (7.0, 7.0)}, col("x") != 7)
    assert may_match({"x": (7.0, 8.0)}, col("x") != 7)


def test_may_match_between_and_isin():
    zone = {"x": (10.0, 20.0)}
    assert may_match(zone, col("x").between(15, 30))
    assert not may_match(zone, col("x").between(21, 30))
    assert may_match(zone, col("x").isin([1, 15]))
    assert not may_match(zone, col("x").isin([1, 2, 30]))


def test_may_match_boolean_combinators():
    zone = {"x": (10.0, 20.0), "y": (0.0, 5.0)}
    assert not may_match(zone, (col("x") > 5) & (col("y") > 10))
    assert may_match(zone, (col("x") > 50) | (col("y") < 3))
    assert not may_match(zone, (col("x") > 50) | (col("y") > 50))
    # Negation and unknown constructs stay conservative.
    assert may_match(zone, ~(col("x") > 5))


def test_may_match_unknown_column_conservative():
    assert may_match({}, col("unknown") > 100)
    assert may_match({"x": (0.0, 1.0)}, col("x") > lit(0))


def test_prunable_chunks_clustered_vs_shuffled():
    predicate = col("k0") < 100
    clustered = prunable_chunks(ZoneMap.build(clustered_table()),
                                predicate)
    shuffled = prunable_chunks(ZoneMap.build(shuffled_table()),
                               predicate)
    assert len(clustered) == 9     # all but the first chunk
    assert len(shuffled) == 0      # every chunk spans the domain


# ---------------------------------------------------------------------------
# Engine integration
# ---------------------------------------------------------------------------

def env(table):
    fabric = build_fabric(dataflow_spec())
    catalog = Catalog()
    catalog.register("t", table)
    return fabric, catalog


QUERY = Query.scan("t").filter(col("k0") < 100).project(["k1"])


@pytest.mark.parametrize("engine_cls", [VolcanoEngine, DataflowEngine])
def test_pruned_scan_same_answer(engine_cls):
    table = clustered_table()
    fabric1, catalog1 = env(table)
    plain = engine_cls(fabric1, catalog1).execute(QUERY)
    fabric2, catalog2 = env(table)
    pruned = engine_cls(fabric2, catalog2,
                        use_zonemaps=True).execute(QUERY)
    assert plain.table.sorted_rows() == pruned.table.sorted_rows()
    assert fabric2.trace.counter("zonemap.pruned_chunks") == 9
    assert fabric1.trace.counter("zonemap.pruned_chunks") == 0


@pytest.mark.parametrize("engine_cls", [VolcanoEngine, DataflowEngine])
def test_pruning_reduces_storage_reads(engine_cls):
    table = clustered_table()
    fabric1, catalog1 = env(table)
    engine_cls(fabric1, catalog1).execute(QUERY)
    fabric2, catalog2 = env(table)
    engine_cls(fabric2, catalog2, use_zonemaps=True).execute(QUERY)
    assert fabric2.trace.counter("movement.storage.bytes") < \
        0.2 * fabric1.trace.counter("movement.storage.bytes")


def test_pruning_useless_on_shuffled_data():
    table = shuffled_table()
    fabric, catalog = env(table)
    result = DataflowEngine(fabric, catalog,
                            use_zonemaps=True).execute(QUERY)
    assert fabric.trace.counter("zonemap.pruned_chunks") == 0
    assert result.rows == 100


def test_all_chunks_pruned_yields_empty_result():
    table = clustered_table()
    fabric, catalog = env(table)
    query = Query.scan("t").filter(col("k0") > 10_000)
    result = DataflowEngine(fabric, catalog,
                            use_zonemaps=True).execute(query)
    assert result.rows == 0
    assert fabric.trace.counter("zonemap.pruned_chunks") == 10
    assert fabric.trace.counter("movement.storage.bytes") == 0
