"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(5.0)
        return sim.now

    assert sim.run_process(proc()) == 5.0
    assert sim.now == 5.0


def test_zero_delay_timeout_fires_at_current_time():
    sim = Simulator()

    def proc():
        yield sim.timeout(0.0)
        return sim.now

    assert sim.run_process(proc()) == 0.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_timeout_carries_value():
    sim = Simulator()

    def proc():
        value = yield sim.timeout(1.0, value="payload")
        return value

    assert sim.run_process(proc()) == "payload"


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []

    def waiter(delay, tag):
        yield sim.timeout(delay)
        fired.append(tag)

    sim.process(waiter(3.0, "c"))
    sim.process(waiter(1.0, "a"))
    sim.process(waiter(2.0, "b"))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []

    def waiter(tag):
        yield sim.timeout(1.0)
        fired.append(tag)

    for tag in ["first", "second", "third"]:
        sim.process(waiter(tag))
    sim.run()
    assert fired == ["first", "second", "third"]


def test_process_waits_for_process():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return 42

    def parent():
        result = yield sim.process(child())
        return result, sim.now

    assert sim.run_process(parent()) == (42, 2.0)


def test_process_return_value_none_by_default():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)

    assert sim.run_process(proc()) is None


def test_waiting_on_finished_process_resumes_immediately():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        return "done"

    def parent():
        proc = sim.process(child())
        yield sim.timeout(5.0)
        result = yield proc  # already finished
        return result, sim.now

    assert sim.run_process(parent()) == ("done", 5.0)


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def failing():
        yield sim.timeout(1.0)
        raise ValueError("boom")

    def parent():
        try:
            yield sim.process(failing())
        except ValueError as exc:
            return str(exc)

    assert sim.run_process(parent()) == "boom"


def test_unhandled_process_exception_raises_from_run():
    sim = Simulator()

    def failing():
        yield sim.timeout(1.0)
        raise RuntimeError("unhandled")

    sim.process(failing())
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def bad():
        yield 17

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_manual_event_succeed():
    sim = Simulator()
    evt = sim.event()
    results = []

    def waiter():
        value = yield evt
        results.append((sim.now, value))

    def firer():
        yield sim.timeout(4.0)
        evt.succeed("signal")

    sim.process(waiter())
    sim.process(firer())
    sim.run()
    assert results == [(4.0, "signal")]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    evt = sim.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)


def test_all_of_waits_for_every_event():
    sim = Simulator()

    def proc():
        t1 = sim.timeout(1.0, value="a")
        t2 = sim.timeout(3.0, value="b")
        results = yield sim.all_of([t1, t2])
        return sim.now, sorted(results.values())

    assert sim.run_process(proc()) == (3.0, ["a", "b"])


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def proc():
        yield sim.all_of([])
        return sim.now

    assert sim.run_process(proc()) == 0.0


def test_any_of_fires_on_first():
    sim = Simulator()

    def proc():
        t1 = sim.timeout(1.0, value="fast")
        t2 = sim.timeout(9.0, value="slow")
        results = yield sim.any_of([t1, t2])
        return sim.now, list(results.values())

    now, values = sim.run_process(proc())
    assert now == 1.0
    assert values == ["fast"]


def test_interrupt_delivers_cause():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    def interrupter(target):
        yield sim.timeout(2.0)
        target.interrupt("wake up")

    target = sim.process(sleeper())
    sim.process(interrupter(target))
    sim.run()
    assert log == [(2.0, "wake up")]


def test_interrupting_dead_process_is_an_error():
    sim = Simulator()

    def quick():
        yield sim.timeout(0.0)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_run_until_stops_clock():
    sim = Simulator()
    fired = []

    def late():
        yield sim.timeout(10.0)
        fired.append("late")

    sim.process(late())
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert fired == []
    sim.run()
    assert fired == ["late"]
    assert sim.now == 10.0


def test_run_until_past_is_error():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_nested_processes_compose():
    sim = Simulator()

    def leaf(delay):
        yield sim.timeout(delay)
        return delay

    def mid():
        a = yield sim.process(leaf(1.0))
        b = yield sim.process(leaf(2.0))
        return a + b

    def root():
        total = yield sim.process(mid())
        return total, sim.now

    assert sim.run_process(root()) == (3.0, 3.0)


def test_all_of_fails_if_member_fails():
    sim = Simulator()

    def failing():
        yield sim.timeout(1.0)
        raise ValueError("member died")

    def waiter():
        proc = sim.process(failing())
        other = sim.timeout(5.0)
        try:
            yield sim.all_of([proc, other])
        except ValueError as exc:
            return f"caught: {exc}"

    assert sim.run_process(waiter()) == "caught: member died"


def test_any_of_fails_if_first_event_fails():
    sim = Simulator()

    def failing():
        yield sim.timeout(1.0)
        raise RuntimeError("early death")

    def waiter():
        proc = sim.process(failing())
        try:
            yield sim.any_of([proc, sim.timeout(10.0)])
        except RuntimeError:
            return "caught"

    assert sim.run_process(waiter()) == "caught"


def test_event_fail_requires_exception_instance():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.event().fail("not an exception")


def test_interrupt_while_waiting_on_store_get():
    from repro.sim import Store
    sim = Simulator()
    store = Store(sim)
    log = []

    def consumer():
        try:
            yield store.get()
        except Interrupt:
            log.append(("interrupted", sim.now))

    def interrupter(target):
        yield sim.timeout(3.0)
        target.interrupt()

    target = sim.process(consumer())
    sim.process(interrupter(target))
    sim.run()
    assert log == [("interrupted", 3.0)]


def test_pending_events_diagnostic():
    sim = Simulator()
    assert sim.pending_events == 0
    sim.timeout(1.0)
    assert sim.pending_events == 1
    sim.run()
    assert sim.pending_events == 0
