"""Property-based tests (hypothesis) for core invariants.

Targets the invariants called out in DESIGN.md: simulator event
ordering, credit-window occupancy, partition completeness and
consistency, aggregation against oracles under arbitrary chunking,
join correctness against brute force, LRU behaviour, and format
round-trips.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.logical import AggSpec
from repro.engine.operators import (
    HashJoinBuild,
    HashJoinProbe,
    JoinState,
    MergeAggregate,
    PartialAggregate,
    PartitionOp,
)
from repro.flow import CreditChannel
from repro.hardware import LRUCache
from repro.relational import (
    Chunk,
    DataType,
    Field,
    Schema,
    compress_chunk,
    decompress_chunk,
    deserialize_chunk,
    serialize_chunk,
    to_column_major,
    to_row_major,
)
from repro.sim import Simulator, Store, Trace

ints = st.integers(min_value=-1000, max_value=1000)
small_ints = st.integers(min_value=0, max_value=20)


def int_chunk(cols: dict) -> Chunk:
    schema = Schema([Field(name, DataType.INT64) for name in cols])
    return Chunk(schema, {n: np.asarray(v, dtype=np.int64)
                          for n, v in cols.items()})


# ---------------------------------------------------------------------------
# Simulator ordering
# ---------------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_events_fire_in_nondecreasing_time(delays):
    sim = Simulator()
    fired = []

    def waiter(delay):
        yield sim.timeout(delay)
        fired.append(sim.now)

    for delay in delays:
        sim.process(waiter(delay))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


# ---------------------------------------------------------------------------
# Credit flow control
# ---------------------------------------------------------------------------

@given(credits=st.integers(min_value=1, max_value=10),
       messages=st.integers(min_value=1, max_value=40),
       consumer_delay=st.floats(min_value=0.0, max_value=5.0,
                                allow_nan=False))
@settings(max_examples=30, deadline=None)
def test_credit_window_never_exceeded(credits, messages, consumer_delay):
    sim = Simulator()
    inbox = Store(sim)
    channel = CreditChannel(sim, Trace(), "ch", links=[], inbox=inbox,
                            credits=credits)
    received = []

    def producer():
        for i in range(messages):
            yield from channel.send(i, 1.0)

    def consumer():
        for _ in range(messages):
            ch, payload = yield inbox.get()
            received.append(payload)
            if consumer_delay:
                yield sim.timeout(consumer_delay)
            ch.ack()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    # No loss, no duplication, FIFO, bounded occupancy.
    assert received == list(range(messages))
    assert channel.max_outstanding <= credits


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------

@given(keys=st.lists(ints, min_size=1, max_size=300),
       n_parts=st.integers(min_value=1, max_value=8))
@settings(max_examples=50, deadline=None)
def test_partition_places_each_row_exactly_once(keys, n_parts):
    chunk = int_chunk({"k": keys, "v": list(range(len(keys)))})
    emits = PartitionOp("k", n_parts).process(chunk)
    seen = sorted(v for e in emits for v in e.chunk.column("v").tolist())
    assert seen == sorted(range(len(keys)))
    for emit in emits:
        assert 0 <= emit.route < n_parts
        # Every row in a partition hashes to that partition.
        hashes = PartitionOp.hash_values(emit.chunk.column("k"), n_parts)
        assert (hashes == emit.route).all()


# ---------------------------------------------------------------------------
# Aggregation vs oracle under arbitrary chunking
# ---------------------------------------------------------------------------

@given(rows=st.lists(st.tuples(small_ints, ints), min_size=1,
                     max_size=200),
       chunk_size=st.integers(min_value=1, max_value=50),
       merge_hops=st.integers(min_value=0, max_value=3))
@settings(max_examples=30, deadline=None)
def test_staged_aggregation_matches_oracle(rows, chunk_size, merge_hops):
    keys = [r[0] for r in rows]
    vals = [r[1] for r in rows]
    chunks = [int_chunk({"g": keys[i:i + chunk_size],
                         "v": vals[i:i + chunk_size]})
              for i in range(0, len(rows), chunk_size)]
    schema = chunks[0].schema
    specs = [AggSpec("sum", "v", "s"), AggSpec("count", alias="c"),
             AggSpec("min", "v", "lo"), AggSpec("max", "v", "hi")]
    output = Schema([Field("g", DataType.INT64),
                     Field("s", DataType.FLOAT64),
                     Field("c", DataType.INT64),
                     Field("lo", DataType.FLOAT64),
                     Field("hi", DataType.FLOAT64)])
    partial = PartialAggregate(schema, ["g"], specs)
    merges = [MergeAggregate(schema, ["g"], specs, batch=3)
              for _ in range(merge_hops)]
    final = MergeAggregate(schema, ["g"], specs, final=True,
                           output_schema=output)
    stream = [e for chunk in chunks for e in partial.process(chunk)]
    for merge in merges:
        out = []
        for e in stream:
            out.extend(merge.process(e.chunk))
        out.extend(merge.finish())
        stream = out
    for e in stream:
        final.process(e.chunk)
    result = final.finish()[0].chunk

    oracle = {}
    for k, v in rows:
        s, c, lo, hi = oracle.get(k, (0, 0, float("inf"), float("-inf")))
        oracle[k] = (s + v, c + 1, min(lo, v), max(hi, v))
    got = {row[0]: row[1:] for row in result.to_rows()}
    assert set(got) == set(oracle)
    for k, (s, c, lo, hi) in oracle.items():
        gs, gc, glo, ghi = got[k]
        assert gs == s and gc == c and glo == lo and ghi == hi


# ---------------------------------------------------------------------------
# Join vs brute force
# ---------------------------------------------------------------------------

@given(left=st.lists(st.tuples(small_ints, ints), min_size=0,
                     max_size=100),
       right=st.lists(st.tuples(small_ints, ints), min_size=0,
                      max_size=50))
@settings(max_examples=30, deadline=None)
def test_hash_join_matches_bruteforce(left, right):
    output = Schema([Field("k", DataType.INT64),
                     Field("a", DataType.INT64),
                     Field("b", DataType.INT64)])
    state = JoinState()
    build = HashJoinBuild("k", state)
    if right:
        build.process(int_chunk({"k": [r[0] for r in right],
                                 "b": [r[1] for r in right]}))
    build.finish()
    probe = HashJoinProbe("k", state, output, {"k": "r_k"})
    got = []
    if left:
        for emit in probe.process(int_chunk(
                {"k": [pair[0] for pair in left],
                 "a": [pair[1] for pair in left]})):
            got.extend(emit.chunk.to_rows())
    oracle = sorted((lk, lv, rv) for lk, lv in left
                    for rk, rv in right if lk == rk)
    assert sorted(got) == oracle


# ---------------------------------------------------------------------------
# LRU cache
# ---------------------------------------------------------------------------

@given(capacity=st.integers(min_value=1, max_value=10),
       accesses=st.lists(st.integers(min_value=0, max_value=30),
                         min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_lru_invariants(capacity, accesses):
    cache = LRUCache(capacity_blocks=capacity)
    reference: list[int] = []      # most recent last
    for key in accesses:
        hit = cache.access(key)
        assert hit == (key in reference)
        if key in reference:
            reference.remove(key)
        reference.append(key)
        if len(reference) > capacity:
            reference.pop(0)
        assert len(cache) <= capacity
    # The cache holds exactly the reference working set.
    for key in reference:
        assert key in cache


# ---------------------------------------------------------------------------
# Format round trips
# ---------------------------------------------------------------------------

@given(values=st.lists(ints, min_size=0, max_size=200),
       floats=st.lists(st.floats(allow_nan=False, allow_infinity=False,
                                 width=32),
                       min_size=0, max_size=200))
@settings(max_examples=30, deadline=None)
def test_serialize_compress_roundtrip(values, floats):
    n = min(len(values), len(floats))
    schema = Schema.of(("i", DataType.INT64), ("f", DataType.FLOAT64))
    chunk = Chunk(schema, {"i": np.asarray(values[:n], dtype=np.int64),
                           "f": np.asarray(floats[:n],
                                           dtype=np.float64)})
    assert deserialize_chunk(
        serialize_chunk(chunk)).sorted_rows() == chunk.sorted_rows()
    assert decompress_chunk(
        compress_chunk(chunk)).sorted_rows() == chunk.sorted_rows()


@given(values=st.lists(st.tuples(ints, st.booleans()), min_size=1,
                       max_size=100))
@settings(max_examples=30, deadline=None)
def test_transpose_roundtrip(values):
    schema = Schema.of(("i", DataType.INT64), ("b", DataType.BOOL))
    chunk = Chunk(schema, {
        "i": np.asarray([v[0] for v in values], dtype=np.int64),
        "b": np.asarray([v[1] for v in values], dtype=bool)})
    rows = to_row_major(chunk)
    assert to_column_major(rows, schema).sorted_rows() == \
        chunk.sorted_rows()
