"""Tests for the SQL front-end."""

import pytest

from repro.engine import DataflowEngine, Query, VolcanoEngine
from repro.hardware import build_fabric, dataflow_spec
from repro.relational import Catalog, col, make_lineitem, make_orders
from repro.relational.sql import SqlError, parse_sql


def make_env():
    fabric = build_fabric(dataflow_spec())
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(4000, orders=1000,
                                               chunk_rows=500))
    catalog.register("orders", make_orders(1000, chunk_rows=500))
    return fabric, catalog


def results_match(sql: str, query: Query):
    """The SQL text and the hand-built query produce identical rows."""
    fabric, catalog = make_env()
    res_sql = DataflowEngine(fabric, catalog).execute(parse_sql(sql))
    fabric2, catalog2 = make_env()
    res_builder = DataflowEngine(fabric2, catalog2).execute(query)
    assert res_sql.table.sorted_rows() == res_builder.table.sorted_rows()
    return res_sql


# ---------------------------------------------------------------------------
# Parsing to plans
# ---------------------------------------------------------------------------

def test_select_star():
    plan = parse_sql("SELECT * FROM lineitem").plan
    from repro.engine.logical import Scan
    assert isinstance(plan, Scan)
    assert plan.table == "lineitem"


def test_projection_and_filter():
    sql = ("SELECT l_orderkey, l_extendedprice FROM lineitem "
           "WHERE l_quantity > 45")
    query = (Query.scan("lineitem").filter(col("l_quantity") > 45)
             .project(["l_orderkey", "l_extendedprice"]))
    results_match(sql, query)


def test_compound_predicate_precedence():
    sql = ("SELECT l_orderkey FROM lineitem WHERE "
           "l_quantity > 45 OR l_quantity < 5 AND l_discount >= 0.05")
    query = (Query.scan("lineitem")
             .filter((col("l_quantity") > 45)
                     | ((col("l_quantity") < 5)
                        & (col("l_discount") >= 0.05)))
             .project(["l_orderkey"]))
    results_match(sql, query)


def test_parentheses_override_precedence():
    sql = ("SELECT l_orderkey FROM lineitem WHERE "
           "(l_quantity > 45 OR l_quantity < 5) AND l_discount >= 0.05")
    query = (Query.scan("lineitem")
             .filter(((col("l_quantity") > 45)
                      | (col("l_quantity") < 5))
                     & (col("l_discount") >= 0.05))
             .project(["l_orderkey"]))
    results_match(sql, query)


def test_between_like_in_not():
    sql = ("SELECT l_orderkey FROM lineitem WHERE "
           "l_shipdate BETWEEN 8500 AND 9000 "
           "AND l_comment LIKE '%express%' "
           "AND l_quantity IN (10, 20, 30) "
           "AND NOT l_discount > 0.08")
    query = (Query.scan("lineitem")
             .filter(col("l_shipdate").between(8500, 9000)
                     & col("l_comment").like("%express%")
                     & col("l_quantity").isin([10, 20, 30])
                     & ~(col("l_discount") > 0.08))
             .project(["l_orderkey"]))
    results_match(sql, query)


def test_group_by_with_aggregates():
    sql = ("SELECT l_returnflag, SUM(l_extendedprice) AS revenue, "
           "COUNT(*) AS n, AVG(l_discount) AS d "
           "FROM lineitem GROUP BY l_returnflag")
    from repro.engine import AggSpec
    query = Query.scan("lineitem").aggregate(
        ["l_returnflag"],
        [AggSpec("sum", "l_extendedprice", "revenue"),
         AggSpec("count", alias="n"),
         AggSpec("avg", "l_discount", "d")])
    result = results_match(sql, query)
    assert result.table.schema.names == ["l_returnflag", "revenue",
                                         "n", "d"]


def test_scalar_count():
    sql = "SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity > 25"
    result_fabric, catalog = make_env()
    res = VolcanoEngine(result_fabric, catalog).execute(parse_sql(sql))
    expected = (catalog.table("lineitem").column("l_quantity")
                > 25).sum()
    assert res.table.column("n").tolist() == [expected]


def test_join_on():
    sql = ("SELECT o_priority, SUM(l_extendedprice) AS rev "
           "FROM lineitem JOIN orders ON l_orderkey = o_orderkey "
           "WHERE l_quantity > 30 GROUP BY o_priority")
    from repro.engine import AggSpec
    query = (Query.scan("lineitem")
             .join(Query.scan("orders"), "l_orderkey", "o_orderkey")
             .filter(col("l_quantity") > 30)
             .aggregate(["o_priority"],
                        [AggSpec("sum", "l_extendedprice", "rev")]))
    results_match(sql, query)


def test_order_by_limit():
    sql = ("SELECT l_orderkey FROM lineitem WHERE l_quantity > 48 "
           "ORDER BY l_orderkey LIMIT 5")
    fabric, catalog = make_env()
    res = DataflowEngine(fabric, catalog).execute(parse_sql(sql))
    keys = res.table.column("l_orderkey").tolist()
    assert keys == sorted(keys)
    assert len(keys) == 5


def test_string_literal_equality():
    sql = "SELECT l_orderkey FROM lineitem WHERE l_returnflag = 'A'"
    fabric, catalog = make_env()
    res = DataflowEngine(fabric, catalog).execute(parse_sql(sql))
    flags = catalog.table("lineitem").column("l_returnflag")
    assert res.rows == int((flags == "A").sum())


def test_quoted_string_with_escape():
    query = parse_sql(
        "SELECT l_orderkey FROM lineitem WHERE l_comment LIKE '%o''b%'")
    pred = query.plan.children[0].predicate
    assert pred.pattern == "%o'b%"


# ---------------------------------------------------------------------------
# Errors
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("bad", [
    "",
    "SELECT",
    "SELECT * FROM",
    "FROM lineitem",
    "SELECT * lineitem",
    "SELECT a FROM t WHERE",
    "SELECT a FROM t WHERE a >",
    "SELECT a FROM t GROUP BY a",               # group-by w/o aggregate
    "SELECT a, SUM(b) AS s FROM t GROUP BY c",  # a not grouped
    "SELECT *, COUNT(*) AS n FROM t",
    "SELECT a FROM t LIMIT",
    "SELECT a FROM t extra garbage",
    "SELECT a AS b FROM t",                     # plain-column alias
    "SELECT a FROM t WHERE a LIKE 5",
    "SELECT a FROM t WHERE a ~ 5",
])
def test_parse_errors(bad):
    with pytest.raises(SqlError):
        parse_sql(bad)


def test_error_message_mentions_expectation():
    with pytest.raises(SqlError, match="FROM"):
        parse_sql("SELECT a b c")


# ---------------------------------------------------------------------------
# Computed SELECT expressions (Map)
# ---------------------------------------------------------------------------

def test_select_expression_with_alias():
    sql = ("SELECT l_orderkey, l_extendedprice * (1 - l_discount) "
           "AS net FROM lineitem WHERE l_quantity > 45")
    fabric, catalog = make_env()
    res = DataflowEngine(fabric, catalog).execute(parse_sql(sql))
    assert res.table.schema.names == ["l_orderkey", "net"]
    table = catalog.table("lineitem")
    mask = table.column("l_quantity") > 45
    expected = (table.column("l_extendedprice")
                * (1 - table.column("l_discount")))[mask]
    got = sorted(res.table.column("net").tolist())
    assert got == pytest.approx(sorted(expected.tolist()))


def test_select_expression_precedence():
    sql = "SELECT l_quantity + 2 * 3 AS v FROM lineitem LIMIT 4"
    fabric, catalog = make_env()
    res = VolcanoEngine(fabric, catalog).execute(parse_sql(sql))
    qty = catalog.table("lineitem").column("l_quantity")[:4]
    assert res.table.column("v").tolist() == \
        pytest.approx((qty + 6).tolist())


def test_select_expression_division_and_parens():
    sql = "SELECT (l_quantity + 10) / 2 AS v FROM lineitem LIMIT 3"
    fabric, catalog = make_env()
    res = VolcanoEngine(fabric, catalog).execute(parse_sql(sql))
    qty = catalog.table("lineitem").column("l_quantity")[:3]
    assert res.table.column("v").tolist() == \
        pytest.approx(((qty + 10) / 2).tolist())


def test_select_expression_requires_alias():
    with pytest.raises(SqlError, match="alias"):
        parse_sql("SELECT a * 2 FROM t")


def test_select_expression_cannot_mix_with_aggregates():
    with pytest.raises(SqlError, match="computed"):
        parse_sql("SELECT a * 2 AS x, SUM(b) AS s FROM t GROUP BY a")
