"""Critical-path attribution: exactness, priorities, reconciliation.

The headline guarantee: for every figure scenario, on both engines,
fused or not, the attribution buckets sum EXACTLY (tolerance zero,
rational arithmetic) to the query's simulated elapsed time.
"""

from fractions import Fraction

import pytest

from repro.analysis import SCENARIOS, attribute, run_scenario
from repro.sim import EventKind, Trace

ROWS = 600


# ---------------------------------------------------------------------------
# Unit behavior on synthetic traces
# ---------------------------------------------------------------------------

def test_empty_window_attributes_nothing():
    att = attribute(Trace(), 1.0, 1.0)
    assert att.buckets == {}
    assert att.exact            # 0 == 0
    assert att.dominant() == "wait:other"


def test_gap_goes_to_wait_other():
    trace = Trace()
    span = trace.open_span("device.d0", 0.0)
    trace.close_span(span, 0.25)
    att = attribute(trace, 0.0, 1.0)
    assert att.buckets["device:d0"] == Fraction(0.25)
    assert att.buckets["wait:other"] == Fraction(0.75)
    assert att.exact


def test_device_wins_over_link_and_stall():
    trace = Trace()
    link = trace.open_span("link.l0", 0.0)
    trace.close_span(link, 1.0)
    dev = trace.open_span("device.d0", 0.25)
    trace.close_span(dev, 0.75)
    trace.emit(0.0, EventKind.CREDIT_STALL, "flow", dur=1.0)
    att = attribute(trace, 0.0, 1.0)
    # Device hides the overlapping link; the stall never surfaces.
    assert att.buckets["device:d0"] == Fraction(0.5)
    assert att.buckets["link:l0"] == Fraction(0.5)
    assert "wait:credit" not in att.buckets
    assert att.exact
    assert att.dominant() in ("device:d0", "link:l0")


def test_wire_and_credit_fill_otherwise_idle_time():
    trace = Trace()
    # Dyadic instants so the expected Fractions are exact literals.
    trace.emit(0.0, EventKind.CHUNK_EMIT, "ch", flow_id=1)
    trace.emit(0.25, EventKind.CHUNK_RECV, "ch", flow_id=1)
    trace.emit(0.5, EventKind.CREDIT_STALL, "ch", dur=0.25)
    att = attribute(trace, 0.0, 1.0)
    assert att.buckets["wait:wire"] == Fraction(1, 4)
    assert att.buckets["wait:credit"] == Fraction(1, 4)
    assert att.buckets["wait:other"] == Fraction(1, 2)
    assert att.exact


def test_spans_outside_window_are_clipped_or_dropped():
    trace = Trace()
    before = trace.open_span("device.d0", 0.0)
    trace.close_span(before, 0.5)          # fully before the window
    straddle = trace.open_span("device.d1", 0.9)
    trace.close_span(straddle, 1.5)        # straddles the left edge
    att = attribute(trace, 1.0, 2.0)
    assert "device:d0" not in att.buckets
    assert att.buckets["device:d1"] == Fraction(1.5) - Fraction(1.0)
    assert att.exact


def test_open_span_extends_to_window_end():
    trace = Trace()
    trace.open_span("device.d0", 0.25)     # never closed
    att = attribute(trace, 0.0, 1.0)
    assert att.buckets["device:d0"] == Fraction(1.0) - Fraction(0.25)
    assert att.exact


def test_segments_are_contiguous_and_cover_the_window():
    trace = Trace()
    span = trace.open_span("device.d0", 0.2)
    trace.close_span(span, 0.4)
    att = attribute(trace, 0.0, 1.0)
    assert att.segments[0][0] == 0.0
    assert att.segments[-1][1] == 1.0
    for (_, prev_end, _), (nxt_start, _, _) in zip(att.segments,
                                                   att.segments[1:]):
        assert prev_end == nxt_start


def test_to_dict_is_json_shaped():
    trace = Trace()
    span = trace.open_span("device.d0", 0.0)
    trace.close_span(span, 1.0)
    payload = attribute(trace, 0.0, 1.0).to_dict()
    assert payload["exact"] is True
    assert payload["dominant"] == "device:d0"
    assert payload["buckets"]["device:d0"] == pytest.approx(1.0)
    assert payload["shares"]["device:d0"] == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Exact reconciliation: every scenario x engine x fusion mode
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("engine", ["dataflow", "volcano"])
@pytest.mark.parametrize("fused", [True, False],
                         ids=["fused", "nofuse"])
def test_attribution_reconciles_exactly(scenario, engine, fused,
                                        monkeypatch):
    if fused:
        monkeypatch.delenv("REPRO_NO_FUSE", raising=False)
    else:
        monkeypatch.setenv("REPRO_NO_FUSE", "1")
    run = run_scenario(scenario, engine=engine, rows=ROWS)
    att = run.attribution()
    # Tolerance ZERO: rational bucket sums equal the exact window
    # width, and its float rendering equals the reported elapsed.
    assert att.total == att.elapsed
    assert att.exact
    assert float(att.total) == run.result.elapsed
    assert sum(att.buckets.values(), Fraction(0)) == (
        Fraction(run.result.finished_at)
        - Fraction(run.result.started_at))
    # Every bucket is non-negative and something was attributed.
    assert all(v >= 0 for v in att.buckets.values())
    assert run.result.elapsed > 0
    assert att.buckets
