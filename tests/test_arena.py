"""Arena columnar store: encoding, views, and byte-count invariants.

The arena is a physical-layout change only; these tests pin the
contracts that keep it invisible to the simulation — logical nbytes
are always ``rows x schema.row_nbytes``, dictionary encoding
round-trips values exactly, chunk windows are zero-copy, and the
sorted pool keeps code order aligned with lexicographic order.
"""

import numpy as np
import pytest

from repro.relational import Catalog, Table
from repro.relational.arena import Arena, ArenaColumn, _encode
from repro.relational.datagen import make_lineitem
from repro.relational.schema import DataType, Field, Schema
from repro.relational.table import Chunk


def _schema():
    return Schema([
        Field("k", DataType.INT64),
        Field("v", DataType.FLOAT64),
        Field("tag", DataType.STRING, width=8),
    ])


def _table(rows=100):
    rng = np.random.default_rng(3)
    return Table.from_arrays(_schema(), {
        "k": np.arange(rows, dtype=np.int64),
        "v": rng.random(rows),
        "tag": np.array([f"t{i % 7}" for i in range(rows)], dtype="<U8"),
    }, chunk_rows=32)


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------

def test_dict_encoding_round_trips_exactly():
    values = np.array(["b", "a", "c", "a", "b", "a"], dtype="<U4")
    column = _encode(values)
    assert column.is_dict
    assert np.array_equal(column.decode(0, 6), values)
    # Sorted pool: code order == lexicographic order.
    assert list(column.pool) == sorted(set(values.tolist()))
    assert column.codes.dtype == np.int32


def test_high_cardinality_strings_stay_plain():
    values = np.array([f"u{i}" for i in range(50)], dtype="<U8")
    column = _encode(values)
    assert not column.is_dict
    assert np.array_equal(column.decode(0, 50), values)


def test_numeric_columns_never_dict_encode():
    arena = Arena.build(_schema(), {
        "k": np.arange(10, dtype=np.int64),
        "v": np.zeros(10),
        "tag": np.array(["x"] * 10, dtype="<U8"),
    })
    assert not arena.columns["k"].is_dict
    assert not arena.columns["v"].is_dict
    assert arena.columns["tag"].is_dict


def test_arena_column_rejects_ambiguous_storage():
    with pytest.raises(ValueError):
        ArenaColumn()
    with pytest.raises(ValueError):
        ArenaColumn(buffer=np.zeros(3), codes=np.zeros(3, np.int32),
                    pool=np.array(["a"]))


# ---------------------------------------------------------------------------
# Zero-copy windows and slicing
# ---------------------------------------------------------------------------

def test_chunks_are_windows_not_copies():
    table = _table(100)
    arena = table._arena
    assert arena is not None
    chunk = table.chunks[1]
    # Numeric reads are slices of the arena buffer, not copies.
    values = chunk.columns["k"]
    assert values.base is arena.columns["k"].buffer
    assert np.array_equal(values, np.arange(32, 64))


def test_full_column_decodes_once_and_caches():
    table = _table(100)
    arena = table._arena
    first = arena.full_column("tag")
    assert arena.full_column("tag") is first
    assert np.array_equal(first, [f"t{i % 7}" for i in range(100)])


def test_chunk_slice_stays_arena_backed():
    table = _table(100)
    chunk = table.chunks[0].slice(4, 20)
    assert chunk.num_rows == 16
    assert chunk.dict_codes("tag") is not None
    assert np.array_equal(chunk.columns["k"], np.arange(4, 20))


def test_dict_codes_compose_through_filter_views():
    table = _table(100)
    chunk = table.chunks[0]
    mask = np.asarray(chunk.columns["k"] % 2 == 0)
    view = chunk.filter(mask)
    codes = view.dict_codes("tag")
    pool = view.dict_pool("tag")
    assert codes is not None
    assert np.array_equal(pool[codes], view.columns["tag"])


# ---------------------------------------------------------------------------
# Byte-count invariants (what the simulation charges)
# ---------------------------------------------------------------------------

def test_nbytes_is_logical_rows_times_row_nbytes():
    table = _table(100)
    schema = table.schema
    for chunk in table.chunks:
        assert chunk.nbytes == chunk.num_rows * schema.row_nbytes
    view = table.chunks[0].filter(
        np.asarray(table.chunks[0].columns["k"] < 10))
    assert view.nbytes == view.num_rows * schema.row_nbytes


def test_arena_and_dict_tables_checksum_identically():
    from repro.obs import table_checksum
    arena_table = make_lineitem(2000, chunk_rows=256)
    dense = Table(arena_table.schema)
    for chunk in arena_table.chunks:
        dense.append(Chunk(chunk.schema, dict(chunk.columns)))
    assert dense._arena is None
    assert table_checksum(dense) == table_checksum(arena_table)


# ---------------------------------------------------------------------------
# Validity masks
# ---------------------------------------------------------------------------

def test_validity_masks_ride_along_and_slice():
    schema = _schema()
    rows = 10
    mask = np.ones(rows, dtype=bool)
    mask[3] = False
    arena = Arena.build(schema, {
        "k": np.arange(rows, dtype=np.int64),
        "v": np.zeros(rows),
        "tag": np.array(["x"] * rows, dtype="<U8"),
    }, validity={"v": mask})
    assert arena.validity_slice("k", 0, rows) is None
    got = arena.validity_slice("v", 2, 6)
    assert got is not None and not got[1] and got[0]
    chunk = Chunk._from_arena(schema, arena, 0, rows)
    assert chunk.validity("k") is None
    assert not chunk.validity("v")[3]


def test_validity_length_mismatch_rejected():
    schema = _schema()
    with pytest.raises(ValueError, match="validity length"):
        Arena.build(schema, {
            "k": np.arange(4, dtype=np.int64),
            "v": np.zeros(4),
            "tag": np.array(["x"] * 4, dtype="<U8"),
        }, validity={"k": np.ones(3, dtype=bool)})


# ---------------------------------------------------------------------------
# Table integration
# ---------------------------------------------------------------------------

def test_append_detaches_arena_but_keeps_values():
    table = _table(64)
    extra = Chunk(table.schema, {
        "k": np.array([999], dtype=np.int64),
        "v": np.array([1.5]),
        "tag": np.array(["zz"], dtype="<U8"),
    })
    table.append(extra)
    assert table._arena is None
    assert table.num_rows == 65
    assert table.column("k")[-1] == 999


def test_from_arrays_validates_like_chunk_init():
    schema = _schema()
    with pytest.raises(ValueError, match="do not match schema"):
        Table.from_arrays(schema, {"k": np.arange(3, dtype=np.int64)})
    with pytest.raises(ValueError, match="ragged columns"):
        Table.from_arrays(schema, {
            "k": np.arange(3, dtype=np.int64),
            "v": np.zeros(2),
            "tag": np.array(["x"] * 3, dtype="<U8"),
        })


def test_catalog_tables_are_arena_backed():
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(1000, chunk_rows=256))
    assert catalog.table("lineitem")._arena is not None
