"""Tests for the CPU socket model: §5.1's bandwidth claims."""

import pytest

from repro.hardware import GIB, CPUSocket, LRUCache, MemoryController, OpKind
from repro.sim import Simulator, Trace


def make_env():
    return Simulator(), Trace()


# ---------------------------------------------------------------------------
# MemoryController
# ---------------------------------------------------------------------------

def run_streams(n_streams, nbytes, fraction=0.8, bandwidth=100.0 * 1e6):
    """Run ``n_streams`` concurrent reads; return per-stream bandwidths."""
    sim, trace = make_env()
    ctrl = MemoryController(sim, trace, "mc", bandwidth=bandwidth,
                            single_stream_fraction=fraction,
                            chunk_bytes=1 << 16, arbitration_latency=0.0)
    finish = {}

    def stream(tag):
        yield from ctrl.access(nbytes)
        finish[tag] = sim.now

    for i in range(n_streams):
        sim.process(stream(i))
    sim.run()
    return {tag: nbytes / t for tag, t in finish.items()}, trace


def test_single_stream_capped_at_fraction():
    """One core reaches ~80% of controller bandwidth, not 100% (§5.1)."""
    bws, _ = run_streams(1, nbytes=10 << 20, fraction=0.8, bandwidth=1e8)
    only = list(bws.values())[0]
    assert only == pytest.approx(0.8e8, rel=0.02)


def test_two_streams_exceed_single_stream():
    """Two streams together get more than one stream alone."""
    one, _ = run_streams(1, nbytes=10 << 20, fraction=0.8, bandwidth=1e8)
    two, _ = run_streams(2, nbytes=10 << 20, fraction=0.8, bandwidth=1e8)
    aggregate = sum(two.values()) / 2 * 2  # both run concurrently
    # Aggregate of two streams approaches full bandwidth.
    total_two = 2 * (10 << 20) / ((10 << 20) / list(two.values())[0])
    assert total_two > list(one.values())[0] * 1.1


def test_many_streams_saturate_at_channel_bandwidth():
    """Aggregate never exceeds the channel; per-stream collapses (§5.1)."""
    n = 8
    bws, _ = run_streams(n, nbytes=1 << 20, fraction=0.8, bandwidth=1e8)
    per_stream = sum(bws.values()) / n
    # Streams finish at different times; check the slowest implies
    # aggregate <= channel bandwidth (within rounding).
    assert per_stream <= 1e8 / n * 1.05
    assert per_stream < 0.8e8 / 2


def test_controller_counts_movement():
    _, trace = run_streams(1, nbytes=1 << 20)
    assert trace.counter("memctrl.mc.bytes.read") == float(1 << 20)
    assert trace.counter("movement.membus.bytes") == float(1 << 20)


def test_invalid_fraction_rejected():
    sim, trace = make_env()
    with pytest.raises(ValueError):
        MemoryController(sim, trace, "mc", single_stream_fraction=0.0)
    with pytest.raises(ValueError):
        MemoryController(sim, trace, "mc2", single_stream_fraction=1.5)


# ---------------------------------------------------------------------------
# CPUSocket
# ---------------------------------------------------------------------------

def test_socket_round_robin_controllers():
    sim, trace = make_env()
    socket = CPUSocket(sim, trace, "s", cores=4, controllers=2)
    assert socket.controller_for(0) is socket.controllers[0]
    assert socket.controller_for(1) is socket.controllers[1]
    assert socket.controller_for(2) is socket.controllers[0]


def test_socket_memory_read_crosses_caches():
    sim, trace = make_env()
    socket = CPUSocket(sim, trace, "s", cores=2, controllers=1)

    def proc():
        yield from socket.memory_read(1 << 20, stream_id=0)

    sim.process(proc())
    sim.run()
    assert trace.counter("cache.s.L1.bytes") == float(1 << 20)
    assert trace.counter("cache.s.L3.bytes") == float(1 << 20)
    assert trace.counter("movement.cache.bytes") == 3 * float(1 << 20)


def test_socket_aggregate_bandwidth():
    sim, trace = make_env()
    socket = CPUSocket(sim, trace, "s", controllers=4,
                       controller_bandwidth=10.0 * GIB)
    assert socket.aggregate_bandwidth() == pytest.approx(40.0 * GIB)


def test_core_rates_cover_all_kinds():
    sim, trace = make_env()
    socket = CPUSocket(sim, trace, "s", cores=1)
    core = socket.core(0)
    for kind in OpKind.ALL:
        assert core.supports(kind), kind


# ---------------------------------------------------------------------------
# LRUCache
# ---------------------------------------------------------------------------

def test_lru_hit_after_insert():
    cache = LRUCache(capacity_blocks=2)
    assert cache.access("a") is False
    assert cache.access("a") is True
    assert cache.hit_rate == 0.5


def test_lru_evicts_least_recent():
    cache = LRUCache(capacity_blocks=2)
    cache.access("a")
    cache.access("b")
    cache.access("a")      # refresh a
    cache.access("c")      # evicts b
    assert "b" not in cache
    assert "a" in cache
    assert cache.evictions == 1


def test_lru_occupancy_never_exceeds_capacity():
    cache = LRUCache(capacity_blocks=3)
    for i in range(100):
        cache.access(i % 7)
        assert len(cache) <= 3


def test_lru_explicit_evict():
    cache = LRUCache(capacity_blocks=4)
    cache.access("x")
    assert cache.evict("x") is True
    assert cache.evict("x") is False


def test_lru_requires_positive_capacity():
    import pytest
    with pytest.raises(ValueError):
        LRUCache(capacity_blocks=0)


# ---------------------------------------------------------------------------
# Server / NUMA (§5.1)
# ---------------------------------------------------------------------------

def test_numa_remote_read_slower_than_local():
    sim, trace = make_env()
    from repro.hardware import Server
    server = Server(sim, trace, "srv", sockets=2)
    nbytes = 32 << 20

    def local():
        yield from server.memory_read(nbytes, socket=0, home_socket=0)

    sim.run_process(local())
    local_time = sim.now

    sim2 = Simulator()
    trace2 = Trace()
    server2 = Server(sim2, trace2, "srv", sockets=2)

    def remote():
        yield from server2.memory_read(nbytes, socket=0, home_socket=1)

    sim2.run_process(remote())
    assert sim2.now > local_time
    assert trace2.counter("numa.srv.remote_bytes") == nbytes
    assert trace2.counter("movement.xsocket.bytes") == nbytes


def test_numa_remote_reads_contend_on_interconnect():
    sim, trace = make_env()
    from repro.hardware import Server
    server = Server(sim, trace, "srv", sockets=2)
    nbytes = 16 << 20
    finish = []

    def remote(stream):
        yield from server.memory_read(nbytes, socket=0, home_socket=1,
                                      stream_id=stream)
        finish.append(sim.now)

    sim.process(remote(0))
    sim.run()
    solo = finish[0]

    sim2 = Simulator()
    trace2 = Trace()
    server2 = Server(sim2, trace2, "srv", sockets=2)
    finish2 = []

    def remote2(stream):
        yield from server2.memory_read(nbytes, socket=0,
                                       home_socket=1,
                                       stream_id=stream)
        finish2.append(sim2.now)

    for stream in range(4):
        sim2.process(remote2(stream))
    sim2.run()
    # Four concurrent remote readers share one interconnect: the last
    # finisher is measurably slower than a solo reader, and aggregate
    # remote bandwidth is capped by the interconnect.
    assert max(finish2) > 1.3 * solo
    aggregate_bw = 4 * nbytes / max(finish2)
    assert aggregate_bw <= server2.interconnect_bandwidth * 1.05


def test_server_requires_sockets():
    sim, trace = make_env()
    from repro.hardware import Server
    import pytest as _pytest
    with _pytest.raises(ValueError):
        Server(sim, trace, "bad", sockets=0)
