"""Serving telemetry: sketches, windows, burn rates, exemplars.

Pins the PR-7 contracts: the quantile sketch is bit-equal to the
server's nearest-rank percentiles while uncompressed and within its
self-documented rank-error bound when compressed; burn-rate alert
edge cases (exactly-at-threshold, empty windows, zero-completion
tenants); the alert stream is reconstructible from the windowed
series; telemetry is a pure observer (bit-identical checksums and
completion order with telemetry on and off); and the telemetry
payload digest is bit-reproducible.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.slo import (
    BurnRateMonitor,
    SLOPolicy,
    alert_mismatches,
    burn_rate,
    replay_alerts,
)
from repro.serve import SERVE_SCENARIOS, run_scenario
from repro.serve.server import latency_percentile
from repro.serve.telemetry import QuantileSketch, nearest_rank

latencies_lists = st.lists(
    st.floats(min_value=1e-9, max_value=10.0, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=200)


# -- quantile sketch -------------------------------------------------------

@given(latencies_lists, st.sampled_from([0.5, 0.9, 0.99, 0.999, 1.0]))
@settings(max_examples=50, deadline=None)
def test_sketch_bit_equal_to_latency_percentile_uncompressed(
        values, q):
    sketch = QuantileSketch(capacity=256)
    for value in values:
        sketch.add(value)
    if len(values) <= 256:
        assert sketch.exact
        assert sketch.quantile(q) == latency_percentile(values, q)


@given(latencies_lists, latencies_lists)
@settings(max_examples=50, deadline=None)
def test_sketch_merge_equals_bulk_build_in_exact_regime(a, b):
    left = QuantileSketch(capacity=1024)
    right = QuantileSketch(capacity=1024)
    for value in a:
        left.add(value)
    for value in b:
        right.add(value)
    left.merge(right)
    assert left.exact
    for q in (0.5, 0.99):
        assert left.quantile(q) == latency_percentile(a + b, q)


@given(latencies_lists, latencies_lists, latencies_lists)
@settings(max_examples=30, deadline=None)
def test_sketch_merge_associative_in_exact_regime(a, b, c):
    def build(values):
        sketch = QuantileSketch(capacity=2048)
        for value in values:
            sketch.add(value)
        return sketch

    left = build(a).merge(build(b)).merge(build(c))
    right = build(a).merge(build(b).merge(build(c)))
    assert left.to_dict() == right.to_dict()


@given(st.lists(st.floats(min_value=0.0, max_value=1.0,
                          allow_nan=False), min_size=50,
                max_size=2000),
       st.integers(min_value=4, max_value=64))
@settings(max_examples=30, deadline=None)
def test_sketch_rank_error_within_documented_bound(values, capacity):
    sketch = QuantileSketch(capacity=capacity)
    for value in values:
        sketch.add(value)
    ordered = sorted(values)
    for q in (0.5, 0.9, 0.99):
        got = sketch.quantile(q)
        rank = nearest_rank(len(ordered), q)
        bound = sketch.rank_error_bound
        lo = max(0, rank - 1 - bound)
        hi = min(len(ordered) - 1, rank - 1 + bound)
        assert ordered[lo] <= got <= ordered[hi]


def test_sketch_adversarial_distributions():
    """Heavy ties, sorted ramps and bimodal spikes stay in bound."""
    adversarial = [
        [0.001] * 500 + [1.0] * 3,                   # near-constant
        [i / 1000 for i in range(1000)],             # sorted ramp
        [1.0 - i / 1000 for i in range(1000)],       # reverse ramp
        [0.0001] * 400 + [5.0] * 400,                # bimodal
        [2.0 ** -i for i in range(1, 300)],          # geometric tail
    ]
    for values in adversarial:
        sketch = QuantileSketch(capacity=32)
        for value in values:
            sketch.add(value)
        ordered = sorted(values)
        for q in (0.5, 0.99):
            got = sketch.quantile(q)
            rank = nearest_rank(len(ordered), q)
            bound = sketch.rank_error_bound
            lo = max(0, rank - 1 - bound)
            hi = min(len(ordered) - 1, rank - 1 + bound)
            assert ordered[lo] <= got <= ordered[hi]


def test_sketch_deterministic_and_serializable():
    values = [((i * 2654435761) % 1000) / 1000 + 1e-6
              for i in range(5000)]
    a = QuantileSketch(capacity=64)
    b = QuantileSketch(capacity=64)
    for value in values:
        a.add(value)
        b.add(value)
    assert a.to_dict() == b.to_dict()
    restored = QuantileSketch.from_dict(a.to_dict())
    assert restored.quantile(0.99) == a.quantile(0.99)
    assert restored.rank_error_bound == a.rank_error_bound


def test_sketch_counts_weights_not_points():
    sketch = QuantileSketch(capacity=4)
    for _ in range(100):
        sketch.add(0.5)
    assert sketch.count == 100
    # 100 equal values coalesce to one point: no compression needed.
    assert sketch.exact
    assert sketch.quantile(0.99) == 0.5


# -- burn-rate edge cases --------------------------------------------------

def test_burn_exactly_at_threshold_fires():
    # target .75 -> budget .25 (exact in binary); 1 violation per 4
    # completions is a burn of exactly 1.0, and >= semantics means
    # it FIRES.
    policy = SLOPolicy(target=0.75, threshold=1.0, fast_windows=1,
                       slow_windows=1)
    monitor = BurnRateMonitor(policy)
    alert = monitor.observe(0, completions=4, violations=1, at=1.0)
    assert alert is not None and alert["kind"] == "fired"
    assert alert["fast_burn"] == 1.0


def test_burn_empty_windows_are_silence_and_resolve():
    policy = SLOPolicy(target=0.9, threshold=1.0, fast_windows=1,
                       slow_windows=1)
    monitor = BurnRateMonitor(policy)
    assert monitor.observe(0, 0, 0, at=1.0) is None  # idle: no 0/0
    fired = monitor.observe(1, 10, 10, at=2.0)
    assert fired is not None and fired["kind"] == "fired"
    resolved = monitor.observe(2, 0, 0, at=3.0)
    assert resolved is not None and resolved["kind"] == "resolved"


def test_burn_zero_completion_tenant_never_alerts():
    policy = SLOPolicy(target=0.99, threshold=1.0, fast_windows=2,
                       slow_windows=4)
    monitor = BurnRateMonitor(policy)
    for index in range(20):
        assert monitor.observe(index, 0, 0, at=float(index)) is None
    assert not monitor.burning


def test_burn_zero_budget_any_violation_is_infinite():
    assert burn_rate(1, 100, budget=0.0) == float("inf")
    assert burn_rate(0, 100, budget=0.0) == 0.0
    policy = SLOPolicy(target=1.0, threshold=1.0, fast_windows=1,
                       slow_windows=1)
    monitor = BurnRateMonitor(policy)
    alert = monitor.observe(0, completions=5, violations=1, at=1.0)
    assert alert is not None and alert["kind"] == "fired"


def test_burn_slow_window_suppresses_one_bad_window():
    # One terrible window out of many good ones must not page when
    # the slow span still has budget.
    policy = SLOPolicy(target=0.9, threshold=1.0, fast_windows=1,
                       slow_windows=10)
    monitor = BurnRateMonitor(policy)
    for index in range(9):
        assert monitor.observe(index, 100, 0,
                               at=float(index)) is None
    # fast burn = 10.0, slow burn = 10/910/0.1 ≈ 0.11 -> no alert.
    assert monitor.observe(9, 10, 10, at=9.0) is None


def test_monitor_rejects_sparse_windows():
    monitor = BurnRateMonitor(SLOPolicy())
    monitor.observe(0, 1, 0, at=1.0)
    with pytest.raises(ValueError, match="densely"):
        monitor.observe(2, 1, 0, at=3.0)


@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 50)),
                min_size=1, max_size=60),
       st.floats(min_value=0.5, max_value=0.999))
@settings(max_examples=50, deadline=None)
def test_alert_stream_reconstructible_from_series(pairs, target):
    policy = SLOPolicy(target=target, threshold=1.0, fast_windows=2,
                       slow_windows=6)
    monitor = BurnRateMonitor(policy)
    series, live = [], []
    for index, (completions, extra) in enumerate(pairs):
        violations = min(extra, completions)
        alert = monitor.observe(index, completions, violations,
                                at=(index + 1) * 0.005)
        if alert is not None:
            live.append({"tenant": "t", **alert})
        series.append({"window": index, "completions": completions,
                       "violations": violations})
    assert replay_alerts(series, policy, 0.005) == [
        {k: v for k, v in alert.items() if k != "tenant"}
        for alert in live]
    assert alert_mismatches({"t": series}, {"t": policy}, live,
                            0.005) == []


def test_alert_mismatch_detected():
    policy = SLOPolicy(target=0.9, threshold=1.0, fast_windows=1,
                       slow_windows=1)
    series = [{"window": 0, "completions": 10, "violations": 10}]
    forged = []  # the live stream "lost" the fired alert
    errors = alert_mismatches({"t": series}, {"t": policy}, forged,
                              0.005)
    assert errors and "not reconstructible" in errors[0]


# -- end-to-end serving telemetry ------------------------------------------

def _small_run(scenario="two_tenant_bursty", queries=60, **overrides):
    config = SERVE_SCENARIOS[scenario].config
    if overrides:
        config = dataclasses.replace(config, **overrides)
    return run_scenario(scenario, queries=queries, config=config)


def test_telemetry_payload_shape_and_violations():
    record = _small_run()
    telemetry = record["telemetry"]
    assert telemetry["schema"] == "repro.serve-telemetry/v1"
    assert record["telemetry_violations"] == []
    assert record["accounting_violations"] == []
    windows = telemetry["windows"]
    for tenant, data in telemetry["tenants"].items():
        series = data["series"]
        assert len(series) == windows  # dense: every window present
        assert [entry["window"] for entry in series] == \
            list(range(windows))
        assert sum(e["completions"] for e in series) == \
            record["tenants"][tenant]["completed"]
        assert sum(e["sheds"] for e in series) == \
            record["tenants"][tenant]["shed"]


def test_telemetry_digest_reproducible():
    first = _small_run()
    second = _small_run()
    assert first["telemetry_digest"] == second["telemetry_digest"]
    assert first["telemetry"] == second["telemetry"]


def test_telemetry_zero_observer_effect():
    on = _small_run()
    off = _small_run(telemetry=False)
    assert "telemetry" not in off
    assert off["checksum"] == on["checksum"]
    assert off["completion_order"] == on["completion_order"]
    assert off["slo_violations"] == on["slo_violations"]
    assert off["latency"] == on["latency"]


def test_exemplars_attributed_exactly():
    record = _small_run()
    exemplars = record["telemetry"]["exemplars"]
    assert exemplars, "a completed run must produce tail exemplars"
    for exemplar in exemplars:
        attribution = exemplar["attribution"]
        assert attribution["exact"] is True  # tolerance 0
        assert attribution["finished_at"] - attribution["started_at"] \
            == exemplar["latency_s"]
        assert exemplar["slice_complete"] is True
        assert exemplar["events"], "exemplar kept no event slice"
        qid = exemplar["qid"]
        assert all(e.get("qid") == qid for e in exemplar["events"])


def test_alerts_fire_and_reconcile_on_bursty_scenario():
    record = run_scenario("two_tenant_bursty")  # full-size: violations
    telemetry = record["telemetry"]
    assert record["slo_violations"] > 0
    assert any(a["kind"] == "fired" for a in telemetry["alerts"])
    assert record["telemetry_violations"] == []
    # Alert events made it into the trace-facing payload ordering:
    # alerts arrive window-ordered, tenants sorted within a window.
    keys = [(a["window"], a["tenant"]) for a in telemetry["alerts"]]
    assert keys == sorted(keys)


def test_serve_record_carries_qid_per_query():
    record = _small_run(queries=40)
    qids = [r["qid"] for r in record["records"]]
    assert all(qid > 0 for qid in qids)
    assert len(set(qids)) == len(qids)  # one trace context per query


# -- report validation (obs) ----------------------------------------------

def _wrap_report(record):
    return {"schema": "repro.report/v1", "run": {"seed": 0},
            "results": [], "serving": [record]}


def test_obs_rejects_empty_records_list():
    from repro.obs import report_violations

    record = _small_run(queries=20)
    good = _wrap_report(record)
    assert [v for v in report_violations(good)
            if v.startswith("serving")] == []

    empty = dict(record)
    empty["records"] = []
    violations = report_violations(_wrap_report(empty))
    assert any("'records' list is empty" in v for v in violations)

    # A record with *no* records key (bench strips it) stays valid.
    stripped = {k: v for k, v in record.items() if k != "records"}
    assert [v for v in report_violations(_wrap_report(stripped))
            if "records" in v] == []


def test_obs_validates_telemetry_section():
    from repro.obs import report_violations

    record = _small_run(queries=20)
    broken = dict(record)
    telemetry = {k: (v if k != "schema" else "bogus/v0")
                 for k, v in record["telemetry"].items()}
    broken["telemetry"] = telemetry
    violations = report_violations(_wrap_report(broken))
    assert any("telemetry schema" in v for v in violations)

    sparse = dict(record)
    tenants = {
        name: {**data,
               "series": data["series"][:-1]}  # drop last window
        for name, data in record["telemetry"]["tenants"].items()}
    sparse["telemetry"] = {**record["telemetry"], "tenants": tenants}
    violations = report_violations(_wrap_report(sparse))
    assert any("dense" in v or "series" in v for v in violations)


# -- perfetto tenants track (satellite 1) ----------------------------------

def test_chrome_trace_tenant_lanes_and_no_dangling_flows():
    from repro.serve import serve_scenario_server
    from repro.sim.chrometrace import chrome_trace

    server = serve_scenario_server("two_tenant_bursty", queries=40)
    trace = server.fabric.trace
    trace.close_open_spans()
    payload = chrome_trace(trace)
    events = payload["traceEvents"]

    lanes = {e["args"]["name"] for e in events
             if e.get("ph") == "M" and e["name"] == "thread_name"
             and e["pid"] == 7}
    assert {"tenant:gold", "tenant:bronze"} <= lanes

    slices = [e for e in events
              if e.get("pid") == 7 and e.get("ph") == "X"]
    assert len(slices) == 40  # every completed query, exactly once
    assert all("qid" in s["args"] for s in slices)

    starts = [e["id"] for e in events if e.get("ph") == "s"]
    finishes = [e["id"] for e in events if e.get("ph") == "f"]
    assert sorted(starts) == sorted(finishes)  # no dangling arrows

    # Scheduled-query spans belong on the queries track, not "other".
    sched = [e for e in events if e.get("cat") == "span"
             and e["name"].startswith("sched.")]
    assert sched and all(e["pid"] == 1 for e in sched)
