"""Coverage for result accounting, traces, routers, and edge cases."""

import numpy as np
import pytest

from repro.engine import (
    AggSpec,
    DataflowEngine,
    Query,
    QueryResult,
    TraceSnapshot,
    VolcanoEngine,
)
from repro.engine.operators import ProjectOp
from repro.flow import StageGraph
from repro.hardware import build_fabric, dataflow_spec
from repro.relational import (
    Catalog,
    Chunk,
    DataType,
    Schema,
    Table,
    col,
    make_uniform_table,
)
from repro.sim import Trace


# ---------------------------------------------------------------------------
# Trace
# ---------------------------------------------------------------------------

def test_trace_counters_and_totals():
    trace = Trace()
    trace.add("a.x", 1)
    trace.add("a.y", 2)
    trace.add("b.z", 4)
    assert trace.counter("a.x") == 1
    assert trace.counter("missing") == 0
    assert trace.total("a.") == 3
    assert trace.report("a.") == {"a.x": 1, "a.y": 2}


def test_trace_spans_and_busy_time():
    trace = Trace()
    span = trace.open_span("work", 1.0)
    trace.close_span(span, 3.5)
    span2 = trace.open_span("work", 5.0)
    trace.close_span(span2, 6.0)
    assert trace.busy_time("work") == pytest.approx(3.5)
    # Open spans measure up to the trace clock instead of raising,
    # so a mid-run report never crashes a benchmark.
    open_span = trace.open_span("work", 7.0)
    assert open_span.duration == 0.0
    trace.tick(9.0)
    assert open_span.duration == pytest.approx(2.0)
    assert trace.busy_time("work") == pytest.approx(5.5)
    assert trace.close_open_spans() == 1
    assert open_span.end == pytest.approx(9.0)


def test_trace_series_peak():
    trace = Trace()
    trace.sample("q", 0.0, 1.0)
    trace.sample("q", 1.0, 5.0)
    trace.sample("q", 2.0, 2.0)
    assert trace.peak("q") == 5.0
    assert trace.peak("missing") == 0.0


def test_trace_merge():
    a, b = Trace(), Trace()
    a.add("x", 1)
    b.add("x", 2)
    b.sample("s", 0.0, 1.0)
    a.merge(b)
    assert a.counter("x") == 3
    assert a.peak("s") == 1.0


def test_trace_snapshot_delta():
    trace = Trace()
    trace.add("m.bytes", 100)
    snap = TraceSnapshot(trace)
    trace.add("m.bytes", 50)
    trace.add("n.bytes", 7)
    assert snap.delta("m.bytes") == 50
    assert snap.delta_prefix("") == {"m.bytes": 50, "n.bytes": 7}
    assert snap.delta("absent") == 0


# ---------------------------------------------------------------------------
# QueryResult
# ---------------------------------------------------------------------------

def test_query_result_summary():
    schema = Schema.of(("a", DataType.INT64))
    table = Table(schema, [Chunk(schema, {"a": np.array([1, 2])})])
    result = QueryResult(table=table, elapsed=0.5, engine="x",
                         movement={"network.bytes": 10.0,
                                   "pcie.bytes": 5.0})
    assert result.rows == 2
    assert result.total_bytes_moved == 15.0
    assert result.bytes_on("network") == 10.0
    assert result.bytes_on("absent") == 0.0
    summary = result.summary()
    assert summary["engine"] == "x"
    assert summary["moved_network"] == 10.0


# ---------------------------------------------------------------------------
# Fabric reporting
# ---------------------------------------------------------------------------

def test_fabric_movement_report():
    fabric = build_fabric(dataflow_spec())

    def proc():
        yield from fabric.transfer("storage.node", "compute0.cpu",
                                   1000.0)

    fabric.sim.process(proc())
    fabric.run()
    report = fabric.movement_report()
    assert report["network.bytes"] == 2000.0   # two network hops
    assert fabric.total_bytes_moved() == sum(report.values())


# ---------------------------------------------------------------------------
# Stage routers
# ---------------------------------------------------------------------------

def router_graph(router):
    fabric = build_fabric(dataflow_spec(compute_nodes=2))
    table = make_uniform_table(600, columns=1, chunk_rows=100)
    graph = StageGraph(fabric, name=f"r_{router}")
    src = graph.source("scan", table, medium=fabric.storage.medium)
    mid = graph.stage("mid", "storage.nic", [ProjectOp(["k0"])],
                      router=router)
    s0 = graph.sink("s0", "compute0.cpu")
    s1 = graph.sink("s1", "compute1.cpu")
    graph.connect(src, mid)
    graph.connect(mid, s0)
    graph.connect(mid, s1)
    return graph, table


def test_round_robin_router_splits_chunks():
    graph, table = router_graph("round_robin")
    result = graph.run()
    rows0 = result.tables["s0"].num_rows
    rows1 = result.tables["s1"].num_rows
    assert rows0 + rows1 == 600
    assert rows0 == rows1 == 300  # 6 chunks alternate evenly


def test_broadcast_router_duplicates():
    graph, table = router_graph("broadcast")
    result = graph.run()
    assert result.tables["s0"].num_rows == 600
    assert result.tables["s1"].num_rows == 600
    assert result.tables["s0"].sorted_rows() == \
        result.tables["s1"].sorted_rows()


def test_partition_router_requires_routed_emits():
    graph, _table = router_graph("partition")  # ProjectOp sets no route
    with pytest.raises(RuntimeError, match="partition router"):
        graph.run()


def test_unknown_router_rejected():
    fabric = build_fabric(dataflow_spec())
    graph = StageGraph(fabric)
    with pytest.raises(ValueError):
        graph.stage("x", "compute0.cpu", [], router="teleport")


# ---------------------------------------------------------------------------
# Engine edge cases
# ---------------------------------------------------------------------------

def env(rows=2000):
    fabric = build_fabric(dataflow_spec())
    catalog = Catalog()
    catalog.register("t", make_uniform_table(rows, columns=3,
                                             distinct=100,
                                             chunk_rows=250))
    return fabric, catalog


def test_empty_result_queries_agree():
    query = Query.scan("t").filter(col("k0") > 10_000)
    fabric_v, catalog_v = env()
    res_v = VolcanoEngine(fabric_v, catalog_v).execute(query)
    fabric_d, catalog_d = env()
    res_d = DataflowEngine(fabric_d, catalog_d).execute(query)
    assert res_v.rows == res_d.rows == 0


def test_scan_column_pruning_in_both_engines():
    query = Query.scan("t", columns=["k1"])
    fabric_v, catalog_v = env()
    res_v = VolcanoEngine(fabric_v, catalog_v).execute(query)
    fabric_d, catalog_d = env()
    res_d = DataflowEngine(fabric_d, catalog_d).execute(query)
    assert res_v.table.schema.names == ["k1"]
    assert res_v.table.sorted_rows() == res_d.table.sorted_rows()


def test_limit_in_dataflow_engine():
    query = Query.scan("t").limit(123)
    fabric, catalog = env()
    result = DataflowEngine(fabric, catalog).execute(query)
    assert result.rows == 123


def test_string_group_by_agrees():
    fabric = build_fabric(dataflow_spec())
    catalog = Catalog()
    from repro.relational import make_lineitem
    catalog.register("lineitem", make_lineitem(3000, chunk_rows=500))
    query = (Query.scan("lineitem")
             .aggregate(["l_returnflag"],
                        [AggSpec("count", alias="n")]))
    res_d = DataflowEngine(fabric, catalog).execute(query)
    fabric2 = build_fabric(dataflow_spec())
    res_v = VolcanoEngine(fabric2, catalog).execute(query)
    assert res_d.table.sorted_rows() == res_v.table.sorted_rows()
    assert res_d.rows == 3


def test_operator_exception_surfaces_from_stage_graph():
    fabric = build_fabric(dataflow_spec())
    table = make_uniform_table(100, chunk_rows=50)

    class ExplodingOp(ProjectOp):
        def process(self, chunk):
            raise ValueError("injected failure")

    graph = StageGraph(fabric, name="boom")
    src = graph.source("scan", table, medium=fabric.storage.medium)
    bad = graph.stage("bad", "compute0.cpu", [ExplodingOp(["k0"])])
    graph.connect(src, bad)
    with pytest.raises(ValueError, match="injected failure"):
        graph.run()


def test_query_builder_validation():
    with pytest.raises(ValueError):
        Query.scan("t").sort([])
    with pytest.raises(ValueError):
        Query.scan("t").limit(-1)
    with pytest.raises(ValueError):
        Query.scan("t").aggregate(["a"], [])
    with pytest.raises(ValueError):
        AggSpec("median", "x")
    with pytest.raises(ValueError):
        AggSpec("sum")   # sum requires a column


def test_volcano_bufferpool_warm_run_skips_network():
    from repro.cloud import BufferPool
    fabric, catalog = env()
    pool = BufferPool(fabric, capacity_bytes=64 << 20)
    engine = VolcanoEngine(fabric, catalog, bufferpool=pool)
    query = Query.scan("t").filter(col("k0") < 50)
    first = engine.execute(query)
    second = engine.execute(query)
    assert first.table.sorted_rows() == second.table.sorted_rows()
    assert first.bytes_on("network") > 0
    assert second.bytes_on("network") == 0     # warm pool
    assert pool.hit_rate >= 0.5


def test_fabric_utilization_report():
    fabric = build_fabric(dataflow_spec())
    catalog = Catalog()
    catalog.register("t", make_uniform_table(5000, chunk_rows=500))
    DataflowEngine(fabric, catalog).execute(
        Query.scan("t").filter(col("k0") < 100))
    report = fabric.utilization_report()
    assert all(0.0 <= v <= 1.0 for v in report.values())
    assert report["device:storage.cu"] > 0.0
    assert any(k.startswith("link:") and v > 0
               for k, v in report.items())
