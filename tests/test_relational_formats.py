"""Tests for serialization, compression, transposition, catalog, datagen."""

import numpy as np
import pytest

from repro.relational import (
    Catalog,
    Chunk,
    DataType,
    Schema,
    compress_chunk,
    compute_stats,
    decompress_chunk,
    deserialize_chunk,
    make_customer,
    make_lineitem,
    make_orders,
    make_sensor_readings,
    make_uniform_table,
    serialize_chunk,
    to_column_major,
    to_row_major,
    zipf_ints,
)


def sample_chunk():
    schema = Schema.of(("a", DataType.INT64), ("b", DataType.FLOAT64),
                       ("flag", DataType.BOOL), ("s", DataType.STRING, 12))
    return Chunk(schema, {
        "a": np.array([10, -5, 0], dtype=np.int64),
        "b": np.array([0.25, 1e9, -3.5]),
        "flag": np.array([True, False, True]),
        "s": np.array(["hello", "", "world wide"]),
    })


# ---------------------------------------------------------------------------
# Serialization / compression
# ---------------------------------------------------------------------------

def test_serialize_roundtrip():
    chunk = sample_chunk()
    restored = deserialize_chunk(serialize_chunk(chunk))
    assert restored.sorted_rows() == chunk.sorted_rows()
    assert restored.schema.names == chunk.schema.names


def test_deserialize_rejects_garbage():
    with pytest.raises(ValueError):
        deserialize_chunk(b"nope" + b"\x00" * 20)


def test_compress_roundtrip():
    chunk = sample_chunk()
    compressed = compress_chunk(chunk)
    restored = decompress_chunk(compressed)
    assert restored.sorted_rows() == chunk.sorted_rows()


def test_compression_shrinks_redundant_data():
    schema = Schema.of(("a", DataType.INT64))
    chunk = Chunk(schema, {"a": np.zeros(10000, dtype=np.int64)})
    compressed = compress_chunk(chunk)
    assert compressed.nbytes < chunk.nbytes / 10
    assert compressed.ratio > 10


def test_compressed_chunk_metadata():
    chunk = sample_chunk()
    compressed = compress_chunk(chunk)
    assert compressed.num_rows == chunk.num_rows
    assert compressed.uncompressed_nbytes == chunk.nbytes


# ---------------------------------------------------------------------------
# Transposition (§5.4)
# ---------------------------------------------------------------------------

def test_row_column_roundtrip():
    chunk = sample_chunk()
    rows = to_row_major(chunk)
    back = to_column_major(rows, chunk.schema)
    assert back.sorted_rows() == chunk.sorted_rows()


def test_row_major_layout_is_structured():
    rows = to_row_major(sample_chunk())
    assert rows.dtype.names == ("a", "b", "flag", "s")
    assert rows[0]["a"] == 10


# ---------------------------------------------------------------------------
# Catalog and statistics
# ---------------------------------------------------------------------------

def test_catalog_register_and_lookup():
    catalog = Catalog()
    table = make_uniform_table(1000, seed=1)
    catalog.register("t", table)
    assert "t" in catalog
    assert catalog.table("t") is table
    assert catalog.names == ["t"]


def test_catalog_unknown_table():
    catalog = Catalog()
    with pytest.raises(KeyError):
        catalog.table("missing")
    with pytest.raises(KeyError):
        catalog.stats("missing")


def test_stats_exact_min_max_distinct():
    table = make_uniform_table(5000, columns=1, distinct=50, seed=3)
    stats = compute_stats(table)
    k0 = stats.columns["k0"]
    values = table.column("k0")
    assert k0.min == values.min()
    assert k0.max == values.max()
    assert k0.distinct == len(np.unique(values))
    assert stats.rows == 5000
    assert stats.nbytes == table.nbytes


def test_stats_string_columns_have_no_range():
    table = make_customer(100)
    stats = compute_stats(table)
    assert stats.columns["c_comment"].min is None
    assert stats.columns["c_comment"].distinct > 0


# ---------------------------------------------------------------------------
# Data generators
# ---------------------------------------------------------------------------

def test_generators_deterministic():
    t1 = make_lineitem(1000, seed=42)
    t2 = make_lineitem(1000, seed=42)
    assert t1.sorted_rows() == t2.sorted_rows()
    t3 = make_lineitem(1000, seed=43)
    assert t3.sorted_rows() != t1.sorted_rows()


def test_lineitem_joins_orders():
    lineitem = make_lineitem(1000, orders=100)
    orders = make_orders(100)
    orderkeys = set(orders.column("o_orderkey").tolist())
    assert set(lineitem.column("l_orderkey").tolist()) <= orderkeys


def test_orders_key_dense():
    orders = make_orders(500)
    assert orders.column("o_orderkey").tolist() == list(range(500))


def test_sensor_error_rate_approximate():
    table = make_sensor_readings(100000, error_rate=0.01, seed=5)
    status = table.column("status")
    error_frac = (status == 2).mean()
    assert 0.005 < error_frac < 0.02


def test_zipf_skews_distribution():
    rng = np.random.default_rng(0)
    values = zipf_ints(rng, 100000, n_values=1000, skew=1.5)
    counts = np.bincount(values, minlength=1000)
    # The most popular value dominates under skew.
    assert counts.max() > 10 * np.median(counts[counts > 0])
    assert values.min() >= 0 and values.max() < 1000


def test_zipf_requires_skew_above_one():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        zipf_ints(rng, 10, n_values=5, skew=1.0)
