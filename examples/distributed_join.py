"""The Figure 4 scattering pipeline: a NIC-orchestrated distributed join.

Two compute nodes join lineitem against orders.  The storage-side
SmartNIC hash-partitions *both* relations on the fly and scatters
co-partitioned streams to the two nodes; each node builds and probes
its partition locally; the per-priority revenue aggregates gather at
node 0.  The host CPUs never see the exchange — the NICs orchestrate
it (§4.4).

For contrast the same query also runs single-node, and the example
prints where the partitioning work executed.

Run:  python examples/distributed_join.py
"""

from repro import (
    AggSpec,
    Catalog,
    DataflowEngine,
    Query,
    build_fabric,
    col,
    dataflow_spec,
    make_lineitem,
    make_orders,
    pushdown,
)


def make_catalog() -> Catalog:
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(200_000, orders=50_000,
                                               chunk_rows=8_192))
    catalog.register("orders", make_orders(50_000, chunk_rows=8_192))
    return catalog


def query() -> Query:
    return (Query.scan("lineitem")
            .filter(col("l_quantity") > 20)
            .join(Query.scan("orders"), "l_orderkey", "o_orderkey")
            .aggregate(["o_priority"],
                       [AggSpec("sum", "l_extendedprice", "revenue"),
                        AggSpec("count", alias="lines")]))


def run(nodes: int) -> dict:
    fabric = build_fabric(dataflow_spec(compute_nodes=nodes))
    engine = DataflowEngine(fabric, make_catalog())
    q = query()
    placement = pushdown(q.plan, fabric)
    placement.partitions = nodes
    result = engine.execute(q, placement=placement)
    return {
        "nodes": nodes,
        "elapsed_ms": result.elapsed * 1e3,
        "rows": result.rows,
        "nic_partitioned_mib":
            fabric.trace.counter(
                "device.storage.nic.proc.bytes.partition") / (1 << 20),
        "cpu_partitioned_mib": sum(
            v for k, v in fabric.trace.counters.items()
            if ".cpu.bytes.partition" in k) / (1 << 20),
        "table": result.table,
    }


def main() -> None:
    single = run(1)
    double = run(2)
    print(f"{'':>22} {'1 node':>12} {'2 nodes':>12}")
    for field in ("elapsed_ms", "nic_partitioned_mib",
                  "cpu_partitioned_mib"):
        print(f"{field:>22} {single[field]:>12.2f} "
              f"{double[field]:>12.2f}")
    print("\nrevenue by priority (2-node plan):")
    for row in double["table"].sorted_rows():
        priority, revenue, lines = row
        print(f"  priority {priority}: {revenue:18,.2f}  "
              f"({lines:,} lineitems)")
    speedup = single["elapsed_ms"] / double["elapsed_ms"]
    assert double["cpu_partitioned_mib"] == 0.0
    print(f"\nNICs did all the partitioning; "
          f"2 nodes -> {speedup:.2f}x faster ✓")


if __name__ == "__main__":
    main()
