"""A fully disaggregated rack (§6.4) running one analytic workload.

The paper's endgame: stop building servers that bundle CPU, memory,
and storage — "think of computers in terms of racks and populate the
rack with more carefully apportioned resources".  This example builds
such a rack (four thin compute nodes, a pooled disaggregated-memory
node, shared computational storage, CXL host links, a 400 Gb/s
fabric) and lays a data-flow pipeline over it:

* a 4-way NIC-scattered distributed hash join (Figure 4 at rack
  scale), and
* a memory-pool-resident aggregation whose bottom stages run on the
  pool's near-memory accelerator (§5.3).

It then prints the rack's elasticity ledger: how little state each
compute node held — the property that lets the rack reassign them
freely (§7.4).

Run:  python examples/rack_scale.py
"""

from repro import (
    AggSpec,
    Catalog,
    DataflowEngine,
    Query,
    StageGraph,
    build_fabric,
    col,
    make_lineitem,
    make_orders,
    make_uniform_table,
    pushdown,
    rack_spec,
)
from repro.engine.operators import (
    FilterOp,
    MergeAggregate,
    PartialAggregate,
)
from repro.relational import DataType, Field, Schema

NODES = 4


def main() -> None:
    fabric = build_fabric(rack_spec(compute_nodes=NODES))
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(200_000, orders=50_000,
                                               chunk_rows=8_192))
    catalog.register("orders", make_orders(50_000, chunk_rows=8_192))

    # 1. Rack-wide distributed join, scattered by the storage NIC.
    join = (Query.scan("lineitem")
            .filter(col("l_quantity") > 20)
            .join(Query.scan("orders"), "l_orderkey", "o_orderkey")
            .aggregate(["o_priority"],
                       [AggSpec("sum", "l_extendedprice", "revenue")]))
    placement = pushdown(join.plan, fabric)
    placement.partitions = NODES
    engine = DataflowEngine(fabric, catalog)
    result = engine.execute(join, placement=placement)
    print(f"4-way scattered join: {result.rows} groups in "
          f"{result.elapsed * 1e3:.2f} ms (sim)")
    for priority, revenue in result.table.sorted_rows():
        print(f"  priority {priority}: {revenue:16,.0f}")

    # 2. Aggregation over a table living in the rack's memory pool,
    #    reduced by the pool's near-memory accelerator.
    pool_table = make_uniform_table(300_000, columns=3, distinct=500,
                                    chunk_rows=16_384)
    fabric.disagg.dram.allocate(pool_table.nbytes)
    specs = [AggSpec("count", alias="n")]
    output = Schema([Field("k0", DataType.INT64),
                     Field("n", DataType.INT64)])
    graph = StageGraph(fabric, name="poolagg")
    src = graph.source("pool", pool_table, location="memnode.node")
    bottom = graph.stage("near_pool", "memnode.accel",
                         [FilterOp(col("k0") < 100),
                          PartialAggregate(pool_table.schema, ["k0"],
                                           specs)])
    final = graph.sink("final", "compute0.cpu",
                       [MergeAggregate(pool_table.schema, ["k0"],
                                       specs, final=True,
                                       output_schema=output)])
    graph.connect(src, bottom)
    graph.connect(bottom, final)
    pool_result = graph.run()
    print(f"\nmemory-pool aggregation: "
          f"{pool_result.table().num_rows} groups, "
          f"{pool_result.elapsed * 1e3:.2f} ms (sim)")

    # 3. The elasticity ledger.
    print("\nrack state ledger:")
    pool_mib = fabric.disagg.dram.used / (1 << 20)
    print(f"  memory pool holds {pool_mib:.1f} MiB of data")
    for node in fabric.compute:
        print(f"  {node.name}: {node.dram.used / (1 << 20):.2f} MiB "
              f"pinned in local DRAM")
    total_network = fabric.trace.counter("movement.network.bytes")
    print(f"  fabric carried {total_network / (1 << 20):.1f} MiB "
          "in total")
    assert all(node.dram.used == 0 for node in fabric.compute)
    print("\ncompute nodes are stateless — the rack can reassign "
          "them at will ✓")


if __name__ == "__main__":
    main()
