"""Quickstart: the same query on the old and the new architecture.

Builds the paper's Figure 6 fabric (computational storage, SmartNICs,
near-memory accelerator, CXL), loads a synthetic lineitem table, and
runs one selective analytic query three ways:

1. pull-based Volcano on the CPU (the conventional engine),
2. push-based data-flow with everything still placed on the CPU,
3. push-based data-flow with the optimizer choosing offload sites.

All three return identical rows; watch the bytes move.

Run:  python examples/quickstart.py
"""

from repro import (
    AggSpec,
    Catalog,
    DataflowEngine,
    Optimizer,
    Query,
    VolcanoEngine,
    build_fabric,
    col,
    cpu_only,
    dataflow_spec,
    make_lineitem,
)


def fmt_mib(nbytes: float) -> str:
    return f"{nbytes / (1 << 20):8.2f} MiB"


def main() -> None:
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(200_000,
                                               chunk_rows=16_384))
    query = (Query.scan("lineitem")
             .filter(col("l_quantity") > 45)
             .aggregate(["l_returnflag"],
                        [AggSpec("sum", "l_extendedprice", "revenue"),
                         AggSpec("count", alias="orders")]))

    print("query: revenue by return flag for quantity > 45\n")
    results = {}

    fabric = build_fabric(dataflow_spec())
    results["volcano (pull, CPU)"] = VolcanoEngine(
        fabric, catalog).execute(query)

    fabric = build_fabric(dataflow_spec())
    results["dataflow, cpu-only"] = DataflowEngine(
        fabric, catalog).execute(
        query, placement=cpu_only(query.plan, fabric))

    fabric = build_fabric(dataflow_spec())
    best = Optimizer(fabric, catalog).optimize(query)
    results["dataflow, optimized"] = DataflowEngine(
        fabric, catalog).execute(query, placement=best.placement)

    print(f"{'engine':24} {'elapsed':>12} {'network':>14} "
          f"{'total moved':>14}")
    for name, res in results.items():
        print(f"{name:24} {res.elapsed * 1e3:9.2f} ms "
              f"{fmt_mib(res.bytes_on('network'))} "
              f"{fmt_mib(res.total_bytes_moved)}")

    print("\nchosen offload sites:",
          sorted({s for chain in best.placement.sites.values()
                  for s in chain}))
    print("\nresult rows (identical across engines):")
    for row in results["dataflow, optimized"].table.sorted_rows():
        print(" ", row)

    reference = results["volcano (pull, CPU)"].table.sorted_rows()
    for name, res in results.items():
        assert res.table.sorted_rows() == reference, name
    print("\nall three engines agree ✓")


if __name__ == "__main__":
    main()
