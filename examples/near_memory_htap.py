"""Near-memory functional units in an HTAP-style workload (§5.4).

An operational store keeps recent orders in *row* format behind a
B-tree-like block index; analytics wants them *columnar*.  The paper
proposes near-memory functional units for exactly this gap:

* a **pointer-dereferencing unit** that walks the index inside the
  memory system and ships only matching leaves upward;
* a **transposition unit** that converts row-major blocks to columnar
  form on the memory controller, so the cores (and caches) only ever
  see the analytic layout.

This example runs a batch of point lookups plus a format conversion
both ways — CPU-centric and near-memory — over the same real data
structures, and compares memory-bus traffic and time.

Run:  python examples/near_memory_htap.py
"""

import numpy as np

from repro import Chunk, DataType, Field, Schema
from repro.hardware import (
    CPUSocket,
    HierarchicalBlockStore,
    NearMemoryAccelerator,
    OpKind,
    chase_near_memory,
    chase_on_cpu,
)
from repro.relational import to_column_major, to_row_major
from repro.sim import Simulator, Trace

N_KEYS = 500_000
LOOKUPS = 500
TRANSPOSE_ROWS = 1_000_000


def env():
    sim = Simulator()
    trace = Trace()
    socket = CPUSocket(sim, trace, "host", cores=8, controllers=2)
    accel = NearMemoryAccelerator(sim, trace, "nearmem")
    return sim, trace, socket, accel


def lookup_batch(on_accel: bool) -> dict:
    store = HierarchicalBlockStore(list(range(0, N_KEYS * 2, 2)),
                                   fanout=16, leaf_capacity=64)
    rng = np.random.default_rng(7)
    probes = rng.integers(0, N_KEYS * 2, size=LOOKUPS).tolist()
    sim, trace, socket, accel = env()

    def run():
        found = 0
        for key in probes:
            if on_accel:
                value = yield from chase_near_memory(store, key, accel,
                                                     socket)
            else:
                value = yield from chase_on_cpu(store, key, socket)
            if value is not None:
                found += 1
        return found

    found = sim.run_process(run())
    return {"found": found, "tree_height": store.height,
            "membus_mib": trace.counter("movement.membus.bytes")
            / (1 << 20),
            "elapsed_ms": sim.now * 1e3}


def transpose(on_accel: bool) -> dict:
    schema = Schema([Field("order_id", DataType.INT64),
                     Field("amount", DataType.FLOAT64),
                     Field("flag", DataType.BOOL)])
    rng = np.random.default_rng(11)
    columnar = Chunk(schema, {
        "order_id": np.arange(TRANSPOSE_ROWS, dtype=np.int64),
        "amount": rng.uniform(0, 1000, TRANSPOSE_ROWS),
        "flag": rng.uniform(0, 1, TRANSPOSE_ROWS) > 0.5})
    rows = to_row_major(columnar)           # the OLTP-resident layout
    sim, trace, socket, accel = env()

    def run():
        nbytes = rows.nbytes
        if on_accel:
            # The transposition unit converts in place near memory;
            # only the (columnar) result streams to the cores.
            yield from accel.execute(OpKind.TRANSPOSE, nbytes)
            back = to_column_major(rows, schema)
            yield from socket.memory_read(back.nbytes, stream_id=0)
        else:
            # CPU-centric: rows cross to the core, get transposed in
            # software, and the result is written back.
            yield from socket.memory_read(nbytes, stream_id=0)
            yield from socket.core(0).execute(OpKind.TRANSPOSE, nbytes)
            back = to_column_major(rows, schema)
            yield from socket.controller_for(0).access(back.nbytes,
                                                       write=True)
        return back

    back = sim.run_process(run())
    assert back.sorted_rows() == columnar.sorted_rows()
    return {"membus_mib": trace.counter("movement.membus.bytes")
            / (1 << 20),
            "elapsed_ms": sim.now * 1e3}


def main() -> None:
    cpu_lookup = lookup_batch(on_accel=False)
    nm_lookup = lookup_batch(on_accel=True)
    print(f"point lookups ({LOOKUPS} probes, tree height "
          f"{cpu_lookup['tree_height']}):")
    print(f"{'':>14} {'membus MiB':>12} {'elapsed ms':>12}")
    print(f"{'cpu':>14} {cpu_lookup['membus_mib']:>12.2f} "
          f"{cpu_lookup['elapsed_ms']:>12.2f}")
    print(f"{'near-memory':>14} {nm_lookup['membus_mib']:>12.2f} "
          f"{nm_lookup['elapsed_ms']:>12.2f}")
    assert cpu_lookup["found"] == nm_lookup["found"]

    cpu_t = transpose(on_accel=False)
    nm_t = transpose(on_accel=True)
    print(f"\nrow->column conversion ({TRANSPOSE_ROWS:,} rows):")
    print(f"{'':>14} {'membus MiB':>12} {'elapsed ms':>12}")
    print(f"{'cpu':>14} {cpu_t['membus_mib']:>12.2f} "
          f"{cpu_t['elapsed_ms']:>12.2f}")
    print(f"{'near-memory':>14} {nm_t['membus_mib']:>12.2f} "
          f"{nm_t['elapsed_ms']:>12.2f}")
    print("\nsame answers, a fraction of the memory traffic ✓")


if __name__ == "__main__":
    main()
