"""Telemetry monitoring that never touches host memory (§4.4).

A fleet of sensors streams readings into the storage layer; the
operations team wants per-status counts and an error-rate check.
Because the answer is a handful of counters, the whole query can
complete on the data path: partial counts at the storage CU, merge on
the storage NIC, final merge on the *receiving* NIC (with a declared
3-group bound, so the kernel fits the NIC's state table) — "a query
returning only a COUNT can be executed directly on the NIC that
simply counts the data as it arrives and discards it".

The example builds the stage pipeline explicitly with the StageGraph
API (the low-level interface the engines compile to) and shows that
only a few hundred bytes ever cross PCIe toward the host.

Run:  python examples/nic_telemetry.py
"""

from repro import (
    AggSpec,
    DataType,
    Field,
    Schema,
    StageGraph,
    build_fabric,
    dataflow_spec,
    make_sensor_readings,
)
from repro.engine.operators import MergeAggregate, PartialAggregate


def main() -> None:
    fabric = build_fabric(dataflow_spec())
    readings = make_sensor_readings(500_000, sensors=200,
                                    error_rate=0.01, chunk_rows=16_384)
    schema = readings.schema
    specs = [AggSpec("count", alias="events"),
             AggSpec("avg", "temperature", "avg_temp")]
    output = Schema([Field("status", DataType.INT64),
                     Field("events", DataType.INT64),
                     Field("avg_temp", DataType.FLOAT64)])

    graph = StageGraph(fabric, name="telemetry")
    src = graph.source("ingest", readings,
                       medium=fabric.storage.medium)
    partial = graph.stage(
        "count_at_storage", "storage.cu",
        [PartialAggregate(schema, ["status"], specs)])
    merge = graph.stage(
        "merge_on_wire", "storage.nic",
        [MergeAggregate(schema, ["status"], specs)])
    final = graph.sink(
        "finish_on_nic", "compute0.nic",
        [MergeAggregate(schema, ["status"], specs, final=True,
                        output_schema=output, expected_groups=3)])
    graph.connect(src, partial)
    graph.connect(partial, merge)
    graph.connect(merge, final)
    result = graph.run()

    table = result.table()
    total = int(table.column("events").sum())
    print(f"{'status':>8} {'events':>10} {'avg_temp':>10}")
    labels = {0: "ok", 1: "warn", 2: "error"}
    errors = 0
    for status, events, avg_temp in table.sorted_rows():
        print(f"{labels[status]:>8} {events:>10,} {avg_temp:>10.2f}")
        if status == 2:
            errors = events
    print(f"\nerror rate: {errors / total:.3%} of {total:,} events")

    to_host = (fabric.trace.counter("movement.pcie.bytes")
               + fabric.trace.counter("movement.cxl.bytes"))
    network = fabric.trace.counter("movement.network.bytes")
    print(f"bytes over the network: {network:,.0f}")
    print(f"bytes that reached host memory: {to_host:,.0f}")
    assert to_host < 1024
    print("the host CPU never saw the stream ✓")


if __name__ == "__main__":
    main()
