"""Cloud analytics over an object store, with and without pushdown.

The scenario of §3.2: a Query-as-a-Service engine scans objects in a
cloud store that bills per byte scanned.  We store a compressed
lineitem table as objects, then answer "total revenue for discounted
items shipped in one month" two ways:

* **get-then-filter**: the conventional pattern — GET every object,
  decode and filter on the compute node;
* **select-pushdown**: S3-Select style — the storage layer's
  computational unit decompresses, filters, and projects, so only
  survivors travel.

The scan bill is identical (that is the QaaS pricing model); the
movement, the compute-side work, and the wall-clock are not.

Run:  python examples/cloud_analytics.py
"""

from repro import ObjectStore, build_fabric, col, \
    dataflow_spec, make_lineitem

PREDICATE = (col("l_shipdate").between(9000, 9030)
             & (col("l_discount") > 0.05))
COLUMNS = ["l_extendedprice", "l_discount"]


def run(pushdown: bool) -> dict:
    # 10 Gb/s of *effective* per-tenant bandwidth: object stores are
    # shared, and the network is the contended resource (§3.2).
    fabric = build_fabric(dataflow_spec(network_gbits=10, rdma=False))
    table = make_lineitem(150_000, chunk_rows=8_192)
    store = ObjectStore(fabric.storage, fabric.trace, compress=True)
    keys = store.put_table("sales/lineitem", table)
    cpu = fabric.site_device("compute0.cpu")

    def job():
        revenue = 0.0
        returned_bytes = 0
        for key in keys:
            if pushdown:
                # Storage CU decompresses/filters/projects; only the
                # survivors cross the network to the compute node.
                chunk = yield from store.select(
                    key, predicate=PREDICATE, columns=COLUMNS)
                yield from fabric.transfer("storage.node",
                                           "compute0.cpu",
                                           chunk.nbytes, flow="qaas")
            else:
                # GET the compressed object, move it whole, then pay
                # the decode + filter + project on the host CPU.
                wire_bytes = store.objects[key].nbytes
                chunk = yield from store.get(key)
                yield from fabric.transfer("storage.node",
                                           "compute0.cpu",
                                           wire_bytes, flow="qaas")
                yield from cpu.execute("decompress", wire_bytes)
                yield from cpu.execute("filter", chunk.nbytes)
                mask = PREDICATE.evaluate(chunk)
                chunk = chunk.filter(mask).project(COLUMNS)
                yield from cpu.execute("project", chunk.nbytes)
                returned_bytes += wire_bytes
            if pushdown:
                returned_bytes += chunk.nbytes
            if chunk.num_rows:
                revenue += float(
                    (chunk.column("l_extendedprice")
                     * chunk.column("l_discount")).sum())
        return revenue, returned_bytes

    start = fabric.sim.now
    revenue, returned = fabric.sim.run_process(job())
    return {
        "mode": "select-pushdown" if pushdown else "get-then-filter",
        "revenue": revenue,
        "bytes_scanned": store.bill.bytes_scanned,
        "bill": store.bill.dollars,
        "bytes_returned": returned,
        "elapsed_ms": (fabric.sim.now - start) * 1e3,
    }


def main() -> None:
    baseline = run(pushdown=False)
    pushed = run(pushdown=True)
    print(f"{'':>18} {'get-then-filter':>18} {'select-pushdown':>18}")
    for field in ("revenue", "bytes_scanned", "bill", "bytes_returned",
                  "elapsed_ms"):
        a, b = baseline[field], pushed[field]
        if field == "bill":
            print(f"{field:>18} {a:>18.8f} {b:>18.8f}")
        else:
            print(f"{field:>18} {a:>18,.1f} {b:>18,.1f}")
    assert abs(baseline["revenue"] - pushed["revenue"]) < 1e-6 * \
        max(1.0, baseline["revenue"])
    reduction = baseline["bytes_returned"] / pushed["bytes_returned"]
    print(f"\nsame answer, same scan bill, "
          f"{reduction:,.0f}x fewer bytes moved to compute ✓")


if __name__ == "__main__":
    main()
