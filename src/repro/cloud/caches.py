"""Cloud caching layers and the result cache (§7.5).

The paper's position: caching *base tables* in fast media near the
CPU papers over the broken bring-everything-to-the-CPU model and
wastes the data center's most expensive resource; caching *results*
still makes sense.  Both layers are implemented so bench C6 can
compare them against the active-pipeline alternative.

:class:`DataCache` is a byte-budgeted LRU over opaque blobs (base
table chunks, in the bench) parked on a faster medium in front of the
object store.  :class:`ResultCache` memoizes whole query results
keyed by a plan fingerprint.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..engine.logical import (
    Aggregate,
    Filter,
    Join,
    Limit,
    PlanNode,
    Project,
    Scan,
    Sort,
)
from ..relational.table import Table
from ..sim import EventKind, Trace

__all__ = ["DataCache", "ResultCache", "plan_fingerprint"]


class DataCache:
    """A byte-budgeted LRU cache of opaque payloads."""

    def __init__(self, capacity_bytes: int, name: str = "datacache",
                 trace: Optional[Trace] = None):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.name = name
        self.trace = trace
        self._entries: OrderedDict[str, int] = OrderedDict()
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, key: str) -> bool:
        """Touch ``key``; True on hit."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            if self.trace is not None:
                self.trace.add(f"cache.{self.name}.hits", 1)
                self.trace.emit(self.trace.clock, EventKind.CACHE_HIT,
                                f"cache.{self.name}", label=key)
            return True
        self.misses += 1
        if self.trace is not None:
            self.trace.add(f"cache.{self.name}.misses", 1)
            self.trace.emit(self.trace.clock, EventKind.CACHE_MISS,
                            f"cache.{self.name}", label=key)
        return False

    def insert(self, key: str, nbytes: int) -> None:
        """Admit ``key`` (``nbytes`` big), evicting LRU entries."""
        if nbytes > self.capacity_bytes:
            return  # too big to cache at all
        if key in self._entries:
            self.used_bytes -= self._entries.pop(key)
        while self.used_bytes + nbytes > self.capacity_bytes:
            _victim, victim_bytes = self._entries.popitem(last=False)
            self.used_bytes -= victim_bytes
            self.evictions += 1
            if self.trace is not None:
                self.trace.add(f"cache.{self.name}.evictions", 1)
        self._entries[key] = nbytes
        self.used_bytes += nbytes

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def plan_fingerprint(plan: PlanNode) -> str:
    """A structural fingerprint of a logical plan (cache key)."""
    parts = []
    for node in plan.walk():
        if isinstance(node, Scan):
            parts.append(f"scan:{node.table}:{node.columns}")
        elif isinstance(node, Filter):
            parts.append(f"filter:{node.predicate!r}")
        elif isinstance(node, Project):
            parts.append(f"project:{node.columns}")
        elif isinstance(node, Aggregate):
            parts.append(
                f"agg:{node.group_by}:"
                f"{[(a.op, a.column, a.alias) for a in node.aggs]}")
        elif isinstance(node, Join):
            parts.append(f"join:{node.left_key}:{node.right_key}")
        elif isinstance(node, Sort):
            parts.append(f"sort:{node.keys}")
        elif isinstance(node, Limit):
            parts.append(f"limit:{node.n}")
        else:
            parts.append(type(node).__name__)
    return "|".join(parts)


class ResultCache:
    """Memoizes query result tables by plan fingerprint."""

    def __init__(self, capacity_bytes: int = 64 << 20,
                 trace: Optional[Trace] = None):
        self.capacity_bytes = capacity_bytes
        self.trace = trace
        self._tables: OrderedDict[str, Table] = OrderedDict()
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0

    def get(self, plan: PlanNode) -> Optional[Table]:
        key = plan_fingerprint(plan)
        if key in self._tables:
            self._tables.move_to_end(key)
            self.hits += 1
            if self.trace is not None:
                self.trace.add("resultcache.hits", 1)
                self.trace.emit(self.trace.clock, EventKind.CACHE_HIT,
                                "resultcache")
            return self._tables[key]
        self.misses += 1
        if self.trace is not None:
            self.trace.add("resultcache.misses", 1)
            self.trace.emit(self.trace.clock, EventKind.CACHE_MISS,
                            "resultcache")
        return None

    def put(self, plan: PlanNode, table: Table) -> None:
        nbytes = table.nbytes
        if nbytes > self.capacity_bytes:
            return
        key = plan_fingerprint(plan)
        if key in self._tables:
            self.used_bytes -= self._tables.pop(key).nbytes
        while self.used_bytes + nbytes > self.capacity_bytes:
            _k, victim = self._tables.popitem(last=False)
            self.used_bytes -= victim.nbytes
            if self.trace is not None:
                self.trace.add("resultcache.evictions", 1)
        self._tables[key] = table
        self.used_bytes += nbytes
        if self.trace is not None:
            self.trace.add("resultcache.stored_bytes", nbytes)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
