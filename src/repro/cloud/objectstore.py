"""A cloud object store with bytes-scanned billing (§3.2, §7.5).

Query-as-a-Service systems (Athena, BigQuery) "charge for the amount
of data read from storage rather than for the actual computation" —
proof, the paper argues, that data movement is the quantity that
matters.  This object store models that: objects are real serialized
(optionally compressed) table chunks on a slow disk backend, GETs
charge per byte scanned, and a ``select`` path does S3-Select-style
pushdown on the storage CU, billing only what the predicate touches
but shipping only what survives it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..engine.operators import FilterOp
from ..hardware.storage import ComputationalStorage
from ..relational.expressions import Expression
from ..relational.formats import (
    compress_chunk,
    decompress_chunk,
    deserialize_chunk,
    serialize_chunk,
)
from ..relational.table import Chunk, Table
from ..sim import Trace

__all__ = ["ObjectStore", "StoredObject", "Bill"]

# Modeled on cloud list prices: ~$5 per TB scanned.
DOLLARS_PER_BYTE_SCANNED = 5.0 / 1e12


@dataclass
class StoredObject:
    """One immutable object: a serialized chunk plus metadata."""

    key: str
    payload: bytes
    num_rows: int
    uncompressed_nbytes: int
    compressed: bool

    @property
    def nbytes(self) -> int:
        return len(self.payload)


@dataclass
class Bill:
    """Accumulated scan charges."""

    bytes_scanned: float = 0.0

    @property
    def dollars(self) -> float:
        return self.bytes_scanned * DOLLARS_PER_BYTE_SCANNED

    def charge(self, nbytes: float) -> None:
        self.bytes_scanned += nbytes


class ObjectStore:
    """Objects on a (computational) storage backend, billed per scan."""

    def __init__(self, storage: ComputationalStorage, trace: Trace,
                 compress: bool = True):
        self.storage = storage
        self.trace = trace
        self.compress = compress
        self.objects: dict[str, StoredObject] = {}
        self.bill = Bill()

    # -- writing ---------------------------------------------------------

    def put_chunk(self, key: str, chunk: Chunk) -> StoredObject:
        """Store one chunk under ``key`` (serialized, maybe compressed)."""
        if self.compress:
            compressed = compress_chunk(chunk)
            obj = StoredObject(key, compressed.payload, chunk.num_rows,
                               chunk.nbytes, compressed=True)
        else:
            obj = StoredObject(key, serialize_chunk(chunk),
                               chunk.num_rows, chunk.nbytes,
                               compressed=False)
        self.objects[key] = obj
        return obj

    def put_table(self, prefix: str, table: Table) -> list[str]:
        """Store a table as one object per chunk; returns the keys."""
        keys = []
        for index, chunk in enumerate(table.chunks):
            key = f"{prefix}/{index:06d}"
            self.put_chunk(key, chunk)
            keys.append(key)
        return keys

    def keys(self, prefix: str = "") -> list[str]:
        return sorted(k for k in self.objects if k.startswith(prefix))

    # -- reading ---------------------------------------------------------

    def get(self, key: str) -> Generator:
        """Fetch and decode one object (simulation process).

        Returns the decoded chunk; bills the object's stored size.
        """
        obj = self._lookup(key)
        yield from self.storage.medium.read(obj.nbytes)
        self.bill.charge(obj.nbytes)
        self.trace.add("objectstore.bytes_scanned", obj.nbytes)
        from ..relational.formats import CompressedChunk
        if obj.compressed:
            return decompress_chunk(CompressedChunk(
                obj.payload, obj.uncompressed_nbytes, obj.num_rows))
        return deserialize_chunk(obj.payload)

    def select(self, key: str, predicate: Optional[Expression] = None,
               columns: Optional[list[str]] = None) -> Generator:
        """S3-Select-style pushdown GET (§3.2).

        The storage CU decompresses, filters, and projects; the bill
        still covers every byte scanned, but the returned chunk is the
        reduced one — the caller only moves what survived.
        """
        obj = self._lookup(key)
        yield from self.storage.medium.read(obj.nbytes)
        self.bill.charge(obj.nbytes)
        self.trace.add("objectstore.bytes_scanned", obj.nbytes)
        from ..hardware.device import OpKind
        from ..relational.formats import CompressedChunk
        if obj.compressed:
            yield from self.storage.cu.execute(OpKind.DECOMPRESS,
                                               obj.nbytes)
            chunk = decompress_chunk(CompressedChunk(
                obj.payload, obj.uncompressed_nbytes, obj.num_rows))
        else:
            chunk = deserialize_chunk(obj.payload)
        if predicate is not None:
            op = FilterOp(predicate)
            yield from self.storage.cu.execute(op.kind, chunk.nbytes)
            emits = op.process(chunk)
            if not emits:
                return chunk.slice(0, 0)
            chunk = emits[0].chunk
        if columns is not None:
            yield from self.storage.cu.execute(OpKind.PROJECT,
                                               chunk.nbytes)
            chunk = chunk.project(columns)
        return chunk

    def _lookup(self, key: str) -> StoredObject:
        if key not in self.objects:
            raise KeyError(f"no object {key!r}")
        return self.objects[key]
