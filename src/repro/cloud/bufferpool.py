"""The buffer pool — the "main memory addiction" of §7.4.

Conventional engines keep as much data as possible in compute-node
DRAM.  :class:`BufferPool` models that faithfully: pages (table
chunks) are cached in the compute node's DRAM under LRU replacement;
hits cost a local memory-bus crossing, misses pay the full remote path
(storage read + network + PCIe) and evict under pressure.  The DRAM
footprint it pins is exactly what the data-flow engine does *not*
need — the comparison bench C5 draws.
"""

from __future__ import annotations

from typing import Generator

from ..hardware.cpu import LRUCache
from ..hardware.presets import HeterogeneousFabric
from ..sim import EventKind

__all__ = ["BufferPool"]


class BufferPool:
    """An LRU page cache in one compute node's DRAM."""

    def __init__(self, fabric: HeterogeneousFabric, node: int = 0,
                 capacity_bytes: int = 1 << 30,
                 page_bytes: int = 1 << 20):
        if capacity_bytes < page_bytes:
            raise ValueError("capacity smaller than one page")
        self.fabric = fabric
        self.node = node
        self.page_bytes = page_bytes
        self.capacity_bytes = capacity_bytes
        self.dram = fabric.compute[node].dram
        self._lru = LRUCache(max(1, capacity_bytes // page_bytes),
                             name=f"bufferpool{node}",
                             trace=fabric.trace)
        self._page_sizes: dict[tuple, int] = {}
        self._resident_bytes = 0
        self.peak_bytes = 0

    @property
    def hits(self) -> int:
        return self._lru.hits

    @property
    def misses(self) -> int:
        return self._lru.misses

    @property
    def hit_rate(self) -> float:
        return self._lru.hit_rate

    @property
    def resident_bytes(self) -> int:
        return self._resident_bytes

    def fetch(self, table: str, index: int, nbytes: float) -> Generator:
        """Bring page (table, index) to DRAM; returns hit/miss.

        A hit charges nothing extra (the page is already in DRAM); a
        miss reads storage, crosses the network and host interconnect
        into DRAM, and may evict.
        """
        key = (table, index)
        evicted_before = self._lru.evictions
        hit = self._lru.access(key)
        if hit:
            self.fabric.trace.add("bufferpool.hits", 1)
            self.fabric.trace.emit(
                self.fabric.sim.now, EventKind.CACHE_HIT,
                f"bufferpool{self.node}", label=f"{table}[{index}]",
                nbytes=nbytes)
            return True
        # Miss: account an eviction if LRU displaced a page.
        if self._lru.evictions > evicted_before:
            victim_bytes = self.page_bytes
            self._resident_bytes -= victim_bytes
            self.dram.free(victim_bytes)
            self.fabric.trace.add("bufferpool.evictions", 1)
        yield from self.fabric.storage.medium.read(nbytes)
        yield from self.fabric.transfer(
            self.fabric.storage_location,
            f"compute{self.node}.dram", nbytes,
            flow=f"bufferpool{self.node}")
        self._page_sizes[key] = int(nbytes)
        self._resident_bytes += self.page_bytes
        self.dram.allocate(self.page_bytes)
        self.peak_bytes = max(self.peak_bytes, self._resident_bytes)
        self.fabric.trace.add("bufferpool.misses", 1)
        self.fabric.trace.emit(
            self.fabric.sim.now, EventKind.CACHE_MISS,
            f"bufferpool{self.node}", label=f"{table}[{index}]",
            nbytes=nbytes)
        self.fabric.trace.sample(f"bufferpool{self.node}.resident",
                                 self.fabric.sim.now,
                                 self._resident_bytes)
        return False
