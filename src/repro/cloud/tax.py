"""The data-center tax: serialize / compress / encrypt on the wire.

§2.2: remote memory and storage access "adds significant overhead in
terms of data serialization, compression, encryption, etc., all steps
needed in a cloud setting".  These are implemented as real physical
operators: egress turns a chunk into an encrypted (optionally
compressed) wire payload, ingress reverses it.  The payloads are real
bytes — compression actually shrinks them, encryption actually
scrambles them — so the movement the simulator charges is the true
wire size, and the CPU/accelerator time charged reflects which device
performs the tax (offloading it is half the SmartNIC value
proposition, §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..engine.operators import Emit, PhysicalOp
from ..hardware.device import OpKind
from ..relational.formats import (
    compress_bytes,
    decompress_bytes,
    deserialize_chunk,
    serialize_chunk,
)
from ..relational.table import Chunk
from ..sim import EventKind, Trace

__all__ = ["TaxConfig", "WirePayload", "EgressOp", "IngressOp",
           "xor_cipher"]


def xor_cipher(payload: bytes, key: int = 0x5A) -> bytes:
    """A toy-but-real stream cipher (content actually changes)."""
    keystream = bytes((key + i) % 256 for i in range(251))
    reps = len(payload) // len(keystream) + 1
    stream = (keystream * reps)[:len(payload)]
    return bytes(a ^ b for a, b in zip(payload, stream))


@dataclass(frozen=True)
class TaxConfig:
    """Which tax steps apply on a given path."""

    serialize: bool = True
    compress: bool = True
    encrypt: bool = True

    @property
    def steps(self) -> list[str]:
        out = []
        if self.serialize:
            out.append("serialize")
        if self.compress:
            out.append("compress")
        if self.encrypt:
            out.append("encrypt")
        return out


class WirePayload:
    """A chunk in wire form: what actually crosses the network."""

    def __init__(self, payload: bytes, num_rows: int,
                 original_nbytes: int, config: TaxConfig):
        self.payload = payload
        self.num_rows = num_rows
        self.original_nbytes = original_nbytes
        self.config = config

    @property
    def nbytes(self) -> int:
        return len(self.payload)


class EgressOp(PhysicalOp):
    """Chunk -> WirePayload (serialize, compress, encrypt)."""

    kind = OpKind.SERIALIZE

    def __init__(self, config: TaxConfig = TaxConfig(),
                 trace: Optional[Trace] = None):
        self.config = config
        self.trace = trace
        self.name = f"egress({'+'.join(config.steps) or 'none'})"

    def process(self, chunk: Chunk) -> list[Emit]:
        if chunk.num_rows == 0:
            return []
        payload = serialize_chunk(chunk)
        if self.config.compress:
            payload = compress_bytes(payload)
        if self.config.encrypt:
            payload = xor_cipher(payload)
        if self.trace is not None:
            self.trace.add("tax.egress.raw_bytes", chunk.nbytes)
            self.trace.add("tax.egress.wire_bytes", len(payload))
            self.trace.add("tax.egress.chunks", 1)
            # Tax ops run inside a stage; the trace clock watermark is
            # the best available timestamp (ops hold no sim handle).
            self.trace.emit(self.trace.clock, EventKind.TAX_EGRESS,
                            "tax.egress", label=self.name,
                            nbytes=float(len(payload)))
        return [Emit(WirePayload(payload, chunk.num_rows, chunk.nbytes,
                                 self.config))]

    def charge_bytes(self, chunk) -> float:
        return float(chunk.nbytes)

    def extra_charges(self, chunk) -> list[tuple[str, float]]:
        charges = []
        if self.config.compress:
            charges.append((OpKind.COMPRESS, float(chunk.nbytes)))
        if self.config.encrypt:
            charges.append((OpKind.ENCRYPT, float(chunk.nbytes)))
        return charges


class IngressOp(PhysicalOp):
    """WirePayload -> Chunk (decrypt, decompress, deserialize)."""

    kind = OpKind.DESERIALIZE

    def __init__(self, config: TaxConfig = TaxConfig(),
                 trace: Optional[Trace] = None):
        self.config = config
        self.trace = trace
        self.name = f"ingress({'+'.join(config.steps) or 'none'})"

    def process(self, payload) -> list[Emit]:
        if not isinstance(payload, WirePayload):
            raise TypeError(
                f"ingress expected a WirePayload, got {payload!r} — "
                "pair IngressOp with an upstream EgressOp")
        raw = payload.payload
        if self.config.encrypt:
            raw = xor_cipher(raw)
        if self.config.compress:
            raw = decompress_bytes(raw)
        if self.trace is not None:
            self.trace.add("tax.ingress.wire_bytes", payload.nbytes)
            self.trace.add("tax.ingress.raw_bytes",
                           payload.original_nbytes)
            self.trace.add("tax.ingress.chunks", 1)
            self.trace.emit(self.trace.clock, EventKind.TAX_INGRESS,
                            "tax.ingress", label=self.name,
                            nbytes=float(payload.nbytes))
        return [Emit(deserialize_chunk(raw))]

    def charge_bytes(self, payload) -> float:
        return float(payload.nbytes)

    def extra_charges(self, payload) -> list[tuple[str, float]]:
        charges = []
        if self.config.encrypt:
            charges.append((OpKind.DECRYPT, float(payload.nbytes)))
        if self.config.compress:
            charges.append((OpKind.DECOMPRESS, float(payload.nbytes)))
        return charges
