"""Cloud substrate: object store, data-center tax, buffer pool, caches."""

from .bufferpool import BufferPool
from .caches import DataCache, ResultCache, plan_fingerprint
from .objectstore import Bill, ObjectStore, StoredObject
from .tax import EgressOp, IngressOp, TaxConfig, WirePayload, xor_cipher

__all__ = [
    "Bill",
    "BufferPool",
    "DataCache",
    "EgressOp",
    "IngressOp",
    "ObjectStore",
    "ResultCache",
    "StoredObject",
    "TaxConfig",
    "WirePayload",
    "plan_fingerprint",
    "xor_cipher",
]
