"""Base processing-element model.

Every active component in the fabric — a CPU core, a storage
computational unit, a SmartNIC processor, a near-memory accelerator —
is a :class:`Device`.  A device owns a small number of execution slots
(its internal parallelism) and a table of *compute rates*: how many
bytes per second it sustains for each operation kind.  Executing an
operation occupies a slot for ``startup + bytes / rate`` seconds and
is recorded in the fabric trace.

The operation-kind vocabulary (:class:`OpKind`) is shared between the
hardware layer and the query engine: a physical operator declares the
kind of work it performs, the placement step checks the target device
supports that kind, and the device charges time for it.  This is the
paper's "what operators make sense to push down" question made
executable — a device that lacks a kind simply cannot host the
operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from ..sim import Resource, Simulator, Trace

__all__ = ["OpKind", "Device", "UnsupportedOperation", "GIB"]

GIB = float(1 << 30)
"""One gibibyte, for writing rates as ``3.0 * GIB``."""


class UnsupportedOperation(Exception):
    """An operation kind was issued to a device that cannot perform it."""


class OpKind:
    """Vocabulary of operation kinds devices can perform.

    Rates are expressed per *input* byte processed.  The constants are
    plain strings so traces stay readable.
    """

    # Relational work.
    FILTER = "filter"
    REGEX = "regex"              # LIKE-style pattern matching (AQUA, §3.3)
    PROJECT = "project"
    HASH = "hash"
    PARTITION = "partition"
    AGGREGATE = "aggregate"
    SORT = "sort"
    JOIN_BUILD = "join_build"
    JOIN_PROBE = "join_probe"
    COUNT = "count"

    # Data-path / cloud work (the "data center tax", §2.2).
    COMPRESS = "compress"
    DECOMPRESS = "decompress"
    ENCRYPT = "encrypt"
    DECRYPT = "decrypt"
    SERIALIZE = "serialize"
    DESERIALIZE = "deserialize"
    TRANSPOSE = "transpose"      # row <-> column format conversion (§5.4)
    POINTER_CHASE = "pointer_chase"  # hierarchical traversal (§5.4)
    LIST_MAINTENANCE = "list_maintenance"  # GC-style list ops (§5.4)

    # Generic fallback for host-side glue.
    GENERIC = "generic"

    ALL = (
        FILTER, REGEX, PROJECT, HASH, PARTITION, AGGREGATE, SORT,
        JOIN_BUILD, JOIN_PROBE, COUNT, COMPRESS, DECOMPRESS, ENCRYPT,
        DECRYPT, SERIALIZE, DESERIALIZE, TRANSPOSE, POINTER_CHASE,
        LIST_MAINTENANCE, GENERIC,
    )


@dataclass
class Device:
    """An active processing element with per-kind throughput.

    Parameters
    ----------
    sim, trace:
        The simulation kernel and metric sink this device reports to.
    name:
        Unique name; trace counters are keyed ``device.<name>.*``.
    rates:
        Mapping of :class:`OpKind` constants to sustained bytes/second.
        Kinds absent from the map are unsupported unless
        ``default_rate`` is set.
    default_rate:
        Fallback rate for kinds not in ``rates`` (None = unsupported).
    startup:
        Fixed per-operation latency in seconds (kernel launch,
        register programming — §7.2's "programmed without an ISA").
    slots:
        Number of operations the device can run concurrently.
    programmable:
        True for accelerators that lack an ISA and are programmed by
        installing kernels (register files + logic, §7.2); stages
        pay an installation cost before processing on such devices.
    """

    sim: Simulator
    trace: Trace
    name: str
    rates: dict[str, float] = field(default_factory=dict)
    default_rate: Optional[float] = None
    startup: float = 0.0
    slots: int = 1
    programmable: bool = False

    def __post_init__(self):
        self._units = Resource(self.sim, capacity=self.slots,
                               name=f"{self.name}.units")
        # Interned hot-path trace keys: execute() runs per operator
        # per chunk, so its counter keys are resolved once here
        # instead of via f-strings on every call.
        self._span_name = f"device.{self.name}"
        self._slot_wait = self.trace.counter_handle(
            f"device.{self.name}.slot_wait_s")
        self._busy = self.trace.counter_handle(
            f"device.{self.name}.busy_s")
        self._op_count = self.trace.counter_handle(
            f"device.{self.name}.ops")
        self._bytes_by_kind: dict[str, object] = {}

    # -- capability queries ---------------------------------------------

    def supports(self, kind: str) -> bool:
        """Whether this device can perform operations of ``kind``."""
        return kind in self.rates or self.default_rate is not None

    def rate_for(self, kind: str) -> float:
        """Sustained bytes/second for ``kind`` (raises if unsupported)."""
        rate = self.rates.get(kind, self.default_rate)
        if rate is None:
            raise UnsupportedOperation(
                f"device {self.name!r} does not support {kind!r}")
        return rate

    def service_time(self, kind: str, nbytes: float) -> float:
        """Predicted time to process ``nbytes`` of ``kind`` work.

        The optimizer's cost model calls this directly so that the
        analytic prediction and the simulated charge agree exactly.
        """
        return self.startup + nbytes / self.rate_for(kind)

    def scale_speed(self, factor: float) -> None:
        """What-if perturbation hook: make the device ``factor``× faster.

        Every per-kind rate (and the default rate) is multiplied by
        ``factor`` and the fixed startup latency divided by it, so a
        2× perturbation halves every service time.  ``factor=1.0`` is
        an exact no-op (multiplying a float by 1.0 is the identity),
        which is what lets the what-if engine verify its baseline run
        bit-for-bit against an unperturbed one.
        """
        if factor <= 0:
            raise ValueError(
                f"device {self.name}: speed factor must be positive")
        self.rates = {kind: rate * factor
                      for kind, rate in self.rates.items()}
        if self.default_rate is not None:
            self.default_rate *= factor
        self.startup /= factor

    # -- execution --------------------------------------------------------

    def execute(self, kind: str, nbytes: float) -> Generator:
        """Process ``nbytes`` of ``kind`` work, occupying one slot.

        Yields simulation events; use as ``yield from device.execute(...)``
        inside a process, or wrap with ``sim.process``.
        """
        duration = self.service_time(kind, nbytes)
        requested = self.sim.now
        # Uncontended admission grants inline (no event, no queue
        # slot); only a busy device pays the request/grant round-trip.
        if not self._units.try_acquire():
            yield self._units.request()
            if self.sim.now > requested:
                # Cumulative slot-queueing time: the raw material of
                # the backpressure report's "device-busy" bucket.
                self._slot_wait.add(self.sim.now - requested)
        span = self.trace.open_span(self._span_name, self.sim.now)
        try:
            yield self.sim.timeout(duration)
        finally:
            now = self.sim.now
            self.trace.close_span(span, now)
            # Cumulative busy seconds: the serializable counterpart of
            # the span record, from which per-query utilization deltas
            # are computed (see TraceSnapshot.busy_delta).
            self._busy.add(now - span.start)
            self._units.release()
        by_kind = self._bytes_by_kind.get(kind)
        if by_kind is None:
            by_kind = self.trace.counter_handle(
                f"device.{self.name}.bytes.{kind}")
            self._bytes_by_kind[kind] = by_kind
        by_kind.add(nbytes)
        self._op_count.add(1)

    # -- reporting ---------------------------------------------------------

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of elapsed time with at least one slot busy."""
        return self._units.utilization(elapsed)

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Device {self.name}>"
