"""DRAM, near-memory accelerators, and disaggregated memory (§5).

:class:`NearMemoryAccelerator` interposes between the memory
controller and the CPU (the M7-style design of §5.2): it sees data in
flight and can filter, decompress, transpose, chase pointers, and run
list maintenance with privileged memory bandwidth.  Crucially, data it
*discards* never crosses the memory bus toward the caches — the data
reduction that motivates the whole architecture.

:class:`DisaggregatedMemoryNode` is a remote memory server (§5.3):
DRAM fronted by a NIC, optionally with a near-memory accelerator so
the bottom of a query plan can execute where the data lives (the
Farview-style offload the paper cites).
"""

from __future__ import annotations

from typing import Optional

from ..sim import EventKind, Simulator, Trace
from .device import GIB, Device, OpKind
from .nic import NIC, SmartNIC

__all__ = ["DRAM", "NearMemoryAccelerator", "DisaggregatedMemoryNode",
           "nearmem_rates"]


def nearmem_rates(memory_bandwidth: float) -> dict[str, float]:
    """Rates of a near-memory accelerator.

    The unit sits on the controller, so streaming kinds run at full
    memory bandwidth — faster than any single core can stream (§5.2).
    Pointer chasing is its headline capability: traversals happen
    without round trips to the CPU (§5.4).
    """
    return {
        OpKind.FILTER: memory_bandwidth,
        OpKind.PROJECT: memory_bandwidth,
        OpKind.DECOMPRESS: 0.8 * memory_bandwidth,
        OpKind.COMPRESS: 0.5 * memory_bandwidth,
        OpKind.TRANSPOSE: 0.7 * memory_bandwidth,
        OpKind.POINTER_CHASE: 0.5 * memory_bandwidth,
        OpKind.LIST_MAINTENANCE: 0.6 * memory_bandwidth,
        OpKind.AGGREGATE: 0.5 * memory_bandwidth,
        OpKind.HASH: 0.6 * memory_bandwidth,
        OpKind.COUNT: memory_bandwidth,
    }


class DRAM:
    """A block of DRAM capacity at some fabric location."""

    def __init__(self, sim: Simulator, trace: Trace, name: str,
                 capacity: int = 64 << 30):
        self.sim = sim
        self.trace = trace
        self.name = name
        self.capacity = capacity
        self.used = 0

    def allocate(self, nbytes: int) -> None:
        """Reserve ``nbytes``; raises MemoryError when over capacity."""
        if self.used + nbytes > self.capacity:
            raise MemoryError(
                f"DRAM {self.name}: {nbytes} requested, "
                f"{self.capacity - self.used} free")
        self.used += nbytes
        self.trace.emit(self.sim.now, EventKind.MEM_ALLOC,
                        f"dram.{self.name}", nbytes=nbytes)
        self.trace.add(f"dram.{self.name}.allocs", 1)
        self.trace.add(f"dram.{self.name}.allocated", nbytes)
        self.trace.sample(f"dram.{self.name}.used", self.sim.now, self.used)

    def free(self, nbytes: int) -> None:
        """Release ``nbytes`` previously allocated."""
        if nbytes > self.used:
            raise MemoryError(f"DRAM {self.name}: freeing more than used")
        self.used -= nbytes
        self.trace.emit(self.sim.now, EventKind.MEM_FREE,
                        f"dram.{self.name}", nbytes=nbytes)
        self.trace.add(f"dram.{self.name}.frees", 1)
        self.trace.sample(f"dram.{self.name}.used", self.sim.now, self.used)

    @property
    def peak_used(self) -> float:
        """High-water mark of allocation (bytes)."""
        samples = self.trace.series.get(f"dram.{self.name}.used", [])
        return max((v for _t, v in samples), default=0.0)


class NearMemoryAccelerator(Device):
    """An accelerator on the memory controller's data path (§5.2)."""

    def __init__(self, sim: Simulator, trace: Trace, name: str,
                 memory_bandwidth: float = 40.0 * GIB, slots: int = 2):
        super().__init__(sim, trace, name,
                         rates=nearmem_rates(memory_bandwidth),
                         startup=0.5e-6, slots=slots, programmable=True)
        self.memory_bandwidth = memory_bandwidth


class DisaggregatedMemoryNode:
    """A remote memory server: DRAM + NIC (+ optional accelerator)."""

    def __init__(self, sim: Simulator, trace: Trace, name: str,
                 capacity: int = 256 << 30, nic_gbits: float = 100.0,
                 smart_nic: bool = True, accelerator: bool = True):
        self.sim = sim
        self.trace = trace
        self.name = name
        self.dram = DRAM(sim, trace, f"{name}.dram", capacity=capacity)
        nic_cls = SmartNIC if smart_nic else NIC
        self.nic = nic_cls(sim, trace, f"{name}.nic", gbits=nic_gbits)
        self.accelerator: Optional[NearMemoryAccelerator] = (
            NearMemoryAccelerator(sim, trace, f"{name}.accel")
            if accelerator else None)
