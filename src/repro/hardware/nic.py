"""NICs, SmartNICs and DPUs (§4).

A plain :class:`NIC` is a DMA engine: it moves bytes between the host
and the wire without touching them.  A :class:`SmartNIC` adds an
on-NIC processor that can operate on the stream as it flows — the
bump-in-the-wire accelerator of §4.3 — supporting hashing,
partitioning, filtering, (pre-)aggregation, COUNT, and the collective
operations (scatter/gather) of §4.4.  A :class:`DPU` is a beefier
SmartNIC (BlueField-class) that can in addition terminate storage
protocols and run join stages.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..sim import EventKind, Resource, Simulator, Trace
from .device import GIB, Device, OpKind

__all__ = ["NIC", "SmartNIC", "DPU", "smartnic_rates", "dpu_rates"]


def smartnic_rates(line_rate: float) -> dict[str, float]:
    """Processing rates for a SmartNIC pipeline.

    Streaming kinds run at wire speed (the point of a bump-in-the-wire
    design); slightly-stateful kinds (pre-aggregation, partitioning)
    run a bit below it; heavyweight state (sort, full join build) is
    unsupported.
    """
    return {
        OpKind.FILTER: line_rate,
        OpKind.PROJECT: line_rate,
        OpKind.HASH: line_rate,
        OpKind.PARTITION: 0.8 * line_rate,
        OpKind.AGGREGATE: 0.6 * line_rate,
        OpKind.COUNT: 2.0 * line_rate,
        OpKind.COMPRESS: 0.5 * line_rate,
        OpKind.DECOMPRESS: line_rate,
        OpKind.ENCRYPT: line_rate,       # inline crypto engines
        OpKind.DECRYPT: line_rate,
        OpKind.SERIALIZE: line_rate,
        OpKind.DESERIALIZE: line_rate,
    }


def dpu_rates(line_rate: float) -> dict[str, float]:
    """A DPU adds modest join/regex capability on its ARM cores."""
    rates = smartnic_rates(line_rate)
    rates.update({
        OpKind.REGEX: 1.5 * GIB,
        OpKind.JOIN_BUILD: 1.0 * GIB,
        OpKind.JOIN_PROBE: 1.5 * GIB,
        OpKind.GENERIC: 2.0 * GIB,
    })
    return rates


class NIC:
    """A conventional NIC: DMA engines only, no stream processing.

    ``dma`` is the resource query stages hold while a transfer is in
    flight; the scheduler rate-limits flows at this granularity
    (§7.3).
    """

    def __init__(self, sim: Simulator, trace: Trace, name: str,
                 gbits: float = 100.0, dma_engines: int = 4):
        self.sim = sim
        self.trace = trace
        self.name = name
        self.line_rate = gbits / 8.0 * 1e9
        self.dma = Resource(sim, capacity=dma_engines, name=f"{name}.dma")
        self.processor: Optional[Device] = None

    @property
    def is_smart(self) -> bool:
        return self.processor is not None

    def scale_line_rate(self, factor: float) -> None:
        """What-if perturbation hook: multiply the DMA line rate.

        ``factor=1.0`` is an exact no-op (baseline bit-identity).
        Does not touch the on-NIC processor; use
        ``processor.scale_speed`` for that.
        """
        if factor <= 0:
            raise ValueError(
                f"nic {self.name}: line-rate factor must be positive")
        self.line_rate *= factor

    def dma_transfer(self, nbytes: float, label: str = "") -> Generator:
        """Occupy one DMA engine for ``nbytes`` at line rate.

        The NIC's DMA engines are the §4.1 data movers: a transfer
        holds one engine for ``nbytes / line_rate`` seconds, so
        concurrent flows queue once all engines are busy.  Emits
        ``dma_issue`` / ``dma_complete`` events and byte counters.
        """
        issued = self.sim.now
        self.trace.emit(issued, EventKind.DMA_ISSUE,
                        f"nic.{self.name}", label=label, nbytes=nbytes)
        if not self.dma.try_acquire():
            yield self.dma.request()
        span = self.trace.open_span(f"nic.{self.name}.dma",
                                    self.sim.now)
        try:
            yield self.sim.timeout(nbytes / self.line_rate)
        finally:
            self.trace.close_span(span, self.sim.now)
            self.dma.release()
        self.trace.tick(self.sim.now)
        self.trace.emit(issued, EventKind.DMA_COMPLETE,
                        f"nic.{self.name}", label=label, nbytes=nbytes,
                        dur=self.sim.now - issued)
        self.trace.add(f"nic.{self.name}.dma_transfers", 1)
        self.trace.add(f"nic.{self.name}.dma_bytes", nbytes)

    def supports(self, kind: str) -> bool:
        """Whether the on-NIC processor (if any) can host ``kind``."""
        return self.processor is not None and self.processor.supports(kind)

    def utilization(self, elapsed: Optional[float] = None
                    ) -> dict[str, float]:
        """Busy fractions of the DMA engines and on-NIC processor.

        The quantities §7.3's scheduler reasons about when deciding
        whether a NIC has headroom for another offloaded stage.
        """
        out = {"dma": self.dma.utilization(elapsed)}
        if self.processor is not None:
            out["processor"] = self.processor.utilization(elapsed)
        return out


class SmartNIC(NIC):
    """A NIC with a bump-in-the-wire stream processor (§4.3)."""

    def __init__(self, sim: Simulator, trace: Trace, name: str,
                 gbits: float = 100.0, dma_engines: int = 4,
                 processor_slots: int = 2):
        super().__init__(sim, trace, name, gbits=gbits,
                         dma_engines=dma_engines)
        self.processor = Device(sim, trace, f"{name}.proc",
                                rates=smartnic_rates(self.line_rate),
                                startup=1e-6, slots=processor_slots,
                                programmable=True)


class DPU(NIC):
    """A data processing unit: SmartNIC + general-purpose cores (§4.2)."""

    def __init__(self, sim: Simulator, trace: Trace, name: str,
                 gbits: float = 200.0, dma_engines: int = 8,
                 processor_slots: int = 4):
        super().__init__(sim, trace, name, gbits=gbits,
                         dma_engines=dma_engines)
        self.processor = Device(sim, trace, f"{name}.proc",
                                rates=dpu_rates(self.line_rate),
                                startup=1e-6, slots=processor_slots,
                                programmable=True)
