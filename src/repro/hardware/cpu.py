"""CPU socket model: cores, caches, memory controllers, NUMA.

This module encodes the quantitative claims of §5.1:

* a single core sustains only a fraction (historically 75–85 %) of a
  memory controller's bandwidth — :class:`MemoryController` enforces a
  per-stream issue-rate ceiling;
* controllers are oversubscribed with respect to cores, so a moderate
  number of memory-bound cores saturates the controllers and per-core
  bandwidth collapses — controller ports serialize chunked requests,
  so saturation emerges rather than being asserted;
* NUMA: access to a neighbour socket's controller pays an inter-socket
  hop (:func:`repro.hardware.interconnect.memory_bus` at lower speed).

Cores are :class:`~repro.hardware.device.Device` instances whose rate
table reflects *software* implementations of the operator kinds — the
reference point accelerator offloads are compared against.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Generator, Optional

from ..sim import Resource, Simulator, Trace
from .device import GIB, Device, OpKind

__all__ = [
    "MemoryController",
    "CacheHierarchy",
    "LRUCache",
    "CPUSocket",
    "Server",
    "default_core_rates",
]


def default_core_rates(ghz: float = 3.0) -> dict[str, float]:
    """Software (per-core) processing rates in bytes/second.

    Calibrated to a ~3 GHz core running vectorized database kernels.
    Regex is the stand-out laggard — the reason AQUA pushed LIKE to
    accelerators (§3.3).
    """
    scale = ghz / 3.0
    return {
        OpKind.FILTER: 8.0 * GIB * scale,
        OpKind.REGEX: 0.8 * GIB * scale,
        OpKind.PROJECT: 12.0 * GIB * scale,
        OpKind.HASH: 6.0 * GIB * scale,
        OpKind.PARTITION: 5.0 * GIB * scale,
        OpKind.AGGREGATE: 6.0 * GIB * scale,
        OpKind.SORT: 2.0 * GIB * scale,
        OpKind.JOIN_BUILD: 3.0 * GIB * scale,
        OpKind.JOIN_PROBE: 4.0 * GIB * scale,
        OpKind.COUNT: 16.0 * GIB * scale,
        OpKind.COMPRESS: 1.5 * GIB * scale,
        OpKind.DECOMPRESS: 3.0 * GIB * scale,
        OpKind.ENCRYPT: 2.0 * GIB * scale,
        OpKind.DECRYPT: 2.0 * GIB * scale,
        OpKind.SERIALIZE: 5.0 * GIB * scale,
        OpKind.DESERIALIZE: 5.0 * GIB * scale,
        OpKind.TRANSPOSE: 4.0 * GIB * scale,
        OpKind.POINTER_CHASE: 0.5 * GIB * scale,
        OpKind.LIST_MAINTENANCE: 2.0 * GIB * scale,
        OpKind.GENERIC: 8.0 * GIB * scale,
    }


class MemoryController:
    """One DDR memory controller with a per-stream efficiency ceiling.

    Reads are issued in fixed-size chunks.  Each chunk occupies the
    controller port at the full channel bandwidth, but the issuing
    stream then pays an *issue gap* before its next chunk, capping a
    single stream at ``single_stream_fraction`` of channel bandwidth
    (§5.1: 75–85 %, constant for over a decade).  While one stream
    sits in its gap, other streams' chunks are served, so aggregate
    throughput approaches the channel bandwidth — and with many
    streams, per-stream bandwidth collapses to ``bandwidth / n``.
    """

    def __init__(self, sim: Simulator, trace: Trace, name: str,
                 bandwidth: float = 20.0 * GIB,
                 single_stream_fraction: float = 0.8,
                 chunk_bytes: int = 1 << 20,
                 arbitration_latency: float = 40e-9):
        if not 0.0 < single_stream_fraction <= 1.0:
            raise ValueError("single_stream_fraction must be in (0, 1]")
        self.sim = sim
        self.trace = trace
        self.name = name
        self.bandwidth = bandwidth
        self.single_stream_fraction = single_stream_fraction
        self.chunk_bytes = chunk_bytes
        self.arbitration_latency = arbitration_latency
        self._port = Resource(sim, capacity=1, name=f"{name}.port")

    def _issue_gap(self, chunk: float) -> float:
        full = chunk / self.bandwidth
        limited = chunk / (self.bandwidth * self.single_stream_fraction)
        return limited - full

    def access(self, nbytes: float, write: bool = False) -> Generator:
        """Stream ``nbytes`` through the controller (simulation process)."""
        direction = "write" if write else "read"
        remaining = float(nbytes)
        while remaining > 0:
            chunk = min(self.chunk_bytes, remaining)
            if not self._port.try_acquire():
                yield self._port.request()
            try:
                yield self.sim.timeout(
                    self.arbitration_latency + chunk / self.bandwidth)
            finally:
                self._port.release()
            # Issue gap is paid without holding the port, so other
            # streams can slot in — this is what lets aggregate
            # bandwidth exceed a single stream's.
            yield self.sim.timeout(self._issue_gap(chunk))
            remaining -= chunk
        self.trace.add(f"memctrl.{self.name}.bytes.{direction}", nbytes)
        self.trace.add("movement.membus.bytes", nbytes)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        return self._port.utilization(elapsed)


@dataclass
class CacheLevelSpec:
    """Capacity and bandwidth of one cache level."""

    name: str
    capacity: int
    bandwidth: float


class CacheHierarchy:
    """The on-chip staircase every byte climbs in Figure 1.

    For streaming scans (no reuse), each byte crosses every level on
    its way from DRAM to the registers; ``charge_stream`` accounts
    that movement and returns the time the slowest level adds.  An
    optional HBM "L4" level models Xeon Max-style configurations
    (§5.1).
    """

    def __init__(self, sim: Simulator, trace: Trace, name: str,
                 levels: Optional[list[CacheLevelSpec]] = None):
        self.sim = sim
        self.trace = trace
        self.name = name
        if levels is None:
            levels = [
                CacheLevelSpec("L1", 48 << 10, 400.0 * GIB),
                CacheLevelSpec("L2", 2 << 20, 300.0 * GIB),
                CacheLevelSpec("L3", 64 << 20, 200.0 * GIB),
            ]
        self.levels = levels

    def charge_stream(self, nbytes: float) -> float:
        """Account a streaming pass of ``nbytes`` through all levels.

        Returns the added transfer time (the levels operate as a
        pipeline, so the slowest level bounds it).
        """
        slowest = 0.0
        for level in self.levels:
            self.trace.add(
                f"cache.{self.name}.{level.name}.bytes", nbytes)
            self.trace.add("movement.cache.bytes", nbytes)
            slowest = max(slowest, nbytes / level.bandwidth)
        return slowest

    def stream(self, nbytes: float) -> Generator:
        """Simulation process variant of :meth:`charge_stream`."""
        yield self.sim.timeout(self.charge_stream(nbytes))


class LRUCache:
    """A block-granular LRU cache with exact hit/miss accounting.

    Used for the pointer-chasing experiment (§5.4) and as the
    replacement engine of the buffer pool.  Keys are opaque block
    identifiers; all blocks are ``block_bytes`` large.
    """

    def __init__(self, capacity_blocks: int, name: str = "lru",
                 trace: Optional[Trace] = None):
        if capacity_blocks < 1:
            raise ValueError("capacity must be at least one block")
        self.capacity = capacity_blocks
        self.name = name
        self.trace = trace
        self._blocks: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, key) -> bool:
        return key in self._blocks

    def access(self, key) -> bool:
        """Touch ``key``; returns True on hit, inserts on miss."""
        if key in self._blocks:
            self._blocks.move_to_end(key)
            self.hits += 1
            if self.trace is not None:
                self.trace.add(f"cache.{self.name}.hits", 1)
            return True
        self.misses += 1
        if self.trace is not None:
            self.trace.add(f"cache.{self.name}.misses", 1)
        self._blocks[key] = True
        if len(self._blocks) > self.capacity:
            self._blocks.popitem(last=False)
            self.evictions += 1
        return False

    def evict(self, key) -> bool:
        """Drop ``key`` if present; returns whether it was present."""
        return self._blocks.pop(key, None) is not None

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CPUSocket:
    """A socket: cores + cache hierarchy + memory controllers.

    The controller:core ratio defaults to the oversubscription the
    paper describes (many more cores than controllers).
    """

    def __init__(self, sim: Simulator, trace: Trace, name: str,
                 cores: int = 8, controllers: int = 2,
                 ghz: float = 3.0,
                 controller_bandwidth: float = 20.0 * GIB,
                 single_stream_fraction: float = 0.8):
        self.sim = sim
        self.trace = trace
        self.name = name
        self.cores = [
            Device(sim, trace, f"{name}.core{i}",
                   rates=default_core_rates(ghz), startup=0.0, slots=1)
            for i in range(cores)
        ]
        self.controllers = [
            MemoryController(sim, trace, f"{name}.mc{i}",
                             bandwidth=controller_bandwidth,
                             single_stream_fraction=single_stream_fraction)
            for i in range(controllers)
        ]
        self.caches = CacheHierarchy(sim, trace, name)

    def controller_for(self, stream_id: int) -> MemoryController:
        """Static round-robin assignment of streams to controllers."""
        return self.controllers[stream_id % len(self.controllers)]

    def core(self, index: int) -> Device:
        return self.cores[index % len(self.cores)]

    def memory_read(self, nbytes: float, stream_id: int = 0,
                    through_caches: bool = True) -> Generator:
        """Read from local DRAM into a core, crossing the caches."""
        controller = self.controller_for(stream_id)
        yield from controller.access(nbytes)
        if through_caches:
            yield from self.caches.stream(nbytes)

    def aggregate_bandwidth(self) -> float:
        """Peak DRAM bandwidth of the socket (all controllers)."""
        return sum(c.bandwidth for c in self.controllers)


class Server:
    """A multi-socket server: the NUMA reality of §5.1.

    "If the data requested ... is not stored in the local DRAM but on
    a memory attached to a neighbor CPU socket, there are additional
    penalties for higher access latency.  The phenomenon, called
    Non-Uniform Memory Access (NUMA), is unavoidable in servers that
    use two or more CPU sockets — anecdotally, the large majority of
    servers available in the cloud."

    A remote read crosses the inter-socket interconnect (a shared,
    bandwidth-limited resource) *and* the remote socket's controller,
    so remote bandwidth is lower and remote accesses contend with the
    remote socket's own traffic.
    """

    def __init__(self, sim: Simulator, trace: Trace, name: str,
                 sockets: int = 2, cores_per_socket: int = 8,
                 controllers_per_socket: int = 2,
                 interconnect_bandwidth: float = 30.0 * GIB,
                 interconnect_latency: float = 120e-9,
                 **socket_kwargs):
        if sockets < 1:
            raise ValueError("a server needs at least one socket")
        self.sim = sim
        self.trace = trace
        self.name = name
        self.sockets = [
            CPUSocket(sim, trace, f"{name}.s{i}",
                      cores=cores_per_socket,
                      controllers=controllers_per_socket,
                      **socket_kwargs)
            for i in range(sockets)
        ]
        self.interconnect_bandwidth = interconnect_bandwidth
        self.interconnect_latency = interconnect_latency
        self._xsocket = Resource(sim, capacity=1,
                                 name=f"{name}.xsocket")

    def memory_read(self, nbytes: float, socket: int,
                    home_socket: int, stream_id: int = 0,
                    chunk_bytes: int = 1 << 20) -> Generator:
        """Read memory homed at ``home_socket`` from ``socket``.

        Local reads behave like :meth:`CPUSocket.memory_read`; remote
        reads additionally serialize chunks over the inter-socket
        interconnect (paying latency per chunk — the NUMA penalty).
        """
        home = self.sockets[home_socket % len(self.sockets)]
        if socket % len(self.sockets) == home_socket % len(self.sockets):
            yield from home.memory_read(nbytes, stream_id=stream_id)
            return
        remaining = float(nbytes)
        while remaining > 0:
            piece = min(chunk_bytes, remaining)
            yield from home.controller_for(stream_id).access(piece)
            if not self._xsocket.try_acquire():
                yield self._xsocket.request()
            try:
                yield self.sim.timeout(
                    self.interconnect_latency
                    + piece / self.interconnect_bandwidth)
            finally:
                self._xsocket.release()
            remaining -= piece
        self.trace.add(f"numa.{self.name}.remote_bytes", nbytes)
        self.trace.add("movement.xsocket.bytes", nbytes)
        # The reader's own cache hierarchy still sees the stream.
        reader = self.sockets[socket % len(self.sockets)]
        yield from reader.caches.stream(nbytes)
