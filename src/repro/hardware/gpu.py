"""GPUs as data-path processing elements (§2.3, §4.2).

The paper: "when moving data from the storage layer to the GPU,
conventional network stacks require to go through the CPU with copies
of the data being made along the way and blocking CPU resources.
This has led to ways to bypass the CPU [GPUDirect] and also to smart
NICs that can not only communicate directly with the GPU but also
perform processing on the network data stream on the fly ... Their
use in database engines is yet to be explored."

A :class:`GPU` is a device with very high streaming throughput for
the massively parallel kinds (filter, hash, join probe, aggregate)
but a meaningful per-kernel launch latency, sitting behind a host
interconnect.  The fabric can attach it two ways (see
``FabricSpec.gpu``): reachable only through host DRAM (the
conventional path) or *also* directly from the NIC (GPUDirect) —
bench E6 compares the two.
"""

from __future__ import annotations

from ..sim import Simulator, Trace
from .device import GIB, Device, OpKind

__all__ = ["GPU", "gpu_rates"]


def gpu_rates(hbm_bandwidth: float = 100.0 * GIB) -> dict[str, float]:
    """Throughput of database kernels on a data-center GPU.

    Massively parallel streaming kinds run near HBM bandwidth; regex
    and pointer-heavy work do comparatively poorly (divergence), and
    there is no stateless constraint — a GPU has real memory.
    """
    return {
        OpKind.FILTER: hbm_bandwidth,
        OpKind.PROJECT: hbm_bandwidth,
        OpKind.HASH: 0.8 * hbm_bandwidth,
        OpKind.PARTITION: 0.6 * hbm_bandwidth,
        OpKind.AGGREGATE: 0.6 * hbm_bandwidth,
        OpKind.JOIN_BUILD: 0.3 * hbm_bandwidth,
        OpKind.JOIN_PROBE: 0.5 * hbm_bandwidth,
        OpKind.COUNT: hbm_bandwidth,
        OpKind.SORT: 0.25 * hbm_bandwidth,
        OpKind.REGEX: 0.05 * hbm_bandwidth,   # divergence-bound
        OpKind.COMPRESS: 0.3 * hbm_bandwidth,
        OpKind.DECOMPRESS: 0.5 * hbm_bandwidth,
        OpKind.GENERIC: 0.2 * hbm_bandwidth,
    }


class GPU(Device):
    """A GPU: huge streaming throughput, real kernel-launch latency.

    GPUs are programmed through explicit kernels (CUDA), so they are
    ``programmable`` in this model's sense too — stages pay a launch/
    install cost, which is larger than for fixed-function NIC units.
    """

    def __init__(self, sim: Simulator, trace: Trace, name: str,
                 hbm_bandwidth: float = 100.0 * GIB, slots: int = 4,
                 launch_latency: float = 5e-6):
        super().__init__(sim, trace, name,
                         rates=gpu_rates(hbm_bandwidth),
                         startup=launch_latency, slots=slots,
                         programmable=True)
        self.hbm_bandwidth = hbm_bandwidth
