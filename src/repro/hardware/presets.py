"""Calibrated fabric presets.

:func:`build_fabric` assembles the architecture of Figure 6 — a
storage node, a network switch, and one or more compute nodes, each
with a NIC, DRAM, an optional near-memory accelerator, a cache level,
and a CPU — with every knob of the paper exposed on
:class:`FabricSpec`: smart vs dumb storage and NICs, PCIe generation
vs CXL, network speed, core/controller counts.

Setting ``storage_attachment='local'`` collapses the topology to the
conventional von Neumann node of Figure 1 (local disk on PCIe), which
is the baseline fabric for experiment F1.

Site names are the vocabulary the placement layer uses:

========================  =============================================
site                      device
========================  =============================================
``storage.cu``            computational-storage unit (§3)
``storage.nic``           processor on the storage-side SmartNIC (§4)
``compute<i>.nic``        processor on a compute-side SmartNIC (§4)
``compute<i>.nearmem``    near-memory accelerator (§5)
``compute<i>.cpu``        host CPU (one slot per core)
========================  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .cpu import CPUSocket, default_core_rates
from .device import GIB, Device
from .interconnect import (
    cache_bus,
    cxl_link,
    ethernet_link,
    memory_bus,
    pcie_link,
    rdma_link,
)
from .gpu import GPU
from .memory import DRAM, DisaggregatedMemoryNode, NearMemoryAccelerator
from .nic import DPU, NIC, SmartNIC
from .storage import ComputationalStorage, StorageMedium
from .topology import Fabric

__all__ = ["FabricSpec", "ComputeNode", "HeterogeneousFabric",
           "build_fabric", "conventional_spec", "dataflow_spec",
           "rack_spec"]


@dataclass
class FabricSpec:
    """Configuration knobs for :func:`build_fabric`."""

    # Network.
    network_gbits: float = 100.0
    rdma: bool = True

    # Host interconnect (§6): PCIe generation, or CXL on PCIe 5/6.
    pcie_generation: int = 5
    use_cxl: bool = False

    # Storage layer (§3).
    storage_attachment: str = "network"       # "network" or "local"
    ssd_gib_per_s: float = 3.0
    smart_storage: bool = True
    storage_cu_scale: float = 1.0
    storage_nic: str = "smart"                # "smart", "dumb", "dpu"

    # Compute nodes (§4, §5).
    compute_nodes: int = 1
    compute_nic: str = "smart"                # "smart", "dumb", "dpu"
    near_memory: bool = True
    nearmem_gib_per_s: float = 40.0
    dram_capacity: int = 64 << 30

    # Optional GPU per compute node (§2.3, §4.2):
    # "none", "host" (reachable only through DRAM), or
    # "direct" (additionally NIC->GPU, i.e. GPUDirect).
    gpu: str = "none"
    gpu_hbm_gib_per_s: float = 100.0

    # CPU (§5.1).
    cores: int = 8
    controllers: int = 2
    core_ghz: float = 3.0
    controller_gib: float = 20.0
    single_stream_fraction: float = 0.8

    # Optional disaggregated memory node (§5.3).
    disagg_memory: bool = False
    disagg_capacity: int = 256 << 30


def conventional_spec(**overrides) -> FabricSpec:
    """The Figure 1 node: local storage, no smarts anywhere."""
    base = dict(
        storage_attachment="local",
        smart_storage=False,
        storage_nic="dumb",
        compute_nic="dumb",
        near_memory=False,
        use_cxl=False,
    )
    base.update(overrides)
    return FabricSpec(**base)


def dataflow_spec(**overrides) -> FabricSpec:
    """The Figure 6 fabric: every data-path processing site enabled."""
    base = dict(
        storage_attachment="network",
        smart_storage=True,
        storage_nic="smart",
        compute_nic="smart",
        near_memory=True,
        use_cxl=True,
    )
    base.update(overrides)
    return FabricSpec(**base)


def rack_spec(compute_nodes: int = 4, **overrides) -> FabricSpec:
    """A fully disaggregated rack (§6.4).

    "A much more flexible way is to think of computers in terms of
    racks and populate the rack with more carefully apportioned
    resources": several thin compute nodes, pooled disaggregated
    memory, shared smart storage, CXL host interconnects, and a fast
    fabric between them.
    """
    base = dict(
        storage_attachment="network",
        smart_storage=True,
        storage_nic="smart",
        compute_nic="smart",
        near_memory=True,
        use_cxl=True,
        compute_nodes=compute_nodes,
        disagg_memory=True,
        network_gbits=400.0,
        # Thin compute: the rack's memory lives in the pool.
        dram_capacity=8 << 30,
        disagg_capacity=512 << 30,
    )
    base.update(overrides)
    return FabricSpec(**base)


@dataclass
class ComputeNode:
    """Handles to one compute node's devices."""

    name: str
    nic: NIC
    dram: DRAM
    accelerator: Optional[NearMemoryAccelerator]
    cpu: Device
    socket: CPUSocket
    gpu: Optional[GPU] = None
    locations: dict[str, str] = field(default_factory=dict)


def _make_nic(kind: str, sim, trace, name: str, gbits: float) -> NIC:
    if kind == "smart":
        return SmartNIC(sim, trace, name, gbits=gbits)
    if kind == "dpu":
        return DPU(sim, trace, name, gbits=max(gbits, 200.0))
    if kind == "dumb":
        return NIC(sim, trace, name, gbits=gbits)
    raise ValueError(f"unknown NIC kind {kind!r}")


class HeterogeneousFabric(Fabric):
    """A fabric with named handles to the paper's processing sites."""

    def __init__(self, spec: FabricSpec):
        super().__init__()
        self.spec = spec
        self.storage: ComputationalStorage
        self.storage_nic: Optional[NIC] = None
        self.compute: list[ComputeNode] = []
        self.disagg: Optional[DisaggregatedMemoryNode] = None
        self._sites: dict[str, Device] = {}
        self._site_locations: dict[str, str] = {}
        self._build()

    # -- construction ------------------------------------------------------

    def _host_link(self, name: str):
        if self.spec.use_cxl:
            return cxl_link(self.sim, self.trace, name,
                            generation=max(self.spec.pcie_generation, 5))
        return pcie_link(self.sim, self.trace, name,
                         generation=self.spec.pcie_generation)

    def _net_link(self, name: str):
        factory = rdma_link if self.spec.rdma else ethernet_link
        return factory(self.sim, self.trace, name,
                       gbits=self.spec.network_gbits)

    def _register_site(self, site: str, device: Device, location: str):
        self._sites[site] = device
        self._site_locations[site] = location
        if device.name not in self.devices:
            self.add_device(device, at=location)

    def _build(self) -> None:
        spec = self.spec
        sim, trace = self.sim, self.trace

        # Storage node.
        self.add_location("storage.node")
        medium = StorageMedium.nvme_ssd(sim, trace, "storage.media",
                                        gib_per_s=spec.ssd_gib_per_s)
        self.storage = ComputationalStorage(
            sim, trace, "storage", medium=medium,
            cu_scale=spec.storage_cu_scale)
        if spec.smart_storage:
            self._register_site("storage.cu", self.storage.cu,
                                "storage.node")

        # Compute nodes.
        for i in range(spec.compute_nodes):
            node = self._build_compute_node(f"compute{i}")
            self.compute.append(node)

        # Wire storage to compute.
        if spec.storage_attachment == "local":
            if spec.compute_nodes != 1:
                raise ValueError("local storage implies one compute node")
            link = self._host_link("storage.pcie")
            self.connect("storage.node", "compute0.dram", link)
        elif spec.storage_attachment == "network":
            self.storage_nic = _make_nic(
                spec.storage_nic, sim, trace, "storage.nic",
                spec.network_gbits)
            if self.storage_nic.processor is not None:
                self._register_site("storage.nic", self.storage_nic.processor,
                                    "storage.node")
            self.add_location("switch")
            self.connect("storage.node", "switch",
                         self._net_link("net.storage"))
            for i in range(spec.compute_nodes):
                self.connect("switch", f"compute{i}.node",
                             self._net_link(f"net.compute{i}"))
        else:
            raise ValueError(
                f"unknown storage_attachment {spec.storage_attachment!r}")

        # Optional disaggregated memory node (§5.3).
        if spec.disagg_memory:
            self.disagg = DisaggregatedMemoryNode(
                sim, trace, "memnode", capacity=spec.disagg_capacity,
                nic_gbits=spec.network_gbits,
                smart_nic=spec.compute_nic == "smart",
                accelerator=spec.near_memory)
            self.add_location("memnode.node")
            self.connect("memnode.node", "switch",
                         self._net_link("net.memnode"))
            if self.disagg.accelerator is not None:
                self._register_site("memnode.accel", self.disagg.accelerator,
                                    "memnode.node")

    def _build_compute_node(self, name: str) -> ComputeNode:
        spec = self.spec
        sim, trace = self.sim, self.trace
        loc_node = f"{name}.node"
        loc_dram = f"{name}.dram"
        loc_llc = f"{name}.llc"
        loc_cpu = f"{name}.cpu"
        for loc in (loc_node, loc_dram, loc_llc, loc_cpu):
            self.add_location(loc)

        nic = _make_nic(spec.compute_nic, sim, trace, f"{name}.nic",
                        spec.network_gbits)
        if nic.processor is not None:
            self._register_site(f"{name}.nic", nic.processor, loc_node)

        dram = DRAM(sim, trace, f"{name}.dram",
                    capacity=spec.dram_capacity)
        accel = None
        if spec.near_memory:
            accel = NearMemoryAccelerator(
                sim, trace, f"{name}.nearmem",
                memory_bandwidth=spec.nearmem_gib_per_s * GIB)
            self._register_site(f"{name}.nearmem", accel, loc_dram)

        cpu = Device(sim, trace, f"{name}.cpu",
                     rates=default_core_rates(spec.core_ghz),
                     startup=0.0, slots=spec.cores)
        self._register_site(f"{name}.cpu", cpu, loc_cpu)

        socket = CPUSocket(
            sim, trace, f"{name}.socket", cores=spec.cores,
            controllers=spec.controllers, ghz=spec.core_ghz,
            controller_bandwidth=spec.controller_gib * GIB,
            single_stream_fraction=spec.single_stream_fraction)

        # Host links: NIC -> DRAM (PCIe/CXL), DRAM -> LLC (memory bus,
        # one port per controller), LLC -> cores (on-chip).
        self.connect(loc_node, loc_dram, self._host_link(f"{name}.host"))
        self.connect(loc_dram, loc_llc, memory_bus(
            sim, trace, f"{name}.membus", gib_per_s=spec.controller_gib,
            ports=spec.controllers))
        self.connect(loc_llc, loc_cpu,
                     cache_bus(sim, trace, f"{name}.cachebus"))

        gpu = None
        if spec.gpu != "none":
            if spec.gpu not in ("host", "direct"):
                raise ValueError(f"unknown gpu mode {spec.gpu!r}")
            loc_gpu = f"{name}.gpu"
            self.add_location(loc_gpu)
            gpu = GPU(sim, trace, f"{name}.gpu",
                      hbm_bandwidth=spec.gpu_hbm_gib_per_s * GIB)
            self._register_site(f"{name}.gpu", gpu, loc_gpu)
            # Conventional attachment: behind host DRAM.
            self.connect(loc_dram, loc_gpu,
                         self._host_link(f"{name}.gpu_host"))
            if spec.gpu == "direct":
                # GPUDirect (§4.2): the NIC reaches the GPU without
                # crossing host memory.
                self.connect(loc_node, loc_gpu,
                             self._host_link(f"{name}.gpudirect"))

        return ComputeNode(name=name, nic=nic, dram=dram, accelerator=accel,
                           cpu=cpu, socket=socket, gpu=gpu,
                           locations={"node": loc_node, "dram": loc_dram,
                                      "llc": loc_llc, "cpu": loc_cpu})

    # -- what-if perturbation registry ---------------------------------------

    #: Canonical spellings for resource knobs (``repro whatif --vary``).
    RESOURCE_ALIASES = {
        "nic.bw": "net.bw",
        "nic.lat": "net.lat",
        "disk.bw": "ssd.bw",
        "disk.lat": "ssd.lat",
    }

    @classmethod
    def canonical_resource(cls, resource: str) -> str:
        """Resolve aliases (``nic.bw`` -> ``net.bw``)."""
        return cls.RESOURCE_ALIASES.get(resource, resource)

    def _links_by_segment(self, segment: str) -> list:
        return [data["link"] for _, _, data in self.graph.edges(data=True)
                if data["link"].segment == segment]

    def _all_nics(self) -> list[NIC]:
        nics = [node.nic for node in self.compute]
        if self.storage_nic is not None:
            nics.append(self.storage_nic)
        if self.disagg is not None:
            nics.append(self.disagg.nic)
        return nics

    def perturbable_resources(self) -> dict[str, str]:
        """Resource knobs present on *this* fabric, with descriptions.

        Keys are the vocabulary of the causal what-if engine: each one
        names a class of hardware the simulation can be re-run with
        scaled up or down.  Only knobs whose hardware actually exists
        on the fabric are listed (e.g. ``gpu.speed`` only appears when
        the spec attaches a GPU).
        """
        out: dict[str, str] = {}
        segment_desc = {
            "network": "net", "pcie": "pcie", "cxl": "cxl",
            "membus": "membus", "cache": "cache", "nvlink": "nvlink",
        }
        for segment, prefix in segment_desc.items():
            links = self._links_by_segment(segment)
            if not links:
                continue
            names = ", ".join(sorted(link.name for link in links))
            out[f"{prefix}.bw"] = f"bandwidth of {names}"
            out[f"{prefix}.lat"] = f"latency of {names}"
        out["ssd.bw"] = f"bandwidth of medium {self.storage.medium.name}"
        out["ssd.lat"] = f"access latency of {self.storage.medium.name}"
        cpus = [node.cpu.name for node in self.compute]
        out["cpu.speed"] = "compute rates of " + ", ".join(cpus)
        nic_procs = [nic.processor.name for nic in self._all_nics()
                     if nic.processor is not None]
        if nic_procs:
            out["nic.speed"] = "compute rates of " + ", ".join(nic_procs)
        if self.has_site("storage.cu"):
            out["storage_cu.speed"] = (
                f"compute rates of {self.storage.cu.name}")
        nearmems = [node.accelerator.name for node in self.compute
                    if node.accelerator is not None]
        if self.disagg is not None and self.disagg.accelerator is not None:
            nearmems.append(self.disagg.accelerator.name)
        if nearmems:
            out["nearmem.speed"] = "compute rates of " + ", ".join(nearmems)
        gpus = [node.gpu.name for node in self.compute
                if node.gpu is not None]
        if gpus:
            out["gpu.speed"] = "compute rates of " + ", ".join(gpus)
        return out

    def apply_perturbation(self, resource: str, factor: float) -> None:
        """Multiply the named resource's quantity by ``factor``.

        ``factor`` is a *raw* multiplier on the underlying quantity:
        ``("net.bw", 2.0)`` doubles network bandwidth, and
        ``("net.lat", 0.5)`` halves network latency — both
        improvements.  ``factor=1.0`` is an exact no-op on every hook,
        which the what-if engine relies on to verify bit-identical
        baselines.  Raises ``ValueError`` for knobs absent from this
        fabric (see :meth:`perturbable_resources`).
        """
        resource = self.canonical_resource(resource)
        available = self.perturbable_resources()
        if resource not in available:
            raise ValueError(
                f"unknown or absent resource {resource!r} "
                f"(this fabric has: {sorted(available)})")
        prefix, _, knob = resource.rpartition(".")
        segments = {"net": "network", "pcie": "pcie", "cxl": "cxl",
                    "membus": "membus", "cache": "cache",
                    "nvlink": "nvlink"}
        if prefix in segments:
            for link in self._links_by_segment(segments[prefix]):
                if knob == "bw":
                    link.scale_bandwidth(factor)
                else:
                    link.scale_latency(factor)
            if resource == "net.bw":
                # The NICs' DMA engines run at the wire's line rate.
                for nic in self._all_nics():
                    nic.scale_line_rate(factor)
        elif prefix == "ssd":
            if knob == "bw":
                self.storage.medium.scale_bandwidth(factor)
            else:
                self.storage.medium.scale_latency(factor)
        elif resource == "cpu.speed":
            for node in self.compute:
                node.cpu.scale_speed(factor)
        elif resource == "nic.speed":
            for nic in self._all_nics():
                if nic.processor is not None:
                    nic.processor.scale_speed(factor)
        elif resource == "storage_cu.speed":
            self.storage.cu.scale_speed(factor)
        elif resource == "nearmem.speed":
            for node in self.compute:
                if node.accelerator is not None:
                    node.accelerator.scale_speed(factor)
            if self.disagg is not None and self.disagg.accelerator is not None:
                self.disagg.accelerator.scale_speed(factor)
        elif resource == "gpu.speed":
            for node in self.compute:
                if node.gpu is not None:
                    node.gpu.scale_speed(factor)
        else:  # pragma: no cover - guarded by the availability check
            raise ValueError(f"unhandled resource {resource!r}")

    # -- site API ------------------------------------------------------------

    @property
    def sites(self) -> dict[str, Device]:
        """Mapping of site name to the device that hosts work there."""
        return dict(self._sites)

    def site_device(self, site: str) -> Device:
        if site not in self._sites:
            raise KeyError(
                f"site {site!r} not present on this fabric "
                f"(have: {sorted(self._sites)})")
        return self._sites[site]

    def site_location(self, site: str) -> str:
        return self._site_locations[site]

    def has_site(self, site: str) -> bool:
        return site in self._sites

    @property
    def storage_location(self) -> str:
        """Where table data originates."""
        return "storage.node"

    def cpu_site(self, node: int = 0) -> str:
        return f"compute{node}.cpu"


def build_fabric(spec: Optional[FabricSpec] = None) -> HeterogeneousFabric:
    """Build a fabric from ``spec`` (default: the full Figure 6 setup)."""
    return HeterogeneousFabric(spec if spec is not None else dataflow_spec())
