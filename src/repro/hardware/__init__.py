"""Simulated hardware: devices, links, and fabric topologies.

Device models follow the paper's taxonomy — computational storage
(§3), SmartNICs/DPUs (§4), near-memory accelerators and disaggregated
memory (§5), PCIe/CXL interconnects with coherence (§6) — plus the
conventional CPU socket (§2.1, §5.1) they are compared against.
"""

from .cpu import (
    CacheHierarchy,
    CPUSocket,
    LRUCache,
    MemoryController,
    Server,
    default_core_rates,
)
from .device import GIB, Device, OpKind, UnsupportedOperation
from .gpu import GPU, gpu_rates
from .functional_units import (
    FreeList,
    HierarchicalBlockStore,
    chase_near_memory,
    chase_on_cpu,
    gc_near_memory,
    gc_on_cpu,
)
from .interconnect import (
    CoherenceDomain,
    Link,
    cache_bus,
    cxl_link,
    ethernet_link,
    memory_bus,
    nvlink_link,
    pcie_link,
    rdma_link,
)
from .memory import DRAM, DisaggregatedMemoryNode, NearMemoryAccelerator
from .nic import DPU, NIC, SmartNIC
from .presets import (
    ComputeNode,
    FabricSpec,
    HeterogeneousFabric,
    build_fabric,
    conventional_spec,
    dataflow_spec,
    rack_spec,
)
from .storage import ComputationalStorage, StorageMedium
from .topology import Fabric, NoRouteError

__all__ = [
    "GIB",
    "CacheHierarchy",
    "CoherenceDomain",
    "ComputationalStorage",
    "ComputeNode",
    "CPUSocket",
    "Device",
    "DisaggregatedMemoryNode",
    "DPU",
    "DRAM",
    "Fabric",
    "FabricSpec",
    "GPU",
    "FreeList",
    "HeterogeneousFabric",
    "HierarchicalBlockStore",
    "Link",
    "LRUCache",
    "MemoryController",
    "NearMemoryAccelerator",
    "NIC",
    "NoRouteError",
    "OpKind",
    "Server",
    "SmartNIC",
    "StorageMedium",
    "UnsupportedOperation",
    "build_fabric",
    "cache_bus",
    "chase_near_memory",
    "chase_on_cpu",
    "conventional_spec",
    "cxl_link",
    "dataflow_spec",
    "default_core_rates",
    "ethernet_link",
    "gc_near_memory",
    "gc_on_cpu",
    "gpu_rates",
    "memory_bus",
    "nvlink_link",
    "pcie_link",
    "rack_spec",
    "rdma_link",
]
