"""Storage media and computational storage (§3).

:class:`StorageMedium` models the passive device: bandwidth plus a
per-request access latency (seek for HDD, translation-layer latency
for SSD).  :class:`ComputationalStorage` couples a medium with a small
computational unit (CU) that can run *streaming, mostly stateless*
operators — selection, projection, regex, hashing, pre-aggregation —
as the data leaves the device (§3.3).  The CU is deliberately slower
than a server-class core for general work but competitive for the
streaming kinds, which is exactly the trade-off the paper's "which
operators make sense to push down" question (reproduced in bench C7)
explores.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..sim import EventKind, Resource, Simulator, Trace
from .device import GIB, Device, OpKind

__all__ = ["StorageMedium", "ComputationalStorage", "storage_cu_rates"]


def storage_cu_rates(scale: float = 1.0) -> dict[str, float]:
    """Rates for an embedded storage computational unit.

    Streaming kinds run near line rate (the CU sits on the data path);
    regex is *faster* than a CPU core (dedicated automaton, per the
    AQUA example); stateful kinds (sort, join) are absent — the CU is
    stateless by design (§3.3).
    """
    return {
        OpKind.FILTER: 4.0 * GIB * scale,
        OpKind.REGEX: 3.0 * GIB * scale,
        OpKind.PROJECT: 4.0 * GIB * scale,
        OpKind.HASH: 3.0 * GIB * scale,
        OpKind.PARTITION: 3.0 * GIB * scale,
        OpKind.AGGREGATE: 2.0 * GIB * scale,   # pre-aggregation only
        OpKind.SORT: 1.0 * GIB * scale,        # bounded run generation
        OpKind.COUNT: 8.0 * GIB * scale,
        OpKind.COMPRESS: 2.5 * GIB * scale,
        OpKind.DECOMPRESS: 4.0 * GIB * scale,
        OpKind.ENCRYPT: 3.0 * GIB * scale,
        OpKind.DECRYPT: 3.0 * GIB * scale,
        OpKind.SERIALIZE: 4.0 * GIB * scale,
        OpKind.DESERIALIZE: 4.0 * GIB * scale,
    }


class StorageMedium:
    """A passive storage device: bandwidth + per-request latency."""

    def __init__(self, sim: Simulator, trace: Trace, name: str,
                 read_bandwidth: float = 3.0 * GIB,
                 write_bandwidth: Optional[float] = None,
                 access_latency: float = 80e-6,
                 queue_depth: int = 8):
        self.sim = sim
        self.trace = trace
        self.name = name
        self.read_bandwidth = read_bandwidth
        self.write_bandwidth = (write_bandwidth if write_bandwidth is not None
                                else read_bandwidth * 0.8)
        self.access_latency = access_latency
        self._channel = Resource(sim, capacity=queue_depth,
                                 name=f"{name}.chan")

    @classmethod
    def nvme_ssd(cls, sim: Simulator, trace: Trace, name: str,
                 gib_per_s: float = 3.0) -> "StorageMedium":
        """A modern Flash SSD (§2.1)."""
        return cls(sim, trace, name, read_bandwidth=gib_per_s * GIB,
                   access_latency=80e-6, queue_depth=8)

    @classmethod
    def hdd(cls, sim: Simulator, trace: Trace, name: str) -> "StorageMedium":
        """A magnetic disk: slow and seek-bound."""
        return cls(sim, trace, name, read_bandwidth=0.2 * GIB,
                   access_latency=8e-3, queue_depth=1)

    @classmethod
    def object_store_backend(cls, sim: Simulator, trace: Trace,
                             name: str) -> "StorageMedium":
        """Cheap, slow disks behind a cloud object store (§7.5)."""
        return cls(sim, trace, name, read_bandwidth=0.5 * GIB,
                   access_latency=2e-3, queue_depth=16)

    def read_time(self, nbytes: float) -> float:
        """Predicted uncontended read time."""
        return self.access_latency + nbytes / self.read_bandwidth

    def scale_bandwidth(self, factor: float) -> None:
        """What-if perturbation hook: multiply both bandwidths.

        ``factor=1.0`` is an exact no-op (what-if baseline
        verification relies on this).
        """
        if factor <= 0:
            raise ValueError(
                f"medium {self.name}: bandwidth factor must be positive")
        self.read_bandwidth *= factor
        self.write_bandwidth *= factor

    def scale_latency(self, factor: float) -> None:
        """What-if perturbation hook: multiply the access latency."""
        if factor < 0:
            raise ValueError(
                f"medium {self.name}: latency factor must be >= 0")
        self.access_latency *= factor

    def read(self, nbytes: float) -> Generator:
        """Read ``nbytes`` off the medium (simulation process)."""
        issued = self.sim.now
        self.trace.emit(issued, EventKind.DMA_ISSUE,
                        f"storage.{self.name}", label="read",
                        nbytes=nbytes)
        if not self._channel.try_acquire():
            yield self._channel.request()
        span = self.trace.open_span(f"storage.{self.name}",
                                    self.sim.now)
        try:
            yield self.sim.timeout(self.read_time(nbytes))
        finally:
            self.trace.close_span(span, self.sim.now)
            self._channel.release()
        self.trace.tick(self.sim.now)
        self.trace.emit(issued, EventKind.DMA_COMPLETE,
                        f"storage.{self.name}", label="read",
                        nbytes=nbytes, dur=self.sim.now - issued)
        self.trace.add(f"storage.{self.name}.reads", 1)
        self.trace.add(f"storage.{self.name}.bytes.read", nbytes)
        self.trace.add("movement.storage.bytes", nbytes)

    def write(self, nbytes: float) -> Generator:
        """Write ``nbytes`` to the medium (simulation process)."""
        issued = self.sim.now
        self.trace.emit(issued, EventKind.DMA_ISSUE,
                        f"storage.{self.name}", label="write",
                        nbytes=nbytes)
        if not self._channel.try_acquire():
            yield self._channel.request()
        span = self.trace.open_span(f"storage.{self.name}",
                                    self.sim.now)
        try:
            yield self.sim.timeout(
                self.access_latency + nbytes / self.write_bandwidth)
        finally:
            self.trace.close_span(span, self.sim.now)
            self._channel.release()
        self.trace.tick(self.sim.now)
        self.trace.emit(issued, EventKind.DMA_COMPLETE,
                        f"storage.{self.name}", label="write",
                        nbytes=nbytes, dur=self.sim.now - issued)
        self.trace.add(f"storage.{self.name}.writes", 1)
        self.trace.add(f"storage.{self.name}.bytes.write", nbytes)
        self.trace.add("movement.storage.bytes", nbytes)


class ComputationalStorage:
    """A storage medium with an embedded computational unit (§3.3).

    The CU is shared by all tenants of the storage layer, so its
    ``slots`` and rates cap how much processing can be pushed down —
    the multi-tenancy constraint the paper raises.
    """

    def __init__(self, sim: Simulator, trace: Trace, name: str,
                 medium: Optional[StorageMedium] = None,
                 cu_scale: float = 1.0, cu_slots: int = 2):
        self.sim = sim
        self.trace = trace
        self.name = name
        self.medium = medium if medium is not None else StorageMedium.nvme_ssd(
            sim, trace, f"{name}.media")
        self.cu = Device(sim, trace, f"{name}.cu",
                         rates=storage_cu_rates(cu_scale),
                         startup=2e-6, slots=cu_slots,
                         programmable=True)

    def supports(self, kind: str) -> bool:
        """Whether the CU can host operators of ``kind``."""
        return self.cu.supports(kind)
