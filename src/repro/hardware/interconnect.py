"""Links, interconnect protocols, and coherence domains.

A :class:`Link` is a bandwidth/latency pipe between two fabric nodes.
Transfers serialize on the link's ports, so contention emerges
naturally when several flows share a segment — the effect the paper's
scheduling section (§7.3) is about.

Factories encode the protocol generations the paper discusses (§6):
PCIe 3 through 7 (doubling bandwidth per generation), CXL on top of
PCIe 5/6, RDMA-over-Ethernet at 100–800 Gb/s, NVLink, and the on-chip
memory/cache buses of Figure 1.

:class:`CoherenceDomain` models §6.2's key contrast: with *software*
coherence (PCIe/RDMA era) a writer must ship explicit invalidation
RPCs to every sharer, and sharers re-fetch whole regions; with
*hardware* coherence (CXL ``cxl.cache``) only 64-byte cache-line
invalidations travel, with no CPU involvement on either side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from ..sim import EventKind, Resource, Simulator, Trace
from .device import GIB, Device

__all__ = [
    "Link",
    "CoherenceDomain",
    "pcie_link",
    "cxl_link",
    "ethernet_link",
    "rdma_link",
    "nvlink_link",
    "memory_bus",
    "cache_bus",
    "PCIE_LANE_GBPS",
]

# Usable per-lane throughput in GB/s per PCIe generation (x1), after
# encoding overhead.  Doubles per generation, as §6.2 highlights.
PCIE_LANE_GBPS = {3: 0.985, 4: 1.969, 5: 3.938, 6: 7.877, 7: 15.754}

CACHE_LINE = 64
"""Bytes per cache line, used by coherence traffic accounting."""


@dataclass
class Link:
    """A point-to-point pipe with bandwidth, latency, and port contention.

    ``segment`` classifies the link for movement accounting
    (``network``, ``pcie``, ``cxl``, ``membus``, ``cache``, ``nvlink``)
    so experiments can report "bytes moved over the network" as one
    number regardless of topology.
    """

    sim: Simulator
    trace: Trace
    name: str
    bandwidth: float           # bytes / second
    latency: float             # seconds, propagation + protocol
    segment: str = "network"
    ports: int = 1             # concurrent transfers before queuing

    def __post_init__(self):
        if self.bandwidth <= 0:
            raise ValueError(f"link {self.name}: bandwidth must be positive")
        self._ports = Resource(self.sim, capacity=self.ports,
                               name=f"{self.name}.ports")
        # Interned hot-path trace keys (transfer() runs per chunk).
        self._span_name = f"link.{self.name}"
        self._byte_count = self.trace.counter_handle(
            f"link.{self.name}.bytes")
        self._chunk_count = self.trace.counter_handle(
            f"link.{self.name}.chunks")
        self._segment_bytes = self.trace.counter_handle(
            f"movement.{self.segment}.bytes")

    def transfer_time(self, nbytes: float) -> float:
        """Predicted uncontended time for a transfer of ``nbytes``."""
        return self.latency + nbytes / self.bandwidth

    def scale_bandwidth(self, factor: float) -> None:
        """What-if perturbation hook: multiply bandwidth by ``factor``.

        ``factor=1.0`` is an exact no-op, so the what-if engine's
        perturbed baseline reproduces the unperturbed run bit for bit.
        """
        if factor <= 0:
            raise ValueError(
                f"link {self.name}: bandwidth factor must be positive")
        self.bandwidth *= factor

    def scale_latency(self, factor: float) -> None:
        """What-if perturbation hook: multiply latency by ``factor``."""
        if factor < 0:
            raise ValueError(
                f"link {self.name}: latency factor must be >= 0")
        self.latency *= factor

    def transfer(self, nbytes: float, flow: str = "",
                 direction: str = "") -> Generator:
        """Move ``nbytes`` across the link (a simulation sub-process).

        ``flow`` attributes the bytes to an operator/flow in the
        movement ledger; ``direction`` records which way they went
        (``src->dst`` location pair).
        """
        issued = self.sim.now
        self.trace.emit(issued, EventKind.DMA_ISSUE, self.name,
                        label=flow, nbytes=nbytes)
        if not self._ports.try_acquire():
            yield self._ports.request()
        # A busy span per occupancy window: the raw material the
        # critical-path walker attributes link time from.
        span = self.trace.open_span(self._span_name, self.sim.now)
        try:
            yield self.sim.timeout(self.transfer_time(nbytes))
        finally:
            self.trace.close_span(span, self.sim.now)
            self._ports.release()
        self.trace.tick(self.sim.now)
        self.trace.emit(issued, EventKind.DMA_COMPLETE, self.name,
                        label=flow, nbytes=nbytes,
                        dur=self.sim.now - issued)
        self._byte_count.add(nbytes)
        self._chunk_count.add(1)
        self._segment_bytes.add(nbytes)
        self.trace.record_movement(self.name, flow or "unattributed",
                                   direction, nbytes)
        if flow:
            self.trace.add(f"flow.{flow}.bytes", nbytes)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time at least one port was busy."""
        return self._ports.utilization(elapsed)

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self.bandwidth / GIB:.1f} GiB/s>"


# ---------------------------------------------------------------------------
# Protocol factories
# ---------------------------------------------------------------------------

def pcie_link(sim: Simulator, trace: Trace, name: str, generation: int = 5,
              lanes: int = 16, ports: int = 2) -> Link:
    """A PCIe link of the given generation and width (§6.1–6.2)."""
    if generation not in PCIE_LANE_GBPS:
        raise ValueError(f"unknown PCIe generation {generation}")
    bandwidth = PCIE_LANE_GBPS[generation] * lanes * GIB
    return Link(sim, trace, name, bandwidth=bandwidth, latency=500e-9,
                segment="pcie", ports=ports)


def cxl_link(sim: Simulator, trace: Trace, name: str, generation: int = 5,
             lanes: int = 16, ports: int = 2) -> Link:
    """A CXL link — PCIe 5/6 electricals, lower protocol latency (§6.2)."""
    if generation not in (5, 6, 7):
        raise ValueError("CXL requires PCIe generation >= 5")
    bandwidth = PCIE_LANE_GBPS[generation] * lanes * GIB
    return Link(sim, trace, name, bandwidth=bandwidth, latency=250e-9,
                segment="cxl", ports=ports)


def ethernet_link(sim: Simulator, trace: Trace, name: str,
                  gbits: float = 100.0, ports: int = 2) -> Link:
    """A datacenter Ethernet link; 100–1600 Gb/s NICs per §2.2."""
    return Link(sim, trace, name, bandwidth=gbits / 8.0 * 1e9,
                latency=10e-6, segment="network", ports=ports)


def rdma_link(sim: Simulator, trace: Trace, name: str,
              gbits: float = 100.0, ports: int = 2) -> Link:
    """An RDMA (RoCE-style) link: Ethernet speeds, much lower latency."""
    return Link(sim, trace, name, bandwidth=gbits / 8.0 * 1e9,
                latency=2e-6, segment="network", ports=ports)


def nvlink_link(sim: Simulator, trace: Trace, name: str,
                generation: int = 4, ports: int = 2) -> Link:
    """NVLink point-to-point link (closed protocol, §6.1)."""
    per_gen_gib = {2: 25.0, 3: 50.0, 4: 100.0}
    if generation not in per_gen_gib:
        raise ValueError(f"unknown NVLink generation {generation}")
    return Link(sim, trace, name, bandwidth=per_gen_gib[generation] * GIB,
                latency=300e-9, segment="nvlink", ports=ports)


def memory_bus(sim: Simulator, trace: Trace, name: str,
               gib_per_s: float = 20.0, ports: int = 1) -> Link:
    """One DDR channel's worth of DRAM bandwidth (§5.1)."""
    return Link(sim, trace, name, bandwidth=gib_per_s * GIB,
                latency=90e-9, segment="membus", ports=ports)


def cache_bus(sim: Simulator, trace: Trace, name: str,
              gib_per_s: float = 200.0, ports: int = 4) -> Link:
    """On-chip path between cache levels / cores (Figure 1)."""
    return Link(sim, trace, name, bandwidth=gib_per_s * GIB,
                latency=5e-9, segment="cache", ports=ports)


# ---------------------------------------------------------------------------
# Coherence
# ---------------------------------------------------------------------------

@dataclass
class CoherenceDomain:
    """A set of agents sharing memory, with HW or SW coherence (§6.2).

    ``mode='hardware'`` models CXL ``cxl.cache``: a write invalidates
    remote copies with one cache-line-sized message per sharer per
    touched line, sent by the fabric with no CPU involvement.

    ``mode='software'`` models the PCIe/RDMA status quo: the writing
    side's CPU sends an invalidation RPC to every sharer (CPU work on
    both ends), and each sharer must re-read the whole region before
    its next access.
    """

    sim: Simulator
    trace: Trace
    name: str
    link: Link
    mode: str = "hardware"
    rpc_bytes: int = 256            # software invalidation message size
    snoop_bytes: int = 8            # hardware per-line snoop header
    cpu: Optional[Device] = None    # required for software mode
    sharer_cpus: dict[str, Device] = field(default_factory=dict)

    def __post_init__(self):
        if self.mode not in ("hardware", "software"):
            raise ValueError(f"unknown coherence mode {self.mode!r}")
        if self.mode == "software" and self.cpu is None:
            raise ValueError("software coherence requires a host CPU device")

    def add_sharer(self, name: str, cpu: Optional[Device] = None) -> None:
        """Register an agent caching this region."""
        self.sharer_cpus[name] = cpu

    def write(self, nbytes: float, writer: str) -> Generator:
        """Perform a coherent write of ``nbytes`` and pay invalidations."""
        sharers = [s for s in self.sharer_cpus if s != writer]
        lines = max(1, int(nbytes) // CACHE_LINE)
        if self.mode == "hardware":
            # Fabric-generated line invalidations: a header-only snoop
            # per touched line per sharer; no data moves and no CPU is
            # involved on either side.
            invalidation_bytes = lines * self.snoop_bytes * len(sharers)
            if sharers:
                yield from self.link.transfer(
                    invalidation_bytes, flow=f"coherence.{self.name}")
            self.trace.add(f"coherence.{self.name}.hw_invalidations",
                           lines * len(sharers))
        else:
            # Software coherence: RPC per sharer, CPU work both ends,
            # then each sharer re-fetches the whole region.
            from .device import OpKind
            for sharer in sharers:
                yield from self.cpu.execute(OpKind.GENERIC, self.rpc_bytes)
                yield from self.link.transfer(
                    self.rpc_bytes, flow=f"coherence.{self.name}")
                sharer_cpu = self.sharer_cpus.get(sharer)
                if sharer_cpu is not None:
                    yield from sharer_cpu.execute(
                        OpKind.GENERIC, self.rpc_bytes)
                yield from self.link.transfer(
                    nbytes, flow=f"coherence.{self.name}.refetch")
            self.trace.add(f"coherence.{self.name}.sw_rpcs", len(sharers))
        self.trace.add(f"coherence.{self.name}.writes", 1)
