"""Near-memory functional units with real data behaviour (§5.4).

The paper asks *what functional units should a near-memory accelerator
carry* and proposes four: value/range filters with on-demand
decompression, a pointer-dereferencing unit for hierarchical
traversals, a data-transposition unit for HTAP format conversion, and
fast list primitives for memory-centric maintenance work.

This module implements the data structures those units operate on —
most importantly :class:`HierarchicalBlockStore`, a B-tree-like block
layout over sorted keys — and the two traversal strategies the paper
contrasts:

* :func:`chase_on_cpu`: every visited block crosses the memory
  controller and the cache hierarchy before the CPU can decide which
  block to fetch next (a round trip per level);
* :func:`chase_near_memory`: the traversal happens inside the
  memory system and only the matching leaf payload moves up.

Both return the same answer (they walk the same real tree); only the
movement differs — which is the claim bench F5 measures.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Generator, Optional, Sequence

from ..sim import Trace
from .cpu import CPUSocket, LRUCache
from .device import Device, OpKind

__all__ = [
    "Block",
    "HierarchicalBlockStore",
    "chase_on_cpu",
    "chase_near_memory",
    "FreeList",
    "gc_on_cpu",
    "gc_near_memory",
]


@dataclass
class Block:
    """One fixed-size block: either internal (routing) or leaf (data)."""

    block_id: int
    keys: list[int]
    children: list[int] = field(default_factory=list)  # internal only
    values: list[int] = field(default_factory=list)    # leaf only
    nbytes: int = 4096
    min_key: int = 0

    @property
    def is_leaf(self) -> bool:
        return not self.children


class HierarchicalBlockStore:
    """A static B-tree-like index over sorted integer keys.

    Built bottom-up with a fixed fanout; blocks live in a flat
    dictionary addressed by block id, mimicking pages in memory.
    """

    def __init__(self, keys: Sequence[int], fanout: int = 16,
                 leaf_capacity: int = 64, block_bytes: int = 4096):
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        if leaf_capacity < 1:
            raise ValueError("leaf_capacity must be >= 1")
        sorted_keys = sorted(keys)
        if sorted_keys != list(keys):
            raise ValueError("keys must be sorted")
        if not sorted_keys:
            raise ValueError("store requires at least one key")
        self.fanout = fanout
        self.block_bytes = block_bytes
        self.blocks: dict[int, Block] = {}
        self._next_id = 0
        # Leaves: key -> value is identity*2+1 so tests can check payloads.
        level = []
        for start in range(0, len(sorted_keys), leaf_capacity):
            chunk = sorted_keys[start:start + leaf_capacity]
            leaf = self._new_block(keys=chunk,
                                   values=[k * 2 + 1 for k in chunk],
                                   min_key=chunk[0])
            level.append(leaf)
        # Internal levels, bottom-up.  A child's smallest reachable key
        # (min_key) supplies the separator, so single-key internal
        # blocks and deep trees route correctly.
        while len(level) > 1:
            parents = []
            for start in range(0, len(level), fanout):
                group = level[start:start + fanout]
                separators = [blk.min_key for blk in group[1:]]
                parent = self._new_block(
                    keys=separators,
                    children=[blk.block_id for blk in group],
                    min_key=group[0].min_key)
                parents.append(parent)
            level = parents
        self.root_id = level[0].block_id

    def _new_block(self, keys: list[int], children: list[int] = None,
                   values: list[int] = None, min_key: int = 0) -> Block:
        block = Block(self._next_id, keys, children or [], values or [],
                      nbytes=self.block_bytes, min_key=min_key)
        self.blocks[self._next_id] = block
        self._next_id += 1
        return block

    @property
    def height(self) -> int:
        """Number of blocks on a root-to-leaf path."""
        depth, block = 1, self.blocks[self.root_id]
        while not block.is_leaf:
            block = self.blocks[block.children[0]]
            depth += 1
        return depth

    def traverse(self, key: int) -> list[Block]:
        """Root-to-leaf path of blocks visited for ``key``."""
        path = []
        block = self.blocks[self.root_id]
        while True:
            path.append(block)
            if block.is_leaf:
                return path
            index = bisect.bisect_right(block.keys, key)
            block = self.blocks[block.children[index]]

    def lookup(self, key: int) -> Optional[int]:
        """Pure lookup (no simulation): the stored value or None."""
        leaf = self.traverse(key)[-1]
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return None


def chase_on_cpu(store: HierarchicalBlockStore, key: int,
                 socket: CPUSocket, cache: Optional[LRUCache] = None,
                 stream_id: int = 0) -> Generator:
    """Traverse on the CPU: each block crosses memory bus + caches.

    An optional :class:`LRUCache` models the LLC holding hot upper
    levels; cached blocks skip the memory-bus crossing (but the CPU
    still inspects them).  Returns the lookup result.
    """
    core = socket.core(stream_id)
    for block in store.traverse(key):
        hit = cache.access(block.block_id) if cache is not None else False
        if not hit:
            yield from socket.memory_read(block.nbytes, stream_id=stream_id)
        yield from core.execute(OpKind.POINTER_CHASE, block.nbytes)
    return store.lookup(key)


def chase_near_memory(store: HierarchicalBlockStore, key: int,
                      accelerator: Device, socket: CPUSocket,
                      stream_id: int = 0) -> Generator:
    """Traverse near memory: only the leaf moves toward the CPU (§5.4).

    The accelerator walks every level (charged at its pointer-chase
    rate, internal to the memory system), then a single leaf block
    crosses the controller and caches to the requesting core.
    Returns the lookup result.
    """
    path = store.traverse(key)
    traversal_bytes = sum(block.nbytes for block in path)
    yield from accelerator.execute(OpKind.POINTER_CHASE, traversal_bytes)
    leaf = path[-1]
    yield from socket.memory_read(leaf.nbytes, stream_id=stream_id)
    return store.lookup(key)


class FreeList:
    """A linked free-list, the target of §5.4's list-maintenance unit.

    Nodes are block ids; a garbage-collection pass walks the list and
    unlinks dead nodes.  Implemented for real so correctness of the
    offloaded version is checkable.
    """

    def __init__(self, node_ids: Sequence[int], node_bytes: int = 64):
        self.nodes = list(node_ids)
        self.node_bytes = node_bytes

    def collect(self, dead: set[int]) -> int:
        """Unlink all nodes in ``dead``; returns how many were removed."""
        before = len(self.nodes)
        self.nodes = [n for n in self.nodes if n not in dead]
        return before - len(self.nodes)


def gc_on_cpu(free_list: FreeList, dead: set[int],
              socket: CPUSocket, stream_id: int = 0) -> Generator:
    """Garbage-collect on the CPU: the whole list streams to the core."""
    total = len(free_list.nodes) * free_list.node_bytes
    yield from socket.memory_read(total, stream_id=stream_id)
    core = socket.core(stream_id)
    yield from core.execute(OpKind.LIST_MAINTENANCE, total)
    return free_list.collect(dead)


def gc_near_memory(free_list: FreeList, dead: set[int],
                   accelerator: Device, trace: Trace) -> Generator:
    """Garbage-collect near memory: nothing crosses toward the CPU."""
    total = len(free_list.nodes) * free_list.node_bytes
    yield from accelerator.execute(OpKind.LIST_MAINTENANCE, total)
    removed = free_list.collect(dead)
    trace.add("nearmem.gc.removed", removed)
    return removed
