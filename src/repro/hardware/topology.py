"""The fabric: devices and links arranged in a topology graph.

A :class:`Fabric` owns the simulator, the trace, a set of named
devices, and an undirected graph whose nodes are *locations* (strings)
and whose edges carry :class:`~repro.hardware.interconnect.Link`
objects.  Devices sit at locations; data moves between locations along
shortest paths, store-and-forward per chunk.

The fabric is the substrate every experiment shares: the CPU-centric
baseline and the data-flow engine run on the *same* fabric, so their
byte counters are directly comparable.
"""

from __future__ import annotations

from typing import Generator, Optional

import networkx as nx

from ..sim import Simulator, Trace
from .device import Device
from .interconnect import Link

__all__ = ["Fabric", "NoRouteError"]


class NoRouteError(Exception):
    """No path exists between two fabric locations."""


class Fabric:
    """A named collection of devices and links with routing."""

    def __init__(self, sim: Optional[Simulator] = None,
                 trace: Optional[Trace] = None):
        self.sim = sim if sim is not None else Simulator()
        self.trace = trace if trace is not None else Trace()
        self.graph = nx.Graph()
        self.devices: dict[str, Device] = {}
        self._locations: dict[str, str] = {}  # device name -> node
        self._route_cache: dict[tuple[str, str], list[Link]] = {}

    # -- construction ------------------------------------------------------

    def add_location(self, node: str) -> str:
        """Declare a passive location (e.g. ``dram0``, ``ssd0``)."""
        self.graph.add_node(node)
        self._route_cache.clear()
        return node

    def add_device(self, device: Device, at: str) -> Device:
        """Register ``device`` at location ``at`` (created if needed)."""
        if device.name in self.devices:
            raise ValueError(f"duplicate device name {device.name!r}")
        self.add_location(at)
        self.devices[device.name] = device
        self._locations[device.name] = at
        return device

    def connect(self, a: str, b: str, link: Link) -> Link:
        """Join locations ``a`` and ``b`` with ``link``."""
        self.graph.add_node(a)
        self.graph.add_node(b)
        self.graph.add_edge(a, b, link=link)
        self._route_cache.clear()
        return link

    # -- lookup ------------------------------------------------------------

    def device(self, name: str) -> Device:
        """The device registered under ``name``."""
        return self.devices[name]

    def location_of(self, device_name: str) -> str:
        """The location a device sits at."""
        return self._locations[device_name]

    def link_between(self, a: str, b: str) -> Link:
        """The direct link joining two adjacent locations."""
        return self.graph.edges[a, b]["link"]

    def device_slots(self) -> dict[str, int]:
        """Parallel slot count per device (for utilization math)."""
        return {name: device.slots
                for name, device in self.devices.items()}

    # -- routing -----------------------------------------------------------

    def route(self, src: str, dst: str) -> list[Link]:
        """Links along the shortest path from ``src`` to ``dst``.

        Locations may be given either as node names or device names.
        An empty list means src and dst share a location.
        """
        src = self._locations.get(src, src)
        dst = self._locations.get(dst, dst)
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        if src == dst:
            self._route_cache[key] = []
            return []
        try:
            nodes = nx.shortest_path(self.graph, src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise NoRouteError(f"no route {src!r} -> {dst!r}") from exc
        links = [self.graph.edges[a, b]["link"]
                 for a, b in zip(nodes, nodes[1:])]
        self._route_cache[key] = links
        return links

    def path_latency(self, src: str, dst: str) -> float:
        """Sum of link latencies along the route."""
        return sum(link.latency for link in self.route(src, dst))

    def path_bandwidth(self, src: str, dst: str) -> float:
        """Bottleneck bandwidth along the route (inf if colocated)."""
        links = self.route(src, dst)
        if not links:
            return float("inf")
        return min(link.bandwidth for link in links)

    def transfer_time(self, src: str, dst: str, nbytes: float) -> float:
        """Predicted uncontended store-and-forward transfer time."""
        return sum(link.transfer_time(nbytes) for link in self.route(src, dst))

    # -- movement ------------------------------------------------------------

    def transfer(self, src: str, dst: str, nbytes: float,
                 flow: str = "") -> Generator:
        """Move ``nbytes`` from ``src`` to ``dst`` (simulation process).

        The transfer crosses each link on the route in sequence
        (store-and-forward at the granularity the caller chunks at).
        """
        direction = f"{src}->{dst}"
        for link in self.route(src, dst):
            yield from link.transfer(nbytes, flow=flow,
                                     direction=direction)

    # -- reporting -----------------------------------------------------------

    def movement_report(self) -> dict[str, float]:
        """Bytes moved per segment class (network, pcie, membus, ...)."""
        prefix = "movement."
        return {key[len(prefix):]: value
                for key, value in sorted(self.trace.counters.items())
                if key.startswith(prefix)}

    def total_bytes_moved(self) -> float:
        """Bytes moved across all links (each hop counted once)."""
        return self.trace.total("movement.")

    def utilization_report(self, elapsed: Optional[float] = None
                           ) -> dict[str, float]:
        """Busy fraction of every device and link (0..1).

        The quantity §7.3's scheduler reasons about: which resources a
        workload actually saturated.
        """
        report: dict[str, float] = {}
        for name, device in sorted(self.devices.items()):
            report[f"device:{name}"] = device.utilization(elapsed)
        seen: set[str] = set()
        for _a, _b, data in self.graph.edges(data=True):
            link = data["link"]
            if link.name not in seen:
                seen.add(link.name)
                report[f"link:{link.name}"] = link.utilization(elapsed)
        return report

    def run(self, until: Optional[float] = None) -> None:
        """Run the underlying simulator."""
        self.sim.run(until=until)
