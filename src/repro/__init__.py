"""repro — data-flow query processing on simulated modern hardware.

A full reproduction of Lerner & Alonso, *Data Flow Architectures for
Data Processing on Modern Hardware* (ICDE 2024): a discrete-event
simulated fabric of heterogeneous devices (computational storage,
SmartNICs/DPUs, near-memory accelerators, CXL interconnects), a real
columnar relational engine with two execution models — the pull-based
CPU-centric Volcano baseline and the push-based data-flow architecture
the paper proposes — plus a movement-aware optimizer, an
interference-aware scheduler, and the cloud substrate (object store,
data-center tax, buffer pool, caches) the argument is set in.

Quickstart::

    from repro import (Catalog, DataflowEngine, Query, VolcanoEngine,
                       build_fabric, col, dataflow_spec, make_lineitem)

    fabric = build_fabric(dataflow_spec())
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(100_000))
    query = (Query.scan("lineitem")
             .filter(col("l_quantity") > 45)
             .project(["l_orderkey", "l_extendedprice"]))
    result = DataflowEngine(fabric, catalog).execute(query)
    print(result.rows, result.bytes_on("network"))
"""

from .cloud import (
    BufferPool,
    DataCache,
    EgressOp,
    IngressOp,
    ObjectStore,
    ResultCache,
    TaxConfig,
)
from .engine import (
    AggSpec,
    DataflowEngine,
    Placement,
    PlacementError,
    Query,
    QueryResult,
    VolcanoEngine,
    cpu_only,
    data_path_sites,
    pushdown,
)
from .flow import CreditChannel, RateLimiter, StageGraph
from .hardware import (
    FabricSpec,
    HeterogeneousFabric,
    OpKind,
    build_fabric,
    conventional_spec,
    dataflow_spec,
    rack_spec,
)
from .optimizer import CostModel, Optimizer, PlanCost
from .relational import (
    Catalog,
    Chunk,
    DataType,
    Field,
    Schema,
    Table,
    col,
    lit,
    make_customer,
    make_lineitem,
    make_orders,
    make_sensor_readings,
    make_uniform_table,
)
from .relational.sql import SqlError, parse_sql
from .scheduler import ScheduledQuery, Scheduler
from .sim import Simulator, Trace

__version__ = "1.0.0"

__all__ = [
    "AggSpec",
    "BufferPool",
    "Catalog",
    "Chunk",
    "CostModel",
    "CreditChannel",
    "DataCache",
    "DataType",
    "DataflowEngine",
    "EgressOp",
    "FabricSpec",
    "Field",
    "HeterogeneousFabric",
    "IngressOp",
    "ObjectStore",
    "OpKind",
    "Optimizer",
    "Placement",
    "PlacementError",
    "PlanCost",
    "Query",
    "QueryResult",
    "RateLimiter",
    "ResultCache",
    "ScheduledQuery",
    "Scheduler",
    "Schema",
    "Simulator",
    "StageGraph",
    "Table",
    "TaxConfig",
    "Trace",
    "VolcanoEngine",
    "build_fabric",
    "col",
    "conventional_spec",
    "cpu_only",
    "data_path_sites",
    "dataflow_spec",
    "lit",
    "make_customer",
    "make_lineitem",
    "make_orders",
    "make_sensor_readings",
    "make_uniform_table",
    "parse_sql",
    "pushdown",
    "rack_spec",
    "SqlError",
]
