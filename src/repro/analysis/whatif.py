"""The causal what-if engine (``repro whatif``).

COZ-style causal profiling made *exact*: instead of inferring virtual
speedups statistically, re-run the deterministic simulation with one
resource scaled at a time and measure the real end-to-end effect.

Three guarantees the acceptance tests pin down:

* **Bit-identical baseline** — before sweeping, every swept resource
  is perturbed by ``factor=1.0`` (an exact FP no-op on all hooks) and
  the run's event-order digest must equal the unperturbed run's.
  Any hidden nondeterminism or non-neutral hook shows up here.
* **Exact attribution** — the baseline's critical-path buckets
  reconcile exactly (rational arithmetic) with the query's elapsed
  time.
* **Answer stability** — perturbing hardware changes timing, never
  the answer: every perturbed run's result checksum must equal the
  baseline's.

A resource is **off-path** when even its largest swept improvement
yields less than :data:`OFFPATH_GAIN` (2%) end-to-end speedup — the
causal version of "don't optimize what the critical path never
touches".
"""

from __future__ import annotations

from typing import Optional, Sequence

from .scenarios import SCENARIOS, run_scenario

__all__ = [
    "WHATIF_SCHEMA",
    "DEFAULT_FACTORS",
    "OFFPATH_GAIN",
    "parse_vary",
    "run_whatif",
    "whatif_violations",
    "optimizer_crosscheck",
]

WHATIF_SCHEMA = "repro.whatif/v1"
"""Schema identifier embedded in what-if JSON artifacts."""

DEFAULT_FACTORS = (1.25, 1.5, 2.0, 4.0)
"""Improvement factors swept per resource."""

OFFPATH_GAIN = 0.02
"""Minimum best-case relative gain for a resource to be on-path."""


def parse_vary(text: str) -> list[tuple[str, float]]:
    """Parse ``"nic.bw=2x,cxl.lat=0.5x"`` into (resource, factor).

    Factors are *raw* multipliers on the underlying quantity (a
    ``lat`` factor below 1 is an improvement); the trailing ``x`` is
    optional.
    """
    out: list[tuple[str, float]] = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(
                f"bad --vary item {item!r} (expected resource=FACTORx)")
        resource, _, factor_text = item.partition("=")
        factor_text = factor_text.strip().rstrip("xX")
        try:
            factor = float(factor_text)
        except ValueError as exc:
            raise ValueError(
                f"bad --vary factor {factor_text!r} "
                f"for {resource.strip()!r}") from exc
        if factor <= 0:
            raise ValueError(
                f"--vary factor for {resource.strip()!r} must be "
                "positive")
        out.append((resource.strip(), factor))
    return out


def _improvement_to_raw(resource: str, factor: float) -> float:
    """An *improvement* factor as a raw quantity multiplier.

    Improving bandwidth or compute speed multiplies the quantity;
    improving latency divides it.
    """
    return 1.0 / factor if resource.endswith(".lat") else factor


def run_whatif(query: str, engine: str = "dataflow",
               rows: Optional[int] = None,
               factors: Sequence[float] = DEFAULT_FACTORS,
               resources: Optional[Sequence[str]] = None,
               vary: Sequence[tuple[str, float]] = ()) -> dict:
    """Run the full causal what-if analysis for one figure scenario.

    Returns the ``repro.whatif/v1`` payload: baseline identity
    verification, exact critical-path attribution, the per-resource
    sensitivity sweep, and (optionally) explicit ``--vary`` runs.
    """
    if query not in SCENARIOS:
        raise KeyError(f"unknown query {query!r} "
                       f"(have: {sorted(SCENARIOS)})")

    baseline = run_scenario(query, engine=engine, rows=rows)
    base_elapsed = baseline.result.elapsed
    base_checksum = baseline.result.checksum()
    base_digest = baseline.digest()

    available = baseline.fabric.perturbable_resources()
    if resources is None:
        swept = sorted(available)
    else:
        swept = [baseline.fabric.canonical_resource(r)
                 for r in resources]
        for resource in swept:
            if resource not in available:
                raise ValueError(
                    f"resource {resource!r} absent from the {query} "
                    f"fabric (have: {sorted(available)})")

    # Identity check: factor=1.0 on every swept knob must reproduce
    # the baseline bit for bit.
    identity = run_scenario(
        query, engine=engine, rows=rows,
        perturbations=tuple((r, 1.0) for r in swept))
    verified = identity.digest() == base_digest

    attribution = baseline.attribution()

    sensitivity = []
    checksum_stable = True
    for resource in swept:
        speedups: dict[str, float] = {}
        for factor in factors:
            raw = _improvement_to_raw(resource, factor)
            run = run_scenario(query, engine=engine, rows=rows,
                               perturbations=((resource, raw),))
            checksum_stable = (checksum_stable and
                               run.result.checksum() == base_checksum)
            elapsed = run.result.elapsed
            speedups[f"{factor:g}"] = (base_elapsed / elapsed
                                       if elapsed > 0 else 1.0)
        best = max(speedups.values())
        sensitivity.append({
            "resource": resource,
            "description": available[resource],
            "speedups": speedups,
            "max_speedup": best,
            "gain": best - 1.0,
            "on_path": (best - 1.0) >= OFFPATH_GAIN,
        })
    sensitivity.sort(key=lambda row: (-row["max_speedup"],
                                      row["resource"]))

    vary_results = []
    for resource, raw in vary:
        canonical = baseline.fabric.canonical_resource(resource)
        run = run_scenario(query, engine=engine, rows=rows,
                           perturbations=((canonical, raw),))
        vary_results.append({
            "resource": canonical,
            "factor": raw,
            "sim_time_s": run.result.elapsed,
            "speedup": (base_elapsed / run.result.elapsed
                        if run.result.elapsed > 0 else 1.0),
            "checksum_match":
                run.result.checksum() == base_checksum,
        })

    return {
        "schema": WHATIF_SCHEMA,
        "query": query,
        "title": baseline.scenario.title,
        "engine": engine,
        "rows": baseline.rows,
        "factors": [float(f) for f in factors],
        "baseline": {
            "sim_time_s": base_elapsed,
            "checksum": base_checksum,
            "digest": base_digest,
            "verified_identical": verified,
            "checksums_stable": checksum_stable,
            "attribution": attribution.to_dict(),
            "stalls": baseline.fabric.trace.stall_report(),
            "ledger": baseline.fabric.trace.movement_ledger(),
        },
        "sensitivity": sensitivity,
        "off_path": sorted(row["resource"] for row in sensitivity
                           if not row["on_path"]),
        "vary": vary_results,
    }


def whatif_violations(payload: dict) -> list[str]:
    """Schema/consistency violations in a what-if payload (CI gate)."""
    errors: list[str] = []
    if payload.get("schema") != WHATIF_SCHEMA:
        errors.append(f"schema is {payload.get('schema')!r}, "
                      f"expected {WHATIF_SCHEMA!r}")
    for key in ("query", "engine", "rows", "factors", "baseline",
                "sensitivity", "off_path"):
        if key not in payload:
            errors.append(f"missing top-level key {key!r}")
    baseline = payload.get("baseline", {})
    for key in ("sim_time_s", "checksum", "digest",
                "verified_identical", "attribution"):
        if key not in baseline:
            errors.append(f"baseline missing {key!r}")
    if baseline.get("sim_time_s", 0.0) <= 0.0:
        errors.append("baseline sim_time_s not positive")
    if not baseline.get("verified_identical", False):
        errors.append("perturbed baseline (factor=1.0) was not "
                      "bit-identical to the unperturbed run")
    if not baseline.get("checksums_stable", True):
        errors.append("a perturbed run changed the query answer")
    attribution = baseline.get("attribution", {})
    if not attribution.get("exact", False):
        errors.append("attribution buckets do not reconcile exactly "
                      "with elapsed time")
    for row in payload.get("sensitivity", []):
        if "resource" not in row or "speedups" not in row:
            errors.append("sensitivity row missing resource/speedups")
            continue
        for factor, speedup in row["speedups"].items():
            if speedup <= 0:
                errors.append(f"sensitivity[{row['resource']}] "
                              f"speedup at {factor} not positive")
    return errors


def optimizer_crosscheck(query: str, rows: Optional[int] = None,
                         k: int = 3) -> dict:
    """Cross-check the optimizer's cost ranking against simulation.

    Takes the optimizer's top-``k`` placements for the scenario's
    query (by predicted movement-cost makespan), simulates each one,
    and reports every pairwise ranking disagreement — cases where the
    cost model predicts A faster than B but simulation says otherwise.
    Each simulated plan also gets its exact critical-path dominant
    bucket, so a disagreement comes with the evidence of *where* the
    cost model's bottleneck guess went wrong.
    """
    from ..engine import DataflowEngine
    from ..hardware import build_fabric
    from ..optimizer import Optimizer
    from .critical_path import attribute_query
    from .scenarios import _catalog

    if query not in SCENARIOS:
        raise KeyError(f"unknown query {query!r} "
                       f"(have: {sorted(SCENARIOS)})")
    scenario = SCENARIOS[query]
    rows = rows if rows is not None else scenario.rows
    catalog = _catalog(rows)
    plan = scenario.query()

    rank_fabric = build_fabric(scenario.spec())
    ranked = Optimizer(rank_fabric, catalog).rank(plan)[:max(1, k)]

    plans = []
    for index, candidate in enumerate(ranked):
        fabric = build_fabric(scenario.spec())
        result = DataflowEngine(fabric, catalog).execute(
            plan, placement=candidate.placement)
        attribution = attribute_query(fabric.trace, result)
        plans.append({
            "rank": index,
            "placement": candidate.placement.name,
            "sites": sorted({site for chain in
                             candidate.placement.sites.values()
                             for site in chain}),
            "predicted_s": candidate.cost.bottleneck_time,
            "simulated_s": result.elapsed,
            "dominant": attribution.dominant(),
            "attribution_exact": attribution.exact,
        })

    disagreements = []
    for i, a in enumerate(plans):
        for b in plans[i + 1:]:
            # Cost model ranked a above b; simulation must agree
            # (within nothing — the sim is the ground truth here).
            if a["simulated_s"] > b["simulated_s"]:
                disagreements.append({
                    "predicted_faster": a["placement"],
                    "actually_faster": b["placement"],
                    "predicted_s": [a["predicted_s"],
                                    b["predicted_s"]],
                    "simulated_s": [a["simulated_s"],
                                    b["simulated_s"]],
                    "dominant": [a["dominant"], b["dominant"]],
                })
    return {
        "query": query,
        "rows": rows,
        "k": len(plans),
        "plans": plans,
        "disagreements": disagreements,
        "agreement": not disagreements,
    }
