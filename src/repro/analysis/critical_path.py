"""Exact critical-path attribution of a query's simulated time.

Given the fabric trace and a query window ``[started_at,
finished_at]``, partition the window into non-overlapping segments
and charge each segment to exactly one bucket:

``device:<name>``
    A processing element held an execution slot (``device.*`` spans).
``storage:<name>``
    The storage medium's channel was busy (``storage.*`` spans).
``nic:<name>``
    A NIC DMA engine was streaming bytes (``nic.*.dma`` spans).
``link:<name>``
    A link port was occupied — serialization time (``link.*`` spans).
``wait:wire``
    A chunk was in flight between its ``chunk_emit`` and matching
    ``chunk_recv`` (propagation latency) with nothing else busy.
``wait:credit``
    A sender was blocked on the credit window (``credit_stall``
    windows) with nothing else busy.
``wait:other``
    Nothing was recorded as busy: queueing for a resource before its
    busy span opened, scheduler gaps, end-of-stream draining.

When several sources overlap, the *highest-priority* one wins
(device > storage > nic > link > wire > credit), so compute hides
concurrent movement the way a pipelined system's critical path does.

Exactness: segment boundaries are converted to
:class:`fractions.Fraction` (exact for every float), so the per-bucket
sums telescope to precisely ``Fraction(finished_at) -
Fraction(started_at)`` — no float drift, asserted by the reconciliation
tests with zero tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional

from ..sim import EventKind, Trace

__all__ = ["Attribution", "attribute", "attribute_query",
           "raw_intervals"]


# Lower number wins when sources overlap.
_PRIO_DEVICE = 0
_PRIO_STORAGE = 1
_PRIO_NIC = 2
_PRIO_LINK = 3
_PRIO_WIRE = 4
_PRIO_CREDIT = 5

WAIT_OTHER = "wait:other"


def _span_bucket(name: str) -> Optional[tuple[str, int]]:
    """Map a span name to its attribution bucket (None = structural)."""
    if name.startswith("device."):
        return f"device:{name[len('device.'):]}", _PRIO_DEVICE
    if name.startswith("storage."):
        return f"storage:{name[len('storage.'):]}", _PRIO_STORAGE
    if name.startswith("nic."):
        return f"nic:{name[len('nic.'):]}", _PRIO_NIC
    if name.startswith("link."):
        return f"link:{name[len('link.'):]}", _PRIO_LINK
    return None  # query.*, graph.*, stage.* — structural, not busy.


@dataclass
class Attribution:
    """Exact partition of one query window into busy/wait buckets."""

    started_at: float
    finished_at: float
    #: Bucket name -> exact seconds (rational arithmetic).
    buckets: dict[str, Fraction] = field(default_factory=dict)
    #: Merged timeline of ``(start, end, bucket)`` segments, in order.
    segments: list[tuple[float, float, str]] = field(
        default_factory=list)

    @property
    def elapsed(self) -> Fraction:
        """The window width, exactly."""
        return Fraction(self.finished_at) - Fraction(self.started_at)

    @property
    def total(self) -> Fraction:
        """Sum of all bucket charges, exactly."""
        return sum(self.buckets.values(), Fraction(0))

    @property
    def exact(self) -> bool:
        """Whether the buckets reconcile exactly with the window."""
        return self.total == self.elapsed

    def bucket_seconds(self) -> dict[str, float]:
        """Buckets as floats, largest first."""
        return {name: float(value) for name, value in
                sorted(self.buckets.items(),
                       key=lambda kv: (-kv[1], kv[0]))}

    def shares(self) -> dict[str, float]:
        """Buckets as fractions of elapsed, largest first."""
        elapsed = self.elapsed
        if elapsed <= 0:
            return {}
        return {name: float(value / elapsed) for name, value in
                sorted(self.buckets.items(),
                       key=lambda kv: (-kv[1], kv[0]))}

    def dominant(self) -> str:
        """The bucket charged the most time (the bottleneck)."""
        if not self.buckets:
            return WAIT_OTHER
        return max(self.buckets.items(),
                   key=lambda kv: (kv[1], kv[0]))[0]

    def to_dict(self) -> dict:
        """JSON-ready form (floats; exactness recorded as a flag)."""
        return {
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "elapsed_s": float(self.elapsed),
            "exact": self.exact,
            "dominant": self.dominant(),
            "buckets": self.bucket_seconds(),
            "shares": self.shares(),
        }


def raw_intervals(trace: Trace
                  ) -> list[tuple[float, Optional[float], str, int]]:
    """Every busy/wait interval source, *unclipped*.

    One pass over the trace's spans and event ring; the result can be
    handed to :func:`attribute` via ``intervals=`` to amortize the
    collection cost across many windows (the tail-exemplar path, which
    attributes dozens of query windows against one trace).  ``end`` is
    ``None`` for a still-open span (clipped to the window at
    attribution time).
    """
    out: list[tuple[float, Optional[float], str, int]] = []
    for name, spans in trace.spans.items():
        mapped = _span_bucket(name)
        if mapped is None:
            continue
        bucket, prio = mapped
        for span in spans:
            out.append((span.start, span.end, bucket, prio))

    # Wire propagation: emit -> recv, paired by flow id.
    emits: dict[int, float] = {}
    for event in trace.events:
        if event.kind == EventKind.CHUNK_EMIT and event.flow_id:
            emits[event.flow_id] = event.ts
        elif event.kind == EventKind.CHUNK_RECV and event.flow_id:
            sent = emits.pop(event.flow_id, None)
            if sent is not None:
                out.append((sent, event.ts, "wait:wire", _PRIO_WIRE))
        elif event.kind == EventKind.CREDIT_STALL and event.dur > 0:
            out.append((event.ts, event.ts + event.dur,
                        "wait:credit", _PRIO_CREDIT))
    return out


def _clip(intervals, q0: float, q1: float
          ) -> list[tuple[float, float, str, int]]:
    """Clip raw intervals to ``[q0, q1]``, dropping empty results."""
    out: list[tuple[float, float, str, int]] = []
    for start, end, bucket, prio in intervals:
        end = q1 if end is None else end  # still-open span
        start = max(start, q0)
        end = min(end, q1)
        if end > start:
            out.append((start, end, bucket, prio))
    return out


def attribute(trace: Trace, started_at: float, finished_at: float,
              intervals: Optional[list] = None) -> Attribution:
    """Attribute every instant of ``[started_at, finished_at]``.

    Boundary sweep over the clipped interval set: between two adjacent
    boundaries exactly one set of sources is active, and the segment
    is charged to the highest-priority one (``wait:other`` when none).
    All widths are summed as :class:`~fractions.Fraction`, so the
    result reconciles exactly.

    ``intervals`` (from :func:`raw_intervals`) skips the per-call
    trace walk when attributing many windows against one trace.
    """
    attribution = Attribution(started_at=started_at,
                              finished_at=finished_at)
    q0, q1 = Fraction(started_at), Fraction(finished_at)
    if q1 <= q0:
        return attribution

    if intervals is None:
        intervals = raw_intervals(trace)
    intervals = _clip(intervals, started_at, finished_at)
    bounds = {q0, q1}
    starts: dict[Fraction, list[tuple[int, str]]] = {}
    ends: dict[Fraction, list[tuple[int, str]]] = {}
    for start, end, bucket, prio in intervals:
        fs, fe = Fraction(start), Fraction(end)
        bounds.add(fs)
        bounds.add(fe)
        starts.setdefault(fs, []).append((prio, bucket))
        ends.setdefault(fe, []).append((prio, bucket))

    points = sorted(bounds)
    active: dict[tuple[int, str], int] = {}
    buckets: dict[str, Fraction] = {}
    raw_segments: list[tuple[Fraction, Fraction, str]] = []
    for left, right in zip(points, points[1:]):
        for key in ends.get(left, ()):
            count = active.get(key, 0) - 1
            if count > 0:
                active[key] = count
            else:
                active.pop(key, None)
        for key in starts.get(left, ()):
            active[key] = active.get(key, 0) + 1
        winner = min(active)[1] if active else WAIT_OTHER
        buckets[winner] = buckets.get(winner, Fraction(0)) + (
            right - left)
        if raw_segments and raw_segments[-1][2] == winner \
                and raw_segments[-1][1] == left:
            prev = raw_segments[-1]
            raw_segments[-1] = (prev[0], right, winner)
        else:
            raw_segments.append((left, right, winner))

    attribution.buckets = buckets
    attribution.segments = [(float(a), float(b), name)
                            for a, b, name in raw_segments]
    return attribution


def attribute_query(trace: Trace, result) -> Attribution:
    """Attribution for a :class:`~repro.engine.QueryResult` window."""
    return attribute(trace, result.started_at, result.finished_at)
