"""Exact critical-path attribution of a query's simulated time.

Given the fabric trace and a query window ``[started_at,
finished_at]``, partition the window into non-overlapping segments
and charge each segment to exactly one bucket:

``device:<name>``
    A processing element held an execution slot (``device.*`` spans).
``storage:<name>``
    The storage medium's channel was busy (``storage.*`` spans).
``nic:<name>``
    A NIC DMA engine was streaming bytes (``nic.*.dma`` spans).
``link:<name>``
    A link port was occupied — serialization time (``link.*`` spans).
``wait:wire``
    A chunk was in flight between its ``chunk_emit`` and matching
    ``chunk_recv`` (propagation latency) with nothing else busy.
``wait:credit``
    A sender was blocked on the credit window (``credit_stall``
    windows) with nothing else busy.
``wait:other``
    Nothing was recorded as busy: queueing for a resource before its
    busy span opened, scheduler gaps, end-of-stream draining.

When several sources overlap, the *highest-priority* one wins
(device > storage > nic > link > wire > credit), so compute hides
concurrent movement the way a pipelined system's critical path does.

Exactness: segment boundaries are converted to
:class:`fractions.Fraction` (exact for every float), so the per-bucket
sums telescope to precisely ``Fraction(finished_at) -
Fraction(started_at)`` — no float drift, asserted by the reconciliation
tests with zero tolerance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional

import numpy as np

from ..sim import EventKind, Trace

__all__ = ["Attribution", "IntervalIndex", "attribute",
           "attribute_query", "raw_intervals"]


# Lower number wins when sources overlap.
_PRIO_DEVICE = 0
_PRIO_STORAGE = 1
_PRIO_NIC = 2
_PRIO_LINK = 3
_PRIO_WIRE = 4
_PRIO_CREDIT = 5

WAIT_OTHER = "wait:other"


def _span_bucket(name: str) -> Optional[tuple[str, int]]:
    """Map a span name to its attribution bucket (None = structural)."""
    if name.startswith("device."):
        return f"device:{name[len('device.'):]}", _PRIO_DEVICE
    if name.startswith("storage."):
        return f"storage:{name[len('storage.'):]}", _PRIO_STORAGE
    if name.startswith("nic."):
        return f"nic:{name[len('nic.'):]}", _PRIO_NIC
    if name.startswith("link."):
        return f"link:{name[len('link.'):]}", _PRIO_LINK
    return None  # query.*, graph.*, stage.* — structural, not busy.


@dataclass
class Attribution:
    """Exact partition of one query window into busy/wait buckets."""

    started_at: float
    finished_at: float
    #: Bucket name -> exact seconds (rational arithmetic).
    buckets: dict[str, Fraction] = field(default_factory=dict)
    #: Merged timeline of ``(start, end, bucket)`` segments, in order.
    segments: list[tuple[float, float, str]] = field(
        default_factory=list)
    #: True when the trace's bounded event ring dropped events, so the
    #: wire/credit interval sources are incomplete for part of the
    #: window.  The arithmetic still reconciles (``exact`` stays
    #: true); the *inputs* are what's partial.
    partial: bool = False
    partial_reason: str = ""

    @property
    def elapsed(self) -> Fraction:
        """The window width, exactly."""
        return Fraction(self.finished_at) - Fraction(self.started_at)

    @property
    def total(self) -> Fraction:
        """Sum of all bucket charges, exactly."""
        return sum(self.buckets.values(), Fraction(0))

    @property
    def exact(self) -> bool:
        """Whether the buckets reconcile exactly with the window."""
        return self.total == self.elapsed

    def bucket_seconds(self) -> dict[str, float]:
        """Buckets as floats, largest first."""
        return {name: float(value) for name, value in
                sorted(self.buckets.items(),
                       key=lambda kv: (-kv[1], kv[0]))}

    def shares(self) -> dict[str, float]:
        """Buckets as fractions of elapsed, largest first."""
        elapsed = self.elapsed
        if elapsed <= 0:
            return {}
        return {name: float(value / elapsed) for name, value in
                sorted(self.buckets.items(),
                       key=lambda kv: (-kv[1], kv[0]))}

    def dominant(self) -> str:
        """The bucket charged the most time (the bottleneck)."""
        if not self.buckets:
            return WAIT_OTHER
        return max(self.buckets.items(),
                   key=lambda kv: (kv[1], kv[0]))[0]

    def to_dict(self) -> dict:
        """JSON-ready form (floats; exactness recorded as a flag)."""
        return {
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "elapsed_s": float(self.elapsed),
            "exact": self.exact,
            "partial": self.partial,
            "partial_reason": self.partial_reason,
            "dominant": self.dominant(),
            "buckets": self.bucket_seconds(),
            "shares": self.shares(),
        }


def raw_intervals(trace: Trace
                  ) -> list[tuple[float, Optional[float], str, int]]:
    """Every busy/wait interval source, *unclipped*.

    One pass over the trace's spans and event ring; the result can be
    handed to :func:`attribute` via ``intervals=`` to amortize the
    collection cost across many windows (the tail-exemplar path, which
    attributes dozens of query windows against one trace).  ``end`` is
    ``None`` for a still-open span (clipped to the window at
    attribution time).
    """
    out: list[tuple[float, Optional[float], str, int]] = []
    for name, spans in trace.spans.items():
        mapped = _span_bucket(name)
        if mapped is None:
            continue
        bucket, prio = mapped
        for span in spans:
            out.append((span.start, span.end, bucket, prio))

    # Wire propagation: emit -> recv, paired by flow id.
    emits: dict[int, float] = {}
    for event in trace.events:
        if event.kind == EventKind.CHUNK_EMIT and event.flow_id:
            emits[event.flow_id] = event.ts
        elif event.kind == EventKind.CHUNK_RECV and event.flow_id:
            sent = emits.pop(event.flow_id, None)
            if sent is not None:
                out.append((sent, event.ts, "wait:wire", _PRIO_WIRE))
        elif event.kind == EventKind.CREDIT_STALL and event.dur > 0:
            out.append((event.ts, event.ts + event.dur,
                        "wait:credit", _PRIO_CREDIT))
    return out


class IntervalIndex:
    """Vectorized clip over one trace's raw interval list.

    Wrap :func:`raw_intervals` output once, then hand the index to
    :func:`attribute` for each window: the per-window clip becomes a
    numpy mask over the start/end arrays instead of a Python loop over
    every interval in the trace.  Comparison and min/max on float64
    match Python-float semantics exactly, so the clipped set is
    bit-identical to :func:`_clip` on the same list (open spans are
    held as ``+inf``, which clips to ``q1`` just as ``None`` does).
    """

    __slots__ = ("_starts", "_ends", "_meta")

    def __init__(self, intervals):
        self._meta = [(iv[2], iv[3]) for iv in intervals]
        self._starts = np.array([iv[0] for iv in intervals],
                                dtype=np.float64)
        self._ends = np.array(
            [math.inf if iv[1] is None else iv[1] for iv in intervals],
            dtype=np.float64)

    def clip(self, q0: float, q1: float
             ) -> list[tuple[float, float, str, int]]:
        starts, ends = self._starts, self._ends
        hit = np.nonzero((starts < q1) & (ends > q0))[0]
        if not len(hit):
            return []
        lo = np.maximum(starts[hit], q0).tolist()
        hi = np.minimum(ends[hit], q1).tolist()
        meta = self._meta
        out = []
        for i, j in enumerate(hit.tolist()):
            start, end = lo[i], hi[i]
            if end > start:
                bucket, prio = meta[j]
                out.append((start, end, bucket, prio))
        return out


def _clip(intervals, q0: float, q1: float
          ) -> list[tuple[float, float, str, int]]:
    """Clip raw intervals to ``[q0, q1]``, dropping empty results.

    Runs once per attributed window over every interval in the trace
    (the tail-exemplar path attributes dozens of windows), so the
    comparisons are inlined rather than ``max``/``min`` calls.
    """
    out: list[tuple[float, float, str, int]] = []
    append = out.append
    for start, end, bucket, prio in intervals:
        if end is None or end > q1:  # still-open span, or past window
            end = q1
        if start < q0:
            start = q0
        if end > start:
            append((start, end, bucket, prio))
    return out


def attribute(trace: Trace, started_at: float, finished_at: float,
              intervals: Optional[list] = None) -> Attribution:
    """Attribute every instant of ``[started_at, finished_at]``.

    Boundary sweep over the clipped interval set: between two adjacent
    boundaries exactly one set of sources is active, and the segment
    is charged to the highest-priority one (``wait:other`` when none).
    All widths are summed as :class:`~fractions.Fraction`, so the
    result reconciles exactly.

    ``intervals`` (from :func:`raw_intervals`) skips the per-call
    trace walk when attributing many windows against one trace.
    """
    attribution = Attribution(started_at=started_at,
                              finished_at=finished_at)
    dropped = trace.events.dropped
    if dropped > 0:
        # A bounded ring that overflowed lost CHUNK_EMIT/RECV and
        # CREDIT_STALL events: the wire/credit sources are truncated
        # and the window must not be presented as fully reconciled.
        attribution.partial = True
        attribution.partial_reason = (
            f"event ring dropped {dropped} events; wire/credit "
            "intervals incomplete")
    if finished_at <= started_at:
        return attribution

    if intervals is None:
        intervals = raw_intervals(trace)
    if isinstance(intervals, IntervalIndex):
        intervals = intervals.clip(started_at, finished_at)
    else:
        intervals = _clip(intervals, started_at, finished_at)
    # The sweep runs on raw floats: every float is exactly one
    # rational, so float comparison, hashing, and sorting agree with
    # their Fraction counterparts.  Only segment *widths* need exact
    # arithmetic, and segments tile the window, so per-bucket widths
    # telescope across each merged same-winner run — two Fraction
    # conversions per run instead of one per boundary point.
    bounds = {started_at, finished_at}
    starts: dict[float, list[tuple[int, str]]] = {}
    ends: dict[float, list[tuple[int, str]]] = {}
    for start, end, bucket, prio in intervals:
        bounds.add(start)
        bounds.add(end)
        starts.setdefault(start, []).append((prio, bucket))
        ends.setdefault(end, []).append((prio, bucket))

    points = sorted(bounds)
    active: dict[tuple[int, str], int] = {}
    raw_segments: list[tuple[float, float, str]] = []
    get_starts, get_ends = starts.get, ends.get
    for index in range(len(points) - 1):
        left = points[index]
        for key in get_ends(left, ()):
            count = active.get(key, 0) - 1
            if count > 0:
                active[key] = count
            else:
                active.pop(key, None)
        for key in get_starts(left, ()):
            active[key] = active.get(key, 0) + 1
        winner = min(active)[1] if active else WAIT_OTHER
        # Adjacent segments always share a boundary, so contiguous
        # same-winner segments merge into one run.
        if raw_segments and raw_segments[-1][2] == winner:
            prev = raw_segments[-1]
            raw_segments[-1] = (prev[0], points[index + 1], winner)
        else:
            raw_segments.append((left, points[index + 1], winner))

    buckets: dict[str, Fraction] = {}
    zero = Fraction(0)
    for lo, hi, winner in raw_segments:
        buckets[winner] = buckets.get(winner, zero) + (
            Fraction(hi) - Fraction(lo))

    attribution.buckets = buckets
    attribution.segments = raw_segments
    return attribution


def attribute_query(trace: Trace, result) -> Attribution:
    """Attribution for a :class:`~repro.engine.QueryResult` window."""
    return attribute(trace, result.started_at, result.finished_at)
