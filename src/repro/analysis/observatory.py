"""The runtime saturation observatory: continuous bound-resource view.

The what-if profiler (PR 5) proves which resource *one* query was
bound on; the serving telemetry (PR 7) proves *when* a tenant started
missing its SLO.  This module closes the remaining gap for ROADMAP
item 5 (feedback-driven re-placement): a runtime-wide, continuously
windowed view of what the fabric itself was doing while a serving
workload ran, derived purely from records the run already produces.

Three derived products, all pure observation:

* **Saturation series.**  The run's horizon is tiled into tumbling
  windows and every window is attributed with the same exact
  critical-path sweep queries use
  (:func:`~repro.analysis.critical_path.attribute` over one shared
  :class:`~repro.analysis.critical_path.IntervalIndex`).  Per window
  and per device pool that yields busy seconds, the queueing-delay
  contribution (``wait:other``), the credit-stall share
  (``wait:credit``) and wire time — and, from the clipped ``link.*``
  serialization spans times each link's bandwidth, bytes moved per
  link.  Window sums reconcile with the scalar reference path and
  telescope to the whole-horizon attribution *exactly* (Fraction
  arithmetic, tolerance 0, CI-gated).
* **Bound-resource classifier.**  Every completed query is tagged
  with the dominant bucket of its ``[arrival, finished]`` attribution
  (``device`` / ``storage`` / ``nic`` / ``link`` / ``wait:*``),
  rolled up into per-tenant × per-resource bound-share series.
* **Placement regret.**  The executed plan variant is re-scored
  against the cost model's alternatives on the *observed* fabric
  state: each variant's per-resource demand is inflated by the
  saturation actually measured over the query's execution window
  (``eff = max_r T_r / (1 - min(rho_r, RHO_CAP)) + latency``), and
  the regret is the gap between the chosen variant's effective cost
  and the observed-best one — exactly the ranking signal a
  feedback-driven optimizer consumes.

Observer effect: the observatory never touches the simulator, never
yields, and — unlike the telemetry's burn-rate alerts — never emits
into the event ring, so a run with it disabled is bit-identical in
checksums, completion order, *and* ring contents (CI-gated).

When the bounded event ring has dropped events the wire/credit
interval sources are incomplete; every attribution is then marked
``partial`` (with a reason string) and the payload carries the same
flag, so nothing silently reconciles over a truncated window.
"""

from __future__ import annotations

import hashlib
import json
from fractions import Fraction
from typing import Optional

from ..sim import Trace
from .critical_path import (Attribution, IntervalIndex, attribute,
                            raw_intervals)

__all__ = ["Observatory", "OBSERVATORY_SCHEMA", "bound_class",
           "effective_cost", "render_top"]

OBSERVATORY_SCHEMA = "repro.observatory/v1"

RHO_CAP = 0.95
"""Saturation is capped here before inflating a variant's cost, so a
fully-saturated pool inflates by at most ``1 / (1 - RHO_CAP)`` = 20x
instead of dividing by zero."""

REGRET_LEADERS = 10
"""How many worst-regret queries the payload keeps ranked."""


def bound_class(bucket: str) -> str:
    """Collapse a dominant bucket to its resource class.

    ``device:compute0.cpu`` -> ``device``; wait buckets keep their
    reason (``wait:other`` stays ``wait:other``) since *which* wait
    dominated is the interesting part.
    """
    if bucket.startswith("wait:"):
        return bucket
    return bucket.split(":", 1)[0]


def _pool_rho(shares: dict[str, float], kind: str, key: str) -> float:
    """The observed saturation of the pool(s) a cost-model key maps to.

    ``device_time`` keys are *site* names; the observed pools carry
    span-derived names (``device:compute0.nic.proc``,
    ``nic:compute0.nic.dma``, ``storage:storage.media``), so a site
    matches any pool it prefixes.  ``link_time`` keys are link names
    and match exactly.  Several matching pools take the max — the
    variant queues behind the most saturated one.
    """
    if kind == "link":
        return shares.get(f"link:{key}", 0.0)
    rho = 0.0
    exact = (f"device:{key}", f"storage:{key}")
    prefixes = (f"device:{key}.", f"nic:{key}", f"storage:{key}.")
    for pool, value in shares.items():
        if pool in exact or pool.startswith(prefixes):
            rho = max(rho, value)
    return rho


def effective_cost(cost, shares: dict[str, float],
                   rho_cap: float = RHO_CAP) -> float:
    """A plan variant's bottleneck time on the *observed* fabric.

    The cost model's per-resource busy seconds, each inflated by the
    measured saturation of the pool it lands on::

        eff = max_r  T_r / (1 - min(rho_r, rho_cap))  +  latency

    With every ``rho`` at 0 this reduces exactly to
    :attr:`~repro.optimizer.cost.PlanCost.bottleneck_time`.
    """
    floor = 1.0 - rho_cap
    worst = 0.0
    for site, seconds in cost.device_time.items():
        rho = min(_pool_rho(shares, "device", site), rho_cap)
        worst = max(worst, seconds / max(1.0 - rho, floor))
    for link, seconds in cost.link_time.items():
        rho = min(_pool_rho(shares, "link", link), rho_cap)
        worst = max(worst, seconds / max(1.0 - rho, floor))
    return worst + cost.latency


class Observatory:
    """Continuous saturation/bound/regret view over one serving run.

    The :class:`~repro.serve.server.QueryServer` hands every completed
    query (record, planned variants, the executor's variant decision)
    to :meth:`on_complete`; :meth:`finalize` derives every series in
    one pass over the shared trace.  :meth:`payload` /
    :meth:`digest` produce the ``repro.observatory/v1`` artifact and
    :meth:`observatory_violations` recomputes everything through the
    scalar reference path at tolerance 0.
    """

    def __init__(self, tenants, trace: Trace,
                 window_s: float = 0.005,
                 link_bandwidth: Optional[dict[str, float]] = None,
                 rho_cap: float = RHO_CAP,
                 regret_leaders: int = REGRET_LEADERS):
        if window_s <= 0:
            raise ValueError("observatory window must be positive")
        self.trace = trace
        self.window_s = window_s
        self.link_bandwidth = dict(link_bandwidth or {})
        self.rho_cap = rho_cap
        self.regret_leaders = regret_leaders
        self.tenant_names = sorted(tenants)
        #: (record, variants, decision) per completed query, in
        #: completion order.
        self._completed: list[tuple] = []
        self._finalized = False
        self._edges: list[float] = []
        #: Exact per-window bucket charges (Fraction seconds).
        self._window_buckets: list[dict[str, Fraction]] = []
        self._link_bytes: list[dict[str, float]] = []
        self._bound: list[dict] = []
        self._regret: list[dict] = []
        self._horizon = 0.0
        self._raw: list = []
        self._index: Optional[IntervalIndex] = None

    # -- lifecycle hook (called by QueryServer at completion) --------------

    def on_complete(self, record, variants=None, decision=None) -> None:
        """Remember one completed query; all derivation is deferred."""
        self._completed.append((record, variants or [], decision))

    # -- derivation --------------------------------------------------------

    def _window_of(self, ts: float) -> int:
        """The window index containing ``ts`` (clamped to the run)."""
        if not self._edges:
            return 0
        return min(int(ts / self.window_s), len(self._edges) - 2)

    def finalize(self, now: float) -> None:
        """Derive every series from the trace; idempotent per run."""
        if self._finalized:
            return
        self._horizon = max(now, self.trace.clock)
        self._raw = raw_intervals(self.trace)
        self._index = IntervalIndex(self._raw)
        self._edges = self._tile(self._horizon)
        for i in range(len(self._edges) - 1):
            att = attribute(self.trace, self._edges[i],
                            self._edges[i + 1], intervals=self._index)
            self._window_buckets.append(att.buckets)
        self._link_bytes = self._fold_link_bytes()
        self._classify()
        self._score_regret()
        self._finalized = True

    def _tile(self, horizon: float) -> list[float]:
        """Window edges tiling ``[0, horizon]`` exactly."""
        if horizon <= 0:
            return []
        edges = [0.0]
        i = 1
        while i * self.window_s < horizon:
            edges.append(i * self.window_s)
            i += 1
        edges.append(horizon)
        return edges

    def _fold_link_bytes(self) -> list[dict[str, float]]:
        """Per-window bytes per link from clipped serialization spans.

        Every ``link.*`` span is one chunk's serialization window
        (width = nbytes / bandwidth), so clipped width × bandwidth is
        exactly the bytes that crossed the link inside the window —
        a chunk straddling an edge splits its bytes proportionally.
        """
        out: list[dict[str, float]] = [
            {} for _ in range(len(self._edges) - 1)]
        links = [(start, end, bucket[len("link:"):])
                 for start, end, bucket, _prio in self._raw
                 if bucket.startswith("link:") and end is not None]
        for start, end, link in links:
            bandwidth = self.link_bandwidth.get(link)
            if bandwidth is None:
                continue
            first = self._window_of(start)
            for i in range(first, len(out)):
                w0, w1 = self._edges[i], self._edges[i + 1]
                if w0 >= end:
                    break
                overlap = min(end, w1) - max(start, w0)
                if overlap > 0:
                    cell = out[i]
                    cell[link] = cell.get(link, 0.0) \
                        + overlap * bandwidth
        return out

    def _query_attribution(self, record, started: float,
                           finished: float) -> Attribution:
        return attribute(self.trace, started, finished,
                         intervals=self._index)

    def _classify(self) -> None:
        """Tag every completed query with its dominant bound bucket."""
        for record, _variants, _decision in self._completed:
            att = self._query_attribution(record, record.arrival,
                                          record.finished)
            dominant = att.dominant()
            shares = att.shares()
            self._bound.append({
                "name": record.name,
                "tenant": record.tenant,
                "window": self._window_of(record.finished),
                "bucket": dominant,
                "class": bound_class(dominant),
                "share": shares.get(dominant, 0.0),
            })

    def _regret_entry(self, record, variants, decision
                      ) -> Optional[dict]:
        """Score one executed query against its plan alternatives."""
        if not variants:
            return None
        att = self._query_attribution(record, record.started,
                                      record.finished)
        shares = att.shares()
        chosen_name = (decision.chosen if decision is not None
                       else record.variant_name)
        effs = [(effective_cost(v.cost, shares, self.rho_cap),
                 v.placement.name) for v in variants]
        chosen_eff = next((eff for eff, name in effs
                           if name == chosen_name), effs[0][0])
        best_eff, best_name = min(effs)
        regret = chosen_eff - best_eff
        return {
            "name": record.name,
            "tenant": record.tenant,
            "window": self._window_of(record.finished),
            "chosen": chosen_name,
            "best": best_name,
            "chosen_eff_s": chosen_eff,
            "best_eff_s": best_eff,
            "regret_s": regret,
            "regret_ratio": regret / best_eff if best_eff > 0 else 0.0,
        }

    def _score_regret(self) -> None:
        for record, variants, decision in self._completed:
            entry = self._regret_entry(record, variants, decision)
            if entry is not None:
                self._regret.append(entry)

    # -- artifacts ---------------------------------------------------------

    @property
    def windows(self) -> int:
        return max(len(self._edges) - 1, 0)

    def _series(self) -> list[dict]:
        out = []
        for i, buckets in enumerate(self._window_buckets):
            w0, w1 = self._edges[i], self._edges[i + 1]
            width = Fraction(w1) - Fraction(w0)
            pools = {name: float(value) for name, value in
                     sorted(buckets.items())}
            saturation = {name: float(value / width) for name, value
                          in sorted(buckets.items())} if width > 0 \
                else {}
            out.append({
                "window": i,
                "start": w0,
                "end": w1,
                "pools": pools,
                "saturation": saturation,
                "link_bytes": dict(sorted(
                    self._link_bytes[i].items())),
            })
        return out

    def _bound_rollup(self) -> dict:
        by_tenant: dict[str, dict[str, int]] = {
            t: {} for t in self.tenant_names}
        series: list[dict] = [
            {"window": i, "tenants": {}} for i in range(self.windows)]
        for entry in self._bound:
            tenant, cls = entry["tenant"], entry["class"]
            cell = by_tenant.setdefault(tenant, {})
            cell[cls] = cell.get(cls, 0) + 1
            windowed = series[entry["window"]]["tenants"]
            wcell = windowed.setdefault(tenant, {})
            wcell[cls] = wcell.get(cls, 0) + 1
        return {
            "queries": list(self._bound),
            "by_tenant": {t: dict(sorted(c.items()))
                          for t, c in sorted(by_tenant.items())},
            "series": series,
        }

    def _regret_rollup(self) -> dict:
        by_tenant: dict[str, dict] = {}
        for entry in self._regret:
            cell = by_tenant.setdefault(entry["tenant"], {
                "queries": 0, "switch_opportunities": 0,
                "total_regret_s": 0.0, "max_regret_s": 0.0})
            cell["queries"] += 1
            if entry["best"] != entry["chosen"]:
                cell["switch_opportunities"] += 1
            cell["total_regret_s"] += entry["regret_s"]
            cell["max_regret_s"] = max(cell["max_regret_s"],
                                       entry["regret_s"])
        leaders = sorted(self._regret,
                         key=lambda e: (-e["regret_s"], e["name"]))
        return {
            "rho_cap": self.rho_cap,
            "queries": list(self._regret),
            "by_tenant": dict(sorted(by_tenant.items())),
            "leaders": leaders[:self.regret_leaders],
        }

    def payload(self) -> dict:
        """The canonical ``repro.observatory/v1`` document."""
        if not self._finalized:
            raise RuntimeError("finalize() the observatory first")
        dropped = self.trace.events.dropped
        totals: dict[str, Fraction] = {}
        for buckets in self._window_buckets:
            for name, value in buckets.items():
                totals[name] = totals.get(name, Fraction(0)) + value
        return {
            "schema": OBSERVATORY_SCHEMA,
            "window_s": self.window_s,
            "windows": self.windows,
            "horizon_s": self._horizon,
            "events_dropped": dropped,
            "partial": dropped > 0,
            "partial_reason": (
                f"event ring dropped {dropped} events; wire/credit "
                "intervals incomplete" if dropped > 0 else ""),
            "pools": sorted(totals),
            "totals": {name: float(value)
                       for name, value in sorted(totals.items())},
            "series": self._series(),
            "bound": self._bound_rollup(),
            "regret": self._regret_rollup(),
        }

    def digest(self) -> str:
        """SHA-256 over the canonical JSON payload (bit-reproducible)."""
        canon = json.dumps(self.payload(), sort_keys=True,
                           separators=(",", ":"))
        return hashlib.sha256(canon.encode()).hexdigest()

    # -- self-validation ---------------------------------------------------

    def observatory_violations(self, records,
                               query_sample: int = 25) -> list[str]:
        """Every observatory invariant, recomputed from scratch.

        [] = exact.  All at tolerance 0 (Fraction arithmetic):

        * every window's vectorized attribution equals the scalar
          reference path (:func:`~repro.analysis.critical_path._clip`)
          and tiles its window exactly;
        * window sums telescope to the whole-horizon attribution;
        * the first ``query_sample`` completed queries' own
          ``attribute()`` buckets equal their window-clipped sums;
        * every bound tag and regret entry is reproduced by an
          independent recomputation;
        * the ``partial`` flag agrees with the ring's drop counter.
        """
        if not self._finalized:
            return ["observatory never finalized"]
        errors: list[str] = []
        totals: dict[str, Fraction] = {}
        for i, buckets in enumerate(self._window_buckets):
            w0, w1 = self._edges[i], self._edges[i + 1]
            reference = attribute(self.trace, w0, w1,
                                  intervals=list(self._raw))
            if reference.buckets != buckets:
                errors.append(
                    f"window {i}: vectorized buckets diverge from "
                    "the scalar reference path")
            width = Fraction(w1) - Fraction(w0)
            if sum(buckets.values(), Fraction(0)) != width:
                errors.append(f"window {i}: buckets do not tile the "
                              "window exactly")
            for name, value in buckets.items():
                totals[name] = totals.get(name, Fraction(0)) + value
        if self._edges:
            whole = attribute(self.trace, self._edges[0],
                              self._edges[-1],
                              intervals=list(self._raw))
            if whole.buckets != totals:
                errors.append("window sums do not telescope to the "
                              "whole-horizon attribution")
        errors.extend(self._query_reconciliation(query_sample))
        errors.extend(self._classifier_violations(records))
        errors.extend(self._regret_violations())
        dropped = self.trace.events.dropped
        if (dropped > 0) != (self.payload()["partial"]):
            errors.append("partial flag disagrees with the ring's "
                          "drop counter")
        return errors

    def _query_reconciliation(self, sample: int) -> list[str]:
        """Per-query attribute() == its window-clipped sums, exactly."""
        errors: list[str] = []
        for record, _v, _d in self._completed[:sample]:
            whole = attribute(self.trace, record.arrival,
                              record.finished, intervals=self._index)
            pieces: dict[str, Fraction] = {}
            lo = self._window_of(record.arrival)
            hi = self._window_of(record.finished)
            for i in range(lo, hi + 1):
                q0 = max(record.arrival, self._edges[i])
                q1 = min(record.finished, self._edges[i + 1])
                if q1 <= q0:
                    continue
                part = attribute(self.trace, q0, q1,
                                 intervals=self._index)
                for name, value in part.buckets.items():
                    pieces[name] = pieces.get(name, Fraction(0)) \
                        + value
            if pieces != whole.buckets:
                errors.append(
                    f"{record.name}: per-query attribution does not "
                    "equal its window-clipped sums")
        return errors

    def _classifier_violations(self, records) -> list[str]:
        errors: list[str] = []
        completed = [r for r in records if r.completed]
        if len(self._bound) != len(completed):
            errors.append(
                f"bound classifier tagged {len(self._bound)} queries "
                f"but {len(completed)} completed")
        tagged = sum(count
                     for cell in self._bound_rollup()[
                         "by_tenant"].values()
                     for count in cell.values())
        if tagged != len(self._bound):
            errors.append("per-tenant bound counts do not sum to the "
                          "tagged query count")
        for entry in self._bound:
            record = next((r for r, _v, _d in self._completed
                           if r.name == entry["name"]), None)
            if record is None:
                errors.append(f"bound entry {entry['name']} has no "
                              "completion record")
                continue
            att = self._query_attribution(record, record.arrival,
                                          record.finished)
            if att.dominant() != entry["bucket"]:
                errors.append(
                    f"{entry['name']}: recorded bound bucket "
                    f"{entry['bucket']} != recomputed "
                    f"{att.dominant()}")
        return errors

    def _regret_violations(self) -> list[str]:
        errors: list[str] = []
        by_name = {entry["name"]: entry for entry in self._regret}
        for record, variants, decision in self._completed:
            fresh = self._regret_entry(record, variants, decision)
            entry = by_name.get(record.name)
            if fresh is None:
                if entry is not None:
                    errors.append(f"{record.name}: regret entry for "
                                  "a query with no variants")
                continue
            if entry != fresh:
                errors.append(f"{record.name}: regret entry is not "
                              "reproduced by recomputation")
                continue
            if entry["regret_s"] < 0:
                errors.append(f"{record.name}: negative regret")
        return errors


# ---------------------------------------------------------------------------
# repro top — text rendering (from the payload alone)
# ---------------------------------------------------------------------------

def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:,.0f} {unit}" if unit == "B" \
                else f"{value:,.1f} {unit}"
        value /= 1024
    return f"{value:,.1f} GiB"


def render_top(payload: dict, name: str = "",
               follow: bool = False, max_pools: int = 12) -> str:
    """Render one ``repro.observatory/v1`` payload as a text snapshot.

    Needs nothing but the payload (zero external fetches): the pool
    saturation table, the hottest tenants by bound class, and the
    regret leaderboard.  With ``follow``, a per-window playback of
    the snapshot precedes the summary.
    """
    lines: list[str] = []
    title = f"observatory — {name}" if name else "observatory"
    lines.append(f"{title}   {payload.get('schema', '')}")
    status = ("PARTIAL: " + payload.get("partial_reason", "")
              if payload.get("partial") else "ring complete")
    lines.append(
        f"horizon {payload.get('horizon_s', 0.0):.6f}s · "
        f"{payload.get('windows', 0)} windows × "
        f"{payload.get('window_s', 0.0) * 1e3:g} ms · {status}")
    series = payload.get("series", [])
    horizon = payload.get("horizon_s", 0.0) or 1.0
    totals = payload.get("totals", {})

    if follow and series:
        lines.append("")
        lines.append(f"{'win':>4} {'start (s)':>10} {'hottest pool':32}"
                     f" {'sat':>6} {'queue':>6} {'bytes moved':>14}")
        for entry in series:
            saturation = entry.get("saturation", {})
            busy = [(share, pool) for pool, share
                    in saturation.items()
                    if not pool.startswith("wait:")]
            top_share, top_pool = max(busy, default=(0.0, "-"))
            queue = saturation.get("wait:other", 0.0)
            moved = sum(entry.get("link_bytes", {}).values())
            lines.append(
                f"{entry['window']:>4} {entry['start']:>10.6f} "
                f"{top_pool:32} {top_share:>6.1%} {queue:>6.1%} "
                f"{_fmt_bytes(moved):>14}")

    lines.append("")
    lines.append(f"{'pool':34} {'busy (s)':>12} {'share':>7} "
                 f"{'peak win':>9} {'peak sat':>9}")
    ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
    for pool, seconds in ranked[:max_pools]:
        peak_win, peak_sat = 0, 0.0
        for entry in series:
            sat = entry.get("saturation", {}).get(pool, 0.0)
            if sat > peak_sat:
                peak_win, peak_sat = entry["window"], sat
        lines.append(f"{pool:34} {seconds:>12.6f} "
                     f"{seconds / horizon:>7.1%} {peak_win:>9} "
                     f"{peak_sat:>9.1%}")

    bound = payload.get("bound", {})
    by_tenant = bound.get("by_tenant", {})
    if by_tenant:
        classes = sorted({cls for cell in by_tenant.values()
                          for cls in cell})
        lines.append("")
        lines.append("bound queries by tenant (dominant resource "
                     "class):")
        header = f"{'tenant':12}" + "".join(f"{c:>14}"
                                            for c in classes)
        lines.append(header + f"{'total':>8}")
        hottest = sorted(by_tenant.items(),
                         key=lambda kv: (-sum(kv[1].values()), kv[0]))
        for tenant, cell in hottest:
            row = f"{tenant:12}" + "".join(
                f"{cell.get(c, 0):>14}" for c in classes)
            lines.append(row + f"{sum(cell.values()):>8}")

    regret = payload.get("regret", {})
    leaders = regret.get("leaders", [])
    lines.append("")
    lines.append("placement-regret leaders (effective cost on the "
                 "observed fabric):")
    if not leaders:
        lines.append("  none — no completed query had plan "
                     "alternatives to regret")
    else:
        lines.append(f"  {'query':30} {'tenant':10} {'chosen':10} "
                     f"{'best':10} {'regret (s)':>12} {'ratio':>7}")
        for entry in leaders:
            lines.append(
                f"  {entry['name']:30} {entry['tenant']:10} "
                f"{entry['chosen']:10} {entry['best']:10} "
                f"{entry['regret_s']:>12.9f} "
                f"{entry['regret_ratio']:>7.1%}")
        by_tenant_regret = regret.get("by_tenant", {})
        switches = sum(c.get("switch_opportunities", 0)
                       for c in by_tenant_regret.values())
        total = sum(c.get("total_regret_s", 0.0)
                    for c in by_tenant_regret.values())
        lines.append(
            f"  total regret {total:.9f}s over "
            f"{len(regret.get('queries', []))} scored queries "
            f"({switches} switch opportunities)")
    return "\n".join(lines)
