"""Multi-window SLO burn-rate monitoring for serving runs.

The serving telemetry (:mod:`repro.serve.telemetry`) folds every
completion into tumbling virtual-time windows; this module watches
those windows and answers the on-call question: *is this tenant
spending its error budget faster than it can afford?*

The mechanics are the standard SRE multi-window burn-rate alert:

* A tenant's **error budget** is ``1 - slo_target`` — the fraction of
  completions allowed to miss their latency SLO.
* The **burn rate** over a span of windows is the observed violation
  fraction divided by the budget: burn 1.0 means the budget is being
  spent exactly as provisioned; burn 2.0 means twice as fast.
* An alert **fires** when the burn rate over the *fast* span (last
  ``fast_windows`` windows) **and** the *slow* span (last
  ``slow_windows`` windows) both reach the threshold — the fast span
  makes the alert responsive, the slow span keeps one bad window from
  paging — and **resolves** when either drops back below it.

Edge semantics (pinned by tests):

* burn rates compare with ``>=`` — a tenant burning *exactly* at the
  threshold is alerting, not "one violation away";
* a span with zero completions has burn 0.0 — empty windows are
  silence, not division by zero (and an ongoing alert resolves);
* ``slo_target == 1.0`` means zero budget: any violation in the span
  is an infinite burn;
* a tenant that never completes anything never alerts.

Everything here is pure arithmetic over the windowed series, so the
alert stream is *reconstructible*: :func:`replay_alerts` recomputes
it from the series alone, and the serve-smoke CI gate asserts the
live monitor and the replay agree alert for alert.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SLOPolicy", "BurnRateMonitor", "burn_rate",
           "replay_alerts", "alert_mismatches"]


@dataclass(frozen=True)
class SLOPolicy:
    """Burn-rate alerting knobs for one tenant class."""

    target: float = 0.99       # fraction of completions within SLO
    threshold: float = 1.0     # burn rate at/above which alerts fire
    fast_windows: int = 3      # responsive span (windows)
    slow_windows: int = 12     # confirmation span (windows)

    def __post_init__(self):
        if not 0.0 < self.target <= 1.0:
            raise ValueError("slo target must be in (0, 1]")
        if self.threshold < 0.0:
            raise ValueError("burn threshold must be >= 0")
        if self.fast_windows < 1 or self.slow_windows < 1:
            raise ValueError("window spans must be >= 1")
        if self.fast_windows > self.slow_windows:
            raise ValueError("fast span must not exceed slow span")

    @property
    def budget(self) -> float:
        """The error budget: allowed violation fraction."""
        return 1.0 - self.target


def burn_rate(violations: int, completions: int,
              budget: float) -> float:
    """Observed violation fraction over ``budget`` (0.0 if idle)."""
    if completions <= 0:
        return 0.0
    fraction = violations / completions
    if budget <= 0.0:
        return float("inf") if fraction > 0.0 else 0.0
    return fraction / budget


class BurnRateMonitor:
    """Streaming multi-window burn-rate state machine (one tenant).

    Feed it *dense* windows in index order via :meth:`observe` — one
    call per tumbling window, empty windows included.  Each call
    returns the alert transition it caused (a dict) or ``None``.
    The full evaluation history stays on :attr:`evaluations`, so the
    windowed series a report serializes carries everything needed to
    replay the alert stream (:func:`replay_alerts`).
    """

    def __init__(self, policy: SLOPolicy):
        self.policy = policy
        self.burning = False
        #: One entry per observed window, in order:
        #: {"window", "fast_burn", "slow_burn", "burning"}.
        self.evaluations: list[dict] = []
        self._completions: list[int] = []
        self._violations: list[int] = []

    def _span_burn(self, span: int) -> float:
        completions = sum(self._completions[-span:])
        violations = sum(self._violations[-span:])
        return burn_rate(violations, completions, self.policy.budget)

    def observe(self, index: int, completions: int, violations: int,
                at: float) -> dict | None:
        """Fold window ``index`` in; returns a fired/resolved alert.

        ``at`` is the window's closing timestamp, carried onto the
        alert for trace emission.  Windows must arrive densely and in
        order (the telemetry layer guarantees this).
        """
        if index != len(self._completions):
            raise ValueError(
                f"windows must be observed densely in order: got "
                f"index {index}, expected {len(self._completions)}")
        self._completions.append(completions)
        self._violations.append(violations)
        fast = self._span_burn(self.policy.fast_windows)
        slow = self._span_burn(self.policy.slow_windows)
        burning = (fast >= self.policy.threshold
                   and slow >= self.policy.threshold)
        self.evaluations.append({
            "window": index,
            "fast_burn": fast,
            "slow_burn": slow,
            "burning": burning,
        })
        if burning == self.burning:
            return None
        self.burning = burning
        return {
            "window": index,
            "ts": at,
            "kind": "fired" if burning else "resolved",
            "fast_burn": fast,
            "slow_burn": slow,
            "threshold": self.policy.threshold,
        }


def replay_alerts(series: list[dict], policy: SLOPolicy,
                  window_s: float) -> list[dict]:
    """Recompute one tenant's alert stream from its windowed series.

    ``series`` is the dense per-window list the telemetry payload
    carries (each entry holding ``window``, ``completions`` and
    ``violations``).  Pure arithmetic — the reconstruction the
    alert-accounting CI gate diffs against the live alerts.
    """
    monitor = BurnRateMonitor(policy)
    out: list[dict] = []
    for entry in series:
        index = entry["window"]
        alert = monitor.observe(index, entry["completions"],
                                entry["violations"],
                                at=(index + 1) * window_s)
        if alert is not None:
            out.append(alert)
    return out


def alert_mismatches(tenant_series: dict[str, list[dict]],
                     policies: dict[str, SLOPolicy],
                     alerts: list[dict],
                     window_s: float) -> list[str]:
    """Diff a live alert stream against the series replay.

    ``alerts`` carry a ``tenant`` key; every alert must be
    reconstructible (same window, kind, and burn values) from the
    windowed series alone — and vice versa.  Returns human-readable
    mismatch strings ([] = exact).
    """
    errors: list[str] = []
    for tenant in sorted(tenant_series):
        expected = replay_alerts(tenant_series[tenant],
                                 policies[tenant], window_s)
        got = [
            {k: v for k, v in alert.items() if k != "tenant"}
            for alert in alerts if alert.get("tenant") == tenant]
        if expected != got:
            errors.append(
                f"{tenant}: alert stream not reconstructible from "
                f"windowed series (replay {len(expected)} alerts, "
                f"live {len(got)})")
    known = set(tenant_series)
    for alert in alerts:
        if alert.get("tenant") not in known:
            errors.append(f"alert for unknown tenant "
                          f"{alert.get('tenant')!r}")
    return errors
