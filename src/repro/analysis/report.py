"""Self-contained HTML attribution reports (``repro report``).

Renders the what-if payloads of :mod:`repro.analysis.whatif` into a
single HTML file with zero external dependencies — inline CSS, no
scripts, no fonts — so the file works as a CI artifact viewed
offline.  A machine-readable ``repro.whatif/v1`` JSON with the same
content is written alongside the HTML.
"""

from __future__ import annotations

import html
import json
import os
from typing import Sequence

from .whatif import WHATIF_SCHEMA

__all__ = ["render_report", "write_report"]

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1c2733;
       background: #fafbfc; }
h1 { font-size: 1.5rem; border-bottom: 2px solid #d0d7de;
     padding-bottom: .4rem; }
h2 { font-size: 1.2rem; margin-top: 2.2rem; }
h3 { font-size: 1rem; color: #57606a; }
table { border-collapse: collapse; margin: .6rem 0 1.2rem;
        font-size: .85rem; }
th, td { border: 1px solid #d0d7de; padding: .3rem .6rem;
         text-align: right; }
th { background: #eef1f4; }
td.name, th.name { text-align: left; font-family: ui-monospace,
                   'SF Mono', Menlo, monospace; }
.bar { display: inline-block; height: .7rem; background: #4078c0;
       vertical-align: middle; margin-right: .4rem; }
.bar.wait { background: #d1242f; }
.badge { display: inline-block; padding: .1rem .45rem;
         border-radius: .6rem; font-size: .75rem; color: #fff; }
.badge.ok { background: #1a7f37; }
.badge.bad { background: #d1242f; }
.badge.off { background: #9a6700; }
.meta { color: #57606a; font-size: .85rem; }
"""


def _esc(value) -> str:
    return html.escape(str(value))


def _badge(ok: bool, yes: str, no: str) -> str:
    cls, text = ("ok", yes) if ok else ("bad", no)
    return f'<span class="badge {cls}">{_esc(text)}</span>'


def _attribution_table(attribution: dict) -> list[str]:
    elapsed = attribution.get("elapsed_s", 0.0) or 1.0
    out = ["<table><tr><th class=name>bucket</th>"
           "<th>seconds</th><th>share</th><th class=name></th></tr>"]
    for bucket, seconds in attribution.get("buckets", {}).items():
        share = seconds / elapsed
        wait = " wait" if bucket.startswith("wait:") else ""
        width = max(1, round(share * 240))
        out.append(
            f"<tr><td class=name>{_esc(bucket)}</td>"
            f"<td>{seconds:.9f}</td><td>{share * 100:.2f}%</td>"
            f'<td class=name><span class="bar{wait}" '
            f'style="width:{width}px"></span></td></tr>')
    out.append("</table>")
    return out


def _sensitivity_table(payload: dict) -> list[str]:
    factors = [f"{f:g}" for f in payload.get("factors", [])]
    out = ["<table><tr><th class=name>resource</th>"]
    out += [f"<th>&times;{_esc(f)}</th>" for f in factors]
    out.append("<th>max speedup</th><th>verdict</th></tr>")
    for row in payload.get("sensitivity", []):
        cells = "".join(
            f"<td>{row['speedups'].get(f, 1.0):.3f}&times;</td>"
            for f in factors)
        verdict = ('<span class="badge ok">on-path</span>'
                   if row.get("on_path")
                   else '<span class="badge off">off-path</span>')
        out.append(
            f"<tr><td class=name>{_esc(row['resource'])}</td>{cells}"
            f"<td>{row['max_speedup']:.3f}&times;</td>"
            f"<td>{verdict}</td></tr>")
    out.append("</table>")
    return out


def _stalls_table(stalls: dict) -> list[str]:
    if not stalls:
        return ["<p class=meta>no stalls recorded — the pipeline "
                "never blocked</p>"]
    out = ["<table><tr><th class=name>stage</th>"
           "<th>credit-starved</th><th>downstream-full</th>"
           "<th>device-busy</th><th>total</th></tr>"]
    for stage, stats in stalls.items():
        out.append(
            f"<tr><td class=name>{_esc(stage)}</td>"
            f"<td>{stats.get('credit_starved_s', 0.0):.6f}</td>"
            f"<td>{stats.get('downstream_full_s', 0.0):.6f}</td>"
            f"<td>{stats.get('device_busy_s', 0.0):.6f}</td>"
            f"<td>{stats.get('total_s', 0.0):.6f}</td></tr>")
    out.append("</table>")
    return out


def _ledger_table(ledger: list, max_rows: int = 30) -> list[str]:
    if not ledger:
        return ["<p class=meta>no link crossings recorded</p>"]
    out = ["<table><tr><th class=name>link</th>"
           "<th class=name>operator</th><th class=name>direction</th>"
           "<th>bytes</th><th>chunks</th></tr>"]
    for row in ledger[:max_rows]:
        out.append(
            f"<tr><td class=name>{_esc(row['link'])}</td>"
            f"<td class=name>{_esc(row['actor'])}</td>"
            f"<td class=name>{_esc(row['direction'])}</td>"
            f"<td>{row['bytes']:,.0f}</td>"
            f"<td>{row['chunks']:,.0f}</td></tr>")
    out.append("</table>")
    if len(ledger) > max_rows:
        out.append(f"<p class=meta>&hellip; {len(ledger)} ledger "
                   "rows total</p>")
    return out


def _query_section(payload: dict) -> list[str]:
    baseline = payload.get("baseline", {})
    attribution = baseline.get("attribution", {})
    out = [f"<h2>{_esc(payload.get('query'))} &mdash; "
           f"{_esc(payload.get('title', ''))}</h2>"]
    out.append(
        "<p class=meta>"
        f"engine {_esc(payload.get('engine'))} &middot; "
        f"{payload.get('rows', 0):,} rows &middot; "
        f"simulated {baseline.get('sim_time_s', 0.0):.6f} s &middot; "
        f"checksum <code>{_esc(baseline.get('checksum', '')[:12])}"
        "&hellip;</code> "
        + _badge(baseline.get("verified_identical", False),
                 "baseline bit-identical", "baseline NOT identical")
        + " "
        + _badge(attribution.get("exact", False),
                 "attribution exact", "attribution NOT exact")
        + "</p>")
    out.append("<h3>critical-path attribution</h3>")
    out += _attribution_table(attribution)
    out.append("<h3>per-resource sensitivity (virtual speedups)</h3>")
    out += _sensitivity_table(payload)
    off_path = payload.get("off_path", [])
    if off_path:
        out.append("<p class=meta>off-path (&lt;2% gain even at the "
                   "largest factor): "
                   + ", ".join(f"<code>{_esc(r)}</code>"
                               for r in off_path)
                   + "</p>")
    out.append("<h3>backpressure stalls</h3>")
    out += _stalls_table(baseline.get("stalls", {}))
    out.append("<h3>movement ledger</h3>")
    out += _ledger_table(baseline.get("ledger", []))
    return out


def render_report(payloads: Sequence[dict],
                  title: str = "Bottleneck attribution report") -> str:
    """Render what-if payloads as one self-contained HTML page."""
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        f"<p class=meta>schema {_esc(WHATIF_SCHEMA)} &middot; "
        f"{len(payloads)} quer"
        f"{'y' if len(payloads) == 1 else 'ies'}</p>",
    ]
    for payload in payloads:
        parts += _query_section(payload)
    parts.append("</body></html>")
    return "\n".join(parts)


def write_report(path: str, payloads: Sequence[dict],
                 title: str = "Bottleneck attribution report"
                 ) -> tuple[str, str]:
    """Write the HTML report and its JSON twin; return both paths.

    The JSON lands next to the HTML (same basename, ``.json``) and
    carries the raw ``repro.whatif/v1`` payloads for CI consumption.
    """
    html_text = render_report(payloads, title=title)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(html_text)
    json_path = os.path.splitext(path)[0] + ".json"
    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump({"schema": WHATIF_SCHEMA, "title": title,
                   "queries": list(payloads)}, fh, indent=1,
                  sort_keys=True)
        fh.write("\n")
    return path, json_path
