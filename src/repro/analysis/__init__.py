"""Post-hoc analysis of simulated runs (critical path, what-if).

Three layers on top of the observability substrate:

* :mod:`critical_path` — walk a query's event/span window and
  attribute every instant of simulated time to a
  ``device | link | wait-reason`` bucket, with the bucket sums
  reconciling *exactly* (rational arithmetic) to the query's elapsed
  time.
* :mod:`whatif` — the causal profiler: re-run the deterministic
  simulation with one resource scaled at a time and measure the real
  speedup, COZ-style but exact because the simulator is a model we
  can actually perturb.
* :mod:`report` — self-contained HTML attribution report plus the
  ``repro.whatif/v1`` JSON artifact for CI.
* :mod:`observatory` — continuous per-window saturation series,
  bound-resource classification, and placement-regret scoring over a
  serving run (the ``repro.observatory/v1`` artifact and ``repro
  top``).
* :mod:`slo` — multi-window SLO burn-rate monitoring over the serving
  telemetry's per-tenant windowed series, with a pure replay path so
  CI can assert the live alert stream is reconstructible.
"""

from .critical_path import (
    Attribution,
    IntervalIndex,
    attribute,
    attribute_query,
    raw_intervals,
)
from .observatory import (
    OBSERVATORY_SCHEMA,
    Observatory,
    bound_class,
    effective_cost,
    render_top,
)
from .slo import (
    BurnRateMonitor,
    SLOPolicy,
    alert_mismatches,
    burn_rate,
    replay_alerts,
)
from .scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioRun,
    run_digest,
    run_scenario,
)
from .whatif import (
    DEFAULT_FACTORS,
    OFFPATH_GAIN,
    WHATIF_SCHEMA,
    optimizer_crosscheck,
    parse_vary,
    run_whatif,
    whatif_violations,
)
from .report import render_report, write_report

__all__ = [
    "Attribution",
    "attribute",
    "attribute_query",
    "IntervalIndex",
    "raw_intervals",
    "OBSERVATORY_SCHEMA",
    "Observatory",
    "bound_class",
    "effective_cost",
    "render_top",
    "BurnRateMonitor",
    "SLOPolicy",
    "alert_mismatches",
    "burn_rate",
    "replay_alerts",
    "SCENARIOS",
    "Scenario",
    "ScenarioRun",
    "run_digest",
    "run_scenario",
    "DEFAULT_FACTORS",
    "OFFPATH_GAIN",
    "WHATIF_SCHEMA",
    "optimizer_crosscheck",
    "parse_vary",
    "run_whatif",
    "whatif_violations",
    "render_report",
    "write_report",
]
