"""The six figure scenarios (F1–F6) as runnable analysis units.

Each scenario is a small, deterministic rendition of one of the
paper's figure experiments — the same query shapes as the
``benchmarks/bench_f*.py`` studies, scaled down so the what-if engine
can afford dozens of re-simulations.  A scenario pins everything that
matters for bit-identical replay: the fabric spec, the catalog rows
(seeded generators), the query, and the placement policy.

``f6`` deliberately builds its fabric with ``gpu="host"`` — a GPU is
*present* but the optimizer never routes the pipeline through it, so
the what-if sweep has a guaranteed off-path resource to flag.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..engine import (
    AggSpec,
    DataflowEngine,
    Query,
    VolcanoEngine,
    cpu_only,
    pushdown,
)
from ..engine.results import QueryResult
from ..hardware import build_fabric, conventional_spec, dataflow_spec
from ..hardware.presets import FabricSpec, HeterogeneousFabric
from ..relational import (
    Catalog,
    col,
    make_lineitem,
    make_orders,
    make_uniform_table,
)
from .critical_path import Attribution, attribute_query

__all__ = ["Scenario", "ScenarioRun", "SCENARIOS", "run_scenario",
           "run_digest"]

_CHUNK = 1000

# Seeded generators return identical rows for a given count, and
# scenarios treat tables as read-only, so catalogs memoize per row
# count (the what-if sweep runs the same scenario dozens of times).
_CATALOG_CACHE: dict[int, Catalog] = {}


def _catalog(rows: int) -> Catalog:
    catalog = _CATALOG_CACHE.get(rows)
    if catalog is None:
        catalog = Catalog()
        catalog.register("lineitem", make_lineitem(
            rows, orders=max(1, rows // 4), chunk_rows=_CHUNK))
        catalog.register("orders", make_orders(
            max(1, rows // 4), chunk_rows=_CHUNK))
        catalog.register("uniform", make_uniform_table(
            rows, columns=3, distinct=50, chunk_rows=_CHUNK))
        _CATALOG_CACHE[rows] = catalog
    return catalog


@dataclass
class Scenario:
    """One figure experiment, runnable on either engine."""

    name: str
    title: str
    spec: Callable[[], FabricSpec]
    query: Callable[[], Query]
    placement: str = "optimize"     # optimize | pushdown | cpu
    rows: int = 3000


def _f1_query() -> Query:
    return (Query.scan("lineitem")
            .filter(col("l_quantity") > 30)
            .aggregate(["l_returnflag"],
                       [AggSpec("count", alias="n")]))


def _f2_query() -> Query:
    return (Query.scan("lineitem")
            .filter(col("l_quantity") > 40)
            .project(["l_orderkey", "l_extendedprice"]))


def _f3_query() -> Query:
    return (Query.scan("lineitem")
            .filter(col("l_shipdate").between(8500, 10500))
            .aggregate(["l_returnflag"],
                       [AggSpec("sum", "l_extendedprice", "revenue"),
                        AggSpec("count", alias="n")]))


def _f4_query() -> Query:
    return (Query.scan("lineitem")
            .filter(col("l_quantity") > 10)
            .join(Query.scan("orders")
                  .filter(col("o_priority") <= 2),
                  "l_orderkey", "o_orderkey")
            .aggregate(["o_priority"],
                       [AggSpec("count", alias="n")]))


def _f5_query() -> Query:
    return (Query.scan("uniform")
            .filter(col("k0") < 25)
            .sort(["k0", "k1"])
            .limit(100))


def _f6_query() -> Query:
    return (Query.scan("lineitem")
            .filter(col("l_shipdate").between(8500, 8800))
            .join(Query.scan("orders")
                  .filter(col("o_priority") <= 2),
                  "l_orderkey", "o_orderkey")
            .aggregate(["o_priority"],
                       [AggSpec("sum", "l_extendedprice", "rev"),
                        AggSpec("count", alias="n")]))


SCENARIOS: dict[str, Scenario] = {
    "f1": Scenario(
        "f1", "conventional data path (Figure 1 node, CPU-only)",
        conventional_spec, _f1_query, placement="cpu"),
    "f2": Scenario(
        "f2", "storage pushdown of selection/projection",
        dataflow_spec, _f2_query, placement="pushdown"),
    "f3": Scenario(
        "f3", "staged group-by pipeline across NICs",
        dataflow_spec, _f3_query),
    "f4": Scenario(
        "f4", "distributed join fabric (two compute nodes)",
        lambda: dataflow_spec(compute_nodes=2), _f4_query),
    "f5": Scenario(
        "f5", "near-memory filter / sort / limit",
        dataflow_spec, _f5_query),
    # 25 Gb/s keeps the network on the critical path next to the SSD
    # (at 100 Gb/s storage drowns it); the host-attached GPU exists
    # but the plan never routes through it — the guaranteed off-path
    # resource the acceptance tests check for.
    "f6": Scenario(
        "f6", "full pipeline storage->cores (25 Gb/s net, idle GPU)",
        lambda: dataflow_spec(gpu="host", network_gbits=25.0),
        _f6_query),
}


@dataclass
class ScenarioRun:
    """A completed scenario execution plus its fabric/trace handles."""

    scenario: Scenario
    engine: str
    rows: int
    fabric: HeterogeneousFabric
    result: QueryResult
    perturbations: tuple = ()
    _attribution: Optional[Attribution] = field(default=None,
                                                repr=False)

    def attribution(self) -> Attribution:
        """Exact critical-path attribution of the query window."""
        if self._attribution is None:
            self._attribution = attribute_query(self.fabric.trace,
                                                self.result)
        return self._attribution

    def digest(self) -> str:
        return run_digest(self)


def _make_placement(policy: str, query: Query,
                    fabric: HeterogeneousFabric, catalog: Catalog):
    if policy == "cpu":
        return cpu_only(query.plan, fabric)
    if policy == "pushdown":
        return pushdown(query.plan, fabric)
    if policy == "optimize":
        from ..optimizer import Optimizer
        return Optimizer(fabric, catalog).optimize(query).placement
    raise ValueError(f"unknown placement policy {policy!r}")


def run_scenario(name: str, engine: str = "dataflow",
                 rows: Optional[int] = None,
                 perturbations: tuple = ()) -> ScenarioRun:
    """Run one figure scenario, optionally on perturbed hardware.

    ``perturbations`` is a sequence of ``(resource, raw_factor)``
    pairs applied to the fabric *before* execution (see
    :meth:`HeterogeneousFabric.apply_perturbation`).  The placement is
    always chosen on an *unperturbed* twin fabric, so a perturbation
    answers the causal question "same plan, different hardware" —
    plan changes never masquerade as hardware sensitivity.
    """
    if name not in SCENARIOS:
        raise KeyError(f"unknown scenario {name!r} "
                       f"(have: {sorted(SCENARIOS)})")
    scenario = SCENARIOS[name]
    if engine not in ("dataflow", "volcano"):
        raise ValueError(f"unknown engine {engine!r}")
    rows = rows if rows is not None else scenario.rows
    catalog = _catalog(rows)
    query = scenario.query()

    fabric = build_fabric(scenario.spec())
    for resource, factor in perturbations:
        fabric.apply_perturbation(resource, factor)

    if engine == "volcano":
        result = VolcanoEngine(fabric, catalog).execute(query)
    else:
        placement_fabric = build_fabric(scenario.spec())
        placement = _make_placement(scenario.placement, query,
                                    placement_fabric, catalog)
        result = DataflowEngine(fabric, catalog).execute(
            query, placement=placement)
    return ScenarioRun(scenario=scenario, engine=engine, rows=rows,
                       fabric=fabric, result=result,
                       perturbations=tuple(perturbations))


def run_digest(run: ScenarioRun) -> str:
    """SHA-256 over the run's full event order, timing, and answer.

    ``repr`` round-trips floats exactly, so two runs digest equal iff
    every event timestamp, ordering, duration and byte count — and the
    result checksum and elapsed time — are bit-identical.  This is the
    what-if engine's baseline-identity check.
    """
    h = hashlib.sha256()
    for event in run.fabric.trace.events:
        h.update(repr((event.ts, event.kind, event.actor, event.label,
                       event.nbytes, event.dur,
                       event.flow_id)).encode())
        h.update(b"\x1e")
    h.update(repr(run.result.elapsed).encode())
    h.update(run.result.checksum().encode())
    return h.hexdigest()
