"""A small SQL front-end over the logical plan builder.

Supports the analytic subset every experiment uses::

    SELECT l_returnflag, SUM(l_extendedprice) AS revenue,
           COUNT(*) AS n
    FROM lineitem
    WHERE l_quantity > 45 AND l_comment LIKE '%express%'
    GROUP BY l_returnflag
    ORDER BY revenue
    LIMIT 10

plus equi joins (``FROM a JOIN b ON a_key = b_key``), BETWEEN, IN,
NOT, and parenthesised boolean expressions.  ``parse_sql`` returns a
:class:`~repro.engine.logical.Query`, so anything the builder can run,
the SQL layer can run — on either engine, with any placement.

Arithmetic SELECT expressions are supported with an alias
(``SELECT price * (1 - disc) AS net ...``) and compile to a computed-
column :class:`~repro.engine.logical.Map` stage.

This is a front-end, not a full SQL implementation: no subqueries, no
HAVING, no aggregates over expressions, and names are case-sensitive
exactly as the catalog stores them.
"""

from __future__ import annotations

import re
from typing import Optional

from ..engine.logical import AggSpec, Map, Query
from .expressions import Expression, col, lit

__all__ = ["parse_sql", "SqlError"]


class SqlError(Exception):
    """A parse error, with the offending position's context."""


_TOKEN_RE = re.compile(r"""
    \s*(?:
        (?P<number>-?\d+\.\d+|-?\d+)
      | (?P<string>'(?:[^']|'')*')
      | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<op><=|>=|<>|!=|=|<|>|\(|\)|,|\*|\+|-|/)
    )""", re.VERBOSE)

_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT",
    "AND", "OR", "NOT", "BETWEEN", "IN", "LIKE", "AS", "JOIN", "ON",
    "SUM", "COUNT", "AVG", "MIN", "MAX", "ASC",
}


class _Token:
    def __init__(self, kind: str, value, position: int):
        self.kind = kind        # number | string | name | op | keyword
        self.value = value
        self.position = position

    def __repr__(self):
        return f"<{self.kind} {self.value!r}>"


def _tokenize(text: str) -> list[_Token]:
    tokens = []
    index = 0
    while index < len(text):
        match = _TOKEN_RE.match(text, index)
        if match is None:
            if text[index:].strip() == "":
                break
            raise SqlError(
                f"cannot tokenize at position {index}: "
                f"{text[index:index + 20]!r}")
        index = match.end()
        if match.lastgroup == "number":
            raw = match.group("number")
            value = float(raw) if "." in raw else int(raw)
            tokens.append(_Token("number", value, match.start()))
        elif match.lastgroup == "string":
            raw = match.group("string")[1:-1].replace("''", "'")
            tokens.append(_Token("string", raw, match.start()))
        elif match.lastgroup == "name":
            word = match.group("name")
            if word.upper() in _KEYWORDS:
                tokens.append(_Token("keyword", word.upper(),
                                     match.start()))
            else:
                tokens.append(_Token("name", word, match.start()))
        else:
            tokens.append(_Token("op", match.group("op"),
                                 match.start()))
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token], text: str):
        self.tokens = tokens
        self.text = text
        self.index = 0

    # -- token helpers ---------------------------------------------------

    def peek(self) -> Optional[_Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise SqlError("unexpected end of query")
        self.index += 1
        return token

    def accept(self, kind: str, value=None) -> Optional[_Token]:
        token = self.peek()
        if token is not None and token.kind == kind and \
                (value is None or token.value == value):
            return self.next()
        return None

    def expect(self, kind: str, value=None) -> _Token:
        token = self.accept(kind, value)
        if token is None:
            got = self.peek()
            raise SqlError(
                f"expected {value or kind}, got "
                f"{got.value if got else 'end of query'!r}")
        return token

    # -- grammar ---------------------------------------------------

    def parse(self) -> Query:
        self.expect("keyword", "SELECT")
        select_list = self._select_list()
        self.expect("keyword", "FROM")
        table = self.expect("name").value
        query = Query.scan(table)

        while self.accept("keyword", "JOIN"):
            right = self.expect("name").value
            self.expect("keyword", "ON")
            left_key = self.expect("name").value
            self.expect("op", "=")
            right_key = self.expect("name").value
            query = query.join(Query.scan(right), left_key, right_key)

        if self.accept("keyword", "WHERE"):
            query = query.filter(self._expression())

        group_by: list[str] = []
        if self.accept("keyword", "GROUP"):
            self.expect("keyword", "BY")
            group_by.append(self.expect("name").value)
            while self.accept("op", ","):
                group_by.append(self.expect("name").value)

        query = self._apply_select(query, select_list, group_by)

        if self.accept("keyword", "ORDER"):
            self.expect("keyword", "BY")
            keys = [self.expect("name").value]
            self.accept("keyword", "ASC")
            while self.accept("op", ","):
                keys.append(self.expect("name").value)
                self.accept("keyword", "ASC")
            query = query.sort(keys)

        if self.accept("keyword", "LIMIT"):
            query = query.limit(int(self.expect("number").value))

        if self.peek() is not None:
            raise SqlError(f"trailing input: {self.peek().value!r}")
        return query

    # -- SELECT list ---------------------------------------------------

    def _select_list(self):
        if self.accept("op", "*"):
            return [("star", None, None)]
        items = [self._select_item()]
        while self.accept("op", ","):
            items.append(self._select_item())
        return items

    def _select_item(self):
        token = self.peek()
        if token is not None and token.kind == "keyword" and \
                token.value in ("SUM", "COUNT", "AVG", "MIN", "MAX"):
            func = self.next().value
            self.expect("op", "(")
            if func == "COUNT" and self.accept("op", "*"):
                column = ""
            else:
                column = self.expect("name").value
            self.expect("op", ")")
            alias = ""
            if self.accept("keyword", "AS"):
                alias = self.expect("name").value
            return ("agg", AggSpec(func.lower(), column, alias), None)
        expr = self._scalar_expression()
        alias = None
        if self.accept("keyword", "AS"):
            alias = self.expect("name").value
        from .expressions import Col
        if isinstance(expr, Col):
            return ("column", expr.name, alias)
        if alias is None:
            raise SqlError(
                "a computed SELECT expression needs an alias (AS ...)")
        return ("expr", expr, alias)

    # -- scalar expressions in SELECT (precedence: +- < */) ---------------

    def _scalar_expression(self) -> Expression:
        left = self._scalar_term()
        while True:
            token = self.peek()
            if token is not None and token.kind == "op" \
                    and token.value in ("+", "-"):
                self.next()
                right = self._scalar_term()
                left = left + right if token.value == "+" else \
                    left - right
            else:
                return left

    def _scalar_term(self) -> Expression:
        left = self._scalar_atom()
        while True:
            token = self.peek()
            if token is not None and token.kind == "op" \
                    and token.value in ("*", "/"):
                self.next()
                right = self._scalar_atom()
                left = left * right if token.value == "*" else \
                    left / right
            else:
                return left

    def _scalar_atom(self) -> Expression:
        if self.accept("op", "("):
            inner = self._scalar_expression()
            self.expect("op", ")")
            return inner
        token = self.next()
        if token.kind == "name":
            return col(token.value)
        if token.kind == "number":
            return lit(token.value)
        raise SqlError(
            f"expected a column, number, or '(' in a SELECT "
            f"expression, got {token.value!r}")

    def _apply_select(self, query: Query, select_list,
                      group_by: list[str]) -> Query:
        aggs = [item[1] for item in select_list if item[0] == "agg"]
        columns = [item[1] for item in select_list
                   if item[0] == "column"]
        computed = [(item[2], item[1]) for item in select_list
                    if item[0] == "expr"]
        has_star = any(item[0] == "star" for item in select_list)
        renames = {item[1]: item[2] for item in select_list
                   if item[0] == "column" and item[2]}
        if renames:
            raise SqlError("column aliases are only supported on "
                           "aggregates and computed expressions")
        if computed:
            if aggs:
                raise SqlError("computed expressions cannot be mixed "
                               "with aggregates (aggregate over a "
                               "computed column in two steps)")
            query = Query(Map(query.plan, dict(computed)))
            columns = columns + [name for name, _e in computed]
        if aggs:
            if has_star:
                raise SqlError("SELECT * cannot be mixed with "
                               "aggregates")
            if set(columns) - set(group_by):
                extra = sorted(set(columns) - set(group_by))
                raise SqlError(
                    f"non-aggregated columns {extra} must appear in "
                    "GROUP BY")
            return query.aggregate(group_by, aggs)
        if group_by:
            raise SqlError("GROUP BY requires at least one aggregate "
                           "in SELECT")
        if has_star:
            return query
        return query.project(columns)

    # -- expressions (precedence: OR < AND < NOT < predicate) -------------

    def _expression(self) -> Expression:
        left = self._and_term()
        while self.accept("keyword", "OR"):
            left = left | self._and_term()
        return left

    def _and_term(self) -> Expression:
        left = self._not_term()
        while self.accept("keyword", "AND"):
            left = left & self._not_term()
        return left

    def _not_term(self) -> Expression:
        if self.accept("keyword", "NOT"):
            return ~self._not_term()
        return self._predicate()

    def _predicate(self) -> Expression:
        if self.accept("op", "("):
            inner = self._expression()
            self.expect("op", ")")
            return inner
        name = self.expect("name").value
        column = col(name)
        if self.accept("keyword", "BETWEEN"):
            low = self._literal()
            self.expect("keyword", "AND")
            high = self._literal()
            return column.between(low, high)
        if self.accept("keyword", "LIKE"):
            pattern = self.expect("string").value
            return column.like(pattern)
        if self.accept("keyword", "IN"):
            self.expect("op", "(")
            values = [self._literal()]
            while self.accept("op", ","):
                values.append(self._literal())
            self.expect("op", ")")
            return column.isin(values)
        op_token = self.next()
        if op_token.kind != "op" or op_token.value not in (
                "=", "!=", "<>", "<", "<=", ">", ">="):
            raise SqlError(f"expected a comparison after {name!r}, "
                           f"got {op_token.value!r}")
        value = self._operand()
        mapping = {"=": "__eq__", "!=": "__ne__", "<>": "__ne__",
                   "<": "__lt__", "<=": "__le__", ">": "__gt__",
                   ">=": "__ge__"}
        return getattr(column, mapping[op_token.value])(value)

    def _operand(self):
        token = self.peek()
        if token is not None and token.kind == "name":
            return col(self.next().value)
        return lit(self._literal())

    def _literal(self):
        token = self.next()
        if token.kind in ("number", "string"):
            return token.value
        raise SqlError(f"expected a literal, got {token.value!r}")


def parse_sql(text: str) -> Query:
    """Parse a SQL string into a :class:`~repro.engine.logical.Query`."""
    tokens = _tokenize(text)
    if not tokens:
        raise SqlError("empty query")
    return _Parser(tokens, text).parse()
