"""Format conversion: serialization, compression, transposition.

The cloud data path reformats data constantly (§2.2's data-center tax,
§3.2's object-store formats, §5.4's HTAP transposition unit).  These
functions do the work for real — zlib for compression, raw numpy
buffers for (de)serialization, row/column layout conversion — so the
simulated byte counts charged to devices are the true sizes of the
data passing through.
"""

from __future__ import annotations

import json
import struct
import zlib

import numpy as np

from .schema import Field, Schema
from .table import Chunk

__all__ = [
    "serialize_chunk",
    "deserialize_chunk",
    "compress_bytes",
    "decompress_bytes",
    "compress_chunk",
    "decompress_chunk",
    "to_row_major",
    "to_column_major",
    "CompressedChunk",
]

_MAGIC = b"RPC1"


def _schema_header(schema: Schema) -> bytes:
    spec = [(f.name, f.dtype, f.width) for f in schema.fields]
    return json.dumps(spec).encode()


def _schema_from_header(payload: bytes) -> Schema:
    spec = json.loads(payload.decode())
    return Schema([Field(name, dtype, width)
                   for name, dtype, width in spec])


def serialize_chunk(chunk: Chunk) -> bytes:
    """Pack a chunk into a self-describing byte string."""
    header = _schema_header(chunk.schema)
    parts = [_MAGIC, struct.pack("<II", len(header), chunk.num_rows), header]
    for name in chunk.schema.names:
        parts.append(np.ascontiguousarray(chunk.columns[name]).tobytes())
    return b"".join(parts)


def deserialize_chunk(payload: bytes) -> Chunk:
    """Reverse :func:`serialize_chunk`."""
    if payload[:4] != _MAGIC:
        raise ValueError("not a serialized chunk")
    header_len, num_rows = struct.unpack("<II", payload[4:12])
    schema = _schema_from_header(payload[12:12 + header_len])
    offset = 12 + header_len
    columns = {}
    for f in schema.fields:
        nbytes = f.value_nbytes * num_rows
        raw = payload[offset:offset + nbytes]
        columns[f.name] = np.frombuffer(raw, dtype=f.numpy_dtype).copy()
        offset += nbytes
    # frombuffer yields exact schema dtypes, so the checked
    # constructor's coercion pass has nothing to do — skip it.
    return Chunk._from_valid(schema, columns)


def compress_bytes(payload: bytes, level: int = 1) -> bytes:
    """Real zlib compression (fast level — inline engines are fast)."""
    return zlib.compress(payload, level)


def decompress_bytes(payload: bytes) -> bytes:
    return zlib.decompress(payload)


class CompressedChunk:
    """A chunk in compressed form, as stored/moved on the data path."""

    def __init__(self, payload: bytes, uncompressed_nbytes: int,
                 num_rows: int):
        self.payload = payload
        self.uncompressed_nbytes = uncompressed_nbytes
        self.num_rows = num_rows

    @property
    def nbytes(self) -> int:
        return len(self.payload)

    @property
    def ratio(self) -> float:
        """Compression ratio (uncompressed / compressed)."""
        return self.uncompressed_nbytes / max(1, self.nbytes)


def compress_chunk(chunk: Chunk, level: int = 1) -> CompressedChunk:
    """Serialize then compress a chunk."""
    raw = serialize_chunk(chunk)
    return CompressedChunk(compress_bytes(raw, level=level),
                           uncompressed_nbytes=chunk.nbytes,
                           num_rows=chunk.num_rows)


def decompress_chunk(compressed: CompressedChunk) -> Chunk:
    """Reverse :func:`compress_chunk`."""
    return deserialize_chunk(decompress_bytes(compressed.payload))


def to_row_major(chunk: Chunk) -> np.ndarray:
    """Columnar -> row-major: a structured array (the OLTP layout)."""
    dtype = np.dtype([(f.name, f.numpy_dtype)
                      for f in chunk.schema.fields])
    rows = np.empty(chunk.num_rows, dtype=dtype)
    for name in chunk.schema.names:
        rows[name] = chunk.columns[name]
    return rows


def to_column_major(rows: np.ndarray, schema: Schema) -> Chunk:
    """Row-major -> columnar: the transposition of §5.4's HTAP unit."""
    columns = {f.name: np.ascontiguousarray(rows[f.name])
               for f in schema.fields}
    return Chunk(schema, columns)
