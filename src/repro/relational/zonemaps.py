"""Zone maps: per-chunk min/max pruning (§2.1).

The paper notes that cloud-native engines use zone maps (where
conventional engines used indexes) "to fetch as little data as
possible".  A :class:`ZoneMap` records min/max per numeric column per
chunk; :func:`may_match` conservatively decides whether a chunk can
contain rows satisfying a predicate, and scans skip chunks that
cannot.

Pruning is *sound* (never skips a chunk that could match) but only
*effective* when data is clustered on the filtered column — the
classic behaviour bench E1 demonstrates: sorted data prunes to
~selectivity, shuffled data prunes nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .expressions import (
    And,
    Between,
    Col,
    Compare,
    Const,
    Expression,
    InSet,
    Not,
    Or,
)
from .schema import DataType
from .table import Table

__all__ = ["ZoneMap", "may_match", "prunable_chunks"]


@dataclass
class ZoneMap:
    """Min/max bounds per chunk for every numeric column."""

    zones: list[dict[str, tuple[float, float]]] = field(
        default_factory=list)

    @classmethod
    def build(cls, table: Table) -> "ZoneMap":
        numeric = [f.name for f in table.schema.fields
                   if f.dtype in (DataType.INT64, DataType.FLOAT64)]
        zones = []
        for chunk in table.chunks:
            if chunk.num_rows == 0:
                zones.append({})
                continue
            zones.append({
                name: (float(chunk.column(name).min()),
                       float(chunk.column(name).max()))
                for name in numeric})
        return cls(zones)

    def __len__(self) -> int:
        return len(self.zones)

    def bounds(self, chunk_index: int,
               column: str) -> Optional[tuple[float, float]]:
        zone = self.zones[chunk_index]
        return zone.get(column)


def may_match(zone: dict[str, tuple[float, float]],
              expr: Expression) -> bool:
    """Conservatively: could any row in this zone satisfy ``expr``?

    Unknown constructs answer True (no pruning) — soundness first.
    """
    if isinstance(expr, Compare):
        if isinstance(expr.left, Col) and isinstance(expr.right, Const):
            bounds = zone.get(expr.left.name)
            value = expr.right.value
            if bounds is None or not isinstance(value, (int, float)):
                return True
            lo, hi = bounds
            if expr.op == "==":
                return lo <= value <= hi
            if expr.op == "!=":
                return not (lo == hi == value)
            if expr.op == "<":
                return lo < value
            if expr.op == "<=":
                return lo <= value
            if expr.op == ">":
                return hi > value
            if expr.op == ">=":
                return hi >= value
        return True
    if isinstance(expr, Between):
        if isinstance(expr.operand, Col) \
                and isinstance(expr.low, Const) \
                and isinstance(expr.high, Const):
            bounds = zone.get(expr.operand.name)
            if bounds is None:
                return True
            lo, hi = bounds
            return not (hi < expr.low.value or lo > expr.high.value)
        return True
    if isinstance(expr, InSet):
        if isinstance(expr.operand, Col):
            bounds = zone.get(expr.operand.name)
            if bounds is None:
                return True
            lo, hi = bounds
            return any(isinstance(v, (int, float)) and lo <= v <= hi
                       for v in expr.values) or \
                any(not isinstance(v, (int, float))
                    for v in expr.values)
        return True
    if isinstance(expr, And):
        return may_match(zone, expr.left) and may_match(zone, expr.right)
    if isinstance(expr, Or):
        return may_match(zone, expr.left) or may_match(zone, expr.right)
    if isinstance(expr, Not):
        # Correct refutation of a negation needs must-match analysis;
        # stay conservative.
        return True
    return True


def prunable_chunks(zonemap: ZoneMap, predicate: Expression) -> set[int]:
    """Chunk indices that provably contain no matching rows."""
    return {index for index, zone in enumerate(zonemap.zones)
            if not may_match(zone, predicate)}
