"""Schemas and data types for the columnar substrate.

Types map directly onto numpy dtypes; strings are fixed-width unicode
so that chunk sizes are well-defined — byte counts drive every
simulated cost, so ``Field.value_nbytes`` must be exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np

__all__ = ["DataType", "Field", "Schema"]


@lru_cache(maxsize=None)
def _numpy_dtype(dtype: str, width: int) -> np.dtype:
    """One shared ``np.dtype`` per declared (type, width) pair."""
    if dtype == DataType.STRING:
        return np.dtype(f"<U{width}")
    if dtype in DataType._NUMPY:
        return np.dtype(DataType._NUMPY[dtype])
    raise ValueError(f"unknown data type {dtype!r}")


class DataType:
    """Supported column types (string constants, numpy-backed)."""

    INT64 = "int64"
    FLOAT64 = "float64"
    BOOL = "bool"
    STRING = "string"

    ALL = (INT64, FLOAT64, BOOL, STRING)

    _NUMPY = {INT64: np.int64, FLOAT64: np.float64, BOOL: np.bool_}

    @classmethod
    def numpy_dtype(cls, dtype: str, width: int = 32):
        """The numpy dtype for a declared column type (shared/cached)."""
        return _numpy_dtype(dtype, width)


@dataclass(frozen=True)
class Field:
    """One column: name, type, and (for strings) fixed width."""

    name: str
    dtype: str
    width: int = 32   # characters, strings only

    def __post_init__(self):
        if self.dtype not in DataType.ALL:
            raise ValueError(f"unknown data type {self.dtype!r}")
        if self.dtype == DataType.STRING and self.width < 1:
            raise ValueError("string width must be >= 1")

    @property
    def numpy_dtype(self):
        return DataType.numpy_dtype(self.dtype, self.width)

    @property
    def value_nbytes(self) -> int:
        """Bytes per value in columnar layout."""
        return self.numpy_dtype.itemsize


class Schema:
    """An ordered set of fields with fast name lookup."""

    def __init__(self, fields: Sequence[Field]):
        self.fields = list(fields)
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in {names}")
        self._by_name = {f.name: f for f in self.fields}
        self._names = names
        self._row_nbytes: int = -1

    @classmethod
    def of(cls, *specs: tuple) -> "Schema":
        """Shorthand: ``Schema.of(("a", DataType.INT64), ...)``."""
        fields = []
        for spec in specs:
            if len(spec) == 2:
                fields.append(Field(spec[0], spec[1]))
            else:
                fields.append(Field(spec[0], spec[1], width=spec[2]))
        return cls(fields)

    @property
    def names(self) -> list[str]:
        """Column names in order (shared list — do not mutate)."""
        return self._names

    def field(self, name: str) -> Field:
        if name not in self._by_name:
            raise KeyError(
                f"no column {name!r} (have: {self.names})")
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self.fields)

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and self.fields == other.fields

    def __repr__(self) -> str:
        cols = ", ".join(f"{f.name}:{f.dtype}" for f in self.fields)
        return f"Schema({cols})"

    @property
    def row_nbytes(self) -> int:
        """Bytes per row in columnar layout (computed once).

        Chunk byte counts — the quantity every simulated device and
        link charges — are ``rows x row_nbytes``, evaluated per chunk
        per operator, so the per-field sum is cached on first use
        (fields are immutable after construction).
        """
        if self._row_nbytes < 0:
            self._row_nbytes = sum(f.value_nbytes for f in self.fields)
        return self._row_nbytes

    def project(self, names: Iterable[str]) -> "Schema":
        """A schema containing only ``names``, in the given order."""
        return Schema([self.field(n) for n in names])

    def concat(self, other: "Schema", prefix: str = "") -> "Schema":
        """This schema followed by ``other`` (optionally prefixed)."""
        fields = list(self.fields)
        for f in other.fields:
            name = prefix + f.name
            fields.append(Field(name, f.dtype, f.width))
        return Schema(fields)
