"""Columnar chunks and tables.

A :class:`Chunk` is the unit of data flow: a fixed schema plus one
numpy array per column.  Every operator in both engines consumes and
produces chunks, and ``chunk.nbytes`` is the quantity charged to
devices and links — the data the simulation moves is the data the
query actually processes.

A :class:`Table` is a list of chunks with one schema; it is what the
catalog stores and what scans iterate over.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from .schema import Field, Schema

__all__ = ["Chunk", "Table"]


class _SelectionColumns(Mapping):
    """Columns viewed through a selection index, gathered lazily.

    Backs a chunk in selection-vector mode: ``base`` holds the dense
    parent columns, ``sel`` the row indices this view selects.  A
    column is gathered (``base[name][sel]``) only when first read and
    cached, so fused pipeline stages that never touch a column never
    pay for it.  Iteration (``dict(...)``, ``.items()``) gathers every
    column — exactly the materialisation a fusion-segment boundary
    needs.
    """

    __slots__ = ("names", "base", "sel", "_cache")

    def __init__(self, names: tuple[str, ...], base: dict[str, np.ndarray],
                 sel: np.ndarray):
        self.names = names
        self.base = base
        self.sel = sel
        self._cache: dict[str, np.ndarray] = {}

    def __getitem__(self, name: str) -> np.ndarray:
        column = self._cache.get(name)
        if column is None:
            if name not in self.names:
                raise KeyError(name)
            column = self.base[name][self.sel]
            self._cache[name] = column
        return column

    def __iter__(self) -> Iterator[str]:
        return iter(self.names)

    def __len__(self) -> int:
        return len(self.names)

    @property
    def nbytes(self) -> int:
        """Bytes the gathered columns occupy — without gathering."""
        rows = len(self.sel)
        return sum(rows * self.base[name].dtype.itemsize
                   for name in self.names)


class Chunk:
    """A batch of rows in columnar layout."""

    def __init__(self, schema: Schema, columns: dict[str, np.ndarray]):
        if set(columns) != set(schema.names):
            raise ValueError(
                f"columns {sorted(columns)} do not match schema "
                f"{schema.names}")
        lengths = {len(col) for col in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        self.schema = schema
        self.columns = {
            name: np.asarray(columns[name],
                             dtype=schema.field(name).numpy_dtype)
            for name in schema.names
        }

    # A dense chunk has ``_sel is None``; a selection-vector view set
    # by :meth:`_view` carries the lazy index instead.
    _sel: Optional[np.ndarray] = None

    # -- construction ------------------------------------------------------

    @classmethod
    def _from_valid(cls, schema: Schema,
                    columns: dict[str, np.ndarray]) -> "Chunk":
        """Internal fast constructor: skips validation and coercion.

        Only for columns already known to match ``schema`` — the
        row-subset / column-subset transformations below, whose inputs
        went through the checked ``__init__`` once.
        """
        chunk = cls.__new__(cls)
        chunk.schema = schema
        chunk.columns = columns
        return chunk

    @classmethod
    def _view(cls, schema: Schema, base: dict[str, np.ndarray],
              sel: np.ndarray) -> "Chunk":
        """A zero-copy selection view over dense ``base`` columns.

        Nothing is gathered until a column is read; ``num_rows`` and
        ``nbytes`` come straight from the selection index, so charging
        a lazy chunk costs the same bytes as charging its
        materialised form.
        """
        chunk = cls.__new__(cls)
        chunk.schema = schema
        chunk.columns = _SelectionColumns(tuple(schema.names), base, sel)
        chunk._sel = sel
        return chunk

    @classmethod
    def empty(cls, schema: Schema) -> "Chunk":
        return cls(schema, {
            f.name: np.empty(0, dtype=f.numpy_dtype) for f in schema.fields})

    @classmethod
    def concat(cls, chunks: Sequence["Chunk"]) -> "Chunk":
        """Concatenate chunks sharing a schema into one.

        A single chunk is returned as-is (chunks are immutable by
        convention, so aliasing is safe) — no reallocation.
        """
        if not chunks:
            raise ValueError("concat of zero chunks")
        if len(chunks) == 1:
            return chunks[0]
        schema = chunks[0].schema
        return cls._from_valid(schema, {
            name: np.concatenate([c.columns[name] for c in chunks])
            for name in schema.names})

    # -- basic accessors ---------------------------------------------------

    @property
    def num_rows(self) -> int:
        if not self.schema.names:
            return 0
        if self._sel is not None:
            return len(self._sel)
        return len(self.columns[self.schema.names[0]])

    @property
    def nbytes(self) -> int:
        """Exact bytes of column data (drives simulated movement)."""
        if self._sel is not None:
            return self.columns.nbytes
        return sum(col.nbytes for col in self.columns.values())

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        return f"<Chunk {self.num_rows} rows x {len(self.schema)} cols>"

    # -- transformations -----------------------------------------------------

    def project(self, names: Iterable[str]) -> "Chunk":
        """Keep only ``names``, in order."""
        names = list(names)
        schema = self.schema.project(names)
        if self._sel is not None:
            return Chunk._view(schema, self.columns.base, self._sel)
        return Chunk._from_valid(schema,
                                 {n: self.columns[n] for n in names})

    def filter(self, mask: np.ndarray) -> "Chunk":
        """Rows where ``mask`` is true — a lazy selection view.

        Nothing is copied: the result carries a selection index over
        this chunk's dense columns, gathered column-by-column only
        when read.  Chained filters compose their indices instead of
        materialising between stages.
        """
        if len(mask) != self.num_rows:
            raise ValueError("mask length mismatch")
        if self._sel is not None:
            return Chunk._view(self.schema, self.columns.base,
                               self._sel[mask])
        return Chunk._view(self.schema, self.columns, np.flatnonzero(mask))

    def take(self, indices: np.ndarray) -> "Chunk":
        """Rows at ``indices`` (may repeat / reorder)."""
        if self._sel is not None:
            return Chunk._view(self.schema, self.columns.base,
                               self._sel[indices])
        return Chunk._from_valid(
            self.schema,
            {n: col[indices] for n, col in self.columns.items()})

    def slice(self, start: int, stop: int) -> "Chunk":
        if self._sel is not None:
            return Chunk._view(self.schema, self.columns.base,
                               self._sel[start:stop])
        return Chunk._from_valid(
            self.schema,
            {n: col[start:stop] for n, col in self.columns.items()})

    def materialize(self) -> "Chunk":
        """This chunk with every column gathered into dense storage.

        Dense chunks return themselves; selection views gather each
        column once (through the view's cache) and drop the index.
        Fusion-segment boundaries — emit onto a channel, partition,
        join build/probe, aggregate state update, table assembly —
        call this so laziness never escapes a pipeline segment.
        """
        if self._sel is None:
            return self
        return Chunk._from_valid(
            self.schema, {n: self.columns[n] for n in self.schema.names})

    def with_column(self, field: Field, values: np.ndarray) -> "Chunk":
        """A new chunk with one extra column appended."""
        values = np.asarray(values, dtype=field.numpy_dtype)
        if len(values) != self.num_rows:
            raise ValueError(
                f"ragged columns: lengths "
                f"{sorted({self.num_rows, len(values)})}")
        schema = Schema(self.schema.fields + [field])
        columns = dict(self.columns)
        columns[field.name] = values
        return Chunk._from_valid(schema, columns)

    def rename(self, mapping: dict[str, str]) -> "Chunk":
        """A new chunk with columns renamed per ``mapping``."""
        fields = [Field(mapping.get(f.name, f.name), f.dtype, f.width)
                  for f in self.schema.fields]
        schema = Schema(fields)
        columns = {mapping.get(n, n): col
                   for n, col in self.columns.items()}
        return Chunk._from_valid(schema, columns)

    # -- test/oracle helpers ---------------------------------------------------

    def to_rows(self) -> list[tuple]:
        """Rows as python tuples (for correctness oracles).

        ``tolist`` converts each column to python scalars in one
        vectorized pass — the same values ``.item()`` produces
        element-wise, minus the per-cell dispatch.
        """
        if not self.schema.names:
            return []
        columns = [self.columns[n].tolist() for n in self.schema.names]
        return list(zip(*columns))

    def sorted_rows(self) -> list[tuple]:
        """Rows sorted, for order-insensitive comparison."""
        return sorted(self.to_rows())


class Table:
    """A named relation: a schema plus a list of chunks."""

    def __init__(self, schema: Schema, chunks: Optional[list[Chunk]] = None,
                 name: str = ""):
        self.schema = schema
        self.name = name
        self._chunks: list[Chunk] = []
        for chunk in chunks or []:
            self.append(chunk)

    @classmethod
    def from_arrays(cls, schema: Schema, columns: dict[str, np.ndarray],
                    name: str = "", chunk_rows: int = 65536) -> "Table":
        """Build a table, splitting the arrays into fixed-size chunks."""
        big = Chunk(schema, columns)
        table = cls(schema, name=name)
        for start in range(0, max(big.num_rows, 1), chunk_rows):
            piece = big.slice(start, start + chunk_rows)
            if piece.num_rows or big.num_rows == 0:
                table.append(piece)
        return table

    def append(self, chunk: Chunk) -> None:
        if chunk.schema.names != self.schema.names:
            raise ValueError(
                f"chunk schema {chunk.schema.names} does not match "
                f"table schema {self.schema.names}")
        # Tables are long-lived; a lazy selection view appended here
        # would re-gather on every read, so settle it once.
        self._chunks.append(chunk.materialize())

    @property
    def chunks(self) -> list[Chunk]:
        return list(self._chunks)

    @property
    def num_rows(self) -> int:
        return sum(c.num_rows for c in self._chunks)

    @property
    def nbytes(self) -> int:
        return sum(c.nbytes for c in self._chunks)

    def column(self, name: str) -> np.ndarray:
        """The full column, concatenated across chunks."""
        if not self._chunks:
            return np.empty(0, dtype=self.schema.field(name).numpy_dtype)
        return np.concatenate([c.columns[name] for c in self._chunks])

    def combined(self) -> Chunk:
        """All rows as a single chunk."""
        if not self._chunks:
            return Chunk.empty(self.schema)
        return Chunk.concat(self._chunks)

    def rechunk(self, chunk_rows: int) -> "Table":
        """The same rows re-split into chunks of ``chunk_rows``."""
        return Table.from_arrays(self.schema, self.combined().columns,
                                 name=self.name, chunk_rows=chunk_rows)

    def __iter__(self) -> Iterator[Chunk]:
        return iter(self._chunks)

    def __repr__(self) -> str:
        return (f"<Table {self.name or '?'} {self.num_rows} rows, "
                f"{len(self._chunks)} chunks>")

    def sorted_rows(self) -> list[tuple]:
        """All rows sorted (order-insensitive comparison oracle)."""
        return self.combined().sorted_rows()
