"""Columnar chunks and tables.

A :class:`Chunk` is the unit of data flow: a fixed schema plus one
numpy array per column.  Every operator in both engines consumes and
produces chunks, and ``chunk.nbytes`` is the quantity charged to
devices and links — the data the simulation moves is the data the
query actually processes.

A :class:`Table` is a list of chunks with one schema; it is what the
catalog stores and what scans iterate over.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from .arena import Arena
from .schema import Field, Schema

__all__ = ["Chunk", "Table"]


class _SelectionColumns(Mapping):
    """Columns viewed through a selection index, gathered lazily.

    Backs a chunk in selection-vector mode: ``base`` holds the dense
    parent columns (a plain dict or an :class:`_ArenaColumns` over
    arena storage), ``sel`` the row indices this view selects.  A
    column is gathered (``base[name][sel]``) only when first read and
    cached, so fused pipeline stages that never touch a column never
    pay for it.  Iteration (``dict(...)``, ``.items()``) gathers every
    column — exactly the materialisation a fusion-segment boundary
    needs.
    """

    __slots__ = ("schema", "names", "base", "sel", "_cache")

    def __init__(self, schema: Schema, base, sel: np.ndarray):
        self.schema = schema
        self.names = tuple(schema.names)
        self.base = base
        self.sel = sel
        self._cache: dict[str, np.ndarray] = {}

    def __getitem__(self, name: str) -> np.ndarray:
        column = self._cache.get(name)
        if column is None:
            if name not in self.names:
                raise KeyError(name)
            column = self.base[name][self.sel]
            self._cache[name] = column
        return column

    def __iter__(self) -> Iterator[str]:
        return iter(self.names)

    def __len__(self) -> int:
        return len(self.names)

    @property
    def num_rows(self) -> int:
        return len(self.sel)

    @property
    def nbytes(self) -> int:
        """Bytes the gathered columns occupy — without gathering.

        ``rows x row_nbytes`` of the viewed schema: the base columns
        went through the checked constructor (or arena build) once,
        so their dtypes are exactly the schema's declared dtypes.
        """
        return len(self.sel) * self.schema.row_nbytes


class _ArenaColumns(Mapping):
    """Columns backed by a ``[start, stop)`` window of arena storage.

    Zero-copy for plain columns (a contiguous buffer slice) and
    decode-on-first-read for dictionary-encoded ones, with the decoded
    slice cached so repeated reads (stage boundaries, checksums) pay
    once.  ``nbytes`` is the *logical* size — rows times the schema's
    declared row width — never the encoded physical size, so the
    simulation charges arena-backed chunks identically to dense ones.
    """

    __slots__ = ("arena", "start", "stop", "schema", "_cache")

    def __init__(self, arena: Arena, start: int, stop: int,
                 schema: Schema,
                 cache: Optional[dict[str, np.ndarray]] = None):
        self.arena = arena
        self.start = start
        self.stop = stop
        self.schema = schema
        self._cache: dict[str, np.ndarray] = (
            {} if cache is None else cache)

    def __getitem__(self, name: str) -> np.ndarray:
        column = self._cache.get(name)
        if column is None:
            if name not in self.schema:
                raise KeyError(name)
            column = self.arena.column_slice(name, self.start, self.stop)
            self._cache[name] = column
        return column

    def __iter__(self) -> Iterator[str]:
        return iter(self.schema.names)

    def __len__(self) -> int:
        return len(self.schema.names)

    @property
    def num_rows(self) -> int:
        return self.stop - self.start

    @property
    def nbytes(self) -> int:
        return (self.stop - self.start) * self.schema.row_nbytes

    def codes(self, name: str) -> Optional[np.ndarray]:
        """Dictionary codes for ``name`` over this window, or None."""
        if name not in self.schema:
            return None
        return self.arena.codes_slice(name, self.start, self.stop)

    def pool(self, name: str) -> Optional[np.ndarray]:
        if name not in self.schema:
            return None
        return self.arena.pool(name)

    def validity(self, name: str) -> Optional[np.ndarray]:
        if name not in self.schema:
            return None
        return self.arena.validity_slice(name, self.start, self.stop)


class Chunk:
    """A batch of rows in columnar layout."""

    def __init__(self, schema: Schema, columns: dict[str, np.ndarray]):
        if set(columns) != set(schema.names):
            raise ValueError(
                f"columns {sorted(columns)} do not match schema "
                f"{schema.names}")
        lengths = {len(col) for col in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        self.schema = schema
        self.columns = {
            name: np.asarray(columns[name],
                             dtype=schema.field(name).numpy_dtype)
            for name in schema.names
        }

    # A dense chunk has ``_sel is None``; a selection-vector view set
    # by :meth:`_view` carries the lazy index instead.
    _sel: Optional[np.ndarray] = None

    # -- construction ------------------------------------------------------

    @classmethod
    def _from_valid(cls, schema: Schema,
                    columns: dict[str, np.ndarray]) -> "Chunk":
        """Internal fast constructor: skips validation and coercion.

        Only for columns already known to match ``schema`` — the
        row-subset / column-subset transformations below, whose inputs
        went through the checked ``__init__`` once.
        """
        chunk = cls.__new__(cls)
        chunk.schema = schema
        chunk.columns = columns
        return chunk

    @classmethod
    def _view(cls, schema: Schema, base, sel: np.ndarray) -> "Chunk":
        """A zero-copy selection view over dense ``base`` columns.

        Nothing is gathered until a column is read; ``num_rows`` and
        ``nbytes`` come straight from the selection index, so charging
        a lazy chunk costs the same bytes as charging its
        materialised form.
        """
        chunk = cls.__new__(cls)
        chunk.schema = schema
        chunk.columns = _SelectionColumns(schema, base, sel)
        chunk._sel = sel
        return chunk

    @classmethod
    def _from_arena(cls, schema: Schema, arena: Arena, start: int,
                    stop: int,
                    cache: Optional[dict[str, np.ndarray]] = None) -> "Chunk":
        """A zero-copy window over arena storage (rows [start, stop))."""
        chunk = cls.__new__(cls)
        chunk.schema = schema
        chunk.columns = _ArenaColumns(arena, start, stop, schema, cache)
        return chunk

    @classmethod
    def empty(cls, schema: Schema) -> "Chunk":
        return cls(schema, {
            f.name: np.empty(0, dtype=f.numpy_dtype) for f in schema.fields})

    @classmethod
    def concat(cls, chunks: Sequence["Chunk"]) -> "Chunk":
        """Concatenate chunks sharing a schema into one.

        A single chunk is returned as-is (chunks are immutable by
        convention, so aliasing is safe) — no reallocation.
        """
        if not chunks:
            raise ValueError("concat of zero chunks")
        if len(chunks) == 1:
            return chunks[0]
        schema = chunks[0].schema
        return cls._from_valid(schema, {
            name: np.concatenate([c.columns[name] for c in chunks])
            for name in schema.names})

    # -- basic accessors ---------------------------------------------------

    @property
    def num_rows(self) -> int:
        if not self.schema.names:
            return 0
        if self._sel is not None:
            return len(self._sel)
        columns = self.columns
        if type(columns) is dict:
            return len(columns[self.schema.names[0]])
        return columns.num_rows

    @property
    def nbytes(self) -> int:
        """Exact bytes of column data (drives simulated movement)."""
        columns = self.columns
        if type(columns) is dict:
            return sum(col.nbytes for col in columns.values())
        return columns.nbytes

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        return f"<Chunk {self.num_rows} rows x {len(self.schema)} cols>"

    # -- transformations -----------------------------------------------------

    def project(self, names: Iterable[str]) -> "Chunk":
        """Keep only ``names``, in order."""
        names = list(names)
        schema = self.schema.project(names)
        if self._sel is not None:
            return Chunk._view(schema, self.columns.base, self._sel)
        columns = self.columns
        if type(columns) is _ArenaColumns:
            # Same storage window, restricted schema; the decode
            # cache is shared so either view's reads warm both.
            return Chunk._from_arena(schema, columns.arena, columns.start,
                                     columns.stop, columns._cache)
        return Chunk._from_valid(schema,
                                 {n: columns[n] for n in names})

    def filter(self, mask: np.ndarray) -> "Chunk":
        """Rows where ``mask`` is true — a lazy selection view.

        Nothing is copied: the result carries a selection index over
        this chunk's dense columns, gathered column-by-column only
        when read.  Chained filters compose their indices instead of
        materialising between stages.
        """
        if len(mask) != self.num_rows:
            raise ValueError("mask length mismatch")
        if self._sel is not None:
            return Chunk._view(self.schema, self.columns.base,
                               self._sel[mask])
        return Chunk._view(self.schema, self.columns, np.flatnonzero(mask))

    def take(self, indices: np.ndarray) -> "Chunk":
        """Rows at ``indices`` (may repeat / reorder)."""
        if self._sel is not None:
            return Chunk._view(self.schema, self.columns.base,
                               self._sel[indices])
        if type(self.columns) is _ArenaColumns:
            # Gather lazily: only columns actually read pay a decode.
            return Chunk._view(self.schema, self.columns,
                               np.asarray(indices))
        return Chunk._from_valid(
            self.schema,
            {n: col[indices] for n, col in self.columns.items()})

    def slice(self, start: int, stop: int) -> "Chunk":
        if self._sel is not None:
            return Chunk._view(self.schema, self.columns.base,
                               self._sel[start:stop])
        columns = self.columns
        if type(columns) is _ArenaColumns:
            rows = columns.num_rows
            lo = min(max(start, 0), rows)
            hi = min(max(stop, lo), rows)
            return Chunk._from_arena(self.schema, columns.arena,
                                     columns.start + lo, columns.start + hi)
        return Chunk._from_valid(
            self.schema,
            {n: col[start:stop] for n, col in columns.items()})

    def materialize(self) -> "Chunk":
        """This chunk with every column gathered into dense storage.

        Dense and arena-backed chunks return themselves (arena windows
        already are settled storage — reads are buffer slices or
        cached decodes); selection views gather each column once
        (through the view's cache) and drop the index.
        Fusion-segment boundaries — emit onto a channel, partition,
        join build/probe, aggregate state update, table assembly —
        call this so laziness never escapes a pipeline segment.
        """
        if self._sel is None:
            return self
        return Chunk._from_valid(
            self.schema, {n: self.columns[n] for n in self.schema.names})

    def with_column(self, field: Field, values: np.ndarray) -> "Chunk":
        """A new chunk with one extra column appended."""
        values = np.asarray(values, dtype=field.numpy_dtype)
        if len(values) != self.num_rows:
            raise ValueError(
                f"ragged columns: lengths "
                f"{sorted({self.num_rows, len(values)})}")
        schema = Schema(self.schema.fields + [field])
        columns = dict(self.columns)
        columns[field.name] = values
        return Chunk._from_valid(schema, columns)

    def rename(self, mapping: dict[str, str]) -> "Chunk":
        """A new chunk with columns renamed per ``mapping``."""
        fields = [Field(mapping.get(f.name, f.name), f.dtype, f.width)
                  for f in self.schema.fields]
        schema = Schema(fields)
        columns = {mapping.get(n, n): col
                   for n, col in self.columns.items()}
        return Chunk._from_valid(schema, columns)

    # -- dictionary / validity introspection -----------------------------------

    def dict_codes(self, name: str) -> Optional[np.ndarray]:
        """Dictionary codes for column ``name``, or None if not encoded.

        Codes are int32 indices into the *sorted* pool returned by
        :meth:`dict_pool`, so code order equals value order — fast
        paths (group-by, LIKE over the pool) built on codes produce
        results bit-identical to the decoded column.  Selection views
        over arena storage gather the codes through their index.
        """
        columns = self.columns
        if self._sel is not None:
            base = columns.base
            if type(base) is _ArenaColumns:
                codes = base.codes(name)
                if codes is not None:
                    return codes[self._sel]
            return None
        if type(columns) is _ArenaColumns:
            return columns.codes(name)
        return None

    def dict_pool(self, name: str) -> Optional[np.ndarray]:
        """The sorted dictionary pool for ``name``, or None."""
        columns = self.columns
        if self._sel is not None:
            base = columns.base
            if type(base) is _ArenaColumns:
                return base.pool(name)
            return None
        if type(columns) is _ArenaColumns:
            return columns.pool(name)
        return None

    def validity(self, name: str) -> Optional[np.ndarray]:
        """Row validity mask for ``name`` (None means all valid)."""
        columns = self.columns
        if self._sel is not None:
            base = columns.base
            if type(base) is _ArenaColumns:
                mask = base.validity(name)
                if mask is not None:
                    return mask[self._sel]
            return None
        if type(columns) is _ArenaColumns:
            return columns.validity(name)
        return None

    # -- test/oracle helpers ---------------------------------------------------

    def to_rows(self) -> list[tuple]:
        """Rows as python tuples (for correctness oracles).

        ``tolist`` converts each column to python scalars in one
        vectorized pass — the same values ``.item()`` produces
        element-wise, minus the per-cell dispatch.
        """
        if not self.schema.names:
            return []
        columns = [self.columns[n].tolist() for n in self.schema.names]
        return list(zip(*columns))

    def sorted_rows(self) -> list[tuple]:
        """Rows sorted, for order-insensitive comparison."""
        return sorted(self.to_rows())


class Table:
    """A named relation: a schema plus a list of chunks."""

    def __init__(self, schema: Schema, chunks: Optional[list[Chunk]] = None,
                 name: str = ""):
        self.schema = schema
        self.name = name
        self._chunks: list[Chunk] = []
        self._arena: Optional[Arena] = None
        for chunk in chunks or []:
            self.append(chunk)

    @classmethod
    def from_arrays(cls, schema: Schema, columns: dict[str, np.ndarray],
                    name: str = "", chunk_rows: int = 65536) -> "Table":
        """Build a table over arena storage, chunked as window views.

        The arrays become one contiguous arena (strings dictionary-
        encoded when profitable); each chunk is a zero-copy ``[start,
        stop)`` view of it, so chunking copies nothing and whole-
        column reads (:meth:`column`, :meth:`combined`) come straight
        off the arena.
        """
        if set(columns) != set(schema.names):
            raise ValueError(
                f"columns {sorted(columns)} do not match schema "
                f"{schema.names}")
        arrays = {
            name_: np.asarray(columns[name_],
                              dtype=schema.field(name_).numpy_dtype)
            for name_ in schema.names
        }
        lengths = {len(col) for col in arrays.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        rows = lengths.pop() if lengths else 0
        arena = Arena.build(schema, arrays)
        table = cls(schema, name=name)
        for start in range(0, max(rows, 1), chunk_rows):
            stop = min(start + chunk_rows, rows)
            if stop - start or rows == 0:
                table._chunks.append(
                    Chunk._from_arena(schema, arena, start, stop))
        table._arena = arena
        return table

    def append(self, chunk: Chunk) -> None:
        if chunk.schema.names != self.schema.names:
            raise ValueError(
                f"chunk schema {chunk.schema.names} does not match "
                f"table schema {self.schema.names}")
        # An appended chunk breaks the single-arena invariant, so
        # whole-column reads fall back to per-chunk concatenation.
        self._arena = None
        # Tables are long-lived; a lazy selection view appended here
        # would re-gather on every read, so settle it once.
        self._chunks.append(chunk.materialize())

    @property
    def chunks(self) -> list[Chunk]:
        return list(self._chunks)

    @property
    def num_rows(self) -> int:
        return sum(c.num_rows for c in self._chunks)

    @property
    def nbytes(self) -> int:
        return sum(c.nbytes for c in self._chunks)

    def column(self, name: str) -> np.ndarray:
        """The full column, concatenated across chunks."""
        if self._arena is not None:
            self.schema.field(name)  # same KeyError as the slow path
            return self._arena.full_column(name)
        if not self._chunks:
            return np.empty(0, dtype=self.schema.field(name).numpy_dtype)
        return np.concatenate([c.columns[name] for c in self._chunks])

    def combined(self) -> Chunk:
        """All rows as a single chunk."""
        if self._arena is not None and len(self._chunks) > 1:
            return Chunk._from_arena(self.schema, self._arena, 0,
                                     self._arena.num_rows)
        if not self._chunks:
            return Chunk.empty(self.schema)
        return Chunk.concat(self._chunks)

    def rechunk(self, chunk_rows: int) -> "Table":
        """The same rows re-split into chunks of ``chunk_rows``."""
        return Table.from_arrays(self.schema, self.combined().columns,
                                 name=self.name, chunk_rows=chunk_rows)

    def __iter__(self) -> Iterator[Chunk]:
        return iter(self._chunks)

    def __repr__(self) -> str:
        return (f"<Table {self.name or '?'} {self.num_rows} rows, "
                f"{len(self._chunks)} chunks>")

    def sorted_rows(self) -> list[tuple]:
        """All rows sorted (order-insensitive comparison oracle)."""
        return self.combined().sorted_rows()
