"""Arena columnar storage: one contiguous buffer per column.

A :class:`Arena` owns the physical storage of a table built in one
shot (``Table.from_arrays``): each column is a single contiguous
array covering every row, and chunks become zero-copy ``[start,
stop)`` views instead of per-chunk copies.  String columns are
dictionary-encoded — a *sorted* pool of distinct values plus an
``int32`` code per row — so gathers, group-bys, and equality work
touch 4-byte codes instead of fixed-width unicode rows.  Because the
pool is sorted, code order equals lexicographic order: ``np.unique``
over codes and ``np.unique`` over the decoded strings yield the same
groups in the same order, which is what keeps dictionary encoding
invisible to checksums and simulated byte counts.

The arena is a *physical* layout change only.  Logical byte counts —
``chunk.nbytes``, the quantity charged to devices and links — are
still ``rows x schema.row_nbytes`` exactly as if every column were
dense, so the simulation cannot tell an arena-backed table from a
dict-of-arrays one (the regression gate compares at tolerance 0).

Validity masks ride along structurally (one optional boolean array
per column, ``True`` = present); the current workloads are NULL-free
so no operator consults them yet, but the storage, slicing, and
round-trip contracts are in place and tested.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .schema import DataType, Schema

__all__ = ["Arena", "ArenaColumn"]

#: Dictionary-encode a string column only when the pool is smaller
#: than the rows it describes — a pool as large as the data would
#: cost a gather per read and save nothing.
_DICT_MAX_POOL_FRACTION = 0.75


class ArenaColumn:
    """One column's physical storage inside an arena.

    Either plain (``buffer`` holds the values) or dictionary-encoded
    (``codes`` holds int32 indices into the sorted ``pool``).  An
    optional ``validity`` boolean array marks present rows.
    """

    __slots__ = ("buffer", "codes", "pool", "validity")

    def __init__(self, buffer: Optional[np.ndarray] = None,
                 codes: Optional[np.ndarray] = None,
                 pool: Optional[np.ndarray] = None,
                 validity: Optional[np.ndarray] = None):
        if (buffer is None) == (codes is None):
            raise ValueError("column is either plain or dict-encoded")
        if (codes is None) != (pool is None):
            raise ValueError("codes and pool come together")
        self.buffer = buffer
        self.codes = codes
        self.pool = pool
        self.validity = validity

    @property
    def is_dict(self) -> bool:
        return self.codes is not None

    def __len__(self) -> int:
        store = self.codes if self.buffer is None else self.buffer
        return len(store)

    def decode(self, start: int, stop: int) -> np.ndarray:
        """The logical values of rows [start, stop) as a dense array."""
        if self.buffer is not None:
            return self.buffer[start:stop]
        return self.pool[self.codes[start:stop]]


def _encode(values: np.ndarray) -> ArenaColumn:
    """Dictionary-encode ``values`` when profitable, else store plain."""
    if values.dtype.kind == "U" and len(values):
        # Equivalent to np.unique(values, return_inverse=True) but
        # ~3x faster on low-cardinality string columns: hash-dedup
        # via a Python set, then one vectorized searchsorted for the
        # codes.  Python's str sort and numpy's U-dtype sort agree,
        # so the pool (and therefore codes and downstream checksums)
        # is bit-identical to the np.unique form.
        uniques = sorted(set(values.tolist()))
        pool = np.array(uniques, dtype=values.dtype)
        if len(pool) <= _DICT_MAX_POOL_FRACTION * len(values):
            codes = np.searchsorted(pool, values)
            return ArenaColumn(codes=np.ascontiguousarray(
                codes, dtype=np.int32), pool=pool)
    return ArenaColumn(buffer=np.ascontiguousarray(values))


class Arena:
    """Contiguous SoA storage for one table's rows."""

    __slots__ = ("schema", "num_rows", "columns", "_row_nbytes",
                 "_full_cache")

    def __init__(self, schema: Schema, columns: dict[str, ArenaColumn],
                 num_rows: int):
        self.schema = schema
        self.columns = columns
        self.num_rows = num_rows
        self._row_nbytes = schema.row_nbytes
        # Full-column decodes (Table.column, checksums) cached once.
        self._full_cache: dict[str, np.ndarray] = {}

    @classmethod
    def build(cls, schema: Schema, columns: dict[str, np.ndarray],
              validity: Optional[dict[str, np.ndarray]] = None,
              dictionary: bool = True) -> "Arena":
        """Arena storage for already-validated, schema-typed arrays."""
        validity = validity or {}
        store: dict[str, ArenaColumn] = {}
        rows = 0
        for field in schema.fields:
            values = columns[field.name]
            rows = len(values)
            if dictionary and field.dtype == DataType.STRING:
                column = _encode(values)
            else:
                column = ArenaColumn(buffer=np.ascontiguousarray(values))
            mask = validity.get(field.name)
            if mask is not None:
                mask = np.ascontiguousarray(mask, dtype=bool)
                if len(mask) != rows:
                    raise ValueError(
                        f"validity length {len(mask)} != rows {rows} "
                        f"for column {field.name!r}")
                column.validity = mask
            store[field.name] = column
        return cls(schema, store, rows)

    def column_slice(self, name: str, start: int, stop: int) -> np.ndarray:
        """Decoded values of one column over [start, stop)."""
        if start == 0 and stop >= self.num_rows:
            return self.full_column(name)
        return self.columns[name].decode(start, stop)

    def full_column(self, name: str) -> np.ndarray:
        """The whole column decoded once and cached."""
        values = self._full_cache.get(name)
        if values is None:
            values = self.columns[name].decode(0, self.num_rows)
            self._full_cache[name] = values
        return values

    def codes_slice(self, name: str, start: int,
                    stop: int) -> Optional[np.ndarray]:
        """Dictionary codes over [start, stop), or None if plain."""
        column = self.columns[name]
        if column.codes is None:
            return None
        return column.codes[start:stop]

    def pool(self, name: str) -> Optional[np.ndarray]:
        return self.columns[name].pool

    def validity_slice(self, name: str, start: int,
                       stop: int) -> Optional[np.ndarray]:
        """Validity mask over [start, stop), or None if all-valid."""
        mask = self.columns[name].validity
        if mask is None:
            return None
        return mask[start:stop]

    def __repr__(self) -> str:
        encoded = sum(1 for c in self.columns.values() if c.is_dict)
        return (f"<Arena {self.num_rows} rows x {len(self.columns)} cols,"
                f" {encoded} dict-encoded>")
