"""The catalog: named tables plus the statistics the optimizer uses.

Statistics are computed exactly at registration time (the data is
synthetic and in memory, so there is no reason to sample).  The
optimizer combines them with expression selectivities to predict the
bytes flowing across each plan edge (§7.1's movement-first costing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .schema import DataType, Schema
from .table import Table

__all__ = ["ColumnStats", "TableStats", "Catalog"]


@dataclass
class ColumnStats:
    """Exact per-column statistics."""

    name: str
    dtype: str
    min: Optional[float] = None
    max: Optional[float] = None
    distinct: int = 0
    value_nbytes: int = 8

    def as_dict(self) -> dict:
        """The shape expression selectivity estimation expects."""
        return {"min": self.min, "max": self.max, "distinct": self.distinct}


@dataclass
class TableStats:
    """Exact table-level statistics."""

    rows: int
    nbytes: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    @property
    def row_nbytes(self) -> float:
        return self.nbytes / self.rows if self.rows else 0.0

    def column_dict(self) -> dict[str, dict]:
        """Per-column stats dicts keyed by name, for expressions."""
        return {name: c.as_dict() for name, c in self.columns.items()}


def compute_stats(table: Table) -> TableStats:
    """Exact statistics for a table."""
    columns = {}
    for f in table.schema.fields:
        values = table.column(f.name)
        if f.dtype in (DataType.INT64, DataType.FLOAT64):
            lo = float(values.min()) if len(values) else None
            hi = float(values.max()) if len(values) else None
        else:
            lo = hi = None
        distinct = len(np.unique(values)) if len(values) else 0
        columns[f.name] = ColumnStats(
            name=f.name, dtype=f.dtype, min=lo, max=hi,
            distinct=distinct, value_nbytes=f.value_nbytes)
    return TableStats(rows=table.num_rows, nbytes=table.nbytes,
                      columns=columns)


class Catalog:
    """Named tables with statistics and (lazily built) zone maps."""

    def __init__(self):
        self._tables: dict[str, Table] = {}
        self._stats: dict[str, TableStats] = {}
        self._zonemaps: dict[str, "ZoneMap"] = {}

    def register(self, name: str, table: Table) -> Table:
        """Add (or replace) a table under ``name``; computes stats."""
        table.name = name
        self._tables[name] = table
        self._stats[name] = compute_stats(table)
        self._zonemaps.pop(name, None)
        return table

    def zonemap(self, name: str) -> "ZoneMap":
        """Per-chunk min/max bounds for pruning scans (§2.1)."""
        if name not in self._zonemaps:
            from .zonemaps import ZoneMap
            self._zonemaps[name] = ZoneMap.build(self.table(name))
        return self._zonemaps[name]

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise KeyError(
                f"unknown table {name!r} (have: {sorted(self._tables)})")
        return self._tables[name]

    def stats(self, name: str) -> TableStats:
        if name not in self._stats:
            raise KeyError(f"no statistics for table {name!r}")
        return self._stats[name]

    def schema(self, name: str) -> Schema:
        return self.table(name).schema

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    @property
    def names(self) -> list[str]:
        return sorted(self._tables)
