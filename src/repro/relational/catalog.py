"""The catalog: named tables plus the statistics the optimizer uses.

Statistics are exact (the data is synthetic and in memory, so there
is no reason to sample) but computed *lazily per column*: registering
a table records only its row and byte counts, and a column's min/max/
distinct are derived on first access — the optimizer only ever asks
about the handful of columns its predicates and keys mention, so the
other columns never pay their ``np.unique``.  The optimizer combines
them with expression selectivities to predict the bytes flowing
across each plan edge (§7.1's movement-first costing).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from .schema import DataType, Schema
from .table import Table

__all__ = ["ColumnStats", "TableStats", "Catalog"]


@dataclass
class ColumnStats:
    """Exact per-column statistics."""

    name: str
    dtype: str
    min: Optional[float] = None
    max: Optional[float] = None
    distinct: int = 0
    value_nbytes: int = 8

    def as_dict(self) -> dict:
        """The shape expression selectivity estimation expects."""
        return {"min": self.min, "max": self.max, "distinct": self.distinct}


@dataclass
class TableStats:
    """Exact table-level statistics."""

    rows: int
    nbytes: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    @property
    def row_nbytes(self) -> float:
        return self.nbytes / self.rows if self.rows else 0.0

    def column_dict(self) -> Mapping:
        """Per-column stats dicts keyed by name, for expressions.

        Lazy like :attr:`columns`: the stats of a column are computed
        (and its dict built) only when an expression looks it up.
        """
        return _LazyColumnDicts(self.columns)


def _column_stats(table: Table, f) -> ColumnStats:
    """Exact statistics for one column of ``table``."""
    values = table.column(f.name)
    if f.dtype in (DataType.INT64, DataType.FLOAT64):
        lo = float(values.min()) if len(values) else None
        hi = float(values.max()) if len(values) else None
    else:
        lo = hi = None
    if not len(values):
        distinct = 0
    elif f.dtype == DataType.STRING:
        # Hashing beats np.unique's sort for fixed-width strings.
        distinct = len(set(values.tolist()))
    else:
        distinct = len(np.unique(values))
    return ColumnStats(name=f.name, dtype=f.dtype, min=lo, max=hi,
                       distinct=distinct, value_nbytes=f.value_nbytes)


class _LazyColumnStats(Mapping):
    """Per-column :class:`ColumnStats`, computed on first access."""

    def __init__(self, table: Table):
        self._table = table
        self._fields = {f.name: f for f in table.schema.fields}
        self._cache: dict[str, ColumnStats] = {}

    def __getitem__(self, name: str) -> ColumnStats:
        stats = self._cache.get(name)
        if stats is None:
            stats = _column_stats(self._table, self._fields[name])
            self._cache[name] = stats
        return stats

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)


class _LazyColumnDicts(Mapping):
    """``column_dict()`` form of a lazy stats mapping."""

    def __init__(self, columns: Mapping):
        self._columns = columns
        self._cache: dict[str, dict] = {}

    def __getitem__(self, name: str) -> dict:
        entry = self._cache.get(name)
        if entry is None:
            entry = self._columns[name].as_dict()
            self._cache[name] = entry
        return entry

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    def __len__(self) -> int:
        return len(self._columns)


def compute_stats(table: Table) -> TableStats:
    """Exact statistics for a table (columns computed lazily)."""
    return TableStats(rows=table.num_rows, nbytes=table.nbytes,
                      columns=_LazyColumnStats(table))


class Catalog:
    """Named tables with statistics and (lazily built) zone maps."""

    def __init__(self):
        self._tables: dict[str, Table] = {}
        self._stats: dict[str, TableStats] = {}
        self._zonemaps: dict[str, "ZoneMap"] = {}
        #: Bumped on every (re-)registration; fingerprint caches key
        #: on it so a changed table invalidates dependent entries.
        self.version = 0

    def register(self, name: str, table: Table) -> Table:
        """Add (or replace) a table under ``name``; computes stats."""
        table.name = name
        self._tables[name] = table
        self._stats[name] = compute_stats(table)
        self._zonemaps.pop(name, None)
        self.version += 1
        return table

    def zonemap(self, name: str) -> "ZoneMap":
        """Per-chunk min/max bounds for pruning scans (§2.1)."""
        if name not in self._zonemaps:
            from .zonemaps import ZoneMap
            self._zonemaps[name] = ZoneMap.build(self.table(name))
        return self._zonemaps[name]

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise KeyError(
                f"unknown table {name!r} (have: {sorted(self._tables)})")
        return self._tables[name]

    def stats(self, name: str) -> TableStats:
        if name not in self._stats:
            raise KeyError(f"no statistics for table {name!r}")
        return self._stats[name]

    def schema(self, name: str) -> Schema:
        return self.table(name).schema

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    @property
    def names(self) -> list[str]:
        return sorted(self._tables)
