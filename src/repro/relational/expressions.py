"""Vectorized expression trees for predicates and projections.

Expressions evaluate against a :class:`~repro.relational.table.Chunk`
and return a numpy array.  They also self-describe for the optimizer:
``required_columns`` feeds projection pushdown, ``op_kind`` tells the
placement layer whether a device needs FILTER or REGEX capability
(LIKE predicates are regex work — the AQUA example of §3.3), and
``estimate_selectivity`` supports the movement cost model.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Callable, Optional

import numpy as np

from ..hardware.device import OpKind
from .table import Chunk

__all__ = [
    "Expression",
    "Col",
    "Const",
    "Compare",
    "Arith",
    "And",
    "Or",
    "Not",
    "Like",
    "Between",
    "InSet",
    "col",
    "lit",
]


@lru_cache(maxsize=512)
def _like_regex(pattern: str) -> "re.Pattern[str]":
    """The compiled regex for a SQL LIKE pattern (shared per pattern).

    Cached at module level so the many places that build a fresh
    :class:`Like` for the same pattern — one per operator instance,
    plus the kernel compiler sizing its automaton in
    :mod:`repro.engine.kernels` — share one compile.
    """
    parts = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile("^" + "".join(parts) + "$")


class Expression:
    """Base class for all expression nodes.

    ``evaluate`` walks the tree per chunk; hot loops should call
    :meth:`compiled` once per operator instead — it flattens the tree
    into a chain of numpy closures (no isinstance dispatch, no regex
    or set re-derivation per chunk) that computes the *same* array.
    """

    def evaluate(self, chunk: Chunk) -> np.ndarray:
        raise NotImplementedError

    def compiled(self) -> Callable[[Chunk], np.ndarray]:
        """A cached closure computing this expression over a chunk.

        The closure is built once per expression object and returns
        results bit-identical to :meth:`evaluate`.
        """
        fn = getattr(self, "_compiled_fn", None)
        if fn is None:
            fn = self._compile()
            self._compiled_fn = fn
        return fn

    def _compile(self) -> Callable[[Chunk], np.ndarray]:
        # Subclasses override; unknown extension nodes fall back to
        # the interpreted walk.
        return self.evaluate

    def required_columns(self) -> set[str]:
        raise NotImplementedError

    def op_kind(self) -> str:
        """The device capability this expression needs (FILTER/REGEX)."""
        return OpKind.FILTER

    def estimate_selectivity(self, stats: Optional[dict] = None) -> float:
        """Fraction of rows expected to pass (predicates only)."""
        return 1.0

    # -- operator sugar ---------------------------------------------------

    def __eq__(self, other):  # type: ignore[override]
        return Compare("==", self, _wrap(other))

    def __ne__(self, other):  # type: ignore[override]
        return Compare("!=", self, _wrap(other))

    def __lt__(self, other):
        return Compare("<", self, _wrap(other))

    def __le__(self, other):
        return Compare("<=", self, _wrap(other))

    def __gt__(self, other):
        return Compare(">", self, _wrap(other))

    def __ge__(self, other):
        return Compare(">=", self, _wrap(other))

    def __add__(self, other):
        return Arith("+", self, _wrap(other))

    def __sub__(self, other):
        return Arith("-", self, _wrap(other))

    def __mul__(self, other):
        return Arith("*", self, _wrap(other))

    def __truediv__(self, other):
        return Arith("/", self, _wrap(other))

    def __and__(self, other):
        return And(self, _wrap(other))

    def __or__(self, other):
        return Or(self, _wrap(other))

    def __invert__(self):
        return Not(self)

    def __hash__(self):
        return id(self)

    def like(self, pattern: str) -> "Like":
        """SQL LIKE with ``%`` and ``_`` wildcards."""
        return Like(self, pattern)

    def between(self, low, high) -> "Between":
        """Inclusive range predicate."""
        return Between(self, low, high)

    def isin(self, values) -> "InSet":
        """Membership predicate."""
        return InSet(self, values)


def _wrap(value) -> "Expression":
    return value if isinstance(value, Expression) else Const(value)


def _compile_binary(ufunc, left: "Expression",
                    right: "Expression") -> Callable[[Chunk], np.ndarray]:
    """A closure for ``ufunc(left, right)`` with literals bound raw.

    A :class:`Const` operand broadcasts as a python scalar instead of
    the ``np.full`` array ``evaluate`` builds — the ufunc result is
    the same array, minus one temporary per chunk.  (Both-const stays
    on the array path so the output keeps the chunk's row count.)
    """
    if isinstance(right, Const) and not isinstance(left, Const):
        left_fn, value = left.compiled(), right.value
        return lambda chunk: ufunc(left_fn(chunk), value)
    if isinstance(left, Const) and not isinstance(right, Const):
        value, right_fn = left.value, right.compiled()
        return lambda chunk: ufunc(value, right_fn(chunk))
    left_fn, right_fn = left.compiled(), right.compiled()
    return lambda chunk: ufunc(left_fn(chunk), right_fn(chunk))


class Col(Expression):
    """A column reference."""

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, chunk: Chunk) -> np.ndarray:
        return chunk.column(self.name)

    def _compile(self) -> Callable[[Chunk], np.ndarray]:
        name = self.name
        return lambda chunk: chunk.columns[name]

    def required_columns(self) -> set[str]:
        return {self.name}

    def __repr__(self):
        return f"col({self.name!r})"


class Const(Expression):
    """A literal value, broadcast across the chunk."""

    def __init__(self, value):
        self.value = value

    def evaluate(self, chunk: Chunk) -> np.ndarray:
        return np.full(chunk.num_rows, self.value)

    def _compile(self) -> Callable[[Chunk], np.ndarray]:
        value = self.value
        return lambda chunk: np.full(chunk.num_rows, value)

    def required_columns(self) -> set[str]:
        return set()

    def __repr__(self):
        return f"lit({self.value!r})"


class Compare(Expression):
    """A comparison producing a boolean mask."""

    _OPS = {
        "==": np.equal, "!=": np.not_equal, "<": np.less,
        "<=": np.less_equal, ">": np.greater, ">=": np.greater_equal,
    }

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in self._OPS:
            raise ValueError(f"unknown comparison {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, chunk: Chunk) -> np.ndarray:
        return self._OPS[self.op](self.left.evaluate(chunk),
                                  self.right.evaluate(chunk))

    def _compile(self) -> Callable[[Chunk], np.ndarray]:
        return _compile_binary(self._OPS[self.op], self.left, self.right)

    def required_columns(self) -> set[str]:
        return self.left.required_columns() | self.right.required_columns()

    def estimate_selectivity(self, stats: Optional[dict] = None) -> float:
        # Range predicates over known min/max interpolate; equality
        # uses 1/distinct; otherwise textbook defaults.
        if isinstance(self.left, Col) and isinstance(self.right, Const) \
                and stats and self.left.name in stats:
            cstats = stats[self.left.name]
            lo, hi = cstats.get("min"), cstats.get("max")
            value = self.right.value
            if self.op == "==":
                distinct = cstats.get("distinct", 0)
                return 1.0 / distinct if distinct else 0.1
            if lo is not None and hi is not None and hi > lo \
                    and isinstance(value, (int, float)):
                frac = (value - lo) / (hi - lo)
                frac = min(max(frac, 0.0), 1.0)
                if self.op in ("<", "<="):
                    return frac
                if self.op in (">", ">="):
                    return 1.0 - frac
        return {"==": 0.1, "!=": 0.9}.get(self.op, 0.33)

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


class Arith(Expression):
    """Element-wise arithmetic."""

    _OPS = {"+": np.add, "-": np.subtract, "*": np.multiply,
            "/": np.divide}

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in self._OPS:
            raise ValueError(f"unknown arithmetic op {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, chunk: Chunk) -> np.ndarray:
        return self._OPS[self.op](self.left.evaluate(chunk),
                                  self.right.evaluate(chunk))

    def _compile(self) -> Callable[[Chunk], np.ndarray]:
        return _compile_binary(self._OPS[self.op], self.left, self.right)

    def required_columns(self) -> set[str]:
        return self.left.required_columns() | self.right.required_columns()

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


class And(Expression):
    def __init__(self, left: Expression, right: Expression):
        self.left = left
        self.right = right

    def evaluate(self, chunk: Chunk) -> np.ndarray:
        return np.logical_and(self.left.evaluate(chunk),
                              self.right.evaluate(chunk))

    def _compile(self) -> Callable[[Chunk], np.ndarray]:
        left, right = self.left.compiled(), self.right.compiled()
        return lambda chunk: np.logical_and(left(chunk), right(chunk))

    def required_columns(self) -> set[str]:
        return self.left.required_columns() | self.right.required_columns()

    def op_kind(self) -> str:
        kinds = {self.left.op_kind(), self.right.op_kind()}
        return OpKind.REGEX if OpKind.REGEX in kinds else OpKind.FILTER

    def estimate_selectivity(self, stats: Optional[dict] = None) -> float:
        return (self.left.estimate_selectivity(stats)
                * self.right.estimate_selectivity(stats))

    def __repr__(self):
        return f"({self.left!r} & {self.right!r})"


class Or(Expression):
    def __init__(self, left: Expression, right: Expression):
        self.left = left
        self.right = right

    def evaluate(self, chunk: Chunk) -> np.ndarray:
        return np.logical_or(self.left.evaluate(chunk),
                             self.right.evaluate(chunk))

    def _compile(self) -> Callable[[Chunk], np.ndarray]:
        left, right = self.left.compiled(), self.right.compiled()
        return lambda chunk: np.logical_or(left(chunk), right(chunk))

    def required_columns(self) -> set[str]:
        return self.left.required_columns() | self.right.required_columns()

    def op_kind(self) -> str:
        kinds = {self.left.op_kind(), self.right.op_kind()}
        return OpKind.REGEX if OpKind.REGEX in kinds else OpKind.FILTER

    def estimate_selectivity(self, stats: Optional[dict] = None) -> float:
        a = self.left.estimate_selectivity(stats)
        b = self.right.estimate_selectivity(stats)
        return min(1.0, a + b - a * b)

    def __repr__(self):
        return f"({self.left!r} | {self.right!r})"


class Not(Expression):
    def __init__(self, operand: Expression):
        self.operand = operand

    def evaluate(self, chunk: Chunk) -> np.ndarray:
        return np.logical_not(self.operand.evaluate(chunk))

    def _compile(self) -> Callable[[Chunk], np.ndarray]:
        operand = self.operand.compiled()
        return lambda chunk: np.logical_not(operand(chunk))

    def required_columns(self) -> set[str]:
        return self.operand.required_columns()

    def op_kind(self) -> str:
        return self.operand.op_kind()

    def estimate_selectivity(self, stats: Optional[dict] = None) -> float:
        return 1.0 - self.operand.estimate_selectivity(stats)

    def __repr__(self):
        return f"~{self.operand!r}"


class Like(Expression):
    """SQL LIKE pattern matching — REGEX work for the device model.

    The regex is derived once in ``__init__`` (through the module's
    shared pattern cache) and reused for every chunk.
    """

    def __init__(self, operand: Expression, pattern: str):
        self.operand = operand
        self.pattern = pattern
        self._compiled = _like_regex(pattern)

    def evaluate(self, chunk: Chunk) -> np.ndarray:
        return self.compiled()(chunk)

    def _compile(self) -> Callable[[Chunk], np.ndarray]:
        match = self._compiled.match
        operand = self.operand.compiled()

        def run_values(values: list) -> np.ndarray:
            # tolist() converts to python scalars in one pass, which
            # is much cheaper than per-element numpy indexing.
            return np.fromiter(
                (match(str(v)) is not None for v in values),
                dtype=bool, count=len(values))

        if not isinstance(self.operand, Col):
            return lambda chunk: run_values(operand(chunk).tolist())

        # Column operand: dictionary-encoded arena columns match the
        # regex against the (small, shared) pool once, then gather the
        # boolean verdicts by code — identical values, one regex per
        # distinct string instead of one per row.  The per-pool mask
        # is cached; holding the pool in the cache entry keeps its id
        # stable, so the identity check is exact.
        name = self.operand.name
        pool_masks: dict[int, tuple[np.ndarray, np.ndarray]] = {}

        def run(chunk: Chunk) -> np.ndarray:
            codes = chunk.dict_codes(name)
            if codes is None:
                return run_values(operand(chunk).tolist())
            pool = chunk.dict_pool(name)
            entry = pool_masks.get(id(pool))
            if entry is None or entry[0] is not pool:
                mask = run_values(pool.tolist())
                pool_masks[id(pool)] = (pool, mask)
            else:
                mask = entry[1]
            return mask[codes]
        return run

    def required_columns(self) -> set[str]:
        return self.operand.required_columns()

    def op_kind(self) -> str:
        return OpKind.REGEX

    def estimate_selectivity(self, stats: Optional[dict] = None) -> float:
        return 0.05 if not self.pattern.startswith("%") else 0.1

    def __repr__(self):
        return f"{self.operand!r}.like({self.pattern!r})"


class Between(Expression):
    """Inclusive range predicate, decomposed for estimation."""

    def __init__(self, operand: Expression, low, high):
        self.operand = operand
        self.low = _wrap(low)
        self.high = _wrap(high)

    def evaluate(self, chunk: Chunk) -> np.ndarray:
        values = self.operand.evaluate(chunk)
        return np.logical_and(values >= self.low.evaluate(chunk),
                              values <= self.high.evaluate(chunk))

    def _compile(self) -> Callable[[Chunk], np.ndarray]:
        operand = self.operand.compiled()
        if isinstance(self.low, Const) and isinstance(self.high, Const):
            lo, hi = self.low.value, self.high.value

            def run(chunk: Chunk) -> np.ndarray:
                values = operand(chunk)
                return np.logical_and(values >= lo, values <= hi)
            return run
        low, high = self.low.compiled(), self.high.compiled()

        def run(chunk: Chunk) -> np.ndarray:
            values = operand(chunk)
            return np.logical_and(values >= low(chunk),
                                  values <= high(chunk))
        return run

    def required_columns(self) -> set[str]:
        return (self.operand.required_columns()
                | self.low.required_columns()
                | self.high.required_columns())

    def estimate_selectivity(self, stats: Optional[dict] = None) -> float:
        if isinstance(self.operand, Col) and isinstance(self.low, Const) \
                and isinstance(self.high, Const) and stats \
                and self.operand.name in stats:
            cstats = stats[self.operand.name]
            lo, hi = cstats.get("min"), cstats.get("max")
            if lo is not None and hi is not None and hi > lo:
                frac = (self.high.value - self.low.value) / (hi - lo)
                return min(max(frac, 0.0), 1.0)
        return 0.25

    def __repr__(self):
        return f"{self.operand!r}.between({self.low!r}, {self.high!r})"


class InSet(Expression):
    """Membership in a fixed value set."""

    def __init__(self, operand: Expression, values):
        self.operand = operand
        self.values = list(values)

    def evaluate(self, chunk: Chunk) -> np.ndarray:
        return np.isin(self.operand.evaluate(chunk), self.values)

    def _compile(self) -> Callable[[Chunk], np.ndarray]:
        operand = self.operand.compiled()
        values = self.values
        return lambda chunk: np.isin(operand(chunk), values)

    def required_columns(self) -> set[str]:
        return self.operand.required_columns()

    def estimate_selectivity(self, stats: Optional[dict] = None) -> float:
        if isinstance(self.operand, Col) and stats \
                and self.operand.name in stats:
            distinct = stats[self.operand.name].get("distinct", 0)
            if distinct:
                return min(1.0, len(self.values) / distinct)
        return min(1.0, 0.1 * len(self.values))

    def __repr__(self):
        return f"{self.operand!r}.isin({self.values!r})"


def col(name: str) -> Col:
    """Shorthand column reference: ``col("price") > 10``."""
    return Col(name)


def lit(value) -> Const:
    """Shorthand literal."""
    return Const(value)
