"""Synthetic workload generators.

TPC-H-flavoured relations (lineitem / orders / customer at a
controllable scale) plus generic helpers with tunable skew.  All
generators are seeded, so every experiment is reproducible bit for
bit.  The schemas carry wide comment columns on purpose: they make
projection pushdown matter, which is the point of Figure 2.
"""

from __future__ import annotations

import numpy as np

from .schema import DataType, Field, Schema
from .table import Table

__all__ = [
    "uniform_ints",
    "zipf_ints",
    "random_strings",
    "lineitem_schema",
    "orders_schema",
    "customer_schema",
    "sensor_schema",
    "make_lineitem",
    "make_orders",
    "make_customer",
    "make_sensor_readings",
    "make_uniform_table",
]

_WORDS = (
    "packages sleep quickly express pending bold final ironic regular "
    "special deposits requests accounts platelets foxes theodolites "
    "pinto beans instructions dependencies carefully furiously blithely "
    "slyly quietly ruthlessly silent dolphins warhorses epitaphs"
).split()


def uniform_ints(rng: np.random.Generator, n: int, low: int,
                 high: int) -> np.ndarray:
    """``n`` uniform integers in [low, high]."""
    return rng.integers(low, high + 1, size=n, dtype=np.int64)


def zipf_ints(rng: np.random.Generator, n: int, n_values: int,
              skew: float = 1.1) -> np.ndarray:
    """``n`` integers in [0, n_values) with Zipfian skew.

    ``skew`` must be > 1 (numpy's zipf); larger = more skewed.
    """
    if skew <= 1.0:
        raise ValueError("zipf skew must be > 1")
    raw = rng.zipf(skew, size=n)
    return ((raw - 1) % n_values).astype(np.int64)


def random_strings(rng: np.random.Generator, n: int, words: int = 4,
                   width: int = 32, pool: int = 4096) -> np.ndarray:
    """``n`` phrases of ``words`` dictionary words, truncated to width.

    Phrases are drawn from a pre-built pool of ``pool`` distinct
    combinations (a bounded vocabulary, like real comment columns),
    which keeps generation vectorized.
    """
    pool = min(pool, max(1, n))
    picks = rng.integers(0, len(_WORDS), size=(pool, words))
    # The <U{width} dtype truncates each joined phrase, identical to
    # a per-row ``" ".join(...)[:width]``.
    phrases = np.array([" ".join([_WORDS[j] for j in row])
                        for row in picks.tolist()], dtype=f"<U{width}")
    return phrases[rng.integers(0, pool, size=n)]


def lineitem_schema(comment_width: int = 44) -> Schema:
    return Schema([
        Field("l_orderkey", DataType.INT64),
        Field("l_partkey", DataType.INT64),
        Field("l_quantity", DataType.INT64),
        Field("l_extendedprice", DataType.FLOAT64),
        Field("l_discount", DataType.FLOAT64),
        Field("l_shipdate", DataType.INT64),       # days since epoch
        Field("l_returnflag", DataType.STRING, 1),
        Field("l_comment", DataType.STRING, comment_width),
    ])


def orders_schema(comment_width: int = 32) -> Schema:
    return Schema([
        Field("o_orderkey", DataType.INT64),
        Field("o_custkey", DataType.INT64),
        Field("o_totalprice", DataType.FLOAT64),
        Field("o_orderdate", DataType.INT64),
        Field("o_priority", DataType.INT64),       # 1..5
        Field("o_comment", DataType.STRING, comment_width),
    ])


def customer_schema(comment_width: int = 32) -> Schema:
    return Schema([
        Field("c_custkey", DataType.INT64),
        Field("c_nationkey", DataType.INT64),
        Field("c_acctbal", DataType.FLOAT64),
        Field("c_mktsegment", DataType.INT64),     # 0..4
        Field("c_comment", DataType.STRING, comment_width),
    ])


def sensor_schema() -> Schema:
    return Schema([
        Field("ts", DataType.INT64),
        Field("sensor_id", DataType.INT64),
        Field("temperature", DataType.FLOAT64),
        Field("status", DataType.INT64),           # 0 ok, 1 warn, 2 err
    ])


def make_lineitem(n: int, seed: int = 7, orders: int = 0,
                  chunk_rows: int = 65536) -> Table:
    """A lineitem-flavoured fact table of ``n`` rows.

    ``orders`` bounds l_orderkey (default n // 4, ~4 lines per order),
    so lineitem joins orders of :func:`make_orders` with the same n.
    """
    rng = np.random.default_rng(seed)
    orders = orders or max(1, n // 4)
    schema = lineitem_schema()
    columns = {
        "l_orderkey": uniform_ints(rng, n, 0, orders - 1),
        "l_partkey": uniform_ints(rng, n, 0, max(1, n // 10)),
        "l_quantity": uniform_ints(rng, n, 1, 50),
        "l_extendedprice": rng.uniform(1.0, 100000.0, size=n),
        "l_discount": rng.uniform(0.0, 0.1, size=n).round(2),
        "l_shipdate": uniform_ints(rng, n, 8000, 11000),
        "l_returnflag": rng.choice(np.array(["A", "N", "R"]), size=n),
        "l_comment": random_strings(rng, n, words=5, width=44),
    }
    return Table.from_arrays(schema, columns, name="lineitem",
                             chunk_rows=chunk_rows)


def make_orders(n: int, seed: int = 11, customers: int = 0,
                chunk_rows: int = 65536) -> Table:
    """An orders-flavoured table; o_orderkey is the dense key 0..n-1."""
    rng = np.random.default_rng(seed)
    customers = customers or max(1, n // 10)
    schema = orders_schema()
    columns = {
        "o_orderkey": np.arange(n, dtype=np.int64),
        "o_custkey": uniform_ints(rng, n, 0, customers - 1),
        "o_totalprice": rng.uniform(100.0, 500000.0, size=n),
        "o_orderdate": uniform_ints(rng, n, 8000, 11000),
        "o_priority": uniform_ints(rng, n, 1, 5),
        "o_comment": random_strings(rng, n, words=4, width=32),
    }
    return Table.from_arrays(schema, columns, name="orders",
                             chunk_rows=chunk_rows)


def make_customer(n: int, seed: int = 13,
                  chunk_rows: int = 65536) -> Table:
    """A customer-flavoured dimension table; c_custkey dense 0..n-1."""
    rng = np.random.default_rng(seed)
    schema = customer_schema()
    columns = {
        "c_custkey": np.arange(n, dtype=np.int64),
        "c_nationkey": uniform_ints(rng, n, 0, 24),
        "c_acctbal": rng.uniform(-999.0, 9999.0, size=n),
        "c_mktsegment": uniform_ints(rng, n, 0, 4),
        "c_comment": random_strings(rng, n, words=4, width=32),
    }
    return Table.from_arrays(schema, columns, name="customer",
                             chunk_rows=chunk_rows)


def make_sensor_readings(n: int, sensors: int = 100, seed: int = 17,
                         error_rate: float = 0.01,
                         chunk_rows: int = 65536) -> Table:
    """Time-ordered sensor readings for the streaming example."""
    rng = np.random.default_rng(seed)
    schema = sensor_schema()
    status = np.zeros(n, dtype=np.int64)
    noise = rng.uniform(0, 1, size=n)
    status[noise < error_rate * 3] = 1
    status[noise < error_rate] = 2
    columns = {
        "ts": np.arange(n, dtype=np.int64),
        "sensor_id": uniform_ints(rng, n, 0, sensors - 1),
        "temperature": rng.normal(20.0, 5.0, size=n),
        "status": status,
    }
    return Table.from_arrays(schema, columns, name="sensors",
                             chunk_rows=chunk_rows)


def make_uniform_table(n: int, columns: int = 4, distinct: int = 1000,
                       seed: int = 23, chunk_rows: int = 65536) -> Table:
    """A generic integer table ``k0..k{columns-1}`` for micro tests."""
    rng = np.random.default_rng(seed)
    schema = Schema([Field(f"k{i}", DataType.INT64)
                     for i in range(columns)])
    data = {f"k{i}": uniform_ints(rng, n, 0, distinct - 1)
            for i in range(columns)}
    return Table.from_arrays(schema, data, name="uniform",
                             chunk_rows=chunk_rows)
