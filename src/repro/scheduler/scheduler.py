"""The query scheduler: plan variants + DMA rate limiting (§7.3).

Queries arrive over time and run *concurrently* on one shared fabric.
For each arriving query the scheduler holds the variant set the
optimizer produced (§7.3's first requirement: "plans should contain
several data path alternatives") and picks the one minimizing the
interference score against the currently running mix.  Its second
lever is runtime resource adjustment: every query's channels go
through a :class:`~repro.flow.ratelimit.RateLimiter`, and the
scheduler rebalances the rates whenever the set of queries sharing
the network changes ("rate-limiting DMA engines ... can take place
dynamically").

Policies:

* ``greedy`` — everyone gets the best (full-offload) plan, no rate
  control: the naive baseline that interferes with itself.
* ``interference`` — variant choice by interference score.
* ``interference+ratelimit`` — variant choice plus dynamic fair-share
  rate limiting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..engine.dataflow import DataflowEngine
from ..engine.logical import Query
from ..flow.ratelimit import RateLimiter
from ..hardware.presets import HeterogeneousFabric
from ..optimizer.optimizer import Optimizer, RankedPlacement
from ..relational.catalog import Catalog
from ..relational.table import Table
from .interference import LoadTracker, demand_vector

__all__ = ["QueryExecutor", "Scheduler", "ScheduledQuery",
           "VariantDecision"]

POLICIES = ("greedy", "interference", "interference+ratelimit")


@dataclass(frozen=True)
class VariantDecision:
    """Why the policy picked one plan variant over the others.

    Captured at pick time so the observatory can later score the
    *chosen* variant against the alternatives on the observed fabric
    state (placement regret) without re-running the policy.
    ``considered`` holds ``(placement_name, bottleneck_s, score)``
    per candidate — ``score`` is ``None`` when the policy short-
    circuited (greedy, or a single-variant set).
    """

    chosen: str
    considered: tuple[tuple[str, float, Optional[float]], ...]


@dataclass
class ScheduledQuery:
    """Record of one query's trip through the scheduler."""

    name: str
    arrival: float
    started: float = 0.0
    finished: float = 0.0
    variant_name: str = ""
    table: Optional[Table] = None

    @property
    def latency(self) -> float:
        return self.finished - self.arrival

    @property
    def run_time(self) -> float:
        return self.finished - self.started


@dataclass
class _Job:
    name: str
    query: Query
    arrival: float
    variants: list[RankedPlacement] = field(default_factory=list)


class QueryExecutor:
    """The incremental execution core behind scheduling and serving.

    Owns the policy decisions one concurrent query needs — variant
    choice by interference score, per-query rate limiters, dynamic
    fair-share rebalance — plus the simulation process that runs one
    placed query on the shared fabric.  :class:`Scheduler` drives it
    in batch mode (submit everything, then run); the serving
    front-end (:mod:`repro.serve`) drives it incrementally while the
    simulator is already advancing.
    """

    def __init__(self, fabric: HeterogeneousFabric, catalog: Catalog,
                 policy: str = "interference+ratelimit",
                 variants_per_query: int = 3):
        if policy not in POLICIES:
            raise ValueError(
                f"unknown policy {policy!r} (have {POLICIES})")
        self.fabric = fabric
        self.catalog = catalog
        self.policy = policy
        self.variants_per_query = variants_per_query
        self.optimizer = Optimizer(fabric, catalog)
        self.tracker = LoadTracker()
        self._limiters: dict[str, RateLimiter] = {}
        #: Most recent variant decision per query name, recorded by
        #: :meth:`execute` for observers (pure bookkeeping — never
        #: read by the policy itself).  The serving front-end pops
        #: entries at completion so the dict stays bounded.
        self.decisions: dict[str, VariantDecision] = {}

    # -- planning -----------------------------------------------------------

    def plan_variants(self, query: Query) -> list[RankedPlacement]:
        """The diverse variant set the policy picks from at runtime."""
        return self.optimizer.plan_variants(
            query, n=self.variants_per_query)

    def pick_variant(self, variants: list[RankedPlacement]
                     ) -> RankedPlacement:
        """Choose the variant minimizing projected interference."""
        return self._pick_scored(variants)[0]

    def _pick_scored(self, variants: list[RankedPlacement]
                     ) -> tuple[RankedPlacement, VariantDecision]:
        """The pick plus a :class:`VariantDecision` audit record."""
        if self.policy == "greedy" or len(variants) == 1:
            chosen = variants[0]
            decision = VariantDecision(
                chosen=chosen.placement.name,
                considered=tuple(
                    (v.placement.name, v.cost.bottleneck_time, None)
                    for v in variants))
            return chosen, decision
        scored = []
        for variant in variants:
            vector = demand_vector(variant.cost)
            projected = self.tracker.interference_score(vector)
            # Balance projected contention against the variant's own
            # solo quality so a terrible plan is not chosen just
            # because it is idle.
            scored.append((projected + variant.cost.bottleneck_time,
                           variant))
        scored.sort(key=lambda pair: pair[0])
        chosen = scored[0][1]
        decision = VariantDecision(
            chosen=chosen.placement.name,
            considered=tuple(
                (v.placement.name, v.cost.bottleneck_time, score)
                for score, v in scored))
        return chosen, decision

    def network_bandwidth(self) -> float:
        links = self.fabric.route(self.fabric.storage_location,
                                  "compute0.node")
        net = [link for link in links if link.segment == "network"]
        return (min(link.bandwidth for link in net)
                if net else float("inf"))

    def rebalance(self) -> None:
        """Fair-share the network among the active queries (§7.3)."""
        if self.policy != "interference+ratelimit":
            return
        active = [name for name in self.tracker.active_jobs
                  if name in self._limiters]
        if not active:
            return
        share = self.network_bandwidth() / len(active)
        for name in active:
            self._limiters[name].set_rate(share)

    # -- execution ----------------------------------------------------------

    def execute(self, name: str, query: Query,
                variants: list[RankedPlacement],
                record: ScheduledQuery, qid: int = 0):
        """Simulation process: run one query on the shared fabric.

        Picks a variant against the *current* mix, admits it to the
        load tracker, runs the compiled stage graph, and fills in
        ``record`` (started/finished/variant/table) as it goes.
        ``qid`` is the serving trace context (0 in batch mode) —
        passed through to the stage graph so the query's events are
        tenant-attributable.  Generator — start it with
        ``sim.process``/yield from.
        """
        sim = self.fabric.sim
        trace = self.fabric.trace
        variant, decision = self._pick_scored(variants)
        self.decisions[name] = decision
        record.variant_name = variant.placement.name
        record.started = sim.now
        self.tracker.admit(name, demand_vector(variant.cost))
        span = trace.open_span(f"sched.query.{name}", sim.now)
        trace.add("sched.admitted", 1)
        trace.sample("sched.active", sim.now,
                     len(self.tracker.active_jobs))

        limiter = None
        if self.policy == "interference+ratelimit":
            limiter = RateLimiter(sim, rate=self.network_bandwidth(),
                                  burst=1 << 20, trace=trace,
                                  name=name)
            self._limiters[name] = limiter
        self.rebalance()

        engine = DataflowEngine(self.fabric, self.catalog,
                                rate_limiter=limiter)
        graph = engine.compile(query, variant.placement, name=name,
                               qid=qid)
        graph.start()
        yield sim.all_of([s.done for s in graph.stages.values()])

        record.finished = sim.now
        trace.close_span(span, sim.now)
        trace.add("sched.completed", 1)
        sinks = [s for s in graph.stages.values() if s.is_sink]
        schema = query.plan.output_schema(self.catalog)
        table = Table(schema)
        for sink in sinks:
            for chunk in sink.collected:
                table.append(chunk)
        record.table = table
        self.tracker.release(name)
        trace.sample("sched.active", sim.now,
                     len(self.tracker.active_jobs))
        self._limiters.pop(name, None)
        self.rebalance()


class Scheduler:
    """Admits queries onto a shared fabric with interference control."""

    def __init__(self, fabric: HeterogeneousFabric, catalog: Catalog,
                 policy: str = "interference+ratelimit",
                 variants_per_query: int = 3):
        self.executor = QueryExecutor(
            fabric, catalog, policy=policy,
            variants_per_query=variants_per_query)
        self.fabric = fabric
        self.catalog = catalog
        self.policy = policy
        self.variants_per_query = variants_per_query
        self._jobs: list[_Job] = []
        self.records: dict[str, ScheduledQuery] = {}

    @property
    def tracker(self) -> LoadTracker:
        return self.executor.tracker

    @property
    def optimizer(self) -> Optimizer:
        return self.executor.optimizer

    # -- submission ---------------------------------------------------------

    def submit(self, name: str, query: Query,
               arrival: float = 0.0) -> None:
        """Queue a query to start at simulated time ``arrival``."""
        if any(j.name == name for j in self._jobs):
            raise ValueError(f"duplicate job name {name!r}")
        variants = self.executor.plan_variants(query)
        self._jobs.append(_Job(name, query, arrival, variants))

    # -- execution ---------------------------------------------------------

    def _job_process(self, job: _Job):
        sim = self.fabric.sim
        record = self.records[job.name]
        if job.arrival > sim.now:
            yield sim.timeout(job.arrival - sim.now)
        yield from self.executor.execute(job.name, job.query,
                                         job.variants, record)

    def run(self) -> list[ScheduledQuery]:
        """Run all submitted queries to completion; returns records."""
        if not self._jobs:
            return []
        for job in self._jobs:
            self.records[job.name] = ScheduledQuery(job.name, job.arrival)
            self.fabric.sim.process(self._job_process(job),
                                    name=f"sched.{job.name}")
        self.fabric.run()
        unfinished = [r.name for r in self.records.values()
                      if r.table is None]
        if unfinished:
            raise RuntimeError(f"queries never finished: {unfinished}")
        self._jobs = []
        return [self.records[name] for name in sorted(self.records)]

    # -- reporting ---------------------------------------------------------

    def makespan(self) -> float:
        """Time from first arrival to last completion."""
        records = list(self.records.values())
        return (max(r.finished for r in records)
                - min(r.arrival for r in records))

    def mean_latency(self) -> float:
        records = list(self.records.values())
        return sum(r.latency for r in records) / len(records)
