"""Interference-aware multi-query scheduling (§7.3)."""

from .interference import LoadTracker, demand_vector
from .scheduler import POLICIES, ScheduledQuery, Scheduler
from .workloads import WorkloadMix, poisson_arrivals

__all__ = [
    "LoadTracker",
    "POLICIES",
    "ScheduledQuery",
    "Scheduler",
    "WorkloadMix",
    "demand_vector",
    "poisson_arrivals",
]
