"""Interference-aware multi-query scheduling (§7.3)."""

from .interference import LoadTracker, demand_vector
from .scheduler import POLICIES, QueryExecutor, ScheduledQuery, Scheduler
from .workloads import WorkloadMix, bursty_arrivals, diurnal_arrivals, \
    poisson_arrivals

__all__ = [
    "LoadTracker",
    "POLICIES",
    "QueryExecutor",
    "ScheduledQuery",
    "Scheduler",
    "WorkloadMix",
    "bursty_arrivals",
    "demand_vector",
    "diurnal_arrivals",
    "poisson_arrivals",
]
