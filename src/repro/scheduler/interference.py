"""Interference modeling for multi-query scheduling (§7.3).

"The enemy of sustained performance in this environment is
interference": two plans contending for one limited resource lose
more than their fair share.  The scheduler reasons about it with
*demand vectors* — per-resource busy-time predictions extracted from
the optimizer's :class:`~repro.optimizer.cost.PlanCost` — and a
:class:`LoadTracker` that sums the vectors of currently running
queries.  A variant's *interference score* is the projected busy time
of the most loaded resource if that variant were admitted now.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping

from ..optimizer.cost import PlanCost

__all__ = ["demand_vector", "LoadTracker"]


def demand_vector(cost: PlanCost) -> dict[str, float]:
    """Per-resource busy-seconds a placed plan will demand.

    Devices and links are both resources; keys are site names and
    link names, so variants that use disjoint hardware have disjoint
    vectors.
    """
    vector: dict[str, float] = {}
    for site, seconds in cost.device_time.items():
        vector[f"device:{site}"] = vector.get(f"device:{site}", 0.0) \
            + seconds
    for link, seconds in cost.link_time.items():
        vector[f"link:{link}"] = vector.get(f"link:{link}", 0.0) + seconds
    return vector


class LoadTracker:
    """Aggregated demand of the queries currently in flight."""

    def __init__(self):
        self._loads: dict[str, dict[str, float]] = {}

    def admit(self, job_name: str, vector: Mapping[str, float]) -> None:
        if job_name in self._loads:
            raise ValueError(f"job {job_name!r} already admitted")
        self._loads[job_name] = dict(vector)

    def release(self, job_name: str) -> None:
        self._loads.pop(job_name, None)

    @property
    def active_jobs(self) -> list[str]:
        return sorted(self._loads)

    def load(self) -> dict[str, float]:
        """Current total demand per resource."""
        total: dict[str, float] = defaultdict(float)
        for vector in self._loads.values():
            for resource, seconds in vector.items():
                total[resource] += seconds
        return dict(total)

    def interference_score(self, vector: Mapping[str, float]) -> float:
        """Projected busiest-resource time if ``vector`` is admitted."""
        load = self.load()
        busiest = 0.0
        for resource, seconds in vector.items():
            busiest = max(busiest, load.get(resource, 0.0) + seconds)
        # Resources the candidate does not touch still bound nothing
        # for it — only shared resources interfere.
        return busiest

    def jobs_sharing(self, vector: Mapping[str, float]) -> int:
        """How many active jobs share any resource with ``vector``."""
        count = 0
        for job_vector in self._loads.values():
            if set(job_vector) & set(vector):
                count += 1
        return count
