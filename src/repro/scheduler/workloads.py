"""Workload generation for scheduling experiments (§7.3).

Open workloads: queries arrive over time rather than all at once.
:func:`poisson_arrivals` draws seeded exponential inter-arrival times;
:class:`WorkloadMix` pairs a set of query templates with weights and
submits a whole arrival process to a
:class:`~repro.scheduler.scheduler.Scheduler` in one call, so policy
comparisons run the *identical* (seeded) workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..engine.logical import Query
from .scheduler import ScheduledQuery, Scheduler

__all__ = ["poisson_arrivals", "bursty_arrivals", "diurnal_arrivals",
           "WorkloadMix"]


def poisson_arrivals(n: int, rate: float, seed: int = 0) -> list[float]:
    """``n`` arrival times of a Poisson process with ``rate`` (1/s)."""
    if rate <= 0:
        raise ValueError("arrival rate must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=n)
    return np.cumsum(gaps).tolist()


def bursty_arrivals(n: int, rate_on: float, rate_off: float,
                    mean_on: float, mean_off: float,
                    seed: int = 0) -> list[float]:
    """``n`` arrivals of a Markov-modulated (on/off bursty) process.

    The source alternates between an *on* phase (Poisson arrivals at
    ``rate_on``) and an *off* phase (``rate_off``, possibly zero);
    phase durations are exponential with means ``mean_on`` /
    ``mean_off``.  Seeded and fully deterministic.
    """
    if rate_on <= 0:
        raise ValueError("rate_on must be positive")
    if rate_off < 0:
        raise ValueError("rate_off must be non-negative")
    if mean_on <= 0 or mean_off <= 0:
        raise ValueError("phase durations must be positive")
    rng = np.random.default_rng(seed)
    arrivals: list[float] = []
    now = 0.0
    on = True
    while len(arrivals) < n:
        duration = rng.exponential(mean_on if on else mean_off)
        rate = rate_on if on else rate_off
        t = now
        while rate > 0 and len(arrivals) < n:
            t += rng.exponential(1.0 / rate)
            if t >= now + duration:
                break
            arrivals.append(t)
        now += duration
        on = not on
    return arrivals


def diurnal_arrivals(n: int, base_rate: float, amplitude: float,
                     period: float, seed: int = 0) -> list[float]:
    """``n`` arrivals of a sinusoidally-modulated Poisson process.

    The instantaneous rate is ``base_rate * (1 + amplitude *
    sin(2*pi*t/period))`` — the classic diurnal load curve, generated
    by thinning a homogeneous process at the peak rate.
    """
    if base_rate <= 0:
        raise ValueError("base_rate must be positive")
    if not 0.0 <= amplitude < 1.0:
        raise ValueError("amplitude must be in [0, 1)")
    if period <= 0:
        raise ValueError("period must be positive")
    rng = np.random.default_rng(seed)
    peak = base_rate * (1.0 + amplitude)
    arrivals: list[float] = []
    t = 0.0
    while len(arrivals) < n:
        t += rng.exponential(1.0 / peak)
        rate = base_rate * (1.0 + amplitude
                            * np.sin(2.0 * np.pi * t / period))
        if rng.uniform() * peak <= rate:
            arrivals.append(t)
    return arrivals


@dataclass
class WorkloadMix:
    """A weighted mix of query templates with a seeded arrival process.

    ``templates`` maps a name to a zero-argument callable producing a
    fresh :class:`Query` (fresh plans per submission keep node ids
    unique).
    """

    templates: dict[str, Callable[[], Query]]
    weights: Optional[dict[str, float]] = None
    seed: int = 0

    def __post_init__(self):
        if not self.templates:
            raise ValueError("a workload needs at least one template")
        if self.weights is None:
            self.weights = {name: 1.0 for name in self.templates}
        missing = set(self.templates) - set(self.weights)
        if missing:
            raise ValueError(f"weights missing for {sorted(missing)}")

    def draw(self, n: int) -> list[str]:
        """``n`` template names drawn by weight (seeded)."""
        rng = np.random.default_rng(self.seed)
        names = sorted(self.templates)
        probabilities = np.array([self.weights[name] for name in names],
                                 dtype=float)
        probabilities /= probabilities.sum()
        picks = rng.choice(len(names), size=n, p=probabilities)
        return [names[i] for i in picks]

    def submit_to(self, scheduler: Scheduler, n: int,
                  rate: float) -> list[str]:
        """Submit ``n`` arrivals at ``rate``/s; returns the job names."""
        arrivals = poisson_arrivals(n, rate, seed=self.seed)
        picks = self.draw(n)
        job_names = []
        for index, (template, arrival) in enumerate(zip(picks,
                                                        arrivals)):
            name = f"{template}#{index}"
            scheduler.submit(name, self.templates[template](),
                             arrival=arrival)
            job_names.append(name)
        return job_names

    def run_policy(self, scheduler_factory: Callable[[str], Scheduler],
                   policy: str, n: int,
                   rate: float) -> list[ScheduledQuery]:
        """Build a scheduler for ``policy``, run the mix, return records."""
        scheduler = scheduler_factory(policy)
        self.submit_to(scheduler, n, rate)
        return scheduler.run()
