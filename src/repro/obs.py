"""Observability helpers: checksums, fabric snapshots, report schema.

This module turns the raw records a :class:`~repro.sim.trace.Trace`
accumulates into the machine-readable evidence the paper's argument is
made of:

* :func:`table_checksum` — a canonical content hash of a result
  table, stable across engines and placements (row order and float
  summation order do not matter), so every perf run doubles as a
  correctness run;
* :func:`fabric_snapshot` — one fabric's movement, per-link
  byte/chunk totals, device/link utilization, and critical-path
  summary as a plain dict;
* :func:`make_report` / :func:`validate_report` — the schema-versioned
  JSON benchmark report (``BENCH_<tag>.json``) the harness emits and
  CI archives.
"""

from __future__ import annotations

import hashlib
import sys
from typing import Optional

__all__ = [
    "REPORT_SCHEMA",
    "ACCEPTED_REPORT_SCHEMAS",
    "CHECKSUM_FLOAT_DIGITS",
    "table_checksum",
    "fabric_snapshot",
    "make_report",
    "report_violations",
    "validate_report",
]

REPORT_SCHEMA = "repro.bench/v3"
"""Schema identifier embedded in benchmark reports.

v2 added per-scenario event-ring stats (``events`` /
``events_truncated``), the backpressure ``stalls`` report, and the
movement ``ledger`` to every smoke record.  v3 adds the ``serving``
section: multi-tenant serving records with latency percentiles
(p50/p99/p999), goodput, shed and SLO-violation counts alongside the
exact result checksums.
"""

_SCHEMA_V2 = "repro.bench/v2"

ACCEPTED_REPORT_SCHEMAS = ("repro.bench/v1", _SCHEMA_V2,
                           REPORT_SCHEMA)
"""Schemas :func:`validate_report` accepts (v1 lacks event stats,
v2 lacks the serving section)."""

CHECKSUM_FLOAT_DIGITS = 6
"""Significant digits floats are rounded to before hashing.

Different plans add floats in different orders, so bit-exact equality
across engines is not attainable; six significant digits absorbs the
summation-order jitter (relative error ~1e-12) while still catching
any real wrong answer.
"""

_ROW_SEP = "\x1e"
_CELL_SEP = "\x1f"


def _canonical_cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return format(value, f".{CHECKSUM_FLOAT_DIGITS}g")
    if isinstance(value, bytes):
        return value.hex()
    return str(value)


def _canonical_column(values) -> list[str]:
    """One column rendered cell-by-cell, with per-dtype fast paths.

    Produces exactly the strings :func:`_canonical_cell` would for
    each element's python form (``tolist``), without the per-cell
    isinstance dispatch.
    """
    kind = values.dtype.kind
    if kind == "f":
        fmt = f".{CHECKSUM_FLOAT_DIGITS}g"
        return ["nan" if v != v else format(v, fmt)
                for v in values.tolist()]
    if kind == "U":
        return values.tolist()
    if kind in "iu":
        return [str(v) for v in values.tolist()]
    return [_canonical_cell(v) for v in values.tolist()]


def table_checksum(table) -> str:
    """SHA-256 over a canonical, order-insensitive table rendering.

    Two engines that return the same rows (up to float summation
    order) produce the same checksum; a dropped row, a wrong value, or
    a changed schema produces a different one.  Rows are rendered
    column-at-a-time and ordered by their final string form — the
    same digest the original row-at-a-time rendering produced, since
    the string sort is what fixed the hashed order.
    """
    digest = hashlib.sha256()
    names = table.schema.names
    digest.update(_CELL_SEP.join(names).encode())
    columns = [_canonical_column(table.column(name)) for name in names]
    rows = [_CELL_SEP.join(cells) for cells in zip(*columns)]
    rows.sort()  # canonical order, independent of row layout
    digest.update(_ROW_SEP.join(rows).encode())
    return digest.hexdigest()


def combine_checksums(checksums: dict[str, str]) -> str:
    """One checksum over a named set of checksums (scheduler runs)."""
    digest = hashlib.sha256()
    for name in sorted(checksums):
        digest.update(f"{name}={checksums[name]}".encode())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Fabric snapshots
# ---------------------------------------------------------------------------

def fabric_snapshot(fabric, elapsed: Optional[float] = None,
                    critical_path_top: int = 8) -> dict:
    """Summarize one fabric's run as a JSON-serializable dict.

    Includes bytes moved per data-path segment, per-link byte/chunk
    totals, device and link utilization (clamped to [0, 1]), and the
    trace's critical-path summary.
    """
    horizon = elapsed if elapsed is not None else fabric.sim.now
    utilization = {
        key: min(1.0, max(0.0, value))
        for key, value in fabric.utilization_report(horizon).items()}
    events = fabric.trace.event_stats()
    return {
        "sim_time_s": horizon,
        "movement_bytes": fabric.movement_report(),
        "links": fabric.trace.link_report(),
        "utilization": utilization,
        "critical_path": fabric.trace.critical_path(
            top=critical_path_top),
        "stalls": fabric.trace.stall_report(),
        "ledger": fabric.trace.movement_ledger(),
        "events": events,
        "events_truncated": events["truncated"],
    }


# ---------------------------------------------------------------------------
# Benchmark reports
# ---------------------------------------------------------------------------

def make_report(tag: str, smoke: list[dict],
                experiments: Optional[list[dict]] = None,
                created: str = "",
                extra_totals: Optional[dict] = None,
                profile: Optional[dict] = None,
                serving: Optional[list[dict]] = None,
                scale: Optional[list[dict]] = None) -> dict:
    """Assemble the schema-versioned benchmark report.

    ``totals.wall_time_s`` is always the *sum* of per-benchmark wall
    times (each clocked inside its worker), so it stays comparable
    across ``--jobs`` counts; harness-level figures such as
    ``harness_wall_s`` and ``jobs`` arrive via ``extra_totals``.  An
    optional ``profile`` section (``repro bench --profile``) carries
    the cProfile hot-function table; ``serving`` carries the v3
    multi-tenant serving records (``repro serve``); ``scale``
    carries the 100k–1M row tier (``repro bench --scale``,
    smoke-shaped records, validated whenever present).
    """
    experiments = experiments or []
    serving = serving or []
    scale = scale or []
    wall = sum(r.get("wall_time_s", 0.0)
               for r in smoke + experiments + serving + scale)
    totals = {
        "benchmarks": (len(smoke) + len(experiments) + len(serving)
                       + len(scale)),
        "wall_time_s": wall,
    }
    totals.update(extra_totals or {})
    report = {
        "schema": REPORT_SCHEMA,
        "tag": tag,
        "created": created,
        "python": "%d.%d.%d" % sys.version_info[:3],
        "smoke": smoke,
        "experiments": experiments,
        "serving": serving,
        "scale": scale,
        "totals": totals,
    }
    if profile is not None:
        report["profile"] = profile
    return report


# "checksum" is checked separately (missing vs malformed get distinct
# reason strings), so it is not in the generic required tuple.
_SMOKE_REQUIRED = ("name", "wall_time_s", "sim_time_s", "rows",
                   "movement_bytes", "links", "utilization", "agree")

_SMOKE_REQUIRED_V2 = _SMOKE_REQUIRED + ("events", "events_truncated")

_EVENT_STAT_KEYS = ("recorded", "capacity", "dropped", "truncated")

_SERVING_REQUIRED = ("name", "wall_time_s", "sim_time_s", "queries",
                     "completed", "shed", "slo_violations", "latency",
                     "goodput_qps", "tenants")

_LATENCY_KEYS = ("p50_s", "p99_s", "p999_s")

_TELEMETRY_SCHEMA = "repro.serve-telemetry/v1"

_TELEMETRY_REQUIRED = ("schema", "window_s", "windows", "tenants",
                       "alerts", "exemplars")

_TELEMETRY_SERIES_KEYS = ("window", "arrivals", "completions",
                          "sheds", "violations")

_ALERT_KEYS = ("tenant", "window", "ts", "kind", "fast_burn",
               "slow_burn", "threshold")

_OBSERVATORY_SCHEMA = "repro.observatory/v1"

_OBSERVATORY_REQUIRED = ("schema", "window_s", "windows",
                         "horizon_s", "events_dropped", "partial",
                         "partial_reason", "pools", "totals",
                         "series", "bound", "regret")

_OBSERVATORY_SERIES_KEYS = ("window", "start", "end", "pools",
                            "saturation", "link_bytes")


def _is_hex_digest(value) -> bool:
    return (isinstance(value, str) and len(value) == 64
            and all(c in "0123456789abcdef" for c in value))


def report_violations(report: dict) -> list[str]:
    """Every schema violation in a benchmark report (empty = valid).

    The non-raising core of :func:`validate_report`: callers that want
    to *inspect* problems (CI annotations, the what-if cross-checks)
    use this; callers that want a gate use :func:`validate_report`.
    """
    errors: list[str] = []
    schema = report.get("schema")
    if schema not in ACCEPTED_REPORT_SCHEMAS:
        errors.append(f"schema is {schema!r}, expected one of "
                      f"{ACCEPTED_REPORT_SCHEMAS!r}")
    required = (_SMOKE_REQUIRED_V2
                if schema in (_SCHEMA_V2, REPORT_SCHEMA)
                else _SMOKE_REQUIRED)
    for key in ("tag", "smoke", "experiments", "totals"):
        if key not in report:
            errors.append(f"missing top-level key {key!r}")
    strict_events = schema in (_SCHEMA_V2, REPORT_SCHEMA)
    for record in report.get("smoke", []):
        errors.extend(_query_record_violations(record, "smoke",
                                               required,
                                               strict_events))
    # The scale section (``repro bench --scale``) is optional at
    # every schema version, but whenever present its records must
    # satisfy the full smoke contract plus the chunk pin.
    for record in report.get("scale", []):
        errors.extend(_query_record_violations(
            record, "scale", _SMOKE_REQUIRED_V2 + ("chunk_rows",),
            strict_events=True))
    if schema == REPORT_SCHEMA and "serving" not in report:
        errors.append("v3 report missing 'serving' section")
    for record in report.get("serving", []):
        name = record.get("name", "<unnamed>")
        for key in _SERVING_REQUIRED:
            if key not in record:
                errors.append(f"serving[{name}]: missing {key!r}")
        latency = record.get("latency", {})
        for key in _LATENCY_KEYS:
            if key not in latency:
                errors.append(f"serving[{name}]: latency missing "
                              f"{key!r}")
        if "checksum" not in record:
            errors.append(f"serving[{name}]: checksum missing")
        elif not _is_hex_digest(record["checksum"]):
            errors.append(f"serving[{name}]: checksum "
                          f"{record['checksum']!r} is not a "
                          "sha256 hex digest")
        for key in ("queries", "completed", "shed", "slo_violations"):
            if record.get(key, 0) < 0:
                errors.append(f"serving[{name}]: {key} negative")
        if record.get("completed", 0) + record.get("shed", 0) \
                > record.get("queries", 0):
            errors.append(f"serving[{name}]: completed + shed "
                          "exceeds submitted queries")
        if record.get("slo_violations", 0) > record.get("completed", 0):
            errors.append(f"serving[{name}]: more SLO violations "
                          "than completions")
        if "records" in record and not record["records"]:
            # A serving record that carries the per-query list must
            # carry a non-empty one: an empty list means the run
            # served nothing, and every aggregate above is vacuous.
            errors.append(f"serving[{name}]: 'records' list is "
                          "empty — the run served no queries")
        if "telemetry" in record:
            errors.extend(
                f"serving[{name}]: {violation}" for violation in
                _telemetry_section_violations(record["telemetry"]))
            digest = record.get("telemetry_digest")
            if not _is_hex_digest(digest):
                errors.append(f"serving[{name}]: telemetry_digest "
                              f"{digest!r} is not a sha256 hex "
                              "digest")
        if "observatory" in record:
            errors.extend(
                f"serving[{name}]: {violation}" for violation in
                _observatory_section_violations(
                    record["observatory"], record))
            digest = record.get("observatory_digest")
            if not _is_hex_digest(digest):
                errors.append(f"serving[{name}]: observatory_digest "
                              f"{digest!r} is not a sha256 hex "
                              "digest")
    for record in report.get("experiments", []):
        if "name" not in record or "wall_time_s" not in record:
            errors.append("experiment record missing name/wall_time_s")
    return errors


def _query_record_violations(record: dict, section: str,
                             required: tuple, strict_events: bool
                             ) -> list[str]:
    """Structural checks for one smoke-shaped scenario record."""
    errors: list[str] = []
    name = record.get("name", "<unnamed>")
    for key in required:
        if key not in record:
            errors.append(f"{section}[{name}]: missing {key!r}")
    if strict_events:
        events = record.get("events", {})
        for key in _EVENT_STAT_KEYS:
            if key not in events:
                errors.append(
                    f"{section}[{name}]: events missing {key!r}")
        if not isinstance(record.get("events_truncated", False),
                          bool):
            errors.append(f"{section}[{name}]: events_truncated "
                          "is not a bool")
    if "checksum" not in record:
        errors.append(f"{section}[{name}]: checksum missing")
    elif not _is_hex_digest(record["checksum"]):
        errors.append(f"{section}[{name}]: checksum "
                      f"{record['checksum']!r} is not a "
                      "sha256 hex digest")
    if record.get("sim_time_s", 0.0) <= 0.0:
        errors.append(f"{section}[{name}]: sim_time_s not positive")
    for dev, value in record.get("utilization", {}).items():
        if not 0.0 <= value <= 1.0:
            errors.append(f"{section}[{name}]: utilization[{dev}] "
                          f"= {value} outside [0, 1]")
    for seg, nbytes in record.get("movement_bytes", {}).items():
        if nbytes < 0:
            errors.append(f"{section}[{name}]: movement_bytes[{seg}] "
                          "negative")
    links = record.get("links", {})
    if links and sum(entry.get("bytes", 0.0)
                     for entry in links.values()) <= 0.0:
        errors.append(f"{section}[{name}]: all per-link byte "
                      "counters are zero")
    return errors


def _telemetry_section_violations(telemetry: dict) -> list[str]:
    """Structural checks for one ``repro.serve-telemetry/v1`` section."""
    errors: list[str] = []
    if not isinstance(telemetry, dict):
        return ["telemetry section is not an object"]
    for key in _TELEMETRY_REQUIRED:
        if key not in telemetry:
            errors.append(f"telemetry missing {key!r}")
    if telemetry.get("schema") not in (None, _TELEMETRY_SCHEMA):
        errors.append(f"telemetry schema is "
                      f"{telemetry.get('schema')!r}, expected "
                      f"{_TELEMETRY_SCHEMA!r}")
    if telemetry.get("window_s", 1.0) <= 0:
        errors.append("telemetry window_s not positive")
    windows = telemetry.get("windows", 0)
    for tenant, data in telemetry.get("tenants", {}).items():
        series = data.get("series", [])
        if len(series) != windows:
            errors.append(
                f"telemetry tenant {tenant}: series has "
                f"{len(series)} entries for {windows} windows "
                "(series must be dense)")
        for position, entry in enumerate(series):
            if entry.get("window") != position:
                errors.append(f"telemetry tenant {tenant}: series "
                              f"entry {position} has window index "
                              f"{entry.get('window')!r}")
                break
            missing = [k for k in _TELEMETRY_SERIES_KEYS
                       if k not in entry]
            if missing:
                errors.append(f"telemetry tenant {tenant}: window "
                              f"{position} missing {missing}")
                break
    for index, alert in enumerate(telemetry.get("alerts", [])):
        missing = [k for k in _ALERT_KEYS if k not in alert]
        if missing:
            errors.append(f"telemetry alert {index} missing "
                          f"{missing}")
        if alert.get("kind") not in ("fired", "resolved"):
            errors.append(f"telemetry alert {index} has kind "
                          f"{alert.get('kind')!r}")
    for exemplar in telemetry.get("exemplars", []):
        name = exemplar.get("name", "<unnamed>")
        attribution = exemplar.get("attribution", {})
        if not attribution.get("exact", False):
            errors.append(f"telemetry exemplar {name}: critical-path "
                          "attribution is not exact")
        # A partial attribution (bounded ring overflowed) must say
        # why instead of silently reconciling over truncated inputs.
        if attribution.get("partial", False) \
                and not attribution.get("partial_reason"):
            errors.append(f"telemetry exemplar {name}: attribution "
                          "marked partial without a reason")
    return errors


def _observatory_section_violations(observatory: dict,
                                    record: dict) -> list[str]:
    """Structural checks for one ``repro.observatory/v1`` section."""
    errors: list[str] = []
    if not isinstance(observatory, dict):
        return ["observatory section is not an object"]
    for key in _OBSERVATORY_REQUIRED:
        if key not in observatory:
            errors.append(f"observatory missing {key!r}")
    if observatory.get("schema") not in (None, _OBSERVATORY_SCHEMA):
        errors.append(f"observatory schema is "
                      f"{observatory.get('schema')!r}, expected "
                      f"{_OBSERVATORY_SCHEMA!r}")
    if observatory.get("window_s", 1.0) <= 0:
        errors.append("observatory window_s not positive")
    windows = observatory.get("windows", 0)
    series = observatory.get("series", [])
    if len(series) != windows:
        errors.append(f"observatory series has {len(series)} "
                      f"entries for {windows} windows "
                      "(series must be dense)")
    for position, entry in enumerate(series):
        if entry.get("window") != position:
            errors.append(f"observatory series entry {position} has "
                          f"window index {entry.get('window')!r}")
            break
        missing = [k for k in _OBSERVATORY_SERIES_KEYS
                   if k not in entry]
        if missing:
            errors.append(f"observatory window {position} missing "
                          f"{missing}")
            break
    # Partial semantics: dropped ring events imply (and are the only
    # reason for) a partial section, and partial requires a reason.
    dropped = observatory.get("events_dropped", 0)
    if bool(observatory.get("partial", False)) != (dropped > 0):
        errors.append("observatory partial flag disagrees with "
                      f"events_dropped={dropped}")
    if observatory.get("partial", False) \
            and not observatory.get("partial_reason"):
        errors.append("observatory marked partial without a reason")
    bound = observatory.get("bound", {})
    tagged = bound.get("queries", [])
    completed = record.get("completed")
    if completed is not None and len(tagged) != completed:
        errors.append(f"observatory bound classifier tagged "
                      f"{len(tagged)} queries but the record "
                      f"completed {completed}")
    by_tenant_total = sum(
        count for cell in bound.get("by_tenant", {}).values()
        for count in cell.values())
    if by_tenant_total != len(tagged):
        errors.append("observatory per-tenant bound counts do not "
                      "sum to the tagged query count")
    regret = observatory.get("regret", {})
    for entry in regret.get("queries", []):
        if entry.get("regret_s", 0.0) < 0.0:
            errors.append(f"observatory regret for "
                          f"{entry.get('name')} is negative")
            break
    leaders = regret.get("leaders", [])
    if [e.get("regret_s") for e in leaders] != sorted(
            (e.get("regret_s") for e in leaders), reverse=True):
        errors.append("observatory regret leaders are not sorted by "
                      "descending regret")
    return errors


def validate_report(report: dict, strict: bool = True) -> str:
    """Check a benchmark report against the v1/v2/v3 schema.

    v1 reports (pre event-tracing) remain valid so historical
    baselines like ``BENCH_seed.json`` still load; v2 additionally
    requires per-scenario event-ring stats and a checksum per smoke
    record; v3 adds the ``serving`` section (validated whenever
    present, including its telemetry and observatory sections and a
    rejection of empty per-query ``records`` lists).  Returns the reason string —
    ``""`` when the report is
    valid, otherwise every violation joined with ``"; "``.  With
    ``strict`` (the default) an invalid report raises
    :class:`ValueError` carrying the same reason instead.
    Deliberately dependency-free (no jsonschema in the image).
    """
    errors = report_violations(report)
    if not errors:
        return ""
    reason = "invalid benchmark report: " + "; ".join(errors)
    if strict:
        raise ValueError(reason)
    return reason
