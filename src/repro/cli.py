"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    Run one selective analytic query on the Volcano baseline and the
    optimizer-placed data-flow pipeline; print the movement report.
``sites``
    Show the processing sites of a fabric and the operation kinds each
    device supports (the paper's offloading design space).
``query``
    Run a configurable filter/aggregate query with a chosen placement
    policy and print per-segment movement.  ``--explain-stalls``
    appends the backpressure attribution report (per-stage stall time
    split into credit-starved / downstream-full / device-busy);
    ``--ledger`` appends the movement ledger (bytes × link ×
    operator × direction).
``trace``
    Run the demo query and export a Chrome/Perfetto ``trace_events``
    JSON timeline (open in https://ui.perfetto.dev or
    ``chrome://tracing``).
``experiments``
    List every reproduced experiment and its benchmark file.
``bench``
    Run the machine-readable benchmark harness: instrumented smoke
    scenarios (``--smoke``) and/or experiment scripts (``--exp``),
    emitting a schema-versioned ``BENCH_<tag>.json`` report.
    ``--compare BENCH_x.json`` re-runs a baseline's scenarios and
    exits non-zero on regression.
"""

from __future__ import annotations

import argparse
import sys

from .engine import (
    AggSpec,
    DataflowEngine,
    Query,
    VolcanoEngine,
    cpu_only,
    data_path_sites,
    pushdown,
)
from .hardware import OpKind, build_fabric, conventional_spec, \
    dataflow_spec
from .optimizer import Optimizer
from .relational import Catalog, col, make_lineitem

EXPERIMENTS = [
    ("F1", "conventional data path amplification",
     "bench_f1_conventional_path.py"),
    ("F2", "storage pushdown of selection/projection",
     "bench_f2_storage_pushdown.py"),
    ("F3", "staged group-by pipeline across NICs",
     "bench_f3_nic_pipeline.py"),
    ("F4", "NIC-scattered distributed join + COUNT on NIC",
     "bench_f4_scatter_join.py"),
    ("F5", "near-memory filter / pointer-chase / GC units",
     "bench_f5_near_memory.py"),
    ("F6", "full pipeline storage->cores (+A2 DMA ablation)",
     "bench_f6_full_pipeline.py"),
    ("C1", "single-core vs controller memory bandwidth",
     "bench_c1_membw.py"),
    ("C2", "data-center tax + bytes-scanned billing",
     "bench_c2_datacenter_tax.py"),
    ("C3", "credit-based flow control window sweep",
     "bench_c3_credit_flow.py"),
    ("C4", "interference-aware scheduling (+A1 ablation)",
     "bench_c4_scheduling.py"),
    ("C5", "no more buffer pools", "bench_c5_no_bufferpool.py"),
    ("C6", "no more data caches", "bench_c6_no_caches.py"),
    ("C7", "which operators to push down",
     "bench_c7_pushdown_survey.py"),
    ("C8", "CXL coherence + PCIe ladder",
     "bench_c8_cxl_coherence.py"),
    ("E1", "zone maps (extension)", "bench_e1_zonemaps.py"),
    ("E2", "disaggregated-memory offload (extension)",
     "bench_e2_disagg_memory.py"),
    ("E3", "compressed memory + on-demand decompress (extension)",
     "bench_e3_compressed_memory.py"),
    ("E4", "kernel installation break-even (extension)",
     "bench_e4_kernel_overhead.py"),
    ("E5", "pre-sorting at storage (extension)",
     "bench_e5_presort.py"),
    ("E6", "storage->GPU: GPUDirect vs host staging (extension)",
     "bench_e6_gpudirect.py"),
]


def _spec(name: str):
    if name == "dataflow":
        return dataflow_spec()
    if name == "conventional":
        return conventional_spec()
    raise SystemExit(f"unknown fabric spec {name!r} "
                     "(choose: dataflow, conventional)")


def cmd_demo(args) -> int:
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(args.rows,
                                               chunk_rows=8192))
    query = (Query.scan("lineitem")
             .filter(col("l_quantity") > 45)
             .aggregate(["l_returnflag"],
                        [AggSpec("sum", "l_extendedprice", "revenue")]))

    fabric = build_fabric(dataflow_spec())
    baseline = VolcanoEngine(fabric, catalog).execute(query)

    fabric2 = build_fabric(dataflow_spec())
    best = Optimizer(fabric2, catalog).optimize(query)
    offloaded = DataflowEngine(fabric2, catalog).execute(
        query, placement=best.placement)

    assert baseline.table.sorted_rows() == offloaded.table.sorted_rows()
    print(f"rows: {args.rows:,}   result groups: {baseline.rows}")
    print(f"{'':18} {'volcano':>14} {'dataflow*':>14}")
    for segment in sorted(set(baseline.movement)
                          | set(offloaded.movement)):
        label = segment.replace(".bytes", "")
        print(f"{label:18} {baseline.movement.get(segment, 0):>14,.0f} "
              f"{offloaded.movement.get(segment, 0):>14,.0f}")
    print(f"{'elapsed (sim s)':18} {baseline.elapsed:>14.6f} "
          f"{offloaded.elapsed:>14.6f}")
    used = sorted({s for chain in best.placement.sites.values()
                   for s in chain})
    print(f"\n* optimizer-chosen sites: {used}")
    return 0


def cmd_sites(args) -> int:
    fabric = build_fabric(_spec(args.spec))
    print(f"fabric: {args.spec}  "
          f"(data path: {' -> '.join(data_path_sites(fabric))})\n")
    kinds = [OpKind.FILTER, OpKind.REGEX, OpKind.PROJECT,
             OpKind.PARTITION, OpKind.AGGREGATE, OpKind.SORT,
             OpKind.JOIN_PROBE, OpKind.COMPRESS, OpKind.COUNT]
    header = f"{'site':18}" + "".join(f"{k:>10}" for k in kinds)
    print(header)
    print("-" * len(header))
    for site, device in sorted(fabric.sites.items()):
        marks = "".join(
            f"{'yes' if device.supports(k) else '-':>10}"
            for k in kinds)
        print(f"{site:18}{marks}")
    return 0


def cmd_query(args) -> int:
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(args.rows,
                                               chunk_rows=8192))
    cutoff = max(1, int(50 * args.selectivity))
    query = (Query.scan("lineitem")
             .filter(col("l_quantity") <= cutoff)
             .project(["l_orderkey", "l_extendedprice"]))

    fabric = build_fabric(_spec(args.spec))
    engine = DataflowEngine(fabric, catalog,
                            use_zonemaps=args.zonemaps)
    if args.placement == "optimize":
        placement = Optimizer(fabric, catalog).optimize(query).placement
    elif args.placement == "pushdown":
        placement = pushdown(query.plan, fabric)
    else:
        placement = cpu_only(query.plan, fabric)
    if args.plan:
        graph = engine.compile(query, placement=placement)
        _print_plan(graph, placement)
        return 0
    result = engine.execute(query, placement=placement)
    print(f"placement: {placement.name}   rows out: {result.rows:,}")
    for segment, value in sorted(result.movement.items()):
        print(f"  {segment.replace('.bytes', ''):10} "
              f"{value:>16,.0f} bytes")
    print(f"  {'elapsed':10} {result.elapsed:>16.6f} sim-seconds")
    if args.explain_stalls:
        _print_stalls(fabric.trace)
    if args.ledger:
        _print_ledger(fabric.trace)
    return 0


def _print_plan(graph, placement) -> None:
    """Render the compiled stage graph with fusion-segment boundaries.

    Each stage lists its operators; a fused segment shows its parts
    indented under one header, so the boundaries where selection
    views materialize (stage emits) are visible at a glance.
    """
    from .engine import describe_op
    print(f"placement: {placement.name}   "
          f"stages: {len(graph.stages)}")
    for stage in graph.stages.values():
        device = stage.device.name if stage.device else "-"
        kind = "source" if stage.source_table is not None else (
            "sink" if stage.is_sink else "stream")
        print(f"\nstage {stage.name}  [{kind} @ {device}, "
              f"router={stage.router}]")
        if stage.source_table is not None:
            print(f"  scan {stage.source_table.name} "
                  f"({stage.source_table.num_rows:,} rows)")
        for op in stage.ops:
            for line in describe_op(op):
                print(f"  {line}")
        if stage.outputs:
            print(f"  -> materialize at stage boundary "
                  f"({len(stage.outputs)} output channel"
                  f"{'s' if len(stage.outputs) != 1 else ''})")


def _print_stalls(trace) -> None:
    """Render the backpressure attribution report."""
    report = trace.stall_report()
    print("\nbackpressure attribution (stall seconds per stage):")
    if not report:
        print("  no stalls recorded — the pipeline never blocked")
        return
    header = (f"  {'stage':28} {'credit-starved':>15} "
              f"{'downstream-full':>16} {'device-busy':>12} "
              f"{'total':>10}")
    print(header)
    for stage, stats in report.items():
        print(f"  {stage:28} {stats['credit_starved_s']:>15.6f} "
              f"{stats['downstream_full_s']:>16.6f} "
              f"{stats['device_busy_s']:>12.6f} "
              f"{stats['total_s']:>10.6f}")


def _print_ledger(trace, max_rows: int = 40) -> None:
    """Render the movement ledger (bytes × link × actor × direction)."""
    rows = trace.movement_ledger()
    print("\nmovement ledger:")
    if not rows:
        print("  no link crossings recorded")
        return
    print(f"  {'link':20} {'operator':28} {'direction':30} "
          f"{'bytes':>14} {'chunks':>7}")
    for row in rows[:max_rows]:
        print(f"  {row['link']:20} {row['actor']:28} "
              f"{row['direction']:30} {row['bytes']:>14,.0f} "
              f"{row['chunks']:>7,.0f}")
    if len(rows) > max_rows:
        print(f"  ... ({len(rows)} rows total)")


def cmd_trace(args) -> int:
    """Run the demo query and export a Chrome trace_events timeline."""
    from .sim import export_chrome_trace
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(args.rows,
                                               chunk_rows=8192))
    query = (Query.scan("lineitem")
             .filter(col("l_quantity") > 45)
             .aggregate(["l_returnflag"],
                        [AggSpec("sum", "l_extendedprice", "revenue")]))
    fabric = build_fabric(dataflow_spec())
    if args.engine in ("volcano", "both"):
        VolcanoEngine(fabric, catalog).execute(query)
    if args.engine in ("dataflow", "both"):
        placement = Optimizer(fabric, catalog).optimize(query).placement
        DataflowEngine(fabric, catalog).execute(query,
                                                placement=placement)
    fabric.trace.close_open_spans()
    payload = export_chrome_trace(fabric.trace, args.out)
    stats = fabric.trace.event_stats()
    print(f"wrote {args.out}: {len(payload['traceEvents'])} trace "
          f"events ({stats['recorded']} ring events, "
          f"truncated={stats['truncated']})")
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def cmd_sql(args) -> int:
    from .relational.sql import parse_sql
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(args.rows,
                                               chunk_rows=8192))
    from .relational import make_orders
    catalog.register("orders", make_orders(args.rows // 4,
                                           chunk_rows=8192))
    query = parse_sql(args.statement)
    fabric = build_fabric(dataflow_spec())
    if args.placement == "optimize":
        placement = Optimizer(fabric, catalog).optimize(query).placement
    elif args.placement == "pushdown":
        placement = pushdown(query.plan, fabric)
    else:
        placement = cpu_only(query.plan, fabric)
    result = DataflowEngine(fabric, catalog).execute(
        query, placement=placement)
    print(f"placement: {placement.name}   "
          f"elapsed: {result.elapsed:.6f} sim-s   "
          f"network: {result.bytes_on('network'):,.0f} B")
    names = result.table.schema.names
    print("  ".join(names))
    for row in result.table.sorted_rows()[:args.max_rows]:
        print("  ".join(str(v) for v in row))
    if result.rows > args.max_rows:
        print(f"... ({result.rows} rows total)")
    return 0


def cmd_experiments(_args) -> int:
    print(f"{'id':4} {'benchmark':36} description")
    for exp_id, description, bench in EXPERIMENTS:
        print(f"{exp_id:4} benchmarks/{bench:36} {description}")
    print("\nrun all:  repro bench --exp all"
          "   (or: pytest benchmarks/ --benchmark-only)")
    return 0


def cmd_bench(args) -> int:
    from .bench import run_cli
    return run_cli(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Data-flow query processing on simulated modern "
                    "hardware (Lerner & Alonso, ICDE 2024)")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="baseline vs data-flow demo")
    demo.add_argument("--rows", type=int, default=100_000)
    demo.set_defaults(func=cmd_demo)

    sites = sub.add_parser("sites", help="list fabric sites")
    sites.add_argument("--spec", default="dataflow",
                       choices=["dataflow", "conventional"])
    sites.set_defaults(func=cmd_sites)

    query = sub.add_parser("query", help="run a configurable query")
    query.add_argument("--rows", type=int, default=100_000)
    query.add_argument("--selectivity", type=float, default=0.1)
    query.add_argument("--placement", default="optimize",
                       choices=["optimize", "pushdown", "cpu"])
    query.add_argument("--spec", default="dataflow",
                       choices=["dataflow", "conventional"])
    query.add_argument("--zonemaps", action="store_true")
    query.add_argument("--plan", action="store_true",
                       help="print the compiled stage graph with "
                            "fusion-segment boundaries instead of "
                            "running the query")
    query.add_argument("--explain-stalls", action="store_true",
                       help="print per-stage stall attribution "
                            "(credit-starved / downstream-full / "
                            "device-busy)")
    query.add_argument("--ledger", action="store_true",
                       help="print the movement ledger (bytes x link "
                            "x operator x direction)")
    query.set_defaults(func=cmd_query)

    trace = sub.add_parser(
        "trace", help="export a Chrome/Perfetto trace of the demo "
                      "query")
    trace.add_argument("-o", "--out", required=True,
                       help="output .json path (trace_events format)")
    trace.add_argument("--rows", type=int, default=50_000)
    trace.add_argument("--engine", default="dataflow",
                       choices=["dataflow", "volcano", "both"])
    trace.set_defaults(func=cmd_trace)

    sql = sub.add_parser(
        "sql", help="run a SQL statement over synthetic "
                    "lineitem/orders tables")
    sql.add_argument("statement")
    sql.add_argument("--rows", type=int, default=50_000)
    sql.add_argument("--max-rows", type=int, default=20)
    sql.add_argument("--placement", default="optimize",
                     choices=["optimize", "pushdown", "cpu"])
    sql.set_defaults(func=cmd_sql)

    experiments = sub.add_parser("experiments",
                                 help="list reproduced experiments")
    experiments.set_defaults(func=cmd_experiments)

    from .bench import add_bench_arguments
    bench = sub.add_parser(
        "bench", help="run the benchmark harness -> BENCH_<tag>.json")
    add_bench_arguments(bench)
    bench.set_defaults(func=cmd_bench)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
