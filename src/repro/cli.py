"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    Run one selective analytic query on the Volcano baseline and the
    optimizer-placed data-flow pipeline; print the movement report.
``sites``
    Show the processing sites of a fabric and the operation kinds each
    device supports (the paper's offloading design space).
``query``
    Run a configurable filter/aggregate query with a chosen placement
    policy and print per-segment movement.  ``--explain-stalls``
    appends the backpressure attribution report (per-stage stall time
    split into credit-starved / downstream-full / device-busy);
    ``--ledger`` appends the movement ledger (bytes × link ×
    operator × direction).
``trace``
    Run the demo query and export a Chrome/Perfetto ``trace_events``
    JSON timeline (open in https://ui.perfetto.dev or
    ``chrome://tracing``).
``whatif``
    Causal what-if profiler: re-run a figure scenario with one
    hardware resource scaled at a time (deterministic kernel,
    bit-identical baseline) and print the per-resource virtual
    speedup table, flagging off-path resources.  ``--vary
    nic.bw=2x,cxl.lat=0.5x`` runs explicit perturbations instead.
``report``
    Render the self-contained HTML bottleneck-attribution report
    (critical path, sensitivity, stalls, movement ledger) plus the
    ``repro.whatif/v1`` JSON artifact alongside.
``optimize``
    Show the optimizer's top-k placements for a figure scenario;
    ``--validate-whatif`` simulates each one and prints every
    cost-vs-simulation ranking disagreement.
``experiments``
    List every reproduced experiment and its benchmark file.
``bench``
    Run the machine-readable benchmark harness: instrumented smoke
    scenarios (``--smoke``), serving scenarios (``--serve``), and/or
    experiment scripts (``--exp``), emitting a schema-versioned
    ``BENCH_<tag>.json`` report.  ``--compare BENCH_x.json`` re-runs
    a baseline's scenarios and exits non-zero on regression.
``serve``
    Serve a named multi-tenant scenario (open/closed tenant
    populations, admission control, weighted fair queueing, plan
    cache) on one warm fabric; print latency percentiles, goodput,
    shed and SLO-violation counts; optionally write the full
    ``repro.bench/v3`` serving record (with per-query records).
``top``
    The saturation observatory's live view: serve a scenario (or load
    a recorded ``repro.observatory/v1`` JSON with ``--from``) and
    render per-pool saturation, the hottest tenants by bound resource
    class, and the placement-regret leaderboard — ``--follow`` adds
    the per-window playback.
``loadgen``
    Materialize the deterministic open-tenant arrival schedule of a
    serving scenario as JSON (time, tenant, template per arrival).

Report-producing commands route their outputs under
``benchmarks/results/`` (gitignored) when the output flag is omitted
or given bare, so artifacts never land in the repo root by accident.
"""

from __future__ import annotations

import argparse
import os
import sys

from .engine import (
    AggSpec,
    DataflowEngine,
    Query,
    VolcanoEngine,
    cpu_only,
    data_path_sites,
    pushdown,
)
from .hardware import OpKind, build_fabric, conventional_spec, \
    dataflow_spec
from .optimizer import Optimizer
from .relational import Catalog, col, make_lineitem

EXPERIMENTS = [
    ("F1", "conventional data path amplification",
     "bench_f1_conventional_path.py"),
    ("F2", "storage pushdown of selection/projection",
     "bench_f2_storage_pushdown.py"),
    ("F3", "staged group-by pipeline across NICs",
     "bench_f3_nic_pipeline.py"),
    ("F4", "NIC-scattered distributed join + COUNT on NIC",
     "bench_f4_scatter_join.py"),
    ("F5", "near-memory filter / pointer-chase / GC units",
     "bench_f5_near_memory.py"),
    ("F6", "full pipeline storage->cores (+A2 DMA ablation)",
     "bench_f6_full_pipeline.py"),
    ("C1", "single-core vs controller memory bandwidth",
     "bench_c1_membw.py"),
    ("C2", "data-center tax + bytes-scanned billing",
     "bench_c2_datacenter_tax.py"),
    ("C3", "credit-based flow control window sweep",
     "bench_c3_credit_flow.py"),
    ("C4", "interference-aware scheduling (+A1 ablation)",
     "bench_c4_scheduling.py"),
    ("C5", "no more buffer pools", "bench_c5_no_bufferpool.py"),
    ("C6", "no more data caches", "bench_c6_no_caches.py"),
    ("C7", "which operators to push down",
     "bench_c7_pushdown_survey.py"),
    ("C8", "CXL coherence + PCIe ladder",
     "bench_c8_cxl_coherence.py"),
    ("E1", "zone maps (extension)", "bench_e1_zonemaps.py"),
    ("E2", "disaggregated-memory offload (extension)",
     "bench_e2_disagg_memory.py"),
    ("E3", "compressed memory + on-demand decompress (extension)",
     "bench_e3_compressed_memory.py"),
    ("E4", "kernel installation break-even (extension)",
     "bench_e4_kernel_overhead.py"),
    ("E5", "pre-sorting at storage (extension)",
     "bench_e5_presort.py"),
    ("E6", "storage->GPU: GPUDirect vs host staging (extension)",
     "bench_e6_gpudirect.py"),
]


def _routed_output(path, default_name: str) -> str:
    """Resolve a report-output path, routing defaults out of the root.

    An omitted or bare flag (``path`` empty/None) lands under
    ``benchmarks/results/`` (gitignored); an explicit path is taken
    as-is.  Either way the parent directory is created.
    """
    out = path or os.path.join("benchmarks", "results", default_name)
    out_dir = os.path.dirname(out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    return out


def _spec(name: str):
    if name == "dataflow":
        return dataflow_spec()
    if name == "conventional":
        return conventional_spec()
    raise SystemExit(f"unknown fabric spec {name!r} "
                     "(choose: dataflow, conventional)")


def cmd_demo(args) -> int:
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(args.rows,
                                               chunk_rows=8192))
    query = (Query.scan("lineitem")
             .filter(col("l_quantity") > 45)
             .aggregate(["l_returnflag"],
                        [AggSpec("sum", "l_extendedprice", "revenue")]))

    fabric = build_fabric(dataflow_spec())
    baseline = VolcanoEngine(fabric, catalog).execute(query)

    fabric2 = build_fabric(dataflow_spec())
    best = Optimizer(fabric2, catalog).optimize(query)
    offloaded = DataflowEngine(fabric2, catalog).execute(
        query, placement=best.placement)

    assert baseline.table.sorted_rows() == offloaded.table.sorted_rows()
    print(f"rows: {args.rows:,}   result groups: {baseline.rows}")
    print(f"{'':18} {'volcano':>14} {'dataflow*':>14}")
    for segment in sorted(set(baseline.movement)
                          | set(offloaded.movement)):
        label = segment.replace(".bytes", "")
        print(f"{label:18} {baseline.movement.get(segment, 0):>14,.0f} "
              f"{offloaded.movement.get(segment, 0):>14,.0f}")
    print(f"{'elapsed (sim s)':18} {baseline.elapsed:>14.6f} "
          f"{offloaded.elapsed:>14.6f}")
    used = sorted({s for chain in best.placement.sites.values()
                   for s in chain})
    print(f"\n* optimizer-chosen sites: {used}")
    return 0


def cmd_sites(args) -> int:
    fabric = build_fabric(_spec(args.spec))
    print(f"fabric: {args.spec}  "
          f"(data path: {' -> '.join(data_path_sites(fabric))})\n")
    kinds = [OpKind.FILTER, OpKind.REGEX, OpKind.PROJECT,
             OpKind.PARTITION, OpKind.AGGREGATE, OpKind.SORT,
             OpKind.JOIN_PROBE, OpKind.COMPRESS, OpKind.COUNT]
    header = f"{'site':18}" + "".join(f"{k:>10}" for k in kinds)
    print(header)
    print("-" * len(header))
    for site, device in sorted(fabric.sites.items()):
        marks = "".join(
            f"{'yes' if device.supports(k) else '-':>10}"
            for k in kinds)
        print(f"{site:18}{marks}")
    return 0


def cmd_query(args) -> int:
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(args.rows,
                                               chunk_rows=8192))
    cutoff = max(1, int(50 * args.selectivity))
    query = (Query.scan("lineitem")
             .filter(col("l_quantity") <= cutoff)
             .project(["l_orderkey", "l_extendedprice"]))

    fabric = build_fabric(_spec(args.spec))
    engine = DataflowEngine(fabric, catalog,
                            use_zonemaps=args.zonemaps)
    if args.placement == "optimize":
        placement = Optimizer(fabric, catalog).optimize(query).placement
    elif args.placement == "pushdown":
        placement = pushdown(query.plan, fabric)
    else:
        placement = cpu_only(query.plan, fabric)
    if args.plan or args.show_kernel:
        graph = engine.compile(query, placement=placement)
        if args.plan:
            _print_plan(graph, placement)
        if args.show_kernel:
            # Kernels resolve lazily against the first real chunk, so
            # run the graph before reading the resolution state.
            graph.run()
            _print_kernels(graph)
        return 0
    result = engine.execute(query, placement=placement)
    print(f"placement: {placement.name}   rows out: {result.rows:,}")
    for segment, value in sorted(result.movement.items()):
        print(f"  {segment.replace('.bytes', ''):10} "
              f"{value:>16,.0f} bytes")
    print(f"  {'elapsed':10} {result.elapsed:>16.6f} sim-seconds")
    if args.explain_stalls:
        _print_stalls(fabric.trace)
    if args.ledger:
        _print_ledger(fabric.trace)
    return 0


def _print_plan(graph, placement) -> None:
    """Render the compiled stage graph with fusion-segment boundaries.

    Each stage lists its operators; a fused segment shows its parts
    indented under one header, so the boundaries where selection
    views materialize (stage emits) are visible at a glance.
    """
    from .engine import describe_op
    print(f"placement: {placement.name}   "
          f"stages: {len(graph.stages)}")
    for stage in graph.stages.values():
        device = stage.device.name if stage.device else "-"
        kind = "source" if stage.source_table is not None else (
            "sink" if stage.is_sink else "stream")
        print(f"\nstage {stage.name}  [{kind} @ {device}, "
              f"router={stage.router}]")
        if stage.source_table is not None:
            print(f"  scan {stage.source_table.name} "
                  f"({stage.source_table.num_rows:,} rows)")
        for op in stage.ops:
            for line in describe_op(op):
                print(f"  {line}")
        if stage.outputs:
            print(f"  -> materialize at stage boundary "
                  f"({len(stage.outputs)} output channel"
                  f"{'s' if len(stage.outputs) != 1 else ''})")


def _print_kernels(graph) -> None:
    """Render each fused segment's generated-kernel resolution.

    Shows the cache fingerprint, where the kernel came from
    (compiled / memory / disk — i.e. miss vs hit), and the generated
    source itself; segments on the closure path say why.
    """
    from .engine import codegen
    from .engine.fusion import FusedOp
    seen: set = set()
    printed = False
    for stage in graph.stages.values():
        for op in stage.ops:
            if not isinstance(op, FusedOp):
                continue
            info = op.kernel_info()
            key = info["fingerprint"] or info["name"]
            if key in seen:
                continue
            seen.add(key)
            printed = True
            print(f"\nkernel for {info['name']}")
            if info["fingerprint"] is None:
                reason = ("codegen disabled (REPRO_NO_CODEGEN)"
                          if info["origin"] == "disabled"
                          else "pipeline not lowerable; closure path")
                print(f"  {reason}")
                continue
            hit = "miss" if info["origin"] == "compiled" else "hit"
            print(f"  fingerprint: {info['fingerprint']}")
            print(f"  origin: {info['origin']} (cache {hit})")
            source = info["source"]
            if source is None:
                source = codegen.cached_source(info["fingerprint"])
            for line in (source or "").rstrip().splitlines():
                print(f"  | {line}")
    if not printed:
        print("\nno fused segments (nothing to lower to kernels)")


def _print_stalls(trace) -> None:
    """Render the backpressure attribution report."""
    report = trace.stall_report()
    print("\nbackpressure attribution (stall seconds per stage):")
    if not report:
        print("  no stalls recorded — the pipeline never blocked")
        return
    header = (f"  {'stage':28} {'credit-starved':>15} "
              f"{'downstream-full':>16} {'device-busy':>12} "
              f"{'total':>10}")
    print(header)
    for stage, stats in report.items():
        print(f"  {stage:28} {stats['credit_starved_s']:>15.6f} "
              f"{stats['downstream_full_s']:>16.6f} "
              f"{stats['device_busy_s']:>12.6f} "
              f"{stats['total_s']:>10.6f}")


def _print_ledger(trace, max_rows: int = 40) -> None:
    """Render the movement ledger (bytes × link × actor × direction)."""
    rows = trace.movement_ledger()
    print("\nmovement ledger:")
    if not rows:
        print("  no link crossings recorded")
        return
    print(f"  {'link':20} {'operator':28} {'direction':30} "
          f"{'bytes':>14} {'chunks':>7}")
    for row in rows[:max_rows]:
        print(f"  {row['link']:20} {row['actor']:28} "
              f"{row['direction']:30} {row['bytes']:>14,.0f} "
              f"{row['chunks']:>7,.0f}")
    if len(rows) > max_rows:
        print(f"  ... ({len(rows)} rows total)")


def cmd_trace(args) -> int:
    """Run the demo query and export a Chrome trace_events timeline."""
    from .sim import export_chrome_trace
    if args.serve:
        from .serve import serve_scenario_server
        out = _routed_output(args.out,
                             f"trace_serve_{args.scenario}.json")
        server = serve_scenario_server(args.scenario,
                                       queries=args.queries)
        trace = server.fabric.trace
        trace.close_open_spans()
        payload = export_chrome_trace(trace, out)
        stats = trace.event_stats()
        lanes = len({ctx.get("tenant", "")
                     for ctx in trace.contexts.values()})
        print(f"wrote {out}: {len(payload['traceEvents'])} "
              f"trace events from scenario {args.scenario} "
              f"({stats['recorded']} ring events, "
              f"{len(trace.contexts)} query contexts, "
              f"{lanes} tenant lanes, "
              f"truncated={stats['truncated']})")
        print("open in https://ui.perfetto.dev or chrome://tracing")
        return 0
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(args.rows,
                                               chunk_rows=8192))
    query = (Query.scan("lineitem")
             .filter(col("l_quantity") > 45)
             .aggregate(["l_returnflag"],
                        [AggSpec("sum", "l_extendedprice", "revenue")]))
    fabric = build_fabric(dataflow_spec())
    if args.engine in ("volcano", "both"):
        VolcanoEngine(fabric, catalog).execute(query)
    if args.engine in ("dataflow", "both"):
        placement = Optimizer(fabric, catalog).optimize(query).placement
        DataflowEngine(fabric, catalog).execute(query,
                                                placement=placement)
    fabric.trace.close_open_spans()
    out = _routed_output(args.out, f"trace_{args.engine}.json")
    payload = export_chrome_trace(fabric.trace, out)
    stats = fabric.trace.event_stats()
    print(f"wrote {out}: {len(payload['traceEvents'])} trace "
          f"events ({stats['recorded']} ring events, "
          f"truncated={stats['truncated']})")
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def cmd_sql(args) -> int:
    from .relational.sql import parse_sql
    catalog = Catalog()
    catalog.register("lineitem", make_lineitem(args.rows,
                                               chunk_rows=8192))
    from .relational import make_orders
    catalog.register("orders", make_orders(args.rows // 4,
                                           chunk_rows=8192))
    query = parse_sql(args.statement)
    fabric = build_fabric(dataflow_spec())
    if args.placement == "optimize":
        placement = Optimizer(fabric, catalog).optimize(query).placement
    elif args.placement == "pushdown":
        placement = pushdown(query.plan, fabric)
    else:
        placement = cpu_only(query.plan, fabric)
    result = DataflowEngine(fabric, catalog).execute(
        query, placement=placement)
    print(f"placement: {placement.name}   "
          f"elapsed: {result.elapsed:.6f} sim-s   "
          f"network: {result.bytes_on('network'):,.0f} B")
    names = result.table.schema.names
    print("  ".join(names))
    for row in result.table.sorted_rows()[:args.max_rows]:
        print("  ".join(str(v) for v in row))
    if result.rows > args.max_rows:
        print(f"... ({result.rows} rows total)")
    return 0


def _print_whatif(payload: dict) -> None:
    baseline = payload["baseline"]
    attribution = baseline["attribution"]
    print(f"what-if: {payload['query']} ({payload['title']})  "
          f"engine={payload['engine']}  rows={payload['rows']:,}")
    print(f"  baseline: {baseline['sim_time_s']:.6f} sim-s   "
          f"checksum {baseline['checksum'][:12]}...   "
          f"bit-identical={baseline['verified_identical']}   "
          f"attribution-exact={attribution['exact']}")
    print("\ncritical-path attribution:")
    for bucket, seconds in attribution["buckets"].items():
        share = attribution["shares"].get(bucket, 0.0)
        print(f"  {bucket:28} {seconds:>14.9f} s  {share:>7.2%}")
    if payload["sensitivity"]:
        factors = [f"{f:g}" for f in payload["factors"]]
        header = (f"  {'resource':20}"
                  + "".join(f"{'x' + f:>9}" for f in factors)
                  + f" {'verdict':>10}")
        print("\nper-resource sensitivity (end-to-end speedup):")
        print(header)
        for row in payload["sensitivity"]:
            cells = "".join(
                f"{row['speedups'][f]:>8.3f}x" for f in factors)
            verdict = "on-path" if row["on_path"] else "off-path"
            print(f"  {row['resource']:20}{cells} {verdict:>10}")
        print(f"\noff-path (<{2:.0f}% gain even at x"
              f"{max(payload['factors']):g}): "
              + (", ".join(payload["off_path"]) or "none"))
    for row in payload["vary"]:
        print(f"  vary {row['resource']}={row['factor']:g}x: "
              f"{row['sim_time_s']:.6f} sim-s "
              f"(speedup {row['speedup']:.3f}x, "
              f"checksum match={row['checksum_match']})")


def cmd_whatif(args) -> int:
    import json as json_mod

    from .analysis import (
        DEFAULT_FACTORS,
        parse_vary,
        run_whatif,
        whatif_violations,
    )
    vary = parse_vary(args.vary) if args.vary else []
    factors = ([float(f) for f in args.factors.split(",")]
               if args.factors else DEFAULT_FACTORS)
    resources = (args.resources.split(",") if args.resources
                 else None)
    payload = run_whatif(args.query, engine=args.engine,
                         rows=args.rows, factors=factors,
                         resources=[] if vary and resources is None
                         else resources,
                         vary=vary)
    _print_whatif(payload)
    violations = whatif_violations(payload)
    if args.out is not None:
        # Bare -o routes under benchmarks/results/; absent -o writes
        # nothing (the sweep is still printed and gated).
        out = _routed_output(args.out, f"WHATIF_{args.query}.json")
        with open(out, "w", encoding="utf-8") as fh:
            json_mod.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {out}")
    if violations:
        print("\nVIOLATIONS:")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    return 0


def cmd_report(args) -> int:
    from .analysis import SCENARIOS, run_whatif, write_report

    if args.serve:
        from .serve import run_scenario, write_dashboard
        out = _routed_output(
            args.out, f"serve_dashboard_{args.serve_scenario}.html")
        record = run_scenario(args.serve_scenario)
        html_path, json_path = write_dashboard(
            out, record,
            title=f"Serving dashboard — {args.serve_scenario}")
        telemetry = record["telemetry"]
        print(f"wrote {html_path} and {json_path} "
              f"({telemetry['windows']} windows, "
              f"{len(telemetry['alerts'])} alerts, "
              f"{len(telemetry['exemplars'])} exemplars)")
        return 0

    out = _routed_output(args.out, "attribution.html")
    names = (sorted(SCENARIOS) if args.queries == "all"
             else [q.strip() for q in args.queries.split(",")])
    payloads = []
    for name in names:
        print(f"analyzing {name}...")
        payloads.append(run_whatif(name, engine=args.engine,
                                   rows=args.rows))
    html_path, json_path = write_report(out, payloads)
    print(f"wrote {html_path} and {json_path} "
          f"({len(payloads)} queries)")
    return 0


def cmd_optimize(args) -> int:
    from .analysis import optimizer_crosscheck

    if not args.validate_whatif:
        from .analysis.scenarios import SCENARIOS, _catalog
        scenario = SCENARIOS[args.query]
        fabric = build_fabric(scenario.spec())
        rows = args.rows or scenario.rows
        ranked = Optimizer(fabric, _catalog(rows)).rank(
            scenario.query())[:args.top_k]
        print(f"top-{len(ranked)} placements for {args.query} "
              f"({rows:,} rows), by predicted makespan:")
        for index, candidate in enumerate(ranked):
            sites = sorted({site for chain in
                            candidate.placement.sites.values()
                            for site in chain})
            print(f"  #{index}: {candidate.placement.name:10} "
                  f"predicted {candidate.cost.bottleneck_time:.6f} s  "
                  f"sites={sites}")
        return 0

    check = optimizer_crosscheck(args.query, rows=args.rows,
                                 k=args.top_k)
    print(f"optimizer cross-check: {check['query']} "
          f"({check['rows']:,} rows, top-{check['k']} placements)")
    print(f"  {'#':>2} {'placement':12} {'predicted':>12} "
          f"{'simulated':>12} {'dominant bucket':24}")
    for plan in check["plans"]:
        print(f"  {plan['rank']:>2} {plan['placement']:12} "
              f"{plan['predicted_s']:>12.6f} "
              f"{plan['simulated_s']:>12.6f} "
              f"{plan['dominant']:24}")
    if check["agreement"]:
        print("cost-model ranking agrees with simulation")
    else:
        print("DISAGREEMENTS (cost model ranked the slower plan "
              "first):")
        for item in check["disagreements"]:
            print(f"  - predicted {item['predicted_faster']} < "
                  f"{item['actually_faster']}, but simulated "
                  f"{item['simulated_s'][0]:.6f} s > "
                  f"{item['simulated_s'][1]:.6f} s "
                  f"(dominant: {item['dominant'][0]} vs "
                  f"{item['dominant'][1]})")
    return 0


def cmd_experiments(_args) -> int:
    print(f"{'id':4} {'benchmark':36} description")
    for exp_id, description, bench in EXPERIMENTS:
        print(f"{exp_id:4} benchmarks/{bench:36} {description}")
    print("\nrun all:  repro bench --exp all"
          "   (or: pytest benchmarks/ --benchmark-only)")
    return 0


def cmd_bench(args) -> int:
    from .bench import run_cli
    return run_cli(args)


def cmd_serve(args) -> int:
    import json

    from .serve import run_scenario

    record = run_scenario(args.scenario, rows=args.rows,
                          queries=args.queries,
                          verify=not args.no_verify)
    latency = record["latency"]
    print(f"scenario {record['name']}  "
          f"({record['queries']} queries, {record['rows']} rows)")
    print(f"  completed {record['completed']}  "
          f"shed {record['shed']}  "
          f"slo violations {record['slo_violations']}")
    print(f"  latency p50 {latency['p50_s']:.6f}s  "
          f"p99 {latency['p99_s']:.6f}s  "
          f"p999 {latency['p999_s']:.6f}s  "
          f"max {latency['max_s']:.6f}s")
    print(f"  goodput {record['goodput_qps']:.1f} q/s  "
          f"makespan {record['makespan_s']:.6f}s  "
          f"plan cache {record['plan_cache']['hits']} hits / "
          f"{record['plan_cache']['misses']} misses")
    for name, tenant in record["tenants"].items():
        print(f"  tenant {name:8} weight {tenant['weight']:4.1f}  "
              f"done {tenant['completed']:5d}  "
              f"shed {tenant['shed']:4d}  "
              f"viol {tenant['slo_violations']:4d}  "
              f"p99 {tenant['p99_s']:.6f}s")
    telemetry = record.get("telemetry")
    if telemetry is not None:
        alerts = telemetry["alerts"]
        fired = sum(1 for a in alerts if a["kind"] == "fired")
        print(f"  telemetry: {telemetry['windows']} windows x "
              f"{telemetry['window_s'] * 1e3:g} ms  "
              f"alerts {fired} fired / {len(alerts) - fired} "
              f"resolved  exemplars {len(telemetry['exemplars'])}  "
              f"digest {record['telemetry_digest'][:12]}...")
    observatory = record.get("observatory")
    if observatory is not None:
        regret = observatory["regret"]
        switches = sum(c.get("switch_opportunities", 0)
                       for c in regret["by_tenant"].values())
        status = "partial" if observatory["partial"] else "complete"
        print(f"  observatory: {observatory['windows']} windows x "
              f"{observatory['window_s'] * 1e3:g} ms  "
              f"{len(observatory['pools'])} pools  "
              f"{switches} regret switch opportunities  "
              f"ring {status}  "
              f"digest {record['observatory_digest'][:12]}...")
    if not args.no_verify:
        checked = record["verification"]["queries_checked"]
        print(f"  verified: {checked} results bit-identical to "
              "standalone runs; accounting + telemetry + "
              "observatory exact")
    if args.report is not None:
        from .serve import write_dashboard
        # Bare --report defaults under benchmarks/results/, which is
        # gitignored — reports never land in the repo root.
        report = _routed_output(args.report,
                                f"serve_{record['name']}.html")
        html_path, json_path = write_dashboard(
            report, record,
            title=f"Serving dashboard — {record['name']}")
        print(f"  dashboard: {html_path} (+ {json_path})")
    if args.out is not None:
        # Bare -o defaults under benchmarks/results/ (gitignored),
        # same routing as --report — records never land in the
        # repo root by accident.
        out = _routed_output(args.out,
                             f"serve_{record['name']}.json")
        with open(out, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"  record: {out}")
    return 0


def cmd_top(args) -> int:
    import json

    from .analysis.observatory import OBSERVATORY_SCHEMA, render_top

    if getattr(args, "from_file", None):
        with open(args.from_file) as handle:
            doc = json.load(handle)
        # Accept either a bare observatory payload or a wrapper
        # (serving record, `top --json` artifact) that embeds one.
        if doc.get("schema") == OBSERVATORY_SCHEMA and "series" in doc:
            payload = doc
        else:
            payload = doc.get("observatory")
        if payload is None:
            print(f"error: {args.from_file} carries no "
                  f"{OBSERVATORY_SCHEMA} section", file=sys.stderr)
            return 1
        name = doc.get("name", args.from_file)
        print(render_top(payload, name=name, follow=args.follow))
        return 0

    from .serve import run_scenario
    record = run_scenario(args.scenario, rows=args.rows,
                          queries=args.queries, verify=False)
    payload = record.get("observatory")
    if payload is None:
        print("error: the server ran with the observatory disabled",
              file=sys.stderr)
        return 1
    print(render_top(payload, name=record["name"],
                     follow=args.follow))
    violations = record["observatory_violations"]
    if args.json is not None:
        out = _routed_output(args.json, f"TOP_{record['name']}.json")
        with open(out, "w") as handle:
            json.dump({"schema": OBSERVATORY_SCHEMA,
                       "name": record["name"],
                       "digest": record["observatory_digest"],
                       "observatory": payload,
                       "violations": violations},
                      handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {out}")
    if violations:
        print("\nOBSERVATORY VIOLATIONS:", file=sys.stderr)
        for violation in violations[:10]:
            print(f"  - {violation}", file=sys.stderr)
        return 1
    return 0


def cmd_loadgen(args) -> int:
    import json

    from .serve import scenario_schedule, schedule_for

    tenants, counts = scenario_schedule(args.scenario, args.queries)
    arrivals = schedule_for(tenants, counts)
    closed = [t.name for t in tenants if not t.arrival.is_open]
    payload = {
        "scenario": args.scenario,
        "arrivals": [a.to_dict() for a in arrivals],
        "closed_tenants": closed,
    }
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"{len(arrivals)} open-loop arrivals -> {args.out}")
    else:
        print(json.dumps(payload, indent=2))
    if closed:
        print(f"note: closed-loop tenants {closed} submit "
              "reactively and are not in the schedule")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Data-flow query processing on simulated modern "
                    "hardware (Lerner & Alonso, ICDE 2024)")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="baseline vs data-flow demo")
    demo.add_argument("--rows", type=int, default=100_000)
    demo.set_defaults(func=cmd_demo)

    sites = sub.add_parser("sites", help="list fabric sites")
    sites.add_argument("--spec", default="dataflow",
                       choices=["dataflow", "conventional"])
    sites.set_defaults(func=cmd_sites)

    query = sub.add_parser("query", help="run a configurable query")
    query.add_argument("--rows", type=int, default=100_000)
    query.add_argument("--selectivity", type=float, default=0.1)
    query.add_argument("--placement", default="optimize",
                       choices=["optimize", "pushdown", "cpu"])
    query.add_argument("--spec", default="dataflow",
                       choices=["dataflow", "conventional"])
    query.add_argument("--zonemaps", action="store_true")
    query.add_argument("--show-kernel", action="store_true",
                       help="print each fused segment's generated "
                            "kernel source with its cache key and "
                            "hit/miss origin (runs the query)")
    query.add_argument("--plan", action="store_true",
                       help="print the compiled stage graph with "
                            "fusion-segment boundaries instead of "
                            "running the query")
    query.add_argument("--explain-stalls", action="store_true",
                       help="print per-stage stall attribution "
                            "(credit-starved / downstream-full / "
                            "device-busy)")
    query.add_argument("--ledger", action="store_true",
                       help="print the movement ledger (bytes x link "
                            "x operator x direction)")
    query.set_defaults(func=cmd_query)

    trace = sub.add_parser(
        "trace", help="export a Chrome/Perfetto trace of the demo "
                      "query")
    trace.add_argument("-o", "--out", nargs="?", const="",
                       default="", metavar="JSON",
                       help="output .json path (trace_events "
                            "format); omitted or bare -o defaults "
                            "under benchmarks/results/")
    trace.add_argument("--rows", type=int, default=50_000)
    trace.add_argument("--engine", default="dataflow",
                       choices=["dataflow", "volcano", "both"])
    trace.add_argument("--serve", action="store_true",
                       help="trace a multi-tenant serving scenario "
                            "instead of the demo query (per-tenant "
                            "lanes, serve lifecycle events)")
    trace.add_argument("--scenario", default="two_tenant_bursty",
                       help="serving scenario for --serve")
    trace.add_argument("--queries", type=int, default=None,
                       help="requested queries for --serve")
    trace.set_defaults(func=cmd_trace)

    sql = sub.add_parser(
        "sql", help="run a SQL statement over synthetic "
                    "lineitem/orders tables")
    sql.add_argument("statement")
    sql.add_argument("--rows", type=int, default=50_000)
    sql.add_argument("--max-rows", type=int, default=20)
    sql.add_argument("--placement", default="optimize",
                     choices=["optimize", "pushdown", "cpu"])
    sql.set_defaults(func=cmd_sql)

    whatif = sub.add_parser(
        "whatif", help="causal what-if profiler (per-resource "
                       "virtual speedups)")
    whatif.add_argument("--query", default="f6",
                        help="figure scenario (f1..f6)")
    whatif.add_argument("--engine", default="dataflow",
                        choices=["dataflow", "volcano"])
    whatif.add_argument("--rows", type=int, default=None)
    whatif.add_argument("--factors", default=None,
                        help="comma-separated improvement factors "
                             "(default 1.25,1.5,2,4)")
    whatif.add_argument("--resources", default=None,
                        help="comma-separated resource subset to "
                             "sweep (default: all on the fabric)")
    whatif.add_argument("--vary", default=None,
                        help="explicit raw perturbations, e.g. "
                             "nic.bw=2x,cxl.lat=0.5x (skips the "
                             "sweep unless --resources is given)")
    whatif.add_argument("-o", "--out", nargs="?", const="",
                        default=None, metavar="JSON",
                        help="write the repro.whatif/v1 JSON here; "
                             "bare -o defaults under "
                             "benchmarks/results/ (absent: no file)")
    whatif.set_defaults(func=cmd_whatif)

    report = sub.add_parser(
        "report", help="self-contained HTML attribution report "
                       "(+ JSON artifact)")
    report.add_argument("-o", "--out", nargs="?", const="",
                        default="", metavar="HTML",
                        help="output .html path (JSON lands "
                             "alongside); omitted or bare -o "
                             "defaults under benchmarks/results/")
    report.add_argument("--queries", default="all",
                        help="comma-separated scenarios or 'all'")
    report.add_argument("--engine", default="dataflow",
                        choices=["dataflow", "volcano"])
    report.add_argument("--rows", type=int, default=None)
    report.add_argument("--serve", action="store_true",
                        help="render the serving telemetry dashboard "
                             "instead of the attribution report")
    report.add_argument("--serve-scenario",
                        default="two_tenant_bursty",
                        help="serving scenario for --serve")
    report.set_defaults(func=cmd_report)

    optimize = sub.add_parser(
        "optimize", help="rank placements; --validate-whatif "
                         "cross-checks against simulation")
    optimize.add_argument("--query", default="f6",
                          help="figure scenario (f1..f6)")
    optimize.add_argument("--rows", type=int, default=None)
    optimize.add_argument("-k", "--top-k", type=int, default=3)
    optimize.add_argument("--validate-whatif", action="store_true",
                          help="simulate the top-k plans and print "
                               "cost-vs-simulation ranking "
                               "disagreements")
    optimize.set_defaults(func=cmd_optimize)

    experiments = sub.add_parser("experiments",
                                 help="list reproduced experiments")
    experiments.set_defaults(func=cmd_experiments)

    from .bench import add_bench_arguments
    bench = sub.add_parser(
        "bench", help="run the benchmark harness -> BENCH_<tag>.json")
    add_bench_arguments(bench)
    bench.set_defaults(func=cmd_bench)

    serve = sub.add_parser(
        "serve", help="serve a multi-tenant scenario on one warm "
                      "fabric")
    serve.add_argument("--scenario", default="two_tenant_bursty",
                       help="serving scenario (see `repro bench "
                            "--list`)")
    serve.add_argument("--rows", type=int, default=None,
                       help="base table rows (scenario default "
                            "otherwise)")
    serve.add_argument("--queries", type=int, default=None,
                       help="requested total queries across tenants")
    serve.add_argument("--no-verify", action="store_true",
                       help="skip the standalone-oracle checksum and "
                            "accounting verification")
    serve.add_argument("-o", "--out", nargs="?", const="",
                       default=None, metavar="JSON",
                       help="write the full repro.bench/v3 serving "
                            "record (incl. per-query records); bare "
                            "-o defaults under benchmarks/results/")
    serve.add_argument("--report", nargs="?", const="", default=None,
                       metavar="HTML",
                       help="write the self-contained serving "
                            "dashboard here (telemetry JSON lands "
                            "alongside)")
    serve.set_defaults(func=cmd_serve)

    top = sub.add_parser(
        "top", help="saturation observatory snapshot (pools, bound "
                    "tenants, placement-regret leaders)")
    top.add_argument("--scenario", default="two_tenant_bursty",
                     help="serving scenario to observe")
    top.add_argument("--rows", type=int, default=None,
                     help="base table rows (scenario default "
                          "otherwise)")
    top.add_argument("--queries", type=int, default=None,
                     help="requested total queries across tenants")
    top.add_argument("--from", dest="from_file", default=None,
                     metavar="JSON",
                     help="render from a recorded "
                          "repro.observatory/v1 JSON (or a serving "
                          "record embedding one) instead of serving")
    top.add_argument("--once", action="store_true",
                     help="point-in-time summary only (the default; "
                          "kept explicit for scripting)")
    top.add_argument("--follow", action="store_true",
                     help="add the per-window playback above the "
                          "summary tables")
    top.add_argument("--json", nargs="?", const="", default=None,
                     metavar="JSON",
                     help="also write the observatory JSON artifact; "
                          "bare --json defaults under "
                          "benchmarks/results/")
    top.set_defaults(func=cmd_top)

    loadgen = sub.add_parser(
        "loadgen", help="materialize a scenario's open-tenant "
                        "arrival schedule as JSON")
    loadgen.add_argument("--scenario", default="two_tenant_bursty",
                         help="serving scenario name")
    loadgen.add_argument("--queries", type=int, default=None,
                         help="requested total queries")
    loadgen.add_argument("-o", "--out", default=None,
                         help="output JSON path (stdout otherwise)")
    loadgen.set_defaults(func=cmd_loadgen)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
