"""Machine-readable benchmark harness (``repro bench``).

Two layers:

* **Smoke scenarios** — small, fully instrumented query runs executed
  on *both* engines.  Each scenario reports wall time, simulated
  time, bytes moved per segment, per-link byte/chunk totals, device
  utilization, the critical-path summary, and a canonical result
  checksum; the harness fails loudly if the Volcano and data-flow
  answers disagree.  These are the always-on health probes CI runs on
  every push (``repro bench --smoke``).
* **Experiment scripts** — the ``benchmarks/bench_*.py`` studies
  (F1–F6, C1–C8, E1–E6).  The harness imports each script and calls
  its ``run_<id>()`` entry point, recording wall time and the result
  rows.  These are opt-in (``repro bench --exp f1,c3`` or ``--exp
  all``) because the full set takes minutes.

Both layers land in one schema-versioned JSON report
(``BENCH_<tag>.json``, schema :data:`repro.obs.REPORT_SCHEMA`) so
runs are diffable across commits and machines.

Parallelism: every scenario owns its :class:`~repro.sim.Simulator`
and builds its fabric fresh, so scenarios are independent and
``--jobs N`` fans them out across worker processes — determinism is
free, and per-scenario ``wall_time_s`` stays a single-process
measurement (it is clocked inside the worker).  The report's
``totals.wall_time_s`` therefore remains comparable across job
counts, while ``totals.harness_wall_s`` shows the parallel win.
``--profile`` wraps the in-process run in cProfile and embeds the
top functions (by cumulative time) in the report.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import sys
import time
from typing import Callable, Optional

from .engine import (
    AggSpec,
    DataflowEngine,
    Query,
    VolcanoEngine,
    cpu_only,
)
from .hardware import build_fabric, conventional_spec, dataflow_spec
from .obs import (
    combine_checksums,
    fabric_snapshot,
    make_report,
    table_checksum,
    validate_report,
)
from .relational import (
    Catalog,
    col,
    make_lineitem,
    make_orders,
    make_uniform_table,
)

__all__ = ["SMOKE_SCENARIOS", "SCALE_CHUNK", "run_smoke",
           "run_serving", "run_scale", "run_experiments",
           "write_report", "compare_reports", "run_compare",
           "profile_call", "run_cli", "main"]

DEFAULT_ROWS = 6000
_CHUNK = 1000

SCALE_CHUNK = 16_384
"""Chunk rows for the scale tier (``repro bench --scale``).

Large chunks keep the simulator's event count (which scales with
*chunks*, not rows) modest while the relational kernels chew through
100k–1M rows — the point of the tier is that simulated wall time
stays flat-ish as data grows, because the hot path is per-chunk.
"""

DEFAULT_TOLERANCE = 0.01
"""Relative tolerance for time/byte comparisons in ``--compare``.

The simulator is bit-deterministic, so the tolerance only absorbs
deliberate model refinements small enough to be non-regressions;
checksums and row counts must always match exactly.
"""


# Catalogs are memoized per (row count, chunk size): the generators
# are seeded (the same rows come back bit for bit) and scenarios
# treat tables as immutable, so rebuilding the catalog per scenario
# only burned wall time.  Worker processes (--jobs) each fill their
# own cache.
_CATALOG_CACHE: dict[tuple[int, int], Catalog] = {}


def _make_catalog(rows: int, chunk: int = _CHUNK) -> Catalog:
    catalog = _CATALOG_CACHE.get((rows, chunk))
    if catalog is None:
        catalog = Catalog()
        catalog.register("lineitem", make_lineitem(rows,
                                                   orders=rows // 4,
                                                   chunk_rows=chunk))
        catalog.register("orders", make_orders(rows // 4,
                                               chunk_rows=chunk))
        catalog.register("uniform", make_uniform_table(rows, columns=3,
                                                       distinct=50,
                                                       chunk_rows=chunk))
        _CATALOG_CACHE[(rows, chunk)] = catalog
    return catalog


def _assert_drained(sim, scenario: str) -> None:
    """Fail loudly if a scenario's simulator did not drain.

    Every bench scenario owns its simulator; after the run completes
    there must be nothing left in the event queues — a pending event
    means a process, callback, or credit return leaked past the end
    of the workload, which the fast flow paths could otherwise hide.
    """
    pending = sim.pending_events
    if pending:
        raise AssertionError(
            f"scenario {scenario!r} leaked {pending} pending "
            "simulator event(s) after completion")


def _smoke_queries() -> dict[str, Query]:
    return {
        "filter_project": (
            Query.scan("lineitem")
            .filter(col("l_quantity") > 40)
            .project(["l_orderkey", "l_extendedprice"])),
        "group_by_sum": (
            Query.scan("lineitem")
            .filter(col("l_shipdate").between(8500, 10500))
            .aggregate(["l_returnflag"],
                       [AggSpec("sum", "l_extendedprice", "revenue"),
                        AggSpec("count", alias="n")])),
        "join_agg": (
            Query.scan("lineitem")
            .filter(col("l_quantity") > 10)
            .join(Query.scan("orders")
                  .filter(col("o_priority") <= 2),
                  "l_orderkey", "o_orderkey")
            .aggregate(["o_priority"],
                       [AggSpec("sum", "l_extendedprice", "rev")])),
        "sort_limit": (
            Query.scan("uniform")
            .filter(col("k0") < 25)
            .sort(["k0", "k1"])
            .limit(100)),
    }


def _engine_summary(result) -> dict:
    return {
        "elapsed_sim_s": result.elapsed,
        "rows": result.rows,
        "total_moved_bytes": result.total_bytes_moved,
        "utilization": result.utilization,
    }


def _run_query_scenario(name: str, query: Query, rows: int,
                        spec_factory: Callable = dataflow_spec,
                        placement_factory: Optional[Callable] = None,
                        chunk: int = _CHUNK) -> dict:
    """Run one query on both engines over fresh fabrics; compare."""
    started = time.perf_counter()
    catalog = _make_catalog(rows, chunk)

    fabric_v = build_fabric(spec_factory())
    res_v = VolcanoEngine(fabric_v, catalog).execute(query)

    fabric_d = build_fabric(spec_factory())
    placement = (placement_factory(query.plan, fabric_d)
                 if placement_factory else None)
    res_d = DataflowEngine(fabric_d, catalog).execute(
        query, placement=placement)
    _assert_drained(fabric_v.sim, name)
    _assert_drained(fabric_d.sim, name)

    sum_v, sum_d = res_v.checksum(), res_d.checksum()
    record = {
        "name": name,
        "rows": rows,
        "chunk_rows": chunk,
        "wall_time_s": time.perf_counter() - started,
        "sim_time_s": res_d.elapsed,
        "checksum": sum_d,
        "agree": sum_v == sum_d,
        "engines": {"volcano": _engine_summary(res_v),
                    "dataflow": _engine_summary(res_d)},
    }
    # The data-flow fabric is the architecture under study; its
    # snapshot is the scenario's headline movement/utilization.
    record.update({k: v for k, v in fabric_snapshot(fabric_d).items()
                   if k != "sim_time_s"})
    # Exact critical-path attribution of the data-flow run: every
    # simulated nanosecond in a (device | link | wait) bucket, with
    # the "exact" flag asserting reconciliation against elapsed.
    from .analysis import attribute_query
    record["attribution"] = attribute_query(fabric_d.trace,
                                            res_d).to_dict()
    if not record["agree"]:
        raise AssertionError(
            f"smoke scenario {name!r}: engine results disagree "
            f"(volcano {sum_v[:12]}..., dataflow {sum_d[:12]}...)")
    return record


def _run_conventional_scan(rows: int) -> dict:
    """Volcano on the conventional fabric vs dataflow (cpu placement).

    Exercises the conventional preset (no smart devices) and the
    cpu_only placement path; the two answers must still agree.
    """
    query = (Query.scan("lineitem")
             .filter(col("l_quantity") > 30)
             .aggregate(["l_returnflag"],
                        [AggSpec("count", alias="n")]))
    started = time.perf_counter()
    catalog = _make_catalog(rows)

    fabric_v = build_fabric(conventional_spec())
    res_v = VolcanoEngine(fabric_v, catalog).execute(query)

    fabric_d = build_fabric(dataflow_spec())
    res_d = DataflowEngine(fabric_d, catalog).execute(
        query, placement=cpu_only(query.plan, fabric_d))
    _assert_drained(fabric_v.sim, "conventional_scan")
    _assert_drained(fabric_d.sim, "conventional_scan")

    sum_v, sum_d = res_v.checksum(), res_d.checksum()
    record = {
        "name": "conventional_scan",
        "rows": rows,
        "wall_time_s": time.perf_counter() - started,
        "sim_time_s": res_v.elapsed,
        "checksum": sum_v,
        "agree": sum_v == sum_d,
        "engines": {"volcano": _engine_summary(res_v),
                    "dataflow": _engine_summary(res_d)},
    }
    record.update({k: v for k, v in fabric_snapshot(fabric_v).items()
                   if k != "sim_time_s"})
    from .analysis import attribute_query
    record["attribution"] = attribute_query(fabric_v.trace,
                                            res_v).to_dict()
    if not record["agree"]:
        raise AssertionError(
            "smoke scenario 'conventional_scan': engine results "
            f"disagree (volcano {sum_v[:12]}..., dataflow "
            f"{sum_d[:12]}...)")
    return record


def _run_scheduler_mix(rows: int) -> dict:
    """Concurrent queries through the scheduler, checked per query."""
    from .scheduler import Scheduler

    started = time.perf_counter()
    catalog = _make_catalog(rows)
    queries = {
        "q_filter": (Query.scan("lineitem")
                     .filter(col("l_quantity") > 40)
                     .project(["l_orderkey"])),
        "q_agg": (Query.scan("lineitem")
                  .aggregate(["l_returnflag"],
                             [AggSpec("count", alias="n")])),
        "q_sort": (Query.scan("uniform")
                   .filter(col("k0") < 20)
                   .sort(["k0"])
                   .limit(50)),
    }
    fabric = build_fabric(dataflow_spec())
    scheduler = Scheduler(fabric, catalog,
                          policy="interference+ratelimit")
    for i, (name, query) in enumerate(sorted(queries.items())):
        scheduler.submit(name, query, arrival=i * 1e-4)
    records = scheduler.run()
    _assert_drained(fabric.sim, "scheduler_mix")

    checksums, agree = {}, True
    for rec in records:
        checksums[rec.name] = table_checksum(rec.table)
        oracle_fabric = build_fabric(dataflow_spec())
        oracle = VolcanoEngine(oracle_fabric, catalog).execute(
            queries[rec.name])
        _assert_drained(oracle_fabric.sim, "scheduler_mix")
        agree = agree and (table_checksum(oracle.table)
                           == checksums[rec.name])
    record = {
        "name": "scheduler_mix",
        "rows": rows,
        "wall_time_s": time.perf_counter() - started,
        "sim_time_s": scheduler.makespan(),
        "checksum": combine_checksums(checksums),
        "agree": agree,
        "queries": {rec.name: {"latency_s": rec.latency,
                               "variant": rec.variant_name}
                    for rec in records},
    }
    record.update({k: v for k, v in fabric_snapshot(fabric).items()
                   if k != "sim_time_s"})
    if not agree:
        raise AssertionError(
            "smoke scenario 'scheduler_mix': a scheduled query's "
            "result disagrees with the Volcano oracle")
    return record


SMOKE_SCENARIOS: dict[str, Callable[[int], dict]] = {}


def _register_smoke() -> None:
    for name, query in _smoke_queries().items():
        SMOKE_SCENARIOS[name] = (
            lambda rows, n=name, q=query:
            _run_query_scenario(n, q, rows))
    SMOKE_SCENARIOS["conventional_scan"] = _run_conventional_scan
    SMOKE_SCENARIOS["scheduler_mix"] = _run_scheduler_mix


_register_smoke()


def _run_smoke_task(task: tuple[str, int]) -> dict:
    """One (scenario name, rows) unit of work — picklable for --jobs."""
    name, rows = task
    return SMOKE_SCENARIOS[name](rows)


def _map_tasks(worker: Callable, tasks: list, jobs: int) -> list:
    """Map ``worker`` over ``tasks``, fanning out when ``jobs`` > 1.

    Each task runs in its own worker process; results come back in
    task order, so the merged report is independent of the job count.
    """
    if jobs <= 1 or len(tasks) <= 1:
        return [worker(task) for task in tasks]
    import multiprocessing
    with multiprocessing.get_context().Pool(
            processes=min(jobs, len(tasks))) as pool:
        return pool.map(worker, tasks)


def _warm_runtime() -> None:
    """Pay one-time lazy-initialisation costs outside the timed regions.

    ``np.unique`` imports ``numpy.ma`` on its first call,
    ``np.random`` loads on first attribute access, and the kernel
    compiler module loads on first use; each would otherwise land
    inside whichever scenario happens to run first and distort its
    wall clock.  Idempotent and ~free once warm.
    """
    import numpy as np
    np.unique(np.empty(0, dtype=np.int64))
    np.random.default_rng(0)
    from .engine import kernels  # noqa: F401
    # Query codegen: generating + exec-ing a throwaway kernel pays the
    # bytecode compiler, hashlib, and regex machinery once, without
    # touching the counters or the persistent kernel cache.
    from .engine import codegen
    from .engine.operators import FilterOp, ProjectOp
    from .relational.expressions import col, lit
    from .relational.schema import DataType, Field, Schema
    schema = Schema([Field("w", DataType.INT64)])
    parts = [FilterOp(col("w") > lit(0)), ProjectOp(["w"])]
    codegen._exec_body("warmup", codegen.generate_source(parts, schema))


def _warm_catalogs(tasks: list[tuple[str, int]], jobs: int) -> None:
    """Fill the catalog cache in the parent before fanning out.

    Forked workers inherit the cache copy-on-write, so every job
    count pays the (dominant) table-generation cost exactly once and
    per-scenario ``wall_time_s`` stays comparable across ``--jobs``.
    On spawn platforms this is merely a no-op warm-up for the parent.
    """
    if jobs > 1:
        for rows in sorted({rows for _name, rows in tasks}):
            _make_catalog(rows)


def run_smoke(rows: int = DEFAULT_ROWS,
              only: Optional[list[str]] = None,
              echo: Callable[[str], None] = lambda _line: None,
              jobs: int = 1) -> list[dict]:
    """Run the smoke scenarios; returns one record per scenario.

    ``jobs`` > 1 fans scenarios out across worker processes.  Each
    scenario owns its simulator and fabric, so the records (simulated
    times, checksums, ledgers) are identical at any job count; only
    harness wall time changes.
    """
    names = only if only is not None else sorted(SMOKE_SCENARIOS)
    unknown = [n for n in names if n not in SMOKE_SCENARIOS]
    if unknown:
        raise ValueError(f"unknown smoke scenarios {unknown} "
                         f"(have {sorted(SMOKE_SCENARIOS)})")
    tasks = [(name, rows) for name in names]
    _warm_runtime()
    _warm_catalogs(tasks, jobs)
    records = _map_tasks(_run_smoke_task, tasks, jobs)
    for record in records:
        echo(f"  smoke {record['name']:18} "
             f"sim {record['sim_time_s']:.6f}s  "
             f"wall {record['wall_time_s']:.2f}s  "
             f"checksum {record['checksum'][:12]}")
    return records


# ---------------------------------------------------------------------------
# Scale tier (the ``scale`` section; ``repro bench --scale``)
# ---------------------------------------------------------------------------

def _scale_queries() -> dict[str, tuple[Query, int]]:
    """The scale-tier scenarios: name -> (query, base rows).

    F2/F4/F6-shaped queries (pushdown filter+project, scatter join,
    full filter+join+aggregate pipeline) at 100k–1M rows with
    :data:`SCALE_CHUNK`-row chunks.  Each runs through
    :func:`_run_query_scenario`, so both engines execute it, the
    checksums must agree, and the simulator must drain.
    """
    f2_pushdown = (
        Query.scan("lineitem")
        .filter(col("l_quantity") > 45)
        .project(["l_orderkey", "l_extendedprice"]))
    f4_join = (
        Query.scan("lineitem")
        .filter(col("l_quantity") > 10)
        .join(Query.scan("orders").filter(col("o_priority") <= 2),
              "l_orderkey", "o_orderkey")
        .aggregate(["o_priority"],
                   [AggSpec("sum", "l_extendedprice", "rev")]))
    f6_pipeline = (
        Query.scan("lineitem")
        .filter(col("l_shipdate").between(8500, 8800))
        .join(Query.scan("orders").filter(col("o_priority") <= 2),
              "l_orderkey", "o_orderkey")
        .aggregate(["o_priority"],
                   [AggSpec("sum", "l_extendedprice", "rev"),
                    AggSpec("count", alias="n")]))
    return {
        "scale_f2_pushdown_100k": (f2_pushdown, 100_000),
        "scale_f4_join_300k": (f4_join, 300_000),
        "scale_f6_pipeline_1m": (f6_pipeline, 1_000_000),
    }


def _run_scale_task(name: str) -> dict:
    """One scale scenario by name — picklable for --jobs."""
    query, rows = _scale_queries()[name]
    return _run_query_scenario(name, query, rows, chunk=SCALE_CHUNK)


def run_scale(only: Optional[list[str]] = None,
              echo: Callable[[str], None] = lambda _line: None,
              jobs: int = 1) -> list[dict]:
    """Run the scale tier; one smoke-shaped record per scenario.

    The records carry ``chunk_rows`` so ``--compare`` baselines pin
    the chunking; wall time per *simulated* second is the headline —
    the event count grows with chunks, not rows, so the 1M-row run
    should not cost 167x the 6k-row smoke scenarios.
    """
    scenarios = _scale_queries()
    names = only if only is not None else sorted(scenarios)
    unknown = [n for n in names if n not in scenarios]
    if unknown:
        raise ValueError(f"unknown scale scenarios {unknown} "
                         f"(have {sorted(scenarios)})")
    _warm_runtime()
    if jobs > 1:  # parent-side warm-up; workers inherit via COW fork
        for name in names:
            _make_catalog(scenarios[name][1], SCALE_CHUNK)
    records = _map_tasks(_run_scale_task, list(names), jobs)
    for record in records:
        echo(f"  scale {record['name']:24} "
             f"rows {record['rows']:>9,}  "
             f"sim {record['sim_time_s']:.6f}s  "
             f"wall {record['wall_time_s']:.2f}s  "
             f"checksum {record['checksum'][:12]}")
    return records


# ---------------------------------------------------------------------------
# Serving scenarios (the ``serving`` section of repro.bench/v3)
# ---------------------------------------------------------------------------

SERVE_BENCH_QUERIES = 200
"""Queries per serving scenario in bench runs.

Small enough for CI, large enough that the latency percentiles are
stable — the simulator is deterministic, so the same request count
reproduces the same p50/p99/p999 bit for bit.
"""


def _run_serve_task(task: tuple[str, Optional[int], Optional[int]]
                    ) -> dict:
    """One (scenario, rows, queries) serving run — picklable."""
    name, rows, queries = task
    from .serve import run_scenario
    record = run_scenario(name, rows=rows, queries=queries)
    # The per-query record dicts, completion order and full telemetry
    # payload are bulky and fully re-derivable from a `repro serve`
    # run; the bench report keeps the aggregates, the checksum, and
    # the telemetry *digest* (bit-reproducible, so `--compare` can
    # gate on it without carrying the whole payload).
    record.pop("records", None)
    record.pop("completion_order", None)
    telemetry = record.pop("telemetry", None)
    if telemetry is not None:
        record["telemetry_windows"] = telemetry["windows"]
        record["telemetry_alerts"] = len(telemetry["alerts"])
        record["telemetry_exemplars"] = len(telemetry["exemplars"])
    observatory = record.pop("observatory", None)
    if observatory is not None:
        record["observatory_windows"] = observatory["windows"]
        record["observatory_partial"] = observatory["partial"]
    return record


def run_serving(names: Optional[list[str]] = None,
                rows: Optional[int] = None,
                queries: Optional[int] = SERVE_BENCH_QUERIES,
                echo: Callable[[str], None] = lambda _line: None,
                jobs: int = 1) -> list[dict]:
    """Run the named serving scenarios; one v3 record each.

    Every run verifies itself (zero accounting violations, zero
    telemetry violations — alert streams reconstructible, exemplar
    attributions exact — and checksums bit-identical to standalone
    oracle runs) before reporting.
    """
    from .serve import SERVE_SCENARIOS
    names = names if names is not None else sorted(SERVE_SCENARIOS)
    unknown = [n for n in names if n not in SERVE_SCENARIOS]
    if unknown:
        raise ValueError(f"unknown serve scenarios {unknown} "
                         f"(have {sorted(SERVE_SCENARIOS)})")
    tasks = [(name, rows, queries) for name in names]
    records = _map_tasks(_run_serve_task, tasks, jobs)
    for record in records:
        echo(f"  serve {record['name']:18} "
             f"q {record['queries']:5d}  "
             f"p50 {record['latency']['p50_s']:.6f}s  "
             f"p99 {record['latency']['p99_s']:.6f}s  "
             f"goodput {record['goodput_qps']:8.1f}/s  "
             f"shed {record['shed']:4d}  "
             f"alerts {record.get('telemetry_alerts', 0):3d}  "
             f"checksum {record['checksum'][:12]}")
    return records


# ---------------------------------------------------------------------------
# Experiment scripts (benchmarks/bench_*.py)
# ---------------------------------------------------------------------------

def default_bench_dir() -> str:
    """Locate the ``benchmarks/`` directory.

    Priority: ``$REPRO_BENCH_DIR``, then ``benchmarks/`` under the
    current directory, then ``benchmarks/`` next to the repo's
    ``src/`` parent (source checkouts).
    """
    env = os.environ.get("REPRO_BENCH_DIR")
    if env:
        return env
    cwd_dir = os.path.join(os.getcwd(), "benchmarks")
    if os.path.isdir(cwd_dir):
        return cwd_dir
    here = os.path.dirname(os.path.abspath(__file__))
    repo_dir = os.path.normpath(
        os.path.join(here, os.pardir, os.pardir, "benchmarks"))
    return repo_dir


def experiment_index(bench_dir: Optional[str] = None
                     ) -> dict[str, str]:
    """Map experiment id (lowercase) -> bench script path."""
    from .cli import EXPERIMENTS
    bench_dir = bench_dir or default_bench_dir()
    return {exp_id.lower(): os.path.join(bench_dir, script)
            for exp_id, _desc, script in EXPERIMENTS}


def _sanitize(value, depth: int = 0):
    """Coerce a run_<id>() return value to JSON-safe structures."""
    if depth > 6:
        return repr(value)
    if isinstance(value, dict):
        return {str(k): _sanitize(v, depth + 1)
                for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v, depth + 1) for v in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value if value == value else None
    try:  # numpy scalars
        return _sanitize(value.item(), depth + 1)
    except AttributeError:
        return repr(value)


def run_experiment(exp_id: str, bench_dir: Optional[str] = None
                   ) -> dict:
    """Import one bench script and call its ``run_<id>()`` entry."""
    exp_id = exp_id.lower()
    index = experiment_index(bench_dir)
    if exp_id not in index:
        raise ValueError(f"unknown experiment {exp_id!r} "
                         f"(have {sorted(index)})")
    path = index[exp_id]
    bench_home = os.path.dirname(path)
    module_name = os.path.splitext(os.path.basename(path))[0]
    added = bench_home not in sys.path
    if added:  # bench scripts import their sibling ``common``
        sys.path.insert(0, bench_home)
    try:
        spec = importlib.util.spec_from_file_location(module_name, path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        entry = getattr(module, f"run_{exp_id}")
        started = time.perf_counter()
        rows = entry()
        wall = time.perf_counter() - started
    finally:
        if added:
            sys.path.remove(bench_home)
    return {
        "name": exp_id,
        "script": os.path.basename(path),
        "wall_time_s": wall,
        "rows": _sanitize(rows),
    }


def _run_experiment_task(task: tuple[str, Optional[str]]) -> dict:
    """One (experiment id, bench_dir) unit of work for --jobs."""
    exp_id, bench_dir = task
    return run_experiment(exp_id, bench_dir)


def run_experiments(exp_ids: list[str],
                    bench_dir: Optional[str] = None,
                    echo: Callable[[str], None] = lambda _line: None,
                    jobs: int = 1) -> list[dict]:
    records = _map_tasks(_run_experiment_task,
                         [(exp_id, bench_dir) for exp_id in exp_ids],
                         jobs)
    for record in records:
        echo(f"  exp {record['name']:6} ({record['script']})  "
             f"wall {record['wall_time_s']:.2f}s")
    return records


# ---------------------------------------------------------------------------
# Baseline comparison (the regression gate)
# ---------------------------------------------------------------------------

def _rel_close(baseline: float, fresh: float,
               tolerance: float) -> bool:
    if baseline == fresh:
        return True
    scale = max(abs(baseline), abs(fresh))
    return abs(fresh - baseline) <= tolerance * scale


def compare_reports(baseline: dict, fresh: list[dict],
                    tolerance: float = DEFAULT_TOLERANCE,
                    fresh_serving: Optional[list[dict]] = None,
                    fresh_scale: Optional[list[dict]] = None
                    ) -> list[str]:
    """Diff fresh smoke records against a baseline report.

    Checksums, row counts, and engine agreement must match exactly;
    ``sim_time_s``, per-segment ``movement_bytes``, and per-link byte
    totals must be within ``tolerance`` (relative).  Only quantities
    present in the baseline are compared, so a v1 baseline gates a v2
    run.  When the baseline carries a v3 ``serving`` section,
    ``fresh_serving`` is diffed too: checksums and the shed /
    SLO-violation / query counts must match exactly (the simulator is
    deterministic), latency percentiles and goodput within
    ``tolerance``.  A baseline ``scale`` section gates
    ``fresh_scale`` with the smoke rules (the records share their
    shape).  Returns human-readable violations (empty = pass).
    """
    violations: list[str] = []
    violations.extend(_compare_serving(baseline, fresh_serving or [],
                                       tolerance))
    violations.extend(_compare_query_records(
        baseline.get("smoke", []), fresh, tolerance, label=""))
    violations.extend(_compare_query_records(
        baseline.get("scale", []), fresh_scale or [], tolerance,
        label="scale"))
    return violations


def _compare_query_records(base_records: list[dict],
                           fresh: list[dict], tolerance: float,
                           label: str) -> list[str]:
    """Smoke-shaped record diff (shared by smoke and scale tiers)."""
    violations: list[str] = []
    by_name = {rec["name"]: rec for rec in fresh}
    for base in base_records:
        name = base["name"]
        if label:
            name = f"{label}[{base['name']}]"
        rec = by_name.get(base["name"])
        if rec is None:
            violations.append(f"{name}: scenario missing from fresh run")
            continue
        if base.get("checksum") != rec.get("checksum"):
            violations.append(
                f"{name}: checksum changed "
                f"({base.get('checksum', '')[:12]}... -> "
                f"{rec.get('checksum', '')[:12]}...)")
        if base.get("rows") != rec.get("rows"):
            violations.append(f"{name}: rows {base.get('rows')} -> "
                              f"{rec.get('rows')}")
        if base.get("chunk_rows") not in (None, rec.get("chunk_rows")):
            violations.append(
                f"{name}: chunk_rows {base['chunk_rows']} -> "
                f"{rec.get('chunk_rows')} (must match exactly)")
        if base.get("agree", True) and not rec.get("agree", False):
            violations.append(f"{name}: engines no longer agree")
        if "sim_time_s" in base and not _rel_close(
                base["sim_time_s"], rec.get("sim_time_s", 0.0),
                tolerance):
            violations.append(
                f"{name}: sim_time_s {base['sim_time_s']:.6g} -> "
                f"{rec.get('sim_time_s', 0.0):.6g} "
                f"(tolerance {tolerance:.1%})")
        for seg, nbytes in base.get("movement_bytes", {}).items():
            got = rec.get("movement_bytes", {}).get(seg, 0.0)
            if not _rel_close(nbytes, got, tolerance):
                violations.append(
                    f"{name}: movement_bytes[{seg}] {nbytes:.6g} -> "
                    f"{got:.6g} (tolerance {tolerance:.1%})")
        for link, entry in base.get("links", {}).items():
            got = rec.get("links", {}).get(link, {}).get("bytes", 0.0)
            if not _rel_close(entry.get("bytes", 0.0), got, tolerance):
                violations.append(
                    f"{name}: links[{link}].bytes "
                    f"{entry.get('bytes', 0.0):.6g} -> {got:.6g} "
                    f"(tolerance {tolerance:.1%})")
    return violations


# telemetry_digest / observatory_digest are the strongest of these:
# byte-identical derived payloads (windows, sketches, alerts,
# exemplars; saturation series, bound tags, regret scores) for the
# same seed, regardless of --jobs or host.  Keys absent from an older
# baseline are skipped, so adding one here stays backward-compatible.
_SERVE_EXACT_KEYS = ("queries", "completed", "shed",
                     "slo_violations", "telemetry_digest",
                     "telemetry_windows", "telemetry_alerts",
                     "telemetry_exemplars", "observatory_digest",
                     "observatory_windows", "observatory_partial")

_SERVE_TOLERANCE_KEYS = ("p50_s", "p99_s", "p999_s")


def _compare_serving(baseline: dict, fresh: list[dict],
                     tolerance: float) -> list[str]:
    """Serving-section violations (helper of :func:`compare_reports`)."""
    violations: list[str] = []
    by_name = {rec["name"]: rec for rec in fresh}
    for base in baseline.get("serving", []):
        name = base["name"]
        rec = by_name.get(name)
        if rec is None:
            violations.append(
                f"serving[{name}]: scenario missing from fresh run")
            continue
        if base.get("checksum") != rec.get("checksum"):
            violations.append(
                f"serving[{name}]: checksum changed "
                f"({base.get('checksum', '')[:12]}... -> "
                f"{rec.get('checksum', '')[:12]}...)")
        for key in _SERVE_EXACT_KEYS:
            if key in base and base[key] != rec.get(key):
                violations.append(
                    f"serving[{name}]: {key} {base[key]} -> "
                    f"{rec.get(key)} (must match exactly)")
        base_latency = base.get("latency", {})
        fresh_latency = rec.get("latency", {})
        for key in _SERVE_TOLERANCE_KEYS:
            if key in base_latency and not _rel_close(
                    base_latency[key], fresh_latency.get(key, 0.0),
                    tolerance):
                violations.append(
                    f"serving[{name}]: latency.{key} "
                    f"{base_latency[key]:.6g} -> "
                    f"{fresh_latency.get(key, 0.0):.6g} "
                    f"(tolerance {tolerance:.1%})")
        if "goodput_qps" in base and not _rel_close(
                base["goodput_qps"], rec.get("goodput_qps", 0.0),
                tolerance):
            violations.append(
                f"serving[{name}]: goodput_qps "
                f"{base['goodput_qps']:.6g} -> "
                f"{rec.get('goodput_qps', 0.0):.6g} "
                f"(tolerance {tolerance:.1%})")
    return violations


def run_compare(baseline_path: str,
                tolerance: float = DEFAULT_TOLERANCE,
                echo: Callable[[str], None] = lambda _line: None,
                jobs: int = 1) -> int:
    """Re-run the baseline's scenarios and diff; 0 = pass, 1 = fail.

    Besides the gating checks (checksums/rows exact, times and bytes
    within ``tolerance``), prints the wall-time delta against the
    baseline — informational only, since wall clocks differ across
    machines.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    validate_report(baseline)
    echo(f"comparing against {baseline_path} "
         f"(schema {baseline.get('schema')}, "
         f"tolerance {tolerance:.1%}):")
    tasks = [(base["name"], base.get("rows", DEFAULT_ROWS))
             for base in baseline.get("smoke", [])
             if base["name"] in SMOKE_SCENARIOS]
    # Scenarios not in SMOKE_SCENARIOS are reported as missing by
    # compare_reports.
    _warm_runtime()
    _warm_catalogs(tasks, jobs)
    fresh = _map_tasks(_run_smoke_task, tasks, jobs)
    for record in fresh:
        echo(f"  rerun {record['name']:18} "
             f"sim {record['sim_time_s']:.6f}s  "
             f"wall {record['wall_time_s']:.2f}s  "
             f"checksum {record['checksum'][:12]}")
    fresh_serving: list[dict] = []
    serve_base = baseline.get("serving", [])
    if serve_base:
        from .serve import SERVE_SCENARIOS
        serve_tasks = [
            (base["name"], base.get("rows"),
             base.get("requested_queries"))
            for base in serve_base
            if base["name"] in SERVE_SCENARIOS]
        fresh_serving = _map_tasks(_run_serve_task, serve_tasks, jobs)
        for record in fresh_serving:
            echo(f"  rerun serve {record['name']:18} "
                 f"p50 {record['latency']['p50_s']:.6f}s  "
                 f"p99 {record['latency']['p99_s']:.6f}s  "
                 f"checksum {record['checksum'][:12]}")
    fresh_scale: list[dict] = []
    scale_base = baseline.get("scale", [])
    if scale_base:
        scale_names = [base["name"] for base in scale_base
                       if base["name"] in _scale_queries()]
        fresh_scale = _map_tasks(_run_scale_task, scale_names, jobs)
        for record in fresh_scale:
            echo(f"  rerun scale {record['name']:24} "
                 f"sim {record['sim_time_s']:.6f}s  "
                 f"wall {record['wall_time_s']:.2f}s  "
                 f"checksum {record['checksum'][:12]}")
    _echo_wall_delta(baseline, fresh, echo)
    _echo_wall_trend(baseline_path, echo)
    violations = compare_reports(baseline, fresh, tolerance,
                                 fresh_serving=fresh_serving,
                                 fresh_scale=fresh_scale)
    if violations:
        for line in violations:
            print(f"REGRESSION: {line}", file=sys.stderr)
        return 1
    echo(f"baseline comparison passed "
         f"({len(baseline.get('smoke', []))} smoke + "
         f"{len(serve_base)} serving + "
         f"{len(scale_base)} scale scenarios)")
    return 0


def _echo_wall_delta(baseline: dict, fresh: list[dict],
                     echo: Callable[[str], None]) -> None:
    """Print the wall-time trajectory vs. the baseline (non-gating).

    Degrades explicitly instead of confusingly: a baseline without
    usable wall times (or an empty fresh run) gets a clear note, and
    pre-``harness_wall_s`` baselines are called out rather than
    silently compared as if the harness figures existed.
    """
    base_wall = sum(r.get("wall_time_s", 0.0)
                    for r in baseline.get("smoke", []))
    fresh_wall = sum(r.get("wall_time_s", 0.0) for r in fresh)
    if base_wall <= 0 or fresh_wall <= 0:
        echo("wall time (informational): baseline carries no "
             "per-scenario wall times; skipping the delta")
        return
    ratio = base_wall / fresh_wall
    direction = "speedup" if ratio >= 1.0 else "slowdown"
    echo(f"wall time (informational): baseline {base_wall:.3f}s -> "
         f"fresh {fresh_wall:.3f}s  ({ratio:.2f}x {direction})")
    if "harness_wall_s" not in baseline.get("totals", {}):
        echo("note: baseline predates totals.harness_wall_s "
             "(pre-parallel-harness report); the delta above sums "
             "per-scenario wall times only")


def _echo_wall_trend(baseline_path: str,
                     echo: Callable[[str], None]) -> None:
    """Wall-clock trajectory across every sibling ``BENCH_*.json``.

    Non-gating: wall clocks differ across machines, so this is a
    chronology (by each report's ``created`` stamp) of the
    checked-in baselines next to the one being compared against —
    enough to eyeball whether the harness has been getting faster or
    slower across PRs without opening each file.
    """
    import glob
    directory = os.path.dirname(os.path.abspath(baseline_path))
    entries = []
    for path in sorted(glob.glob(os.path.join(directory,
                                              "BENCH_*.json"))):
        try:
            with open(path) as handle:
                report = json.load(handle)
        except (OSError, ValueError):
            continue  # unreadable sibling: not this trend's problem
        totals = report.get("totals", {})
        entries.append((report.get("created", ""),
                        report.get("tag", os.path.basename(path)),
                        totals.get("harness_wall_s"),
                        totals.get("wall_time_s"),
                        totals.get("jobs", 1)))
    if len(entries) < 2:
        return
    entries.sort()  # ISO-8601 'created' stamps sort chronologically
    echo(f"wall trend across {len(entries)} checked-in baselines "
         "(informational, machines differ):")
    for created, tag, harness, wall, jobs in entries:
        harness_s = (f"{harness:8.3f}s" if isinstance(harness,
                                                      (int, float))
                     else "       -")
        wall_s = (f"{wall:8.3f}s" if isinstance(wall, (int, float))
                  else "       -")
        echo(f"  {tag:10} {created or '<unstamped>':25} "
             f"harness {harness_s}  wall {wall_s}  jobs {jobs}")


# ---------------------------------------------------------------------------
# Profiling (--profile)
# ---------------------------------------------------------------------------

def profile_call(fn: Callable[[], object], top: int = 25
                 ) -> tuple[object, dict]:
    """Run ``fn`` under cProfile; return (result, profile section).

    The section lists the ``top`` functions by cumulative time plus
    the grand totals — enough to spot the hot path from the JSON
    artifact without shipping the raw .prof file.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    result = profiler.runcall(fn)
    stats = pstats.Stats(profiler)
    entries = []
    for (filename, line, func), (cc, nc, tt, ct, _callers) in sorted(
            stats.stats.items(), key=lambda item: -item[1][3])[:top]:
        entries.append({
            "function": f"{os.path.basename(filename)}:{line}({func})",
            "ncalls": nc,
            "primitive_calls": cc,
            "tottime_s": round(tt, 6),
            "cumtime_s": round(ct, 6),
        })
    return result, {
        "top_by_cumtime": entries,
        "total_calls": stats.total_calls,
        "total_tt_s": round(stats.total_tt, 6),
    }


# ---------------------------------------------------------------------------
# Report + CLI
# ---------------------------------------------------------------------------

def write_report(report: dict, out_dir: str) -> str:
    """Validate and write ``BENCH_<tag>.json``; returns the path."""
    validate_report(report)
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{report['tag']}.json")
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def run_cli(args) -> int:
    echo = (lambda _line: None) if args.quiet else print
    jobs = max(1, getattr(args, "jobs", 1) or 1)
    # Exempt interpreter/startup objects from cyclic GC for the life
    # of this (short-lived) process: otherwise a threshold-triggered
    # full collection lands inside an arbitrary scenario and smears
    # ~10ms of pause onto its wall clock.  CLI only — library callers
    # (tests import run_smoke directly) keep normal GC behaviour.
    import gc
    _warm_runtime()
    gc.collect()
    gc.freeze()
    if getattr(args, "compare", None):
        return run_compare(args.compare,
                           tolerance=getattr(args, "tolerance",
                                             DEFAULT_TOLERANCE),
                           echo=echo,
                           jobs=jobs)
    if args.list:
        print("smoke scenarios:")
        for name in sorted(SMOKE_SCENARIOS):
            print(f"  {name}")
        from .serve import SERVE_SCENARIOS
        print("serving scenarios (--serve):")
        for name in sorted(SERVE_SCENARIOS):
            print(f"  {name}")
        print("scale scenarios (--scale):")
        for name, (_query, rows) in sorted(_scale_queries().items()):
            print(f"  {name}  ({rows:,} rows, "
                  f"chunk {SCALE_CHUNK:,})")
        print("experiments:")
        for exp_id, path in sorted(experiment_index(args.bench_dir
                                                    ).items()):
            print(f"  {exp_id:6} {os.path.basename(path)}")
        return 0

    exp_ids: list[str] = []
    if args.exp:
        if args.exp.strip().lower() == "all":
            exp_ids = sorted(experiment_index(args.bench_dir))
        else:
            exp_ids = [e.strip().lower()
                       for e in args.exp.split(",") if e.strip()]
    run_smoke_set = args.smoke or not exp_ids

    profiling = getattr(args, "profile", False)
    if profiling and jobs > 1:
        echo("--profile runs in-process; ignoring --jobs")
        jobs = 1

    serve_set = getattr(args, "serve", False)

    def run_all() -> tuple[list[dict], list[dict], list[dict]]:
        smoke: list[dict] = []
        if run_smoke_set:
            echo(f"running smoke scenarios (rows={args.rows}"
                 + (f", jobs={jobs}" if jobs > 1 else "") + "):")
            smoke = run_smoke(rows=args.rows, echo=echo, jobs=jobs)
        serving: list[dict] = []
        if serve_set:
            echo(f"running serving scenarios "
                 f"(queries={args.serve_queries}):")
            serving = run_serving(queries=args.serve_queries,
                                  echo=echo, jobs=jobs)
        experiments: list[dict] = []
        if exp_ids:
            echo(f"running experiments: {', '.join(exp_ids)}")
            experiments = run_experiments(exp_ids, args.bench_dir,
                                          echo=echo, jobs=jobs)
        return smoke, serving, experiments

    harness_started = time.perf_counter()
    profile: Optional[dict] = None
    if profiling:
        (smoke, serving, experiments), profile = profile_call(
            run_all, top=getattr(args, "profile_top", 25))
        for entry in profile["top_by_cumtime"][:5]:
            echo(f"  profile {entry['cumtime_s']:8.3f}s cum  "
                 f"{entry['function']}")
    else:
        smoke, serving, experiments = run_all()
    harness_wall = time.perf_counter() - harness_started

    # The scale tier runs outside the harness window on purpose:
    # totals.harness_wall_s is the cross-commit smoke/serve figure,
    # and folding 1M-row runs into it would break comparability with
    # every baseline recorded before the tier existed.  It gets its
    # own totals.scale_wall_s instead.
    scale: list[dict] = []
    extra_totals = {"harness_wall_s": harness_wall, "jobs": jobs}
    if getattr(args, "scale", False):
        echo(f"running scale scenarios (chunk={SCALE_CHUNK}"
             + (f", jobs={jobs}" if jobs > 1 else "") + "):")
        scale_started = time.perf_counter()
        scale = run_scale(echo=echo, jobs=jobs)
        extra_totals["scale_wall_s"] = (time.perf_counter()
                                        - scale_started)

    from datetime import datetime, timezone
    report = make_report(
        args.tag, smoke, experiments,
        created=datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        extra_totals=extra_totals,
        profile=profile,
        serving=serving,
        scale=scale)
    path = write_report(report, args.out)
    echo(f"report: {path}  "
         f"({report['totals']['benchmarks']} benchmarks, "
         f"wall {report['totals']['wall_time_s']:.2f}s, "
         f"harness {harness_wall:.2f}s)")
    return 0


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--smoke", action="store_true",
                        help="run the instrumented smoke scenarios "
                             "(default when no --exp is given)")
    parser.add_argument("--exp", default="",
                        help="comma-separated experiment ids "
                             "(f1..f6,c1..c8,e1..e6) or 'all'")
    parser.add_argument("--serve", action="store_true",
                        help="also run the multi-tenant serving "
                             "scenarios (v3 'serving' section)")
    parser.add_argument("--serve-queries", type=int,
                        default=SERVE_BENCH_QUERIES,
                        dest="serve_queries", metavar="N",
                        help="requested queries per serving scenario")
    parser.add_argument("--scale", action="store_true",
                        help="also run the 100k-1M row scale tier "
                             "(f2/f4/f6-shaped queries, large "
                             "chunks); timed separately as "
                             "totals.scale_wall_s")
    parser.add_argument("--tag", default="local",
                        help="report tag (file is BENCH_<tag>.json)")
    parser.add_argument("--out", default=".",
                        help="directory the report is written to")
    parser.add_argument("--rows", type=int, default=DEFAULT_ROWS,
                        help="base table rows for smoke scenarios")
    parser.add_argument("--bench-dir", default=None,
                        help="override the benchmarks/ directory")
    parser.add_argument("--compare", default=None, metavar="BASELINE",
                        help="re-run a baseline report's scenarios and "
                             "diff (non-zero exit on regression)")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="relative tolerance for time/byte diffs "
                             "in --compare (checksums stay exact)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run scenarios/experiments across N "
                             "worker processes (results are identical "
                             "at any job count)")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and embed the top "
                             "functions by cumulative time in the "
                             "report (forces in-process execution)")
    parser.add_argument("--profile-top", type=int, default=25,
                        metavar="N", dest="profile_top",
                        help="number of functions kept by --profile")
    parser.add_argument("--list", action="store_true",
                        help="list scenarios and experiments, then exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress output")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="machine-readable benchmark harness")
    add_bench_arguments(parser)
    return run_cli(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
