"""Placement enumeration: the expanded plan space of §1 and §3.3.

"Query optimizers will have to consider many more plan options to
include the alternatives for offloading of operations along the data
path."  This module enumerates those alternatives: for every
streamable operator, every data-path site (at or after its input's
site) whose device supports the operator's kind; for every aggregate,
the possible staging chains; plus the CPU-only fallback the scheduler
needs as a variant (§7.3).

Monotonicity prunes the space: data flows storage → CPU and never
backward, so site indices must be nondecreasing from a node's child
to the node.  The product is capped (``max_placements``) to keep
enumeration predictable on deep plans.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from ..engine.logical import (
    Aggregate,
    Filter,
    Join,
    Limit,
    Map,
    PlanNode,
    Project,
    Scan,
    Sort,
)
from ..engine.placement import Placement, _node_kind, data_path_sites
from ..hardware.device import OpKind
from ..hardware.presets import HeterogeneousFabric

__all__ = ["enumerate_placements"]


def _site_options(fabric: HeterogeneousFabric, path: list[str],
                  kind: str, min_index: int) -> list[int]:
    """Path indices at/after ``min_index`` whose device supports kind."""
    return [i for i in range(min_index, len(path))
            if fabric.site_device(path[i]).supports(kind)]


def _aggregate_chains(fabric: HeterogeneousFabric, path: list[str],
                      node: Aggregate, min_index: int,
                      cpu: str, nic_site: str) -> list[list[str]]:
    """Candidate staging chains for one aggregate node."""
    supporting = [path[i] for i in
                  _site_options(fabric, path, OpKind.AGGREGATE, min_index)]
    finals = [cpu]
    if not node.group_by and fabric.has_site(nic_site):
        finals.append(nic_site)   # §4.4: scalar aggregates end on the NIC
    chains: list[list[str]] = []
    for final in finals:
        # CPU-only chain.
        chains.append([cpu, final] if final != cpu else [cpu, cpu])
        if supporting:
            first = supporting[0]
            # Partial at the earliest site, straight to final.
            chains.append([first, final])
            # Fully staged: every supporting site merges (§4.4).
            if len(supporting) > 1:
                chains.append(supporting + [final])
    # Deduplicate, preserving order.
    seen, unique = set(), []
    for chain in chains:
        key = tuple(chain)
        if key not in seen:
            seen.add(key)
            unique.append(chain)
    return unique


def enumerate_placements(plan: PlanNode, fabric: HeterogeneousFabric,
                         node: int = 0,
                         max_placements: int = 256) -> Iterator[Placement]:
    """Yield candidate placements for ``plan`` on ``fabric``."""
    path = data_path_sites(fabric, node)
    cpu = fabric.cpu_site(node)
    nic_site = f"compute{node}.nic"
    cpu_index = len(path) - 1 if path else 0

    nodes = list(plan.walk())
    # Per-node option lists.  Each option is (chain, reached_index).
    options: dict[int, list[tuple[list[str], int]]] = {}
    for n in nodes:
        if isinstance(n, Scan):
            options[n.node_id] = [([path[0] if path else cpu], 0)]
        elif isinstance(n, (Filter, Project, Map)):
            kind = _node_kind(n)
            opts = [([path[i]], i) for i in
                    _site_options(fabric, path, kind, 0)]
            if not opts:
                opts = [([cpu], cpu_index)]
            options[n.node_id] = opts
        elif isinstance(n, Aggregate):
            chains = _aggregate_chains(fabric, path, n, 0, cpu, nic_site)
            options[n.node_id] = [(c, cpu_index) for c in chains]
        elif isinstance(n, (Join, Sort, Limit)):
            options[n.node_id] = [([cpu], cpu_index)]
        else:
            options[n.node_id] = [([cpu], cpu_index)]

    # Multi-node fabrics add the Figure 4 alternative: the same
    # logical join executed n-ways via NIC scattering.
    has_join = any(isinstance(n, Join) for n in nodes)
    n_nodes = len(getattr(fabric, "compute", []))
    partition_options = [1]
    if has_join and n_nodes > 1:
        partition_options.append(n_nodes)

    produced = 0
    ids = [n.node_id for n in nodes]
    for combo in itertools.product(*(options[i] for i in ids)):
        assignment = dict(zip(ids, combo))
        if not _monotone(plan, assignment, path):
            continue
        for partitions in partition_options:
            placement = Placement(
                sites={i: list(chain)
                       for i, (chain, _idx) in assignment.items()},
                result_site=cpu, partitions=partitions,
                name="enumerated")
            yield placement
            produced += 1
            if produced >= max_placements:
                return


def _index_of(chain: list[str], path: list[str]) -> int:
    """Path index reached by the end of a chain (CPU if off-path)."""
    last = chain[-1]
    return path.index(last) if last in path else len(path) - 1


def _monotone(plan: PlanNode,
              assignment: dict[int, tuple[list[str], int]],
              path: list[str]) -> bool:
    """Data never flows backward along the path."""
    for node in plan.walk():
        chain, _reach = assignment[node.node_id]
        my_index = (path.index(chain[0]) if chain[0] in path
                    else len(path) - 1)
        for child in node.children:
            child_chain, _r = assignment[child.node_id]
            if _index_of(child_chain, path) > my_index:
                return False
    return True
