"""The movement-aware optimizer: enumerate, cost, rank.

Ties :mod:`repro.optimizer.enumeration` to
:mod:`repro.optimizer.cost`: every candidate placement is costed and
the best by bottleneck makespan (movement-dominated by construction)
wins.  ``plan_variants`` returns a small *diverse* set — the data-path
alternatives §7.3 says every plan should carry so the scheduler can
pick one at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..engine.logical import PlanNode, Query
from ..engine.placement import Placement, cpu_only
from ..hardware.presets import HeterogeneousFabric
from ..relational.catalog import Catalog
from .cost import CostModel, PlanCost
from .enumeration import enumerate_placements

__all__ = ["Optimizer", "RankedPlacement"]


@dataclass
class RankedPlacement:
    """A placement with its predicted cost."""

    placement: Placement
    cost: PlanCost

    @property
    def score(self) -> float:
        return self.cost.bottleneck_time


class Optimizer:
    """Ranks offloading placements by predicted movement/makespan."""

    def __init__(self, fabric: HeterogeneousFabric, catalog: Catalog,
                 cardinalities: Optional[dict[int, float]] = None,
                 max_placements: int = 256):
        self.fabric = fabric
        self.catalog = catalog
        self.model = CostModel(fabric, catalog,
                               cardinalities=cardinalities)
        self.max_placements = max_placements

    def _plan_of(self, plan) -> PlanNode:
        return plan.plan if isinstance(plan, Query) else plan

    def rank(self, plan, node: int = 0) -> list[RankedPlacement]:
        """All candidate placements, best (lowest makespan) first."""
        plan = self._plan_of(plan)
        ranked = []
        for placement in enumerate_placements(
                plan, self.fabric, node=node,
                max_placements=self.max_placements):
            try:
                placement.validate(plan, self.fabric)
            except Exception:
                continue
            ranked.append(RankedPlacement(
                placement, self.model.cost(plan, placement)))
        # The CPU-only fallback is always a candidate.
        fallback = cpu_only(plan, self.fabric, node=node)
        ranked.append(RankedPlacement(
            fallback, self.model.cost(plan, fallback)))
        # Makespan first; among equal-makespan plans (a pipeline is
        # often bottlenecked on the scan), prefer less total movement —
        # the datacenter-level efficiency argument of §1.
        ranked.sort(key=lambda r: (r.cost.bottleneck_time,
                                   r.cost.total_bytes))
        return ranked

    def optimize(self, plan, node: int = 0) -> RankedPlacement:
        """The best placement for ``plan``."""
        return self.rank(plan, node=node)[0]

    def plan_variants(self, plan, n: int = 3,
                      node: int = 0) -> list[RankedPlacement]:
        """A diverse variant set for the scheduler (§7.3).

        Always includes the best plan and the CPU-only plan (the two
        endpoints the paper names), padding with the next-best
        placements that differ in their site usage.
        """
        ranked = self.rank(plan, node=node)
        best = ranked[0]
        cpu = next(r for r in ranked
                   if r.placement.name == "cpu-only")
        variants = [best]
        signatures = {self._signature(best.placement)}
        for candidate in ranked[1:]:
            if len(variants) >= max(1, n - 1):
                break
            sig = self._signature(candidate.placement)
            if sig not in signatures and candidate is not cpu:
                variants.append(candidate)
                signatures.add(sig)
        if n >= 2 and self._signature(cpu.placement) not in signatures:
            variants.append(cpu)
        for index, variant in enumerate(variants):
            if variant.placement.name != "cpu-only":
                variant.placement.name = ("best" if index == 0
                                          else f"alt{index}")
        return variants

    @staticmethod
    def _signature(placement: Placement) -> tuple:
        return (tuple(sorted((k, tuple(v))
                             for k, v in placement.sites.items())),
                placement.partitions)
