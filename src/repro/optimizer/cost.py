"""The data-movement-first cost model (§1, §7.1).

The paper's core optimizer requirement: "consider data movement cost
in a disaggregated setting as a first-class concern when ranking query
plans."  The model therefore predicts, for a (plan, placement) pair:

* the bytes crossing every fabric segment (network, pcie/cxl, membus,
  cache) — from per-node cardinality estimates and the routes between
  consecutive placement sites;
* the busy time of every device — from the same byte counts and the
  devices' per-kind rates (the *same* ``service_time`` the simulator
  charges, so model and simulator cannot drift);
* a bottleneck makespan estimate — pipeline execution is limited by
  its most loaded resource, plus end-to-end latency.

Cardinalities come from catalog statistics by default; exact
cardinalities can be injected (the optimizer's tests do this to check
the model against simulated counters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..engine.logical import (
    Aggregate,
    Join,
    PlanNode,
    Scan,
)
from ..engine.operators import partial_state_schema
from ..engine.placement import Placement, _node_kind
from ..hardware.device import OpKind
from ..hardware.presets import HeterogeneousFabric
from ..relational.catalog import Catalog

__all__ = ["CostModel", "PlanCost"]


@dataclass
class PlanCost:
    """Predicted costs of one placed plan."""

    placement: Placement
    segment_bytes: dict[str, float] = field(default_factory=dict)
    device_time: dict[str, float] = field(default_factory=dict)
    link_time: dict[str, float] = field(default_factory=dict)
    latency: float = 0.0

    @property
    def total_bytes(self) -> float:
        return sum(self.segment_bytes.values())

    @property
    def network_bytes(self) -> float:
        return self.segment_bytes.get("network", 0.0)

    @property
    def bottleneck_time(self) -> float:
        """Pipeline makespan estimate: the most loaded resource."""
        busiest = 0.0
        if self.device_time:
            busiest = max(self.device_time.values())
        if self.link_time:
            busiest = max(busiest, max(self.link_time.values()))
        return busiest + self.latency

    def score(self, bytes_weight: float = 0.0) -> float:
        """Ranking score: makespan, optionally blended with movement."""
        return self.bottleneck_time + bytes_weight * self.total_bytes


class CostModel:
    """Predicts movement and time for (plan, placement) pairs."""

    def __init__(self, fabric: HeterogeneousFabric, catalog: Catalog,
                 cardinalities: Optional[dict[int, float]] = None):
        self.fabric = fabric
        self.catalog = catalog
        self.cardinalities = cardinalities or {}

    # -- cardinalities ---------------------------------------------------

    def rows_out(self, node: PlanNode) -> float:
        """Estimated (or injected exact) output rows of a node."""
        if node.node_id in self.cardinalities:
            return self.cardinalities[node.node_id]
        return node.estimate_rows(self.catalog)

    def bytes_out(self, node: PlanNode) -> float:
        """Estimated output bytes of a node."""
        return (self.rows_out(node)
                * node.output_schema(self.catalog).row_nbytes)

    # -- the model ---------------------------------------------------

    def cost(self, plan: PlanNode, placement: Placement) -> PlanCost:
        """Predict segment bytes, device time, and makespan."""
        out = PlanCost(placement=placement)
        self._visit(plan, placement, out)
        # Final hop: root output to the result site.
        root_site = self._output_site(plan, placement)
        self._charge_move(out, root_site, placement.result_site,
                          self.bytes_out(plan))
        return out

    def _visit(self, node: PlanNode, placement: Placement,
               out: PlanCost) -> None:
        for child in node.children:
            self._visit(child, placement, out)
        if isinstance(node, Scan):
            # Storage read: the medium's time is a device-like cost.
            nbytes = self.bytes_out(node)
            out.device_time["storage.media"] = (
                out.device_time.get("storage.media", 0.0)
                + nbytes / self.fabric.storage.medium.read_bandwidth)
            out.segment_bytes["storage"] = (
                out.segment_bytes.get("storage", 0.0) + nbytes)
            return
        if isinstance(node, Aggregate):
            self._visit_aggregate(node, placement, out)
            return
        if isinstance(node, Join):
            self._visit_join(node, placement, out)
            return
        # Streaming unary operators: move input to the site, do work.
        child = node.children[0]
        site = placement.site(node)
        in_bytes = self.bytes_out(child)
        self._charge_move(out, self._output_site(child, placement),
                          site, in_bytes)
        self._charge_work(out, site, _node_kind(node), in_bytes)

    def _visit_aggregate(self, node: Aggregate, placement: Placement,
                         out: PlanCost) -> None:
        child = node.children[0]
        chain = placement.chain(node)
        in_bytes = self.bytes_out(child)
        in_rows = self.rows_out(child)
        groups = self.rows_out(node)
        state_row = partial_state_schema(
            node.child.output_schema(self.catalog), node.group_by,
            node.aggs).row_nbytes
        # Chunked partials: each chunk emits at most `groups` states.
        chunk_rows = 65536.0
        n_chunks = max(1.0, in_rows / chunk_rows)
        partial_rows = min(in_rows, groups * n_chunks)
        stream = in_bytes
        prev_site = self._output_site(child, placement)
        for index, site in enumerate(chain):
            self._charge_move(out, prev_site, site, stream)
            self._charge_work(out, site, OpKind.AGGREGATE, stream)
            if index == 0:
                stream = partial_rows * state_row
            elif index < len(chain) - 1:
                # Merges collapse duplicate groups chunk by chunk.
                partial_rows = min(partial_rows, groups * n_chunks)
                stream = partial_rows * state_row
            else:
                stream = groups * state_row
            prev_site = site

    def _visit_join(self, node: Join, placement: Placement,
                    out: PlanCost) -> None:
        site = placement.site(node)
        build_bytes = self.bytes_out(node.right)
        probe_bytes = self.bytes_out(node.left)
        if placement.partitions > 1:
            self._visit_partitioned_join(node, placement, out,
                                         build_bytes, probe_bytes)
            return
        self._charge_move(out, self._output_site(node.right, placement),
                          site, build_bytes)
        self._charge_move(out, self._output_site(node.left, placement),
                          site, probe_bytes)
        self._charge_work(out, site, OpKind.JOIN_BUILD, build_bytes)
        self._charge_work(out, site, OpKind.JOIN_PROBE, probe_bytes)

    def _visit_partitioned_join(self, node: Join, placement: Placement,
                                out: PlanCost, build_bytes: float,
                                probe_bytes: float) -> None:
        """Figure 4's scattering pipeline: NIC partition + n-way join.

        Both relations cross the scatter site once (partition work),
        then split 1/n to each node; per-node build/probe devices see
        1/n of the bytes, so the join's device time shrinks with n —
        the win the paper promises — while the scatter site and the
        shared network absorb the exchange.
        """
        n = placement.partitions
        scatter = ("storage.nic" if self.fabric.has_site("storage.nic")
                   else placement.site(node))
        for child, nbytes, kind in (
                (node.right, build_bytes, OpKind.JOIN_BUILD),
                (node.left, probe_bytes, OpKind.JOIN_PROBE)):
            self._charge_move(out, self._output_site(child, placement),
                              scatter, nbytes)
            self._charge_work(out, scatter, OpKind.PARTITION, nbytes)
            for i in range(n):
                node_site = placement.site(node).replace(
                    "compute0", f"compute{i}")
                self._charge_move(out, scatter, node_site, nbytes / n)
                self._charge_work(out, node_site, kind, nbytes / n)
        # Gather: remote nodes' shares of the output converge on the
        # join's nominal site (node 0), where the parent continues.
        out_bytes = self.bytes_out(node)
        for i in range(1, n):
            node_site = placement.site(node).replace(
                "compute0", f"compute{i}")
            self._charge_move(out, node_site, placement.site(node),
                              out_bytes / n)

    # -- charging helpers ---------------------------------------------------

    def _output_site(self, node: PlanNode,
                     placement: Placement) -> str:
        """The site at which a node's output materializes."""
        if isinstance(node, Scan):
            return "__storage__"
        return placement.chain(node)[-1]

    def _site_location(self, site: str) -> str:
        if site == "__storage__":
            return self.fabric.storage_location
        return self.fabric.site_location(site)

    def _charge_move(self, out: PlanCost, src_site: str, dst_site: str,
                     nbytes: float) -> None:
        if nbytes <= 0:
            return
        src = self._site_location(src_site)
        dst = self._site_location(dst_site)
        for link in self.fabric.route(src, dst):
            out.segment_bytes[link.segment] = (
                out.segment_bytes.get(link.segment, 0.0) + nbytes)
            out.link_time[link.name] = (
                out.link_time.get(link.name, 0.0)
                + nbytes / link.bandwidth)
            out.latency += link.latency

    def _charge_work(self, out: PlanCost, site: str, kind: str,
                     nbytes: float) -> None:
        if nbytes <= 0:
            return
        device = self.fabric.site_device(site)
        # Same formula the simulator charges (Device.service_time),
        # minus per-op startup, which depends on chunking.
        out.device_time[site] = (
            out.device_time.get(site, 0.0) + nbytes / device.rate_for(kind))
