"""Movement-aware query optimization: cost model, enumeration, ranking."""

from .cost import CostModel, PlanCost
from .enumeration import enumerate_placements
from .optimizer import Optimizer, RankedPlacement

__all__ = [
    "CostModel",
    "Optimizer",
    "PlanCost",
    "RankedPlacement",
    "enumerate_placements",
]
