"""Typed per-query trace events: the movement-level flight recorder.

The counters and spans in :mod:`repro.sim.trace` answer *how much* —
bytes per link, busy seconds per device.  They cannot answer *which
operator moved which bytes over which link, and who stalled on credits
and why*: the questions the paper's movement-cost argument turns on
(§3.3, §7.1).  This module adds the missing record kind: a bounded
ring of typed :class:`TraceEvent` objects emitted by the flow runtime,
both engines, the hardware devices, and the cloud substrate.

Events are deliberately cheap (a dataclass append into a ring) and
deliberately *lossy at the tail*: the ring keeps the most recent
``capacity`` events and counts what it overwrote, so a long run never
grows without bound and a report can always state whether its event
view is complete (:attr:`EventRing.truncated`).  Aggregate reports
that must be exact — the movement ledger, the stall attribution —
are therefore maintained as running tables on the trace itself, not
derived from the ring.

The event vocabulary (:class:`EventKind`) is fixed so downstream
consumers (the Chrome-trace exporter, the stall report) can switch on
it:

==================  ======================================================
kind                emitted when
==================  ======================================================
``chunk_emit``      a producer finished serializing a chunk onto a channel
``chunk_recv``      the chunk arrived in the consumer stage's inbox
``credit_grant``    a flow-control credit returned to the sender (§7.1)
``credit_stall``    a sender blocked waiting for a credit (has ``dur``)
``dma_issue``       a DMA transfer (link hop / storage op) was issued
``dma_complete``    that transfer finished (has ``dur``)
``cache_hit``       a bufferpool / data cache / result cache hit
``cache_miss``      the corresponding miss
``op_open``         an operator chain / query / stage began work
``op_close``        it finished
``mem_alloc``       DRAM was allocated
``mem_free``        DRAM was freed
``tax_egress``      a chunk was serialized+compressed+encrypted for the wire
``tax_ingress``     a wire payload was decoded back into a chunk
``serve_arrive``    a tenant query arrived at the serving front door
``serve_shed``      admission control rejected it (load shedding)
``serve_start``     an admitted query left the fair queue and started
``serve_done``      it finished executing
``alert``           an SLO burn-rate monitor fired or resolved
==================  ======================================================

Serving runs additionally attribute events to the query (and thereby
tenant) that caused them: :attr:`TraceEvent.qid` names a context
registered with :meth:`~repro.sim.trace.Trace.register_context`.
``qid == 0`` means "no particular query" — shared infrastructure
work, or any event from a non-serving (batch) run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = ["EventKind", "TraceEvent", "EventRing",
           "DEFAULT_EVENT_CAPACITY"]

DEFAULT_EVENT_CAPACITY = 65536
"""Ring capacity a fresh :class:`~repro.sim.trace.Trace` starts with."""


class EventKind:
    """Vocabulary of trace event kinds (plain strings, trace-readable)."""

    CHUNK_EMIT = "chunk_emit"
    CHUNK_RECV = "chunk_recv"
    CREDIT_GRANT = "credit_grant"
    CREDIT_STALL = "credit_stall"
    DMA_ISSUE = "dma_issue"
    DMA_COMPLETE = "dma_complete"
    CACHE_HIT = "cache_hit"
    CACHE_MISS = "cache_miss"
    OP_OPEN = "op_open"
    OP_CLOSE = "op_close"
    MEM_ALLOC = "mem_alloc"
    MEM_FREE = "mem_free"
    TAX_EGRESS = "tax_egress"
    TAX_INGRESS = "tax_ingress"
    SERVE_ARRIVE = "serve_arrive"
    SERVE_SHED = "serve_shed"
    SERVE_START = "serve_start"
    SERVE_DONE = "serve_done"
    ALERT = "alert"

    ALL = (
        CHUNK_EMIT, CHUNK_RECV, CREDIT_GRANT, CREDIT_STALL,
        DMA_ISSUE, DMA_COMPLETE, CACHE_HIT, CACHE_MISS,
        OP_OPEN, OP_CLOSE, MEM_ALLOC, MEM_FREE,
        TAX_EGRESS, TAX_INGRESS,
        SERVE_ARRIVE, SERVE_SHED, SERVE_START, SERVE_DONE, ALERT,
    )


@dataclass(slots=True)
class TraceEvent:
    """One typed occurrence at a simulated instant.

    ``actor`` is the track the event belongs to (a device, stage,
    link, or cache name); ``label`` carries free-form detail (the
    channel crossed, the operation performed).  ``dur`` is nonzero
    for window-shaped events (``credit_stall``, ``dma_complete``) and
    then ``ts`` is the window *start*.  A nonzero ``flow_id`` ties a
    ``chunk_emit`` to its matching ``chunk_recv`` so exporters can
    draw flow arrows between tracks.  A nonzero ``qid`` attributes
    the event to a query context registered with
    :meth:`~repro.sim.trace.Trace.register_context` (serving runs),
    so per-tenant lanes and tail-exemplar event slices can be carved
    out of a shared ring.
    """

    ts: float
    kind: str
    actor: str
    label: str = ""
    nbytes: float = 0.0
    dur: float = 0.0
    flow_id: int = 0
    qid: int = 0

    def to_dict(self) -> dict:
        out = {"ts": self.ts, "kind": self.kind, "actor": self.actor}
        if self.label:
            out["label"] = self.label
        if self.nbytes:
            out["nbytes"] = self.nbytes
        if self.dur:
            out["dur"] = self.dur
        if self.flow_id:
            out["flow_id"] = self.flow_id
        if self.qid:
            out["qid"] = self.qid
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        return cls(ts=float(data["ts"]), kind=data["kind"],
                   actor=data.get("actor", ""),
                   label=data.get("label", ""),
                   nbytes=float(data.get("nbytes", 0.0)),
                   dur=float(data.get("dur", 0.0)),
                   flow_id=int(data.get("flow_id", 0)),
                   qid=int(data.get("qid", 0)))


class EventRing:
    """A bounded ring of :class:`TraceEvent` — keeps the newest.

    Appending past ``capacity`` overwrites the oldest event and
    increments :attr:`dropped`, so consumers can always tell whether
    the window is complete (:attr:`truncated`).  Iteration yields
    events oldest-first.
    """

    def __init__(self, capacity: int = DEFAULT_EVENT_CAPACITY):
        if capacity < 1:
            raise ValueError("event ring capacity must be >= 1")
        self.capacity = capacity
        self.dropped = 0
        self._buf: list[TraceEvent] = []
        self._next = 0          # overwrite cursor once the ring is full

    def append(self, event: TraceEvent) -> None:
        if len(self._buf) < self.capacity:
            self._buf.append(event)
        else:
            self._buf[self._next] = event
            self._next = (self._next + 1) % self.capacity
            self.dropped += 1

    def extend(self, events: "Iterator[TraceEvent]") -> None:
        for event in events:
            self.append(event)

    def grow(self, capacity: int) -> None:
        """Raise the capacity (never shrinks; order is preserved)."""
        if capacity <= self.capacity:
            return
        self._buf = list(self)
        self._next = 0
        self.capacity = capacity

    def clear(self) -> None:
        self._buf = []
        self._next = 0

    @property
    def truncated(self) -> bool:
        """True when at least one event was overwritten."""
        return self.dropped > 0

    def stats(self) -> dict:
        """Ring occupancy summary for reports (JSON-safe)."""
        return {"recorded": len(self._buf),
                "capacity": self.capacity,
                "dropped": self.dropped,
                "truncated": self.truncated}

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self) -> Iterator[TraceEvent]:
        if self._next:
            return iter(self._buf[self._next:] + self._buf[:self._next])
        return iter(self._buf)

    def last(self, n: Optional[int] = None) -> list[TraceEvent]:
        """The newest ``n`` events (all, if ``n`` is None)."""
        ordered = list(self)
        return ordered if n is None else ordered[-n:]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<EventRing {len(self._buf)}/{self.capacity}"
                f"{' truncated' if self.truncated else ''}>")
