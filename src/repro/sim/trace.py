"""Metric collection for simulation runs.

Every experiment in the paper reduces to the same questions — how many
bytes crossed each segment of the data path, how busy each device was,
and how long the query took — so the tracer is organized around three
kinds of records:

* **counters** — monotonically increasing totals (bytes per link,
  chunks per channel, cache hits, dollars billed);
* **series** — (time, value) samples (queue occupancy over time);
* **spans** — named intervals (per-stage busy periods), from which
  utilization and critical-path summaries are derived.

A single :class:`Trace` is threaded through a fabric; reports are
plain dicts so benchmarks can print them directly.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Trace", "Span"]


@dataclass
class Span:
    """A named interval of simulated time."""

    name: str
    start: float
    end: Optional[float] = None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} still open")
        return self.end - self.start


@dataclass
class Trace:
    """Accumulates counters, series and spans during a run."""

    counters: dict[str, float] = field(
        default_factory=lambda: defaultdict(float))
    series: dict[str, list[tuple[float, float]]] = field(
        default_factory=lambda: defaultdict(list))
    spans: dict[str, list[Span]] = field(
        default_factory=lambda: defaultdict(list))

    # -- recording -------------------------------------------------------

    def add(self, counter: str, amount: float = 1.0) -> None:
        """Increment a counter."""
        self.counters[counter] += amount

    def sample(self, series: str, time: float, value: float) -> None:
        """Append a (time, value) sample to a series."""
        self.series[series].append((time, value))

    def open_span(self, name: str, time: float) -> Span:
        """Open a new span; close it with :meth:`close_span`."""
        span = Span(name, time)
        self.spans[name].append(span)
        return span

    def close_span(self, span: Span, time: float) -> None:
        span.end = time

    # -- reading -----------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current value of a counter (0 if never written)."""
        return self.counters.get(name, 0.0)

    def total(self, prefix: str) -> float:
        """Sum of all counters whose name starts with ``prefix``."""
        return sum(v for k, v in self.counters.items()
                   if k.startswith(prefix))

    def busy_time(self, span_name: str) -> float:
        """Total closed-span time under ``span_name``."""
        return sum(s.duration for s in self.spans.get(span_name, [])
                   if s.end is not None)

    def peak(self, series_name: str) -> float:
        """Maximum sampled value of a series (0 if empty)."""
        samples = self.series.get(series_name, [])
        if not samples:
            return 0.0
        return max(v for _t, v in samples)

    def merge(self, other: "Trace") -> None:
        """Fold another trace's records into this one."""
        for key, value in other.counters.items():
            self.counters[key] += value
        for key, samples in other.series.items():
            self.series[key].extend(samples)
        for key, spans in other.spans.items():
            self.spans[key].extend(spans)

    def report(self, prefix: str = "") -> dict[str, float]:
        """Counters (optionally filtered by prefix) as a plain dict."""
        return {k: v for k, v in sorted(self.counters.items())
                if k.startswith(prefix)}
