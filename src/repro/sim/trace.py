"""Metric collection for simulation runs: the observability registry.

Every experiment in the paper reduces to the same questions — how many
bytes crossed each segment of the data path, how busy each device was,
and how long the query took — so the tracer is organized around three
kinds of records:

* **counters** — monotonically increasing totals (bytes per link,
  chunks per channel, cache hits, dollars billed);
* **series** — (time, value) samples (queue occupancy over time);
* **spans** — named intervals (per-stage busy periods), from which
  utilization and critical-path summaries are derived;
* **events** — a bounded ring of typed :class:`~repro.sim.events.
  TraceEvent`s (chunk emit/recv, credit grant/stall, DMA
  issue/complete, cache hit/miss, operator open/close), the
  per-occurrence flight recorder the Chrome-trace exporter and stall
  narratives read;
* **ledger** — an exact running table of bytes × link × operator ×
  direction (:meth:`Trace.record_movement` /
  :meth:`Trace.movement_ledger`), kept separately from the ring so
  that ring truncation can never lose movement attribution.

A single :class:`Trace` is threaded through a fabric.  On top of the
raw records it derives the quantities reports need: per-span busy
time and utilization (:meth:`Trace.busy_time`,
:meth:`Trace.utilization`), per-device utilization from the
``device.<name>.busy_s`` counters every :class:`~repro.hardware.device.
Device` maintains (:meth:`Trace.device_utilization`), per-link
byte/chunk totals (:meth:`Trace.link_report`), and a critical-path
summary ranking span names by total busy time
(:meth:`Trace.critical_path`).

Traces serialize to a schema-versioned plain dict
(:meth:`Trace.to_dict` / :meth:`Trace.from_dict`) so benchmark
harnesses can persist them as JSON.

The trace keeps a *clock watermark* — the largest simulated time it
has seen — so that spans still open at report time have a well-defined
duration (they are measured up to the watermark instead of raising).
A mid-run report therefore never crashes a benchmark.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional

from .events import EventRing, TraceEvent

__all__ = ["Trace", "Span", "CounterHandle", "TRACE_SCHEMA"]

TRACE_SCHEMA = "repro.trace/v3"
"""Schema identifier embedded in serialized traces."""

_ACCEPTED_SCHEMAS = ("repro.trace/v1", "repro.trace/v2", TRACE_SCHEMA)
"""Schemas :meth:`Trace.from_dict` accepts (v1 lacked events/ledger,
v2 lacked query contexts)."""


@dataclass
class Span:
    """A named interval of simulated time.

    ``end is None`` marks a span that is still open.  An open span's
    ``duration`` is measured up to the owning trace's clock watermark
    (0.0 for an orphan span), so reports taken mid-run never raise.
    """

    name: str
    start: float
    end: Optional[float] = None
    trace: Optional["Trace"] = field(default=None, repr=False,
                                     compare=False)

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        if self.end is not None:
            return self.end - self.start
        if self.trace is not None:
            return max(self.trace.clock - self.start, 0.0)
        return 0.0


class CounterHandle:
    """A pre-resolved reference to one counter in a :class:`Trace`.

    Hot paths (per-message flow control, per-op device charges) used
    to rebuild the counter's key string with an f-string and walk the
    counter dict on every increment.  A handle is bound once — at
    channel/link/device construction — and after that each
    :meth:`add` is a single dict update with an interned key.  Handles
    write to the same public ``trace.counters`` mapping, so readers,
    serialization, and merge are unaffected.
    """

    __slots__ = ("counters", "key")

    def __init__(self, counters: dict, key: str):
        self.counters = counters
        self.key = key

    def add(self, amount: float = 1.0) -> None:
        self.counters[self.key] += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CounterHandle {self.key}>"


@dataclass
class Trace:
    """Accumulates counters, series and spans during a run."""

    counters: dict[str, float] = field(
        default_factory=lambda: defaultdict(float))
    series: dict[str, list[tuple[float, float]]] = field(
        default_factory=lambda: defaultdict(list))
    spans: dict[str, list[Span]] = field(
        default_factory=lambda: defaultdict(list))
    events: EventRing = field(default_factory=EventRing)
    ledger: dict[tuple[str, str, str], list[float]] = field(
        default_factory=dict)
    clock: float = 0.0
    #: Registered query contexts: qid -> {"name", "tenant"}.  Serving
    #: runs register one per query so events are tenant-attributable.
    contexts: dict[int, dict] = field(default_factory=dict)
    #: The ambient query context events default to (0 = none).  Set
    #: for the dynamic extent of a query's processes via
    #: :meth:`scoped`; never touched in batch runs.
    current_qid: int = 0
    _flow_seq: int = field(default=0, repr=False)
    _ctx_seq: int = field(default=0, repr=False)
    #: Interned handles by counter name (see :meth:`counter_handle`).
    _handles: dict[str, CounterHandle] = field(
        default_factory=dict, repr=False)

    # -- recording -------------------------------------------------------

    def add(self, counter: str, amount: float = 1.0) -> None:
        """Increment a counter."""
        self.counters[counter] += amount

    def counter_handle(self, name: str) -> CounterHandle:
        """A pre-resolved handle for repeatedly incrementing ``name``.

        Bind once at construction time (channel, link, device); the
        handle's :meth:`~CounterHandle.add` then skips the per-call
        key-string construction the hot paths used to pay.  The
        counter itself is *not* materialized here — a handle that is
        never incremented leaves no trace, so constructing hardware
        cannot change what a report contains.  Handles are interned
        per name: serving runs construct a fresh flow graph per query
        against one long-lived trace, so re-binding the same edge
        names must not allocate.
        """
        handle = self._handles.get(name)
        if handle is None:
            handle = CounterHandle(self.counters, name)
            self._handles[name] = handle
        return handle

    def emit(self, ts: float, kind: str, actor: str, label: str = "",
             nbytes: float = 0.0, dur: float = 0.0,
             flow_id: int = 0, qid: Optional[int] = None) -> TraceEvent:
        """Record a typed event into the bounded ring.

        ``ts`` is the event instant (window *start* when ``dur`` is
        nonzero); the clock watermark advances to cover the whole
        window so mid-run reports see it.  ``qid`` defaults to the
        ambient :attr:`current_qid`, so emit sites deep in shared
        hardware code need no explicit threading.

        Each event is a fresh record on purpose: consumers (tail
        exemplars, report slices) retain references into the ring, so
        recycling a pool of event objects would alias live data.
        """
        watermark = ts + dur if dur > 0 else ts
        if watermark > self.clock:      # tick(), inlined: emit is hot
            self.clock = watermark
        event = TraceEvent(ts, kind, actor, label, nbytes, dur,
                           flow_id,
                           self.current_qid if qid is None else qid)
        self.events.append(event)
        return event

    def register_context(self, name: str, tenant: str = "") -> int:
        """Register a query context; returns its fresh ``qid``.

        Events emitted with (or scoped under) this qid become
        attributable to ``name`` / ``tenant`` — the trace-context
        propagation the serving telemetry and per-tenant trace lanes
        are built on.  Registration only ever *records*; it cannot
        change simulated behavior.
        """
        self._ctx_seq += 1
        qid = self._ctx_seq
        self.contexts[qid] = {"name": name, "tenant": tenant}
        return qid

    def scoped(self, qid: int, gen):
        """Run generator ``gen`` with :attr:`current_qid` = ``qid``.

        A delegating wrapper for simulation processes: every time the
        inner generator resumes, the ambient context is set to
        ``qid``; every time it suspends (yields to the kernel) or
        exits, the context is reset to 0.  This gives exact
        dynamic-extent scoping — events emitted from shared hardware
        code (storage media, NICs, memory, cloud taxes) during this
        process's execution are tagged with the query that caused
        them, while interleaved processes of other queries are not.

        Setting an attribute cannot alter the event schedule, so a
        scoped run is simulation-bit-identical to an unscoped one.
        """
        value = None
        error: Optional[BaseException] = None
        while True:
            self.current_qid = qid
            try:
                if error is not None:
                    exc, error = error, None
                    item = gen.throw(exc)
                else:
                    item = gen.send(value)
            except StopIteration as stop:
                return stop.value
            finally:
                self.current_qid = 0
            try:
                value = yield item
            except BaseException as exc:
                error = exc

    def next_flow_id(self) -> int:
        """A fresh id tying a chunk_emit to its chunk_recv."""
        self._flow_seq += 1
        return self._flow_seq

    def record_movement(self, link: str, actor: str, direction: str,
                        nbytes: float, chunks: float = 1.0) -> None:
        """Attribute ``nbytes`` on ``link`` to ``actor``.

        The ledger is an exact aggregate (unlike the event ring it is
        never truncated); its per-link byte totals reconcile with
        :meth:`link_report`.
        """
        cell = self.ledger.setdefault((link, actor, direction),
                                      [0.0, 0.0])
        cell[0] += nbytes
        cell[1] += chunks

    def tick(self, time: float) -> None:
        """Advance the clock watermark (never moves backwards)."""
        if time > self.clock:
            self.clock = time

    def sample(self, series: str, time: float, value: float) -> None:
        """Append a (time, value) sample to a series."""
        if time > self.clock:        # tick(), inlined: hot path
            self.clock = time
        self.series[series].append((time, value))

    def open_span(self, name: str, time: float) -> Span:
        """Open a new span; close it with :meth:`close_span`."""
        if time > self.clock:        # tick(), inlined: hot path
            self.clock = time
        span = Span(name, time, trace=self)
        self.spans[name].append(span)
        return span

    def close_span(self, span: Span, time: float) -> None:
        if time > self.clock:        # tick(), inlined: hot path
            self.clock = time
        span.end = time

    def close_open_spans(self, time: Optional[float] = None) -> int:
        """Close every still-open span at ``time`` (default: the clock).

        Returns the number of spans closed.  Used before serializing a
        trace mid-run so the snapshot is self-contained.
        """
        when = self.clock if time is None else time
        self.tick(when)
        closed = 0
        for spans in self.spans.values():
            for span in spans:
                if span.end is None:
                    span.end = max(when, span.start)
                    closed += 1
        return closed

    # -- reading -----------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current value of a counter (0 if never written)."""
        return self.counters.get(name, 0.0)

    def total(self, prefix: str) -> float:
        """Sum of all counters whose name starts with ``prefix``."""
        return sum(v for k, v in self.counters.items()
                   if k.startswith(prefix))

    def busy_time(self, span_name: str) -> float:
        """Total span time under ``span_name``.

        Open spans count up to the clock watermark, so a mid-run
        reading reflects work in progress instead of raising.
        """
        return sum(s.duration for s in self.spans.get(span_name, []))

    def utilization(self, span_name: str,
                    elapsed: Optional[float] = None) -> float:
        """Busy fraction for one span name, clamped to [0, 1].

        ``elapsed`` defaults to the clock watermark.  Overlapping
        spans (multi-slot devices) are clamped rather than summed
        past 1.
        """
        horizon = self.clock if elapsed is None else elapsed
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time(span_name) / horizon)

    def peak(self, series_name: str) -> float:
        """Maximum sampled value of a series (0 if empty)."""
        samples = self.series.get(series_name, [])
        if not samples:
            return 0.0
        return max(v for _t, v in samples)

    def merge(self, other: "Trace") -> None:
        """Fold another trace's records into this one, losslessly.

        Counters add, series and span lists concatenate, ledger cells
        add, and the two event rings interleave in timestamp order.
        The merged ring's capacity grows to hold every event both
        sides currently retain, so a merge itself never drops events
        (``dropped`` carries over what each side had already lost
        before the merge).  Query contexts union; when both sides
        registered the same qid for *different* queries, the other
        side's contexts (and its events' qids) are remapped to fresh
        ids so attribution stays unambiguous.
        """
        remap: dict[int, int] = {}
        for qid, ctx in sorted(other.contexts.items()):
            if qid not in self.contexts:
                self.contexts[qid] = dict(ctx)
                self._ctx_seq = max(self._ctx_seq, qid)
            elif self.contexts[qid] != ctx:
                self._ctx_seq = max(self._ctx_seq,
                                    max(self.contexts)) + 1
                remap[qid] = self._ctx_seq
                self.contexts[self._ctx_seq] = dict(ctx)
        other_events = list(other.events)
        if remap:
            other_events = [
                TraceEvent(ts=e.ts, kind=e.kind, actor=e.actor,
                           label=e.label, nbytes=e.nbytes, dur=e.dur,
                           flow_id=e.flow_id,
                           qid=remap.get(e.qid, e.qid))
                for e in other_events]
        for key, value in other.counters.items():
            self.counters[key] += value
        for key, samples in other.series.items():
            self.series[key].extend(samples)
        for key, spans in other.spans.items():
            self.spans[key].extend(spans)
        for key, (nbytes, chunks) in other.ledger.items():
            cell = self.ledger.setdefault(key, [0.0, 0.0])
            cell[0] += nbytes
            cell[1] += chunks
        combined = sorted(list(self.events) + other_events,
                          key=lambda e: e.ts)
        capacity = max(self.events.capacity, other.events.capacity,
                       len(combined) or 1)
        dropped = self.events.dropped + other.events.dropped
        merged = EventRing(capacity)
        merged.extend(iter(combined))
        merged.dropped = dropped
        self.events = merged
        self._flow_seq = max(self._flow_seq, other._flow_seq)
        self._ctx_seq = max(self._ctx_seq, other._ctx_seq,
                            max(self.contexts, default=0))
        self.tick(other.clock)

    def report(self, prefix: str = "") -> dict[str, float]:
        """Counters (optionally filtered by prefix) as a plain dict."""
        return {k: v for k, v in sorted(self.counters.items())
                if k.startswith(prefix)}

    # -- derived reports ---------------------------------------------------

    def span_summary(self) -> dict[str, dict[str, float]]:
        """Per span name: count, open count, total/mean/max duration."""
        out: dict[str, dict[str, float]] = {}
        for name, spans in sorted(self.spans.items()):
            if not spans:
                continue
            durations = [s.duration for s in spans]
            total = sum(durations)
            out[name] = {
                "count": float(len(spans)),
                "open": float(sum(1 for s in spans if not s.closed)),
                "total_s": total,
                "mean_s": total / len(spans),
                "max_s": max(durations),
            }
        return out

    def critical_path(self, top: Optional[int] = None
                      ) -> list[dict[str, float]]:
        """Span names ranked by total busy time, busiest first.

        The head of this list is where the run actually spent its
        time — the simulated critical path.  ``share`` is relative to
        the clock watermark (can exceed 1 for multi-slot devices).
        """
        summary = self.span_summary()
        ranked = sorted(summary.items(),
                        key=lambda kv: (-kv[1]["total_s"], kv[0]))
        if top is not None:
            ranked = ranked[:top]
        horizon = self.clock
        return [{"span": name,
                 "busy_s": stats["total_s"],
                 "count": stats["count"],
                 "share": (stats["total_s"] / horizon
                           if horizon > 0 else 0.0)}
                for name, stats in ranked]

    def device_utilization(self, elapsed: Optional[float] = None
                           ) -> dict[str, float]:
        """Per-device busy fraction from ``device.<name>.busy_s``.

        Values are clamped to [0, 1]; devices that never executed are
        absent.  ``elapsed`` defaults to the clock watermark.
        """
        horizon = self.clock if elapsed is None else elapsed
        out: dict[str, float] = {}
        prefix, suffix = "device.", ".busy_s"
        for key, value in sorted(self.counters.items()):
            if key.startswith(prefix) and key.endswith(suffix):
                name = key[len(prefix):-len(suffix)]
                if horizon > 0:
                    out[name] = min(1.0, value / horizon)
                else:
                    out[name] = 0.0
        return out

    def movement_ledger(self) -> list[dict]:
        """The movement ledger: bytes × link × actor × direction.

        One row per (link, actor, direction) cell, sorted by link
        then actor then direction — every plan's movement cost,
        attributable line by line (the paper's §3.3 cost metric).
        Per-link byte sums reconcile with :meth:`link_report`.
        """
        return [{"link": link, "actor": actor, "direction": direction,
                 "bytes": cell[0], "chunks": cell[1]}
                for (link, actor, direction), cell
                in sorted(self.ledger.items())]

    def ledger_link_totals(self) -> dict[str, float]:
        """Total ledger bytes per link (for link_report reconciliation)."""
        out: dict[str, float] = {}
        for (link, _actor, _direction), cell in self.ledger.items():
            out[link] = out.get(link, 0.0) + cell[0]
        return dict(sorted(out.items()))

    def stall_report(self) -> dict[str, dict[str, float]]:
        """Per-stage stall seconds split by cause.

        Reads the stall counters the flow runtime maintains:

        * ``flow.<graph>.<src>-><dst>.stall.credit_s`` — the sender
          waited for a flow-control credit (**credit_starved**);
        * ``flow.<graph>.<src>-><dst>.stall.link_s`` — the sender
          queued behind other traffic on the route
          (**downstream_full**);
        * ``stage.<graph>.<stage>.stall.device_s`` — an operator
          waited for a busy device slot (**device_busy**).

        Channel stalls are charged to the *sending* stage.  Returns
        ``{stage: {credit_starved_s, downstream_full_s,
        device_busy_s, total_s}}`` sorted by stage name.
        """
        out: dict[str, dict[str, float]] = {}

        def cell(stage: str) -> dict[str, float]:
            return out.setdefault(stage, {"credit_starved_s": 0.0,
                                          "downstream_full_s": 0.0,
                                          "device_busy_s": 0.0})

        for key, value in self.counters.items():
            if key.startswith("flow.") and "->" in key:
                if key.endswith(".stall.credit_s"):
                    bucket = "credit_starved_s"
                    chan = key[len("flow."):-len(".stall.credit_s")]
                elif key.endswith(".stall.link_s"):
                    bucket = "downstream_full_s"
                    chan = key[len("flow."):-len(".stall.link_s")]
                else:
                    continue
                sender = chan.split("->", 1)[0]
                cell(sender)[bucket] += value
            elif (key.startswith("stage.")
                    and key.endswith(".stall.device_s")):
                stage = key[len("stage."):-len(".stall.device_s")]
                cell(stage)["device_busy_s"] += value
        for stats in out.values():
            stats["total_s"] = (stats["credit_starved_s"]
                                + stats["downstream_full_s"]
                                + stats["device_busy_s"])
        return dict(sorted(out.items()))

    def event_stats(self) -> dict:
        """Ring occupancy summary (recorded/capacity/dropped/truncated)."""
        return self.events.stats()

    def link_report(self) -> dict[str, dict[str, float]]:
        """Per-link totals: ``{link: {"bytes": ..., "chunks": ...}}``."""
        out: dict[str, dict[str, float]] = {}
        prefix = "link."
        for key, value in sorted(self.counters.items()):
            if not key.startswith(prefix):
                continue
            rest = key[len(prefix):]
            name, _, metric = rest.rpartition(".")
            if metric not in ("bytes", "chunks") or not name:
                continue
            out.setdefault(name, {"bytes": 0.0, "chunks": 0.0})
            out[name][metric] += value
        return out

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Schema-versioned plain-dict form (JSON-serializable)."""
        return {
            "schema": TRACE_SCHEMA,
            "clock": self.clock,
            "counters": dict(sorted(self.counters.items())),
            "series": {name: [[t, v] for t, v in samples]
                       for name, samples in sorted(self.series.items())},
            "spans": {name: [[s.start, s.end] for s in spans]
                      for name, spans in sorted(self.spans.items())},
            "events": {"capacity": self.events.capacity,
                       "dropped": self.events.dropped,
                       "items": [e.to_dict() for e in self.events]},
            "ledger": [[link, actor, direction, cell[0], cell[1]]
                       for (link, actor, direction), cell
                       in sorted(self.ledger.items())],
            "contexts": {str(qid): dict(ctx) for qid, ctx
                         in sorted(self.contexts.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        """Rebuild a trace from :meth:`to_dict` output.

        Accepts both the current schema and ``repro.trace/v1`` (which
        predates events and the ledger — those come back empty).
        """
        schema = data.get("schema")
        if schema not in _ACCEPTED_SCHEMAS:
            raise ValueError(
                f"unsupported trace schema {schema!r} "
                f"(expected one of {_ACCEPTED_SCHEMAS!r})")
        trace = cls()
        trace.clock = float(data.get("clock", 0.0))
        for name, value in data.get("counters", {}).items():
            trace.counters[name] = value
        for name, samples in data.get("series", {}).items():
            trace.series[name] = [(t, v) for t, v in samples]
        for name, spans in data.get("spans", {}).items():
            trace.spans[name] = [Span(name, start, end, trace=trace)
                                 for start, end in spans]
        events = data.get("events")
        if events:
            trace.events = EventRing(
                int(events.get("capacity", 1)) or 1)
            for item in events.get("items", []):
                trace.events.append(TraceEvent.from_dict(item))
            trace.events.dropped = int(events.get("dropped", 0))
        for link, actor, direction, nbytes, chunks in data.get(
                "ledger", []):
            trace.ledger[(link, actor, direction)] = [float(nbytes),
                                                      float(chunks)]
        for qid, ctx in data.get("contexts", {}).items():
            trace.contexts[int(qid)] = dict(ctx)
        trace._ctx_seq = max(trace.contexts, default=0)
        return trace
